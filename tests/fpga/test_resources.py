"""Tests for the Table III FPGA model."""

import pytest

from repro.core import naming
from repro.fpga.baselines import PRIOR_GENERATORS
from repro.fpga.resources import ARRIA10, FPGAModel, VU9P
from repro.ir import workloads


@pytest.fixture(scope="module")
def mm_spec():
    return naming.spec_from_name(workloads.gemm(64, 64, 64), "MNK-STS")


@pytest.fixture(scope="module")
def conv_spec():
    return naming.spec_from_name(
        workloads.conv2d(k=16, c=16, y=16, x=16, p=3, q=3), "KCX-STS"
    )


class TestTableIII:
    """The TensorLib rows of paper Table III (10x16 array, vec 8, FP32)."""

    def test_mm_row(self, mm_spec):
        r = FPGAModel().evaluate(mm_spec, 10, 16, workload_label="MM")
        assert r.row()["DSP%"] == 75
        assert abs(r.freq_mhz - 263) <= 5
        assert abs(r.gops - 673) <= 15
        assert 60 <= r.lut_pct <= 75
        assert 45 <= r.bram_pct <= 57

    def test_conv_row(self, conv_spec):
        r = FPGAModel().evaluate(conv_spec, 10, 16, workload_label="Conv")
        assert r.row()["DSP%"] == 75
        assert abs(r.freq_mhz - 245) <= 6
        assert abs(r.gops - 626) <= 16
        assert 66 <= r.lut_pct <= 80
        assert 65 <= r.bram_pct <= 80

    def test_throughput_improvement_over_prior(self, mm_spec):
        """The paper's headline: 21% throughput gain on MM vs the best prior
        generator (PolySA's 555 Gop/s)."""
        ours = FPGAModel().evaluate(mm_spec, 10, 16, workload_label="MM")
        best_prior = max(
            b.gops for b in PRIOR_GENERATORS if b.workload == "MM"
        )
        improvement = ours.gops / best_prior - 1.0
        assert 0.15 <= improvement <= 0.30

    def test_frequency_improvement(self, mm_spec):
        """~15% frequency improvement vs PolySA's 229 MHz."""
        ours = FPGAModel().evaluate(mm_spec, 10, 16, workload_label="MM")
        improvement = ours.freq_mhz / 229.0 - 1.0
        assert 0.10 <= improvement <= 0.20

    def test_floorplan_optimization(self, mm_spec):
        """§VI-C: manual floorplanning raises MM to ~328 MHz."""
        r = FPGAModel().evaluate(mm_spec, 10, 16, workload_label="MM", floorplan_optimized=True)
        assert abs(r.freq_mhz - 328) <= 5


class TestFrequencyModel:
    def test_multicast_fanout_costs_frequency(self):
        """Paper: systolic is 'preferred in hardware because of the lower
        interconnection cost and better frequency'."""
        gemm = workloads.gemm(64, 64, 64)
        systolic = naming.spec_from_name(gemm, "MNK-SSS")
        multicast = naming.spec_from_name(gemm, "MNK-MMT")
        m = FPGAModel()
        f_sys = m.evaluate(systolic, 16, 16, workload_label="MM").freq_mhz
        f_mc = m.evaluate(multicast, 16, 16, workload_label="MM").freq_mhz
        assert f_sys > f_mc

    def test_bigger_array_bigger_fanout_penalty(self):
        gemm = workloads.gemm(64, 64, 64)
        spec = naming.spec_from_name(gemm, "MNK-MMT")
        m = FPGAModel()
        f_small = m.evaluate(spec, 4, 4, workload_label="MM").freq_mhz
        f_large = m.evaluate(spec, 16, 16, workload_label="MM").freq_mhz
        assert f_small > f_large


class TestResourceScaling:
    def test_dsp_proportional_to_macs(self, mm_spec):
        m = FPGAModel(vec=8)
        r1 = m.evaluate(mm_spec, 5, 16, workload_label="MM")
        r2 = m.evaluate(mm_spec, 10, 16, workload_label="MM")
        assert r2.dsp == 2 * r1.dsp

    def test_vectorization(self, mm_spec):
        r_v4 = FPGAModel(vec=4).evaluate(mm_spec, 10, 16, workload_label="MM")
        r_v8 = FPGAModel(vec=8).evaluate(mm_spec, 10, 16, workload_label="MM")
        assert r_v8.dsp == 2 * r_v4.dsp
        assert r_v8.gops > r_v4.gops

    def test_devices_differ(self, mm_spec):
        vu9p = FPGAModel(device=VU9P).evaluate(mm_spec, 10, 16, workload_label="MM")
        arria = FPGAModel(device=ARRIA10).evaluate(mm_spec, 10, 16, workload_label="MM")
        assert arria.dsp_pct > vu9p.dsp_pct  # Arria-10 has far fewer DSPs


class TestBaselines:
    def test_rows_as_published(self):
        susy_mm = next(
            b for b in PRIOR_GENERATORS if b.generator == "Susy" and b.workload == "MM"
        )
        assert susy_mm.gops == 547.0
        assert susy_mm.freq_mhz == 202.0
        polysa_mm = next(
            b for b in PRIOR_GENERATORS if b.generator == "PolySA" and b.workload == "MM"
        )
        assert polysa_mm.gops == 555.0
