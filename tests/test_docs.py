"""The docs stay honest: links resolve, fenced Python compiles.

Runs ``scripts/check_docs.py`` (the same entry point as the CI docs job) so
a broken README/docs link or a syntax error in a documented snippet fails
tier-1, not just the docs job.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def test_docs_tree_exists():
    for name in ("architecture.md", "service-api.md", "deployment.md"):
        assert (REPO / "docs" / name).exists(), f"docs/{name} is missing"


def test_readme_links_the_docs_tree():
    readme = (REPO / "README.md").read_text()
    for name in ("docs/architecture.md", "docs/service-api.md", "docs/deployment.md"):
        assert name in readme, f"README does not link {name}"


def test_check_docs_passes():
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_docs.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, f"docs check failed:\n{proc.stdout}{proc.stderr}"
    assert "docs check OK" in proc.stdout


def test_check_docs_catches_a_broken_link(tmp_path):
    """The checker itself works: a dangling link target must fail loudly."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "scripts" / "check_docs.py"
    )
    check_docs = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check_docs)

    doc = tmp_path / "broken.md"
    doc.write_text("# Title\n\nsee [gone](no-such-file.md)\n")
    errors = check_docs.check_links([doc])
    # the fake doc lives outside the repo, so relative_to(REPO) can't be
    # used for display — just assert the target was flagged
    assert errors and "no-such-file.md" in errors[0]


def test_check_docs_catches_a_bad_anchor(tmp_path):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "scripts" / "check_docs.py"
    )
    check_docs = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check_docs)

    doc = tmp_path / "anchors.md"
    doc.write_text("# Real Heading\n\n[ok](#real-heading) [bad](#missing)\n")
    errors = check_docs.check_links([doc])
    assert len(errors) == 1 and "#missing" in errors[0]
