"""Cross-check analytic resource counts against real netlist cell counts."""

import pytest

from repro.core import naming
from repro.cost.counts import count_resources
from repro.hw.array import build_array
from repro.ir import workloads

# Dataflows covering every PE template and interconnect class.
CASES = [
    ("gemm", "MNK-SST"),
    ("gemm", "MNK-STS"),
    ("gemm", "MNK-MTM"),
    ("gemm", "MNK-SSS"),
    ("gemm", "MNK-MMT"),
    ("batched_gemv", "MNK-UST"),
    ("batched_gemv", "MNK-UMM"),
]


def _workload(name):
    if name == "gemm":
        return workloads.gemm(8, 8, 8)
    return workloads.batched_gemv(8, 8, 8)


@pytest.mark.parametrize("workload,dataflow", CASES)
@pytest.mark.parametrize("rows,cols", [(4, 4), (3, 5)])
def test_counts_match_netlist(workload, dataflow, rows, cols):
    """The analytic counter must agree with the generated hardware exactly
    for datapath cells (the netlist's controller is built separately, so the
    counter's fixed controller estimate is excluded from the comparison)."""
    spec = naming.spec_from_name(_workload(workload), dataflow)
    arr, _ = build_array(spec, rows, cols)
    netlist_counts = arr.cell_count()
    analytic = count_resources(spec, rows, cols)
    # Subtract the analytic controller allowance before comparing.
    assert analytic.regs - 10 == netlist_counts.get("reg", 0), "regs"
    assert analytic.adds - 1 == netlist_counts.get("add", 0), "adds"
    assert analytic.muls == netlist_counts.get("mul", 0), "muls"
    assert analytic.muxes - 1 == netlist_counts.get("mux", 0), "muxes"


def test_three_input_workload_counts():
    mt = workloads.mttkrp(4, 4, 4, 4)
    spec = naming.spec_from_name(mt, "IJK-SSBT")
    arr, _ = build_array(spec, 4, 4)
    analytic = count_resources(spec, 4, 4)
    assert analytic.muls == arr.cell_count()["mul"]


def test_full_reuse_counts():
    conv = workloads.conv2d(k=4, c=4, y=4, x=4, p=3, q=3)
    spec = naming.spec_from_name(conv, "CPQ-UUB")
    arr, _ = build_array(spec, 4, 4)
    analytic = count_resources(spec, 4, 4)
    assert analytic.adds - 1 == arr.cell_count()["add"]
    assert analytic.regs - 10 == arr.cell_count().get("reg", 0)


class TestMetadata:
    def test_bus_hops_only_for_input_multicast(self):
        gemm = workloads.gemm(8, 8, 8)
        tree_out = naming.spec_from_name(gemm, "MNK-STM")  # only output multicast
        in_mc = naming.spec_from_name(gemm, "MNK-MST")  # only input multicast
        c_tree = count_resources(tree_out, 4, 4)
        c_bus = count_resources(in_mc, 4, 4)
        assert c_tree.bus_wire_hops == 0
        assert c_bus.bus_wire_hops == 16

    def test_unicast_sram_ports(self):
        bg = workloads.batched_gemv(8, 8, 8)
        spec = naming.spec_from_name(bg, "MNK-UST")
        c = count_resources(spec, 4, 4)
        assert c.sram_ports_per_cycle >= 16  # A hits the buffer from every PE

    def test_control_fanout_for_stationary(self):
        gemm = workloads.gemm(8, 8, 8)
        sss = count_resources(naming.spec_from_name(gemm, "MNK-SSS"), 4, 4)
        sst = count_resources(naming.spec_from_name(gemm, "MNK-SST"), 4, 4)
        assert sss.control_fanout == 0
        assert sst.control_fanout == 3 * 16  # acc_clear/swap_out/drain_en
