"""Tests for the Fig. 6 area/power model calibration."""

import pytest

from repro.core import naming
from repro.core.enumerate import enumerate_designs
from repro.cost.model import CostModel, CostParams
from repro.ir import workloads


@pytest.fixture(scope="module")
def cm():
    return CostModel()


@pytest.fixture(scope="module")
def gemm_points(cm):
    gemm = workloads.gemm(16, 16, 16)
    ds = enumerate_designs(gemm, realizable_only=True, canonical=True)
    return [(s, cm.evaluate(s)) for s in ds.specs]


class TestCalibration:
    """The paper's Fig. 6 aggregates for 16x16 INT16 GEMM at 320 MHz."""

    def test_area_range(self, gemm_points):
        areas = [r.area_mm2 for _, r in gemm_points]
        assert 0.65 <= min(areas) <= 0.80
        assert 0.80 <= max(areas) <= 0.95

    def test_area_spread_small(self, gemm_points):
        """Paper: area varies only ~1.16x across dataflows."""
        areas = [r.area_mm2 for _, r in gemm_points]
        assert max(areas) / min(areas) < 1.35

    def test_power_range(self, gemm_points):
        powers = [r.power_mw for _, r in gemm_points]
        assert 30 <= min(powers) <= 45
        assert 50 <= max(powers) <= 70

    def test_power_spread_larger_than_area(self, gemm_points):
        """Paper: 'dataflow choice has a larger impact on energy than area'."""
        areas = [r.area_mm2 for _, r in gemm_points]
        powers = [r.power_mw for _, r in gemm_points]
        assert max(powers) / min(powers) > max(areas) / min(areas)

    def test_double_multicast_inputs_most_power(self, gemm_points):
        """Paper: 'dataflow with two multicast input (MMT, MMS) consumes
        more energy'."""
        double_mc = [r.power_mw for s, r in gemm_points if s.letters[:2] == "MM"]
        others = [r.power_mw for s, r in gemm_points if s.letters[:2] != "MM"]
        assert max(double_mc) > max(others)

    def test_reduction_tree_output_cheap(self, cm):
        """Paper: 'reduction tree output dataflow doesn't cost too much
        energy, although they have similar STT-level representation'."""
        gemm = workloads.gemm(16, 16, 16)
        tree_out = cm.evaluate(naming.spec_from_name(gemm, "MNK-STM"))
        mc_in = cm.evaluate(naming.spec_from_name(gemm, "MNK-MST"))
        # Same letters multiset, but the multicast *input* costs more power.
        assert tree_out.power_mw < mc_in.power_mw

    def test_stationary_costs_area_and_energy(self, cm):
        """Paper: stationary tensors pay for control signals."""
        gemm = workloads.gemm(16, 16, 16)
        sss = cm.evaluate(naming.spec_from_name(gemm, "MNK-SSS"))
        sst = cm.evaluate(naming.spec_from_name(gemm, "MNK-SST"))
        assert sst.area_mm2 > sss.area_mm2
        assert sst.power_breakdown["control"] > sss.power_breakdown["control"]


class TestModelMechanics:
    def test_breakdowns_sum(self, cm):
        gemm = workloads.gemm(16, 16, 16)
        r = cm.evaluate(naming.spec_from_name(gemm, "MNK-SST"))
        assert sum(r.area_breakdown.values()) == pytest.approx(r.area_mm2)
        assert sum(r.power_breakdown.values()) == pytest.approx(r.power_mw)

    def test_width_scaling(self):
        gemm = workloads.gemm(16, 16, 16)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        w16 = CostModel(width=16).evaluate(spec)
        w32 = CostModel(width=32).evaluate(spec)
        assert w32.area_mm2 > w16.area_mm2
        assert w32.power_mw > w16.power_mw

    def test_array_scaling(self):
        gemm = workloads.gemm(16, 16, 16)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        small = CostModel(rows=8, cols=8).evaluate(spec)
        large = CostModel(rows=16, cols=16).evaluate(spec)
        assert large.power_mw > small.power_mw

    def test_custom_params(self):
        gemm = workloads.gemm(16, 16, 16)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        hot = CostModel(params=CostParams(e_mul=1.0)).evaluate(spec)
        cold = CostModel(params=CostParams(e_mul=0.1)).evaluate(spec)
        assert hot.power_mw > cold.power_mw
