"""Tests for design-space exploration and Pareto extraction."""

import pytest

from repro.core import naming
from repro.explore.dse import explore
from repro.explore.pareto import pareto_front
from repro.ir import workloads


@pytest.fixture(scope="module")
def points():
    gemm = workloads.gemm(64, 64, 64)
    # restrict to one selection to keep the sweep quick
    return explore(gemm, rows=8, cols=8, selections=[("m", "n", "k")])


class TestExplore:
    def test_nonempty(self, points):
        assert len(points) > 20

    def test_fields_populated(self, points):
        for pt in points:
            assert 0 < pt.normalized_perf <= 1
            assert pt.area_mm2 > 0
            assert pt.power_mw > 0
            assert pt.cycles > 0

    def test_explicit_specs(self):
        gemm = workloads.gemm(64, 64, 64)
        specs = [naming.spec_from_name(gemm, "MNK-SST")]
        pts = explore(gemm, rows=8, cols=8, specs=specs)
        assert len(pts) == 1
        assert pts[0].name == "MNK-SST"

    def test_one_d_only(self):
        bg = workloads.batched_gemv(16, 16, 16)
        pts = explore(bg, rows=4, cols=4, one_d_only=True)
        assert pts
        assert all(set(pt.letters) <= set("USTM") for pt in pts)


class TestPareto:
    def test_simple_front(self):
        pts = [(1, 5), (2, 2), (5, 1), (3, 3), (6, 6)]
        front = pareto_front(pts, [lambda p: p[0], lambda p: p[1]])
        assert set(front) == {(1, 5), (2, 2), (5, 1)}

    def test_maximize_direction(self):
        pts = [(1, 5), (2, 2), (5, 1), (6, 6)]
        front = pareto_front(
            pts, [lambda p: p[0], lambda p: p[1]], minimize=[False, False]
        )
        assert front == [(6, 6)]

    def test_duplicates_survive(self):
        pts = [(1, 1), (1, 1), (2, 2)]
        front = pareto_front(pts, [lambda p: p[0], lambda p: p[1]])
        assert front == [(1, 1), (1, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            pareto_front([(1,)], [])
        with pytest.raises(ValueError):
            pareto_front([(1,)], [lambda p: p[0]], minimize=[True, False])

    def test_design_point_front(self, points):
        front = pareto_front(
            points,
            [lambda p: -p.normalized_perf, lambda p: p.power_mw],
        )
        assert front
        assert len(front) <= len(points)
        # the fastest design is always on the perf/power frontier
        fastest = max(points, key=lambda p: p.normalized_perf)
        best_power_at_fastest = min(
            p.power_mw for p in points if p.normalized_perf == fastest.normalized_perf
        )
        assert any(
            p.normalized_perf == fastest.normalized_perf
            and p.power_mw == best_power_at_fastest
            for p in front
        )
