"""Tests for the streaming evaluation engine (enumerate -> prune -> evaluate)."""

import json

import pytest

from repro.core.enumerate import EnumerationStats, enumerate_designs, iter_designs
from repro.explore.dse import explore
from repro.explore.engine import (
    ONE_D_TYPES,
    DesignFailure,
    EvaluationEngine,
    MemoCache,
)
from repro.ir import workloads
from repro.perf.model import ArrayConfig


@pytest.fixture()
def small_engine():
    return EvaluationEngine(ArrayConfig(rows=8, cols=8), width=16)


GEMM_SEL = [("m", "n", "k")]


class TestStreamingEnumeration:
    def test_lazy_matches_eager(self):
        gemm = workloads.gemm(16, 16, 16)
        stats = EnumerationStats()
        lazy = list(
            iter_designs(gemm, realizable_only=True, canonical=True, stats=stats)
        )
        eager = enumerate_designs(gemm, realizable_only=True, canonical=True)
        assert [s.signature() for s in lazy] == [s.signature() for s in eager]
        assert stats.yielded == len(lazy)
        assert stats.candidates > stats.yielded

    def test_streaming_early_stop(self):
        """The space is never materialized: taking 5 designs is cheap."""
        gemm = workloads.gemm(16, 16, 16)
        stream = iter_designs(gemm, realizable_only=True, canonical=True)
        first5 = [next(stream) for _ in range(5)]
        assert len({s.signature() for s in first5}) == 5

    def test_gemm_count_matches_paper_magnitude(self):
        """Paper §VI-B: 148 distinct realizable GEMM designs on 16x16."""
        gemm = workloads.gemm(16, 16, 16)
        count = sum(1 for _ in iter_designs(gemm, realizable_only=True, canonical=True))
        assert 100 <= count <= 300

    def test_depthwise_count_matches_paper_magnitude(self):
        """Paper §VI-B: 33 distinct realizable Depthwise designs on 16x16.

        Design distinctness is extent-independent (classification only reads
        access matrices), so small extents give the full-size count fast.
        """
        dw = workloads.depthwise_conv(k=8, y=8, x=8, p=3, q=3)
        count = sum(
            1
            for _ in iter_designs(
                dw, realizable_only=True, canonical=True, allowed_types=ONE_D_TYPES
            )
        )
        assert 20 <= count <= 150

    def test_user_predicate_prunes_in_stream(self):
        gemm = workloads.gemm(16, 16, 16)
        stats = EnumerationStats()
        no_multicast = lambda spec: "M" not in spec.letters
        designs = list(
            iter_designs(
                gemm,
                selections=GEMM_SEL,
                realizable_only=True,
                canonical=True,
                predicates=[no_multicast],
                stats=stats,
            )
        )
        assert designs
        assert all("M" not in s.letters for s in designs)
        assert stats.predicate_filtered > 0


class TestEngineEvaluate:
    def test_points_match_legacy_explore(self, small_engine):
        gemm = workloads.gemm(64, 64, 64)
        result = small_engine.evaluate(gemm, selections=GEMM_SEL)
        legacy = explore(gemm, rows=8, cols=8, selections=GEMM_SEL)
        assert [p.name for p in result.points] == [p.name for p in legacy]
        assert [p.metrics() for p in result.points] == [p.metrics() for p in legacy]

    def test_serial_parallel_bit_identical(self):
        engine = EvaluationEngine(ArrayConfig(rows=8, cols=8), chunk_size=8)
        gemm = workloads.gemm(64, 64, 64)
        serial = engine.evaluate(gemm, selections=GEMM_SEL, workers=0)
        parallel = engine.evaluate(gemm, selections=GEMM_SEL, workers=2)
        assert len(serial) > 20
        assert [p.name for p in serial] == [p.name for p in parallel]
        assert [p.metrics() for p in serial] == [p.metrics() for p in parallel]

    def test_serial_parallel_bit_identical_depthwise(self):
        engine = EvaluationEngine(ArrayConfig(rows=8, cols=8), chunk_size=8)
        dw = workloads.depthwise_conv(k=8, y=8, x=8, p=3, q=3)
        serial = engine.evaluate(
            dw, selections=[("k", "y", "x")], one_d_only=True, workers=0
        )
        parallel = engine.evaluate(
            dw, selections=[("k", "y", "x")], one_d_only=True, workers=2
        )
        assert [p.metrics() for p in serial] == [p.metrics() for p in parallel]

    def test_generator_selections_not_exhausted(self, tmp_path):
        """selections may be a generator; cache-key construction must not
        consume it before enumeration (regression: empty space poisoned the
        persistent cache)."""
        path = tmp_path / "memo.json"
        gemm = workloads.gemm(64, 64, 64)
        engine = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path)
        result = engine.evaluate(gemm, selections=(sel for sel in GEMM_SEL))
        assert len(result) > 20
        warm = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path).evaluate(
            gemm, selections=GEMM_SEL
        )
        assert warm.stats.space_cache_hit
        assert len(warm) == len(result)

    def test_explicit_specs_bypass_enumeration(self, small_engine):
        from repro.core import naming

        gemm = workloads.gemm(64, 64, 64)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        result = small_engine.evaluate(gemm, specs=[spec])
        assert len(result) == 1
        assert result.points[0].name == "MNK-SST"

    def test_pareto_and_best_helpers(self, small_engine):
        gemm = workloads.gemm(64, 64, 64)
        result = small_engine.evaluate(gemm, selections=GEMM_SEL)
        front = result.pareto()
        assert front and len(front) <= len(result)
        best = result.best(3)
        assert len(best) == 3
        assert best[0].normalized_perf == max(p.normalized_perf for p in result)


class TestFailureChannel:
    def _failing_engine(self):
        engine = EvaluationEngine(ArrayConfig(rows=8, cols=8))

        class FailingPerf:
            config = engine.array

            def evaluate(self, spec):
                raise ValueError("injected model failure")

        engine.perf = FailingPerf()
        return engine

    def test_failures_are_structured_not_swallowed(self):
        engine = self._failing_engine()
        gemm = workloads.gemm(64, 64, 64)
        result = engine.evaluate(gemm, selections=GEMM_SEL)
        assert result.points == []
        assert result.stats.skipped == len(result.failures) > 20
        failure = result.failures[0].failure
        assert isinstance(failure, DesignFailure)
        assert failure.stage == "perf"
        assert "injected model failure" in failure.reason
        assert not result.failures[0].ok
        assert "skipped" in result.failure_report()

    def test_legacy_wrapper_warns_on_skips(self):
        from repro.core import naming

        gemm = workloads.gemm(64, 64, 64)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        engine = self._failing_engine()
        with pytest.warns(RuntimeWarning, match="skipped"):
            pts = explore(
                gemm, rows=8, cols=8, specs=[spec], perf=engine.perf
            )
        assert pts == []

    def test_legacy_wrapper_silent_when_clean(self, recwarn):
        gemm = workloads.gemm(64, 64, 64)
        explore(gemm, rows=8, cols=8, selections=GEMM_SEL)
        assert not [w for w in recwarn if w.category is RuntimeWarning]


class TestMemoCache:
    def test_warm_run_hits_cache(self, tmp_path):
        path = tmp_path / "memo.json"
        gemm = workloads.gemm(64, 64, 64)

        cold_engine = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path)
        cold = cold_engine.evaluate(gemm, selections=GEMM_SEL)
        assert cold.stats.cache_hits == 0
        assert cold.stats.evaluated == len(cold)
        assert path.exists()

        warm_engine = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path)
        warm = warm_engine.evaluate(gemm, selections=GEMM_SEL)
        assert warm.stats.space_cache_hit
        assert warm.stats.cache_hits == len(warm)
        assert warm.stats.evaluated == 0
        assert [p.metrics() for p in warm] == [p.metrics() for p in cold]

    def test_cache_file_is_json(self, tmp_path):
        path = tmp_path / "memo.json"
        engine = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path)
        engine.evaluate(workloads.gemm(64, 64, 64), selections=GEMM_SEL)
        data = json.loads(path.read_text())
        assert set(data) >= {"points", "spaces"}
        assert data["points"]

    def test_different_config_misses(self, tmp_path):
        path = tmp_path / "memo.json"
        gemm = workloads.gemm(64, 64, 64)
        EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path).evaluate(
            gemm, selections=GEMM_SEL
        )
        other = EvaluationEngine(ArrayConfig(rows=4, cols=4), cache=path).evaluate(
            gemm, selections=GEMM_SEL
        )
        assert other.stats.cache_hits == 0

    def test_corrupt_cache_degrades_gracefully(self, tmp_path):
        path = tmp_path / "memo.json"
        path.write_text("{not json")
        engine = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path)
        result = engine.evaluate(workloads.gemm(64, 64, 64), selections=GEMM_SEL)
        assert len(result) > 20

    def test_in_memory_cache_across_repeat_evaluates(self):
        cache = MemoCache()
        engine = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=cache)
        gemm = workloads.gemm(64, 64, 64)
        first = engine.evaluate(gemm, selections=GEMM_SEL)
        second = engine.evaluate(gemm, selections=GEMM_SEL)
        assert second.stats.cache_hits == len(first)
        assert second.stats.evaluated == 0

    def test_same_name_different_accesses_do_not_alias(self, tmp_path):
        """Statement identity includes the access matrices: a different
        einsum with the same name, loops and extents must miss the cache."""
        from repro.ir.einsum import parse_statement

        path = tmp_path / "memo.json"
        gemm = workloads.gemm(64, 64, 64)  # C[m,n] += A[m,k] * B[n,k]
        imposter = parse_statement(
            "C[m,n] += A[k,m] * B[k,n]", name="gemm", m=64, n=64, k=64
        )
        EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path).evaluate(
            gemm, selections=GEMM_SEL
        )
        other = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path).evaluate(
            imposter, selections=GEMM_SEL
        )
        assert not other.stats.space_cache_hit
        assert other.stats.cache_hits == 0

    def test_evaluate_names_memoized(self, tmp_path):
        path = tmp_path / "memo.json"
        gemm = workloads.gemm(64, 64, 64)
        cold = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path)
        rows_cold = cold.evaluate_names(gemm, ["MNK-SST", "MNK-MTM"])
        warm = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=path)
        rows_warm = warm.evaluate_names(gemm, ["MNK-SST", "MNK-MTM"])
        assert warm.cache.hits == 2
        assert [(n, r.cycles) for n, r in rows_cold] == [
            (n, r.cycles) for n, r in rows_warm
        ]


class TestSweep:
    def test_multi_workload_sweep(self, small_engine):
        results = small_engine.sweep(
            [workloads.gemm(64, 64, 64), "batched_gemv"],
            selections=None,
            one_d_only=True,
        )
        assert [r.workload for r in results] == ["gemm", "batched_gemv"]
        assert all(len(r) > 0 for r in results)

    def test_multi_config_sweep_rejects_custom_models(self):
        """Custom models are config-bound; sweeping other configs with them
        silently swapped in defaults before — now it refuses."""
        from repro.perf.model import PerfModel

        engine = EvaluationEngine(perf=PerfModel(ArrayConfig(rows=8, cols=8)))
        with pytest.raises(ValueError, match="custom perf/cost"):
            engine.sweep(
                [workloads.gemm(64, 64, 64)],
                configs=[ArrayConfig(rows=8, cols=8), ArrayConfig(rows=4, cols=4)],
                selections=GEMM_SEL,
            )

    def test_sweep_shares_one_pool_across_items(self, monkeypatch):
        """Regression: a parallel sweep must reuse one process pool for every
        workload x config item (it used to fork a fresh pool per item) while
        returning results identical to per-item evaluate() calls."""
        import repro.explore.engine as engine_mod

        real_pool = engine_mod.ProcessPoolExecutor
        constructed = []

        class CountingPool(real_pool):
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", CountingPool)
        gemm = workloads.gemm(64, 64, 64)
        configs = [ArrayConfig(rows=8, cols=8), ArrayConfig(rows=4, cols=4)]
        engine = EvaluationEngine(ArrayConfig(rows=8, cols=8), workers=2, chunk_size=8)
        swept = engine.sweep(
            [gemm, "batched_gemv"], configs=configs, selections=GEMM_SEL
        )
        assert len(swept) == 4
        assert sum(constructed) == 1  # one pool for the whole sweep

        serial = EvaluationEngine(ArrayConfig(rows=8, cols=8)).sweep(
            [gemm, "batched_gemv"], configs=configs, selections=GEMM_SEL
        )
        assert [r.workload for r in swept] == [r.workload for r in serial]
        assert [[p.metrics() for p in r] for r in swept] == [
            [p.metrics() for p in r] for r in serial
        ]

    def test_multi_config_sweep_shares_cache(self):
        cache = MemoCache()
        engine = EvaluationEngine(ArrayConfig(rows=8, cols=8), cache=cache)
        configs = [ArrayConfig(rows=8, cols=8), ArrayConfig(rows=4, cols=4)]
        results = engine.sweep(
            [workloads.gemm(64, 64, 64)], configs=configs, selections=GEMM_SEL
        )
        assert len(results) == 2
        assert results[0].array.rows == 8 and results[1].array.rows == 4
        # both configs' points landed in the one shared cache
        rerun = engine.sweep(
            [workloads.gemm(64, 64, 64)], configs=configs, selections=GEMM_SEL
        )
        assert all(r.stats.evaluated == 0 for r in rerun)
