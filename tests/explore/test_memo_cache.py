"""MemoCache under concurrency and torn/foreign shard files."""

import json
import threading

from repro.explore.engine import MemoCache


class TestConcurrency:
    def test_threads_hammering_one_cache(self, tmp_path):
        """get/put/flush from many threads: no lost writes, no exceptions.

        This is the evaluation service's access pattern — concurrent request
        handlers sharing the server session's cache.
        """
        cache = MemoCache(tmp_path / "memo.json")
        errors = []
        n_threads, n_keys = 8, 50

        def worker(tid: int) -> None:
            try:
                for i in range(n_keys):
                    key = f"t{tid}-k{i}"
                    cache.put("api", key, {"value": i})
                    assert cache.get("api", key) == {"value": i}
                    if i % 10 == 0:
                        cache.flush()
                    cache.stats()
                    len(cache)
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        cache.flush()
        reloaded = MemoCache(tmp_path / "memo.json")
        assert reloaded.stats()["api"] == n_threads * n_keys

    def test_concurrent_merge_both_directions(self, tmp_path):
        """Two caches merging into each other concurrently must not deadlock."""
        a, b = MemoCache(), MemoCache()
        for i in range(200):
            a.put("api", f"a{i}", i)
            b.put("api", f"b{i}", i)
        done = threading.Barrier(2)

        def merge(dst, src):
            done.wait(timeout=10)
            for _ in range(20):
                dst.merge_from(src)

        t1 = threading.Thread(target=merge, args=(a, b))
        t2 = threading.Thread(target=merge, args=(b, a))
        t1.start(), t2.start()
        t1.join(timeout=60), t2.join(timeout=60)
        assert not t1.is_alive() and not t2.is_alive()
        assert a.stats()["api"] == b.stats()["api"] == 400


class TestTornShards:
    """A shard file appearing mid-write must merge as empty, never raise."""

    def test_merge_from_truncated_json(self, tmp_path):
        torn = tmp_path / "torn.json"
        torn.write_text('{"points": {"k": [tru')  # interrupted foreign write
        cache = MemoCache()
        cache.put("points", "mine", [1])
        added = cache.merge_from(torn)
        assert added == {"points": 0, "spaces": 0, "names": 0, "api": 0}
        assert cache.get("points", "mine") == [1]

    def test_merge_from_wrong_shape_json(self, tmp_path):
        """Valid JSON of the wrong shape (regression: this used to raise
        AttributeError out of ``load`` while ``MemoCache(path)`` silently
        tolerated truncated files)."""
        torn = tmp_path / "list.json"
        torn.write_text("[1, 2, 3]")
        cache = MemoCache()
        added = cache.merge_from(torn)
        assert sum(added.values()) == 0

        scalar = tmp_path / "scalar.json"
        scalar.write_text('"just a string"')
        assert sum(cache.merge_from(scalar).values()) == 0

    def test_merge_from_missing_file(self, tmp_path):
        cache = MemoCache()
        assert sum(cache.merge_from(tmp_path / "never-written.json").values()) == 0

    def test_load_ignores_wrong_shape_sections(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"points": ["not", "a", "dict"], "api": {"k": 1}}))
        cache = MemoCache(path)
        assert cache.stats()["points"] == 0
        assert cache.get("api", "k") == 1

    def test_good_shards_still_merge(self, tmp_path):
        src = MemoCache(tmp_path / "src.json")
        src.put("api", "k", {"v": 1})
        src.flush()
        dst = MemoCache()
        assert dst.merge_from(tmp_path / "src.json")["api"] == 1
        assert dst.get("api", "k") == {"v": 1}


class TestEngineAutoflush:
    def test_autoflush_off_defers_cache_writes(self, tmp_path):
        """A server-style engine (autoflush=False) never rewrites the cache
        file per pipeline run; an explicit flush persists everything."""
        from repro.explore.engine import EvaluationEngine
        from repro.ir import workloads
        from repro.perf.model import ArrayConfig

        path = tmp_path / "memo.json"
        engine = EvaluationEngine(
            ArrayConfig(rows=4, cols=4), cache=path, autoflush=False
        )
        result = engine.evaluate(
            workloads.gemm(16, 16, 16), selections=[("m", "n", "k")]
        )
        assert len(result) > 0
        assert not path.exists()  # no per-run rewrite
        engine.cache.flush()
        assert path.exists()
        warm = EvaluationEngine(ArrayConfig(rows=4, cols=4), cache=path)
        warm_result = warm.evaluate(
            workloads.gemm(16, 16, 16), selections=[("m", "n", "k")]
        )
        assert warm_result.stats.cache_hits == len(warm_result)
