"""Suite-wide configuration: a hard per-test timeout.

The service tests start real servers and block on sockets; a hung server
must fail *one test* loudly, never wedge the whole suite (CI would otherwise
sit until the job-level kill).  Implemented with SIGALRM — no third-party
timeout plugin in the image — so it is enforced only on platforms with the
signal and in the main thread, which is where pytest runs tests.

Override the budget with ``REPRO_TEST_TIMEOUT`` (seconds, 0 disables).
"""

import os
import signal
import threading

import pytest

_TIMEOUT = int(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    use_alarm = (
        _TIMEOUT > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {_TIMEOUT}s per-test timeout "
            "(REPRO_TEST_TIMEOUT)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
