"""Cross-validation: analytical performance model vs netlist simulation.

The model assumes double-buffered phase overlap that the (deliberately
sequential) functional harness does not implement, so exact equality is not
expected; we check that the model's cycle counts agree within a modest bound
and that dataflow *rankings* — the thing Fig. 5 plots — agree.
"""

import pytest

from repro.core import naming
from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel
from repro.sim.harness import FunctionalHarness


def measured_cycles(spec, rows, cols):
    h = FunctionalHarness(spec, rows, cols)
    h.check()
    return h.cycles_run


@pytest.mark.parametrize("name", ["MNK-SST", "MNK-STS", "MNK-MTM", "MNK-MMT"])
def test_model_within_bound_of_simulation(name):
    gemm = workloads.gemm(8, 8, 8)
    spec = naming.spec_from_name(gemm, name)
    model = PerfModel(ArrayConfig(rows=4, cols=4, onchip_bw_gbps=1000.0))
    predicted = model.evaluate(spec).cycles
    actual = measured_cycles(spec, 4, 4)
    # The harness serializes load/drain phases the model overlaps; it can
    # only be slower, and by at most the phase overhead ratio.
    assert predicted <= actual * 1.05
    assert actual <= predicted * 3.0


def test_ranking_agrees_with_simulation():
    """Multicast beats output-stationary systolic in both worlds."""
    gemm = workloads.gemm(8, 8, 16)
    mtm = naming.spec_from_name(gemm, "MNK-MTM")
    sst = naming.spec_from_name(gemm, "MNK-SST")
    model = PerfModel(ArrayConfig(rows=4, cols=4, onchip_bw_gbps=1000.0))
    assert model.evaluate(mtm).cycles < model.evaluate(sst).cycles
    assert measured_cycles(mtm, 4, 4) < measured_cycles(sst, 4, 4)


def test_exec_phase_length_exact():
    """The plan's stage timing is exactly what the harness executes."""
    gemm = workloads.gemm(4, 4, 8)
    spec = naming.spec_from_name(gemm, "MNK-SST")
    h = FunctionalHarness(spec, 4, 4)
    h.check()
    plan = h.design.plan
    assert h.cycles_run == plan.n_stages() * plan.timing.total
