"""Tests for the Fig. 5 performance model."""

import pytest

from repro.core import naming
from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel


@pytest.fixture(scope="module")
def model():
    return PerfModel(ArrayConfig(rows=16, cols=16))


def evaluate_named(model, statement, name):
    """The single-entry-point spelling of the old ``evaluate_named``."""
    return model.evaluate(naming.spec_from_name(statement, name))


@pytest.fixture(scope="module")
def gemm():
    return workloads.gemm(256, 256, 256)


class TestArrayConfig:
    def test_paper_setup(self):
        cfg = ArrayConfig()
        assert cfg.pes == 256
        # 32 GB/s at 320 MHz = 100 bytes/cycle = 50 INT16 elements
        assert cfg.bytes_per_cycle == 100.0
        assert cfg.elements_per_cycle == 50.0


class TestBasicInvariants:
    def test_normalized_at_most_one(self, model, gemm):
        for name in ["MNK-SST", "MNK-MTM", "MNK-STS", "MNK-SSS"]:
            r = evaluate_named(model, gemm, name)
            assert 0.0 < r.normalized <= 1.0

    def test_peak_cycles(self, model, gemm):
        r = evaluate_named(model, gemm, "MNK-SST")
        assert r.peak_cycles == gemm.macs() / 256

    def test_cycles_at_least_peak(self, model, gemm):
        for name in ["MNK-SST", "MNK-MTM", "MNK-TSS"]:
            r = evaluate_named(model, gemm, name)
            assert r.cycles >= r.peak_cycles * 0.999


class TestPaperFindings:
    """Qualitative claims of paper §VI-A, one test each."""

    def test_multicast_beats_systolic_gemm(self, model, gemm):
        """'the performance of multicast dataflows (MTM) is better than
        systolic dataflow' — smaller pipeline overhead."""
        mtm = evaluate_named(model, gemm, "MNK-MTM")
        sst = evaluate_named(model, gemm, "MNK-SST")
        assert mtm.normalized > sst.normalized

    def test_systolic_skew_shrinks_with_longer_time_loop(self, model):
        small = evaluate_named(model, workloads.gemm(64, 64, 64), "MNK-SST")
        large = evaluate_named(model, workloads.gemm(64, 64, 1024), "MNK-SST")
        assert large.normalized > small.normalized

    def test_batched_gemv_bandwidth_bound(self, model):
        """Unicast A makes Batched-GEMV bandwidth-bound (~5x stall)."""
        bg = workloads.batched_gemv(64, 256, 256)
        r = evaluate_named(model, bg, "MNK-UST")
        assert r.bandwidth_stall > 4.0
        assert r.normalized < 0.25

    def test_unicast_worse_than_reuse_dataflows_mttkrp(self, model):
        mt = workloads.mttkrp(64, 64, 64, 64)
        unicast = evaluate_named(model, mt, "IKL-UBBB")
        reuse = evaluate_named(model, mt, "IJK-SSBT")
        assert unicast.normalized < reuse.normalized

    def test_small_kernel_loops_waste_pes(self, model):
        """Selecting p (extent 3) spatially uses 15/16 rows (packed)."""
        conv = workloads.conv2d(k=64, c=64, y=56, x=56, p=3, q=3)
        spec = naming.spec_from_name(conv, "XPQ-MMT")
        r = model.evaluate(spec)
        assert r.utilization < 1.0
        assert r.utilization >= 15 / 16 * 0.9

    def test_resnet_layer5_worse_than_layer2_for_xy_dataflows(self, model):
        """x = y = 7 cannot fill a 16-wide array (paper Fig. 5f vs 5g)."""
        l2 = naming.spec_from_name(workloads.conv2d_resnet_layer2(), "XYP-MST")
        l5 = naming.spec_from_name(workloads.conv2d_resnet_layer5(), "XYP-MST")
        r2, r5 = model.evaluate(l2), model.evaluate(l5)
        assert r5.utilization < r2.utilization

    def test_kcx_best_for_conv(self, model):
        """'selecting KCX iterations can deliver better performance because
        it becomes standard GEMM with large loop bounds'."""
        layer = workloads.conv2d_resnet_layer2()
        score = lambda s: model.evaluate(s).normalized
        kcx = naming.best_spec_from_name(layer, "KCX-SST", score)
        xyp = naming.best_spec_from_name(layer, "XYP-MST", score)
        assert model.evaluate(kcx).normalized > model.evaluate(xyp).normalized

    def test_communication_delay_dominates_short_stages(self, model):
        """KPX-MST-style dataflows idle on communication when the execution
        window is small (paper §VI-A)."""
        conv = workloads.conv2d_resnet_layer5()
        spec = naming.spec_from_name(conv, "KPX-MST")
        r = model.evaluate(spec)
        assert r.breakdown["skew"] > r.breakdown["exec"] * 0.3
        assert r.normalized < 0.5

    def test_depthwise_multicast_best(self, model):
        """KPX/XYP-MMM-style all-multicast dataflows win for Depthwise."""
        dw = workloads.depthwise_conv(k=64, y=56, x=56, p=3, q=3)
        score = lambda s: model.evaluate(s).normalized
        mmm = naming.best_spec_from_name(dw, "KQX-MMM", score)
        # KXY selects (k, x, y): A and C have full-rank access -> unicast,
        # the paper's bandwidth-bound worst case for this workload.
        unicast = naming.best_spec_from_name(dw, "KXY-UBU", score)
        assert model.evaluate(mmm).normalized > model.evaluate(unicast).normalized


class TestPacking:
    def test_packing_toggle(self):
        conv = workloads.conv2d(k=64, c=64, y=56, x=56, p=3, q=3)
        spec = naming.spec_from_name(conv, "XPQ-MMT")
        packed = PerfModel(ArrayConfig()).evaluate(spec)
        unpacked = PerfModel(ArrayConfig(), allow_packing=False).evaluate(spec)
        assert packed.utilization > unpacked.utilization
        assert packed.cycles < unpacked.cycles
