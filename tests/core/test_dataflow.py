"""Tests for the Table I dataflow taxonomy and DataflowSpec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import linalg
from repro.core.dataflow import DataflowSpec, DataflowType, analyze, classify
from repro.core.reuse import reuse_space
from repro.core.stt import STT
from repro.ir import workloads

PAPER_T = STT([[1, 0, 0], [0, 1, 0], [1, 1, 1]])
IDENTITY = STT([[1, 0, 0], [0, 1, 0], [0, 0, 1]])


class TestTableI:
    """One test per row of paper Table I."""

    def test_dim0_unicast(self):
        bg = workloads.batched_gemv(4, 4, 4)
        rs = reuse_space(bg.access("A").restrict(("m", "n", "k")), IDENTITY)
        assert classify(rs) is DataflowType.UNICAST

    def test_dim1_stationary(self):
        gemm = workloads.gemm(4, 4, 4)
        rs = reuse_space(gemm.access("C").restrict(("m", "n", "k")), PAPER_T)
        assert classify(rs) is DataflowType.STATIONARY

    def test_dim1_systolic(self):
        gemm = workloads.gemm(4, 4, 4)
        rs = reuse_space(gemm.access("A").restrict(("m", "n", "k")), PAPER_T)
        assert classify(rs) is DataflowType.SYSTOLIC

    def test_dim1_multicast(self):
        gemm = workloads.gemm(4, 4, 4)
        # identity STT: A's reuse dir (0,1,0) maps to (0,1,0): dp!=0, dt=0
        rs = reuse_space(gemm.access("A").restrict(("m", "n", "k")), IDENTITY)
        assert classify(rs) is DataflowType.MULTICAST

    def test_dim2_broadcast_vertical(self):
        ttmc = workloads.ttmc(4, 4, 4, 4, 4)
        # A[i,l,m] over (i,j,k): reuse dirs e_j, e_k; identity maps them to
        # (0,1,0) and (0,0,1): the second has dt!=0 -> NOT broadcast.
        # Use T mapping j,k to pure space.
        stt = STT([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        rs = reuse_space(ttmc.access("A").restrict(("i", "j", "k")), stt)
        assert rs.dim == 2
        assert classify(rs) is DataflowType.BROADCAST

    def test_dim2_parallel_multicast_stationary(self):
        ttmc = workloads.ttmc(4, 4, 4, 4, 4)
        # B[l,j] over (i,j,k): reuse dirs e_i, e_k; identity maps e_k to time
        # axis and e_i to space -> plane parallel to t-axis.
        rs = reuse_space(ttmc.access("B").restrict(("i", "j", "k")), IDENTITY)
        assert classify(rs) is DataflowType.MULTICAST_STATIONARY

    def test_dim2_intersect_systolic_multicast(self):
        ttmc = workloads.ttmc(4, 4, 4, 4, 4)
        # B[l,j] over (i,j,k) has reuse dirs e_i, e_k.  Map e_i -> (1,0,0)
        # (pure space) and e_k -> (0,1,1) (skewed): their span misses the
        # t-axis, so the plane *intersects* it -> systolic & multicast.
        stt = STT([[1, 0, 0], [0, 1, 1], [0, 0, 1]])
        rs = reuse_space(ttmc.access("B").restrict(("i", "j", "k")), stt)
        assert rs.dim == 2
        assert classify(rs) is DataflowType.SYSTOLIC_MULTICAST

    def test_dim3_full_reuse(self):
        conv = workloads.conv2d(k=4, c=4, y=4, x=4, p=3, q=3)
        rs = reuse_space(conv.access("C").restrict(("c", "p", "q")), IDENTITY)
        assert classify(rs) is DataflowType.FULL_REUSE


class TestDataflowTypeProps:
    def test_letters(self):
        assert DataflowType.SYSTOLIC.letter == "S"
        assert DataflowType.STATIONARY.letter == "T"
        assert DataflowType.MULTICAST.letter == "M"
        assert DataflowType.UNICAST.letter == "U"
        assert DataflowType.BROADCAST.letter == "B"
        assert DataflowType.MULTICAST_STATIONARY.letter == "B"
        assert DataflowType.SYSTOLIC_MULTICAST.letter == "B"
        assert DataflowType.FULL_REUSE.letter == "B"

    def test_reuse_dims(self):
        assert DataflowType.UNICAST.reuse_dim == 0
        assert DataflowType.SYSTOLIC.reuse_dim == 1
        assert DataflowType.BROADCAST.reuse_dim == 2
        assert DataflowType.FULL_REUSE.reuse_dim == 3

    def test_components(self):
        assert DataflowType.MULTICAST_STATIONARY.has_stationary_component
        assert DataflowType.MULTICAST_STATIONARY.has_multicast_component
        assert not DataflowType.MULTICAST_STATIONARY.has_systolic_component
        assert DataflowType.SYSTOLIC_MULTICAST.has_systolic_component


class TestKnownDataflows:
    """The named dataflows the paper discusses map to the right classes."""

    def test_output_stationary_gemm(self):
        gemm = workloads.gemm(8, 8, 8)
        spec = analyze(gemm, ("m", "n", "k"), PAPER_T)
        assert spec.letters == "SST"
        assert spec.name == "MNK-SST"
        assert spec.output_flow.kind is DataflowType.STATIONARY

    def test_weight_stationary_gemm(self):
        gemm = workloads.gemm(8, 8, 8)
        stt = STT([[0, 0, 1], [0, 1, 0], [1, 1, 1]])
        spec = analyze(gemm, ("m", "n", "k"), stt)
        assert spec.flow("B").kind is DataflowType.STATIONARY
        assert spec.letters == "STS"

    def test_reduction_tree_flag(self):
        gemm = workloads.gemm(8, 8, 8)
        stt = STT([[0, 0, 1], [0, 1, 0], [1, 0, 0]])  # MTM
        spec = analyze(gemm, ("m", "n", "k"), stt)
        assert spec.letters == "MTM"
        assert spec.output_flow.is_reduction_tree
        assert not spec.flow("A").is_reduction_tree  # inputs never are

    def test_directions_of_output_stationary(self):
        gemm = workloads.gemm(8, 8, 8)
        spec = analyze(gemm, ("m", "n", "k"), PAPER_T)
        a = spec.flow("A")
        assert a.systolic_direction == (0, 1, 1)
        assert a.multicast_direction is None
        c = spec.flow("C")
        assert c.stationary_step == (0, 0, 1)
        assert c.direction == (0, 0, 1)


class TestComponentDirections:
    def test_multicast_stationary_components(self):
        ttmc = workloads.ttmc(4, 4, 4, 4, 4)
        spec = analyze(ttmc, ("i", "j", "k"), IDENTITY)
        b = spec.flow("B")  # B[l,j]: reuse dirs e_i (space), e_k (time)
        assert b.kind is DataflowType.MULTICAST_STATIONARY
        assert b.multicast_direction == (1, 0, 0)
        assert b.stationary_step == (0, 0, 1)

    def test_systolic_multicast_components(self):
        ttmc = workloads.ttmc(4, 4, 4, 4, 4)
        stt = STT([[1, 0, 0], [0, 1, 1], [0, 0, 1]])
        b = analyze(ttmc, ("i", "j", "k"), stt).flow("B")
        assert b.kind is DataflowType.SYSTOLIC_MULTICAST
        mc = b.multicast_direction
        sy = b.systolic_direction
        assert mc is not None and mc[-1] == 0
        assert sy is not None and sy[-1] != 0

    def test_full_reuse_components(self):
        conv = workloads.conv2d(k=4, c=4, y=4, x=4, p=2, q=2)
        spec = analyze(conv, ("c", "p", "q"), IDENTITY)
        c = spec.flow("C")
        assert c.kind is DataflowType.FULL_REUSE
        assert c.is_reduction_tree
        assert len(c.multicast_directions) == 2
        assert c.stationary_step == (0, 0, 1)

    def test_broadcast_has_two_directions(self):
        ttmc = workloads.ttmc(4, 4, 4, 4, 4)
        stt = STT([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        a = analyze(ttmc, ("i", "j", "k"), stt).flow("A")
        assert a.kind is DataflowType.BROADCAST
        assert len(a.multicast_directions) == 2


class TestDataflowSpec:
    def test_selected_validation(self):
        gemm = workloads.gemm(4, 4, 4)
        with pytest.raises(ValueError):
            DataflowSpec(gemm, ("m", "n"), PAPER_T)
        with pytest.raises(ValueError):
            DataflowSpec(gemm, ("m", "n", "z"), PAPER_T)
        with pytest.raises(ValueError):
            DataflowSpec(gemm, ("m", "m", "k"), PAPER_T)

    def test_selected_and_sequential_spaces(self):
        conv = workloads.conv2d(k=4, c=4, y=8, x=8, p=3, q=3)
        spec = analyze(conv, ("k", "c", "x"), PAPER_T)
        assert spec.selected_space.names == ("k", "c", "x")
        assert spec.sequential_space.names == ("y", "p", "q")

    def test_flow_lookup(self):
        gemm = workloads.gemm(4, 4, 4)
        spec = analyze(gemm, ("m", "n", "k"), PAPER_T)
        assert spec.flow("A").tensor_name == "A"
        with pytest.raises(KeyError):
            spec.flow("Z")

    def test_signature_distinguishes_directions(self):
        gemm = workloads.gemm(4, 4, 4)
        s1 = analyze(gemm, ("m", "n", "k"), PAPER_T)
        s2 = analyze(gemm, ("m", "n", "k"), STT([[1, 0, 0], [0, 1, 0], [1, -1, 1]]))
        assert s1.signature() != s2.signature()

    def test_letters_order_inputs_then_output(self):
        mt = workloads.mttkrp(4, 4, 4, 4)
        spec = analyze(mt, ("i", "j", "k"), IDENTITY)
        assert len(spec.letters) == 4
        assert spec.flows[-1].tensor_name == "D"


@given(
    st.sampled_from(["gemm", "batched_gemv"]),
    st.lists(st.lists(st.integers(-1, 1), min_size=3, max_size=3), min_size=3, max_size=3)
    .map(lambda rows: tuple(tuple(r) for r in rows))
    .filter(lambda m: linalg.determinant(m) != 0),
)
@settings(max_examples=100, deadline=None)
def test_property_every_valid_stt_classifies_all_tensors(workload_name, t_matrix):
    """Any full-rank STT yields a complete classification (no crashes, one
    dataflow per tensor, letters drawn from the paper's alphabet)."""
    stmt = workloads.by_name(workload_name, m=4, n=4, k=4)
    spec = analyze(stmt, ("m", "n", "k"), STT(t_matrix))
    assert len(spec.flows) == len(stmt.accesses)
    assert set(spec.letters) <= set("STMUB")
