"""Unit + property tests for reuse subspace analysis (paper Eq. 2-3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import linalg
from repro.core.reuse import ReuseSpace, orient, reuse_space
from repro.core.stt import STT
from repro.ir import workloads

IDENTITY = STT([[1, 0, 0], [0, 1, 0], [0, 0, 1]])
PAPER_T = STT([[1, 0, 0], [0, 1, 0], [1, 1, 1]])


class TestOrient:
    def test_positive_dt_kept(self):
        assert orient((1, 0, 2)) == (1, 0, 2)

    def test_negative_dt_flipped(self):
        assert orient((1, 0, -2)) == (-1, 0, 2)

    def test_zero_dt_first_nonzero_positive(self):
        assert orient((-1, 1, 0)) == (1, -1, 0)
        assert orient((0, -2, 0)) == (0, 2, 0)

    def test_zero_vector(self):
        assert orient((0, 0, 0)) == (0, 0, 0)

    def test_magnitude_preserved(self):
        """orient must NOT reduce (0,2,2) to (0,1,1): lattice steps matter."""
        assert orient((0, 2, 2)) == (0, 2, 2)
        assert orient((0, -2, -2)) == (0, 2, 2)


class TestPaperExample:
    def test_gemm_a_systolic_direction(self):
        """Paper §IV end: tensor A of GEMM under Fig.1(b) STT has reuse
        direction (dp, dt) = (0, 1, 1): systolic, vertical."""
        gemm = workloads.gemm(4, 4, 4)
        a_sub = gemm.access("A").restrict(("m", "n", "k"))
        rs = reuse_space(a_sub, PAPER_T)
        assert rs.dim == 1
        assert rs.basis == ((0, 1, 1),)

    def test_gemm_c_stationary(self):
        gemm = workloads.gemm(4, 4, 4)
        c_sub = gemm.access("C").restrict(("m", "n", "k"))
        rs = reuse_space(c_sub, PAPER_T)
        assert rs.basis == ((0, 0, 1),)


class TestReuseSpace:
    def test_unicast_has_empty_basis(self):
        bg = workloads.batched_gemv(4, 4, 4)
        a_sub = bg.access("A").restrict(("m", "n", "k"))
        rs = reuse_space(a_sub, IDENTITY)
        assert rs.dim == 0
        assert not rs.contains_time_axis()

    def test_dim2_for_rank1_access(self):
        ttmc = workloads.ttmc(4, 4, 4, 4, 4)
        b_sub = ttmc.access("B").restrict(("i", "j", "k"))  # B[l,j]: only j selected
        rs = reuse_space(b_sub, IDENTITY)
        assert rs.dim == 2

    def test_dim3_for_zero_access(self):
        conv = workloads.conv2d(k=4, c=4, y=4, x=4, p=3, q=3)
        c_sub = conv.access("C").restrict(("c", "p", "q"))  # output untouched
        rs = reuse_space(c_sub, IDENTITY)
        assert rs.dim == 3
        assert rs.contains_time_axis()

    def test_lattice_step_not_reduced(self):
        """T mapping a primitive direction to (0,2,2) must keep the step."""
        stt = STT([[1, 0, 0], [0, 1, 1], [0, 1, 1 + 1]])  # T @ (0,1,0) = (0,1,1)... craft below
        # Use T such that T @ d is non-primitive: T=[[1,0,0],[0,1,1],[1,1,1]], d=(0,1,-1)?
        stt = STT([[1, 0, 0], [0, 2, 0], [0, 0, 1]])
        # access A[m,k] over (m,n,k): reuse dir (0,1,0); T @ (0,1,0) = (0,2,0)
        rs = reuse_space(((1, 0, 0), (0, 0, 1)), stt)
        assert rs.basis == ((0, 2, 0),)

    def test_iter_basis_orientation_consistent(self):
        """One +1 step along iter_basis[i] must move by basis[i] in space-time."""
        gemm = workloads.gemm(4, 4, 4)
        for sel in [("m", "n", "k"), ("n", "m", "k"), ("k", "m", "n")]:
            for t_rows in [
                [[1, 0, 0], [0, 1, 0], [1, 1, 1]],
                [[0, 1, 0], [0, 0, 1], [1, 1, 1]],
                [[1, 0, 1], [0, 1, 0], [0, 1, 1]],
            ]:
                stt = STT(t_rows)
                for acc_name in ("A", "B", "C"):
                    sub = gemm.access(acc_name).restrict(sel)
                    rs = reuse_space(sub, stt)
                    for it_dir, st_dir in zip(rs.iter_basis, rs.basis):
                        assert tuple(linalg.mat_vec(stt.matrix, it_dir)) == st_dir

    def test_reuse_direction_preserves_tensor_index(self):
        """Walking along an iteration reuse direction touches the same element."""
        gemm = workloads.gemm(8, 8, 8)
        sel = ("m", "n", "k")
        acc = gemm.access("A")
        sub = acc.restrict(sel)
        rs = reuse_space(sub, PAPER_T)
        base = (2, 3, 1)
        for it_dir in rs.iter_basis:
            moved = tuple(b + d for b, d in zip(base, it_dir))
            idx0 = tuple(sum(r * x for r, x in zip(row, base)) for row in sub)
            idx1 = tuple(sum(r * x for r, x in zip(row, moved)) for row in sub)
            assert idx0 == idx1

    def test_wrong_column_count_rejected(self):
        with pytest.raises(ValueError):
            reuse_space(((1, 0),), IDENTITY)

    def test_basis_iter_basis_pairing_enforced(self):
        with pytest.raises(ValueError):
            ReuseSpace(basis=((0, 0, 1),), iter_basis=())


@given(
    st.lists(st.lists(st.integers(-2, 2), min_size=3, max_size=3), min_size=1, max_size=3),
    st.lists(st.lists(st.integers(-2, 2), min_size=3, max_size=3), min_size=3, max_size=3)
    .map(lambda rows: tuple(tuple(r) for r in rows))
    .filter(lambda m: linalg.determinant(m) != 0),
)
@settings(max_examples=150)
def test_property_reuse_dim_equals_nullity(access_rows, t_matrix):
    """dim(reuse space) == 3 - rank(restricted access matrix)."""
    stt = STT(t_matrix)
    rs = reuse_space(access_rows, stt)
    assert rs.dim == 3 - linalg.rank(access_rows)


@given(
    st.lists(st.lists(st.integers(-2, 2), min_size=3, max_size=3), min_size=1, max_size=3),
    st.lists(st.lists(st.integers(-2, 2), min_size=3, max_size=3), min_size=3, max_size=3)
    .map(lambda rows: tuple(tuple(r) for r in rows))
    .filter(lambda m: linalg.determinant(m) != 0),
)
@settings(max_examples=150)
def test_property_basis_in_kernel_of_access(access_rows, t_matrix):
    """Every iteration-space reuse direction is in the access-matrix kernel."""
    stt = STT(t_matrix)
    rs = reuse_space(access_rows, stt)
    for it_dir in rs.iter_basis:
        image = linalg.mat_vec(linalg.as_matrix(access_rows), it_dir)
        assert all(v == 0 for v in image)
