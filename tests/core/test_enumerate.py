"""Tests for design-space enumeration and canonicalization."""


from repro.core.dataflow import DataflowType
from repro.core.enumerate import (
    canonical_signature,
    enumerate_designs,
    enumerate_specs,
    is_realizable,
    loop_selections,
)
from repro.core.naming import spec_from_name
from repro.core.stt import STT
from repro.core.dataflow import analyze
from repro.ir import workloads

ONE_D = frozenset(
    {
        DataflowType.UNICAST,
        DataflowType.STATIONARY,
        DataflowType.SYSTOLIC,
        DataflowType.MULTICAST,
    }
)


class TestLoopSelections:
    def test_gemm_all_permutations_valid(self):
        gemm = workloads.gemm(4, 4, 4)
        sels = list(loop_selections(gemm))
        assert len(sels) == 6  # 3! orderings, all cover every tensor

    def test_conv_has_many_selections(self):
        conv = workloads.conv2d(k=4, c=4, y=4, x=4, p=2, q=2)
        sels = list(loop_selections(conv))
        # 6 loops -> 120 ordered triples; all cover every tensor here.
        assert len(sels) > 50
        assert ("k", "c", "x") in sels


class TestEnumerateSpecs:
    def test_dedupe_by_signature(self):
        gemm = workloads.gemm(4, 4, 4)
        specs = enumerate_specs(gemm, ("m", "n", "k"), limit=50)
        sigs = [s.signature() for s in specs]
        assert len(sigs) == len(set(sigs))

    def test_allowed_types_filter(self):
        gemm = workloads.gemm(4, 4, 4)
        specs = enumerate_specs(gemm, ("m", "n", "k"), allowed_types=ONE_D, limit=100)
        for s in specs:
            assert all(fl.kind in ONE_D for fl in s.flows)

    def test_realizable_filter(self):
        gemm = workloads.gemm(4, 4, 4)
        specs = enumerate_specs(gemm, ("m", "n", "k"), realizable_only=True, limit=100)
        for s in specs:
            assert is_realizable(s)

    def test_limit(self):
        gemm = workloads.gemm(4, 4, 4)
        specs = enumerate_specs(gemm, ("m", "n", "k"), limit=7)
        assert len(specs) == 7


class TestRealizability:
    def test_neighbour_systolic_ok(self):
        gemm = workloads.gemm(4, 4, 4)
        spec = spec_from_name(gemm, "MNK-SST")
        assert is_realizable(spec)

    def test_long_jump_rejected(self):
        gemm = workloads.gemm(4, 4, 4)
        stt = STT([[1, 0, 0], [0, 2, 0], [1, 1, 1]])  # B reuse step (2, ...)
        spec = analyze(gemm, ("m", "n", "k"), stt)
        steps = [v for fl in spec.flows for vec in fl.reuse.basis for v in vec[:2]]
        assert any(abs(v) > 1 for v in steps)
        assert not is_realizable(spec)


class TestCanonicalSignature:
    def test_mirror_symmetric_designs_collapse(self):
        gemm = workloads.gemm(4, 4, 4)
        # Output stationary with A flowing down vs A flowing right: the two
        # specs are transposes of each other.
        s1 = analyze(gemm, ("m", "n", "k"), STT([[1, 0, 0], [0, 1, 0], [1, 1, 1]]))
        s2 = analyze(gemm, ("m", "n", "k"), STT([[0, 1, 0], [1, 0, 0], [1, 1, 1]]))
        assert s1.signature() != s2.signature()
        assert canonical_signature(s1) == canonical_signature(s2)

    def test_direction_flip_collapses(self):
        gemm = workloads.gemm(4, 4, 4)
        s1 = analyze(gemm, ("m", "n", "k"), STT([[1, 0, 0], [0, 1, 0], [1, 1, 1]]))
        s2 = analyze(gemm, ("m", "n", "k"), STT([[-1, 0, 0], [0, 1, 0], [1, 1, 1]]))
        assert canonical_signature(s1) == canonical_signature(s2)

    def test_different_dataflows_stay_distinct(self):
        gemm = workloads.gemm(4, 4, 4)
        os = spec_from_name(gemm, "MNK-SST")
        ws = spec_from_name(gemm, "MNK-STS")
        assert canonical_signature(os) != canonical_signature(ws)


class TestDesignSpaceSweeps:
    """Paper §VI-B reports 148 GEMM / 33 Depthwise synthesized designs; our
    canonical realizable sweeps land in the same order of magnitude."""

    def test_gemm_design_count_magnitude(self):
        gemm = workloads.gemm(16, 16, 16)
        ds = enumerate_designs(gemm, realizable_only=True, canonical=True)
        assert 100 <= len(ds) <= 300

    def test_gemm_covers_all_fig5_classes(self):
        gemm = workloads.gemm(16, 16, 16)
        ds = enumerate_designs(gemm, realizable_only=True, canonical=True)
        hist = ds.letter_histogram()
        for letters in ["SST", "STS", "TSS", "MTM", "MMT", "MST", "SSM"]:
            assert letters in hist, f"missing {letters}"

    def test_gemm_never_unicast(self):
        """Every GEMM tensor has rank-2 access over (m,n,k): unicast (and any
        2-D reuse) is impossible — the histogram has only S/T/M letters."""
        gemm = workloads.gemm(16, 16, 16)
        ds = enumerate_designs(gemm, realizable_only=True, canonical=True)
        assert all(set(k) <= set("STM") for k in ds.letter_histogram())

    def test_depthwise_has_diagonal_multicast_designs(self):
        """Eyeriss-style all-multicast designs exist for Depthwise-Conv
        (paper: KPX-MMM / XYP-MMM perform best)."""
        dw = workloads.depthwise_conv(k=8, y=8, x=8, p=3, q=3)
        ds = enumerate_designs(
            dw, realizable_only=True, canonical=True, allowed_types=ONE_D
        )
        assert len(ds.by_letters("MMM")) > 0

    def test_by_letters_and_histogram_consistent(self):
        gemm = workloads.gemm(8, 8, 8)
        ds = enumerate_designs(
            gemm, selections=[("m", "n", "k")], realizable_only=True, canonical=True
        )
        hist = ds.letter_histogram()
        assert sum(hist.values()) == len(ds)
        for letters, count in hist.items():
            assert len(ds.by_letters(letters)) == count
