"""Unit + property tests for Space-Time Transformation matrices."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import linalg
from repro.core.stt import STT


def full_rank_matrices():
    return (
        st.lists(st.lists(st.integers(-2, 2), min_size=3, max_size=3), min_size=3, max_size=3)
        .map(lambda rows: tuple(tuple(r) for r in rows))
        .filter(lambda m: linalg.determinant(m) != 0)
    )


class TestConstruction:
    def test_paper_figure1_example(self):
        """Paper Fig. 1(b): T=[[1,0,0],[0,1,0],[1,1,1]], x=(1,2,3) -> PE (1,2), cycle 6."""
        stt = STT([[1, 0, 0], [0, 1, 0], [1, 1, 1]])
        space, time = stt.apply((1, 2, 3))
        assert space == (1, 2)
        assert time == 6

    def test_singular_rejected(self):
        with pytest.raises(ValueError):
            STT([[1, 0, 0], [0, 1, 0], [1, 1, 0]])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            STT([[1, 0], [0, 1]])
        with pytest.raises(ValueError):
            STT([[1, 0, 0], [0, 1, 0]])

    def test_from_rows(self):
        stt = STT.from_rows((1, 0, 0), (0, 1, 0), (0, 0, 1))
        assert stt.space_rows == ((1, 0, 0), (0, 1, 0))
        assert stt.time_row == (0, 0, 1)

    def test_equality_and_hash(self):
        a = STT([[1, 0, 0], [0, 1, 0], [0, 0, 1]])
        b = STT([[1, 0, 0], [0, 1, 0], [0, 0, 1]])
        assert a == b
        assert hash(a) == hash(b)


class TestMapping:
    def test_identity_mapping(self):
        stt = STT([[1, 0, 0], [0, 1, 0], [0, 0, 1]])
        assert stt.apply((3, 4, 5)) == ((3, 4), 5)
        assert stt.space_of((3, 4, 5)) == (3, 4)
        assert stt.time_of((3, 4, 5)) == 5

    def test_unapply_roundtrip(self):
        stt = STT([[1, 0, 0], [0, 1, 0], [1, 1, 1]])
        point = (2, 3, 4)
        space, time = stt.apply(point)
        recovered = stt.unapply(space, time)
        assert tuple(int(v) for v in recovered) == point

    def test_iterates(self):
        stt = STT([[2, 0, 0], [0, 1, 0], [0, 0, 1]])
        # space (1, 0) time 0 -> x1 = 1/2, not integral
        assert not stt.iterates((1, 0), 0)
        assert stt.iterates((2, 0), 0)

    def test_spacetime_direction(self):
        stt = STT([[1, 0, 0], [0, 1, 0], [1, 1, 1]])
        assert stt.to_spacetime_direction((0, 1, 0)) == (0, 1, 1)

    @given(full_rank_matrices(), st.tuples(st.integers(-8, 8), st.integers(-8, 8), st.integers(-8, 8)))
    @settings(max_examples=200)
    def test_bijectivity_roundtrip(self, matrix, point):
        """Full rank <=> one-to-one mapping (paper §II requirement)."""
        stt = STT(matrix)
        space, time = stt.apply(point)
        recovered = stt.unapply(space, time)
        assert tuple(recovered) == tuple(point)
        assert stt.iterates(space, time)

    @given(full_rank_matrices())
    @settings(max_examples=100)
    def test_distinct_points_never_collide(self, matrix):
        stt = STT(matrix)
        images = set()
        for x1 in range(3):
            for x2 in range(3):
                for x3 in range(3):
                    images.add(stt.apply((x1, x2, x3)))
        assert len(images) == 27
