"""Unit + property tests for the exact integer linear algebra kernel."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import linalg

MAT3 = st.lists(
    st.lists(st.integers(min_value=-5, max_value=5), min_size=3, max_size=3),
    min_size=3,
    max_size=3,
)


class TestBasics:
    def test_as_matrix_rejects_ragged(self):
        with pytest.raises(ValueError):
            linalg.as_matrix([[1, 2], [3]])
        with pytest.raises(ValueError):
            linalg.as_matrix([])

    def test_identity(self):
        assert linalg.identity(2) == ((1, 0), (0, 1))

    def test_transpose(self):
        assert linalg.transpose([[1, 2, 3], [4, 5, 6]]) == ((1, 4), (2, 5), (3, 6))

    def test_mat_mul(self):
        a = ((1, 2), (3, 4))
        b = ((5, 6), (7, 8))
        assert linalg.mat_mul(a, b) == ((19, 22), (43, 50))

    def test_mat_mul_dim_mismatch(self):
        with pytest.raises(ValueError):
            linalg.mat_mul(((1, 2),), ((1, 2),))

    def test_mat_vec(self):
        assert linalg.mat_vec(((1, 0, 0), (0, 1, 0), (1, 1, 1)), (1, 2, 3)) == (1, 2, 6)


class TestDeterminant:
    def test_known_values(self):
        assert linalg.determinant(((1, 0), (0, 1))) == 1
        assert linalg.determinant(((2, 0), (0, 3))) == 6
        assert linalg.determinant(((1, 2), (2, 4))) == 0
        assert linalg.determinant(((0, 1, 0), (1, 0, 0), (0, 0, 1))) == -1

    def test_paper_stt_matrix(self):
        assert linalg.determinant(((1, 0, 0), (0, 1, 0), (1, 1, 1))) == 1

    def test_zero_pivot_with_swap(self):
        # Needs a row swap in Bareiss elimination.
        assert linalg.determinant(((0, 1), (1, 0))) == -1
        assert linalg.determinant(((0, 0, 1), (0, 1, 0), (1, 0, 0))) == -1

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            linalg.determinant(((1, 2, 3), (4, 5, 6)))

    @given(MAT3)
    @settings(max_examples=200)
    def test_det_transpose_invariant(self, rows):
        m = linalg.as_matrix(rows)
        assert linalg.determinant(m) == linalg.determinant(linalg.transpose(m))

    @given(MAT3, MAT3)
    @settings(max_examples=100)
    def test_det_multiplicative(self, ra, rb):
        a, b = linalg.as_matrix(ra), linalg.as_matrix(rb)
        assert linalg.determinant(linalg.mat_mul(a, b)) == linalg.determinant(
            a
        ) * linalg.determinant(b)


class TestRankAndNullspace:
    def test_rank_full(self):
        assert linalg.rank(((1, 0, 0), (0, 1, 0), (0, 0, 1))) == 3

    def test_rank_deficient(self):
        assert linalg.rank(((1, 2, 3), (2, 4, 6))) == 1
        assert linalg.rank(((0, 0), (0, 0))) == 0

    def test_rank_rectangular(self):
        assert linalg.rank(((1, 0, 0), (0, 0, 1))) == 2

    def test_nullspace_gemm_a(self):
        # A[m,k] access over (m,n,k): reuse along n.
        assert linalg.nullspace(((1, 0, 0), (0, 0, 1))) == ((0, 1, 0),)

    def test_nullspace_full_rank_is_empty(self):
        assert linalg.nullspace(((1, 0), (0, 1))) == ()

    def test_nullspace_zero_matrix(self):
        basis = linalg.nullspace(((0, 0, 0),))
        assert len(basis) == 3

    def test_nullspace_conv_window(self):
        # row y+p over (y, p): reuse direction (1, -1).
        assert linalg.nullspace(((1, 1),)) == ((1, -1),)

    @given(st.lists(st.lists(st.integers(-4, 4), min_size=3, max_size=3), min_size=1, max_size=3))
    @settings(max_examples=200)
    def test_nullspace_vectors_are_in_kernel(self, rows):
        m = linalg.as_matrix(rows)
        for vec in linalg.nullspace(m):
            assert all(v == 0 for v in linalg.mat_vec(m, vec))

    @given(st.lists(st.lists(st.integers(-4, 4), min_size=3, max_size=3), min_size=1, max_size=3))
    @settings(max_examples=200)
    def test_rank_nullity_theorem(self, rows):
        m = linalg.as_matrix(rows)
        assert linalg.rank(m) + len(linalg.nullspace(m)) == 3


class TestInverse:
    def test_identity_inverse(self):
        inv = linalg.inverse(((1, 0), (0, 1)))
        assert inv == ((Fraction(1), Fraction(0)), (Fraction(0), Fraction(1)))

    def test_known_inverse(self):
        inv = linalg.inverse(((2, 0), (0, 4)))
        assert inv == ((Fraction(1, 2), Fraction(0)), (Fraction(0), Fraction(1, 4)))

    def test_singular_rejected(self):
        with pytest.raises(ValueError):
            linalg.inverse(((1, 2), (2, 4)))

    @given(MAT3)
    @settings(max_examples=200)
    def test_inverse_roundtrip(self, rows):
        m = linalg.as_matrix(rows)
        if linalg.determinant(m) == 0:
            return
        prod = linalg.mat_mul(m, linalg.inverse(m))
        assert prod == tuple(
            tuple(Fraction(1) if r == c else Fraction(0) for c in range(3)) for r in range(3)
        )

    def test_solve(self):
        x = linalg.solve(((1, 0, 0), (0, 1, 0), (1, 1, 1)), (1, 2, 6))
        assert x == (Fraction(1), Fraction(2), Fraction(3))


class TestPrimitive:
    def test_scales_down(self):
        assert linalg.primitive((2, 4, 6)) == (1, 2, 3)

    def test_sign_normalization(self):
        assert linalg.primitive((-1, 2)) == (1, -2)
        assert linalg.primitive((0, -3)) == (0, 1)

    def test_zero_vector(self):
        assert linalg.primitive((0, 0, 0)) == (0, 0, 0)

    def test_fractions(self):
        assert linalg.primitive((Fraction(1, 2), Fraction(1, 3))) == (3, 2)

    @given(st.lists(st.integers(-20, 20), min_size=1, max_size=4))
    @settings(max_examples=200)
    def test_primitive_idempotent(self, vec):
        p = linalg.primitive(vec)
        assert linalg.primitive(p) == p
