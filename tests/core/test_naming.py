"""Tests for the MNK-SST naming scheme and name-driven STT search."""

import pytest

from repro.core import naming
from repro.core.dataflow import DataflowType
from repro.ir import workloads


class TestParseName:
    def test_basic(self):
        selected, letters = naming.parse_name("MNK-SST")
        assert selected == ("m", "n", "k")
        assert letters == "SST"

    def test_lowercase_accepted(self):
        selected, letters = naming.parse_name("mnk-sst")
        assert selected == ("m", "n", "k")
        assert letters == "SST"

    def test_four_letter_tensors(self):
        selected, letters = naming.parse_name("IJK-BBBU")
        assert selected == ("i", "j", "k")
        assert letters == "BBBU"

    def test_missing_dash(self):
        with pytest.raises(ValueError):
            naming.parse_name("MNKSST")

    def test_wrong_loop_count(self):
        with pytest.raises(ValueError):
            naming.parse_name("MN-SST")

    def test_bad_letter(self):
        with pytest.raises(ValueError):
            naming.parse_name("MNK-SSX")


class TestSpecFromName:
    """Every named dataflow the paper text discusses must resolve."""

    def test_gemm_well_known(self):
        gemm = workloads.gemm(8, 8, 8)
        for label, name in naming.KNOWN_GEMM_DATAFLOWS.items():
            spec = naming.spec_from_name(gemm, name)
            assert spec.name == name, label

    def test_gemm_fig5_names(self):
        gemm = workloads.gemm(8, 8, 8)
        for name in [
            "MNK-MTM", "MNK-MSM", "MNK-STM", "MNK-MMT", "MNK-MST",
            "MNK-SST", "MNK-TSS", "MNK-MMS", "MNK-SSM",
        ]:
            spec = naming.spec_from_name(gemm, name)
            assert spec.letters == name.split("-")[1]

    def test_batched_gemv_unicast_only_a(self):
        """Paper §VI-A: Batched-GEMV can only use unicast for tensor A."""
        bg = workloads.batched_gemv(8, 8, 8)
        with pytest.raises(LookupError):
            naming.spec_from_name(bg, "MNK-SST")
        spec = naming.spec_from_name(bg, "MNK-UST")
        assert spec.flow("A").kind is DataflowType.UNICAST

    def test_conv_output_and_weight_stationary(self):
        conv = workloads.conv2d(k=8, c=8, y=8, x=8, p=3, q=3)
        os = naming.spec_from_name(conv, "KCX-SST")
        assert os.output_flow.kind is DataflowType.STATIONARY
        ws = naming.spec_from_name(conv, "KCX-STS")
        assert ws.flow("B").kind is DataflowType.STATIONARY

    def test_conv_cpq_uub_full_reuse_output(self):
        conv = workloads.conv2d(k=8, c=8, y=8, x=8, p=3, q=3)
        spec = naming.spec_from_name(conv, "CPQ-UUB")
        assert spec.output_flow.kind is DataflowType.FULL_REUSE

    def test_ttmc_unicast_output(self):
        ttmc = workloads.ttmc(4, 4, 4, 4, 4)
        spec = naming.spec_from_name(ttmc, "IJK-BBBU")
        assert spec.output_flow.kind is DataflowType.UNICAST
        assert all(fl.kind.reuse_dim >= 2 for fl in spec.input_flows)

    def test_mttkrp_names(self):
        mt = workloads.mttkrp(4, 4, 4, 4)
        spec = naming.spec_from_name(mt, "IKL-UBBB")
        assert spec.flow("A").kind is DataflowType.UNICAST
        spec = naming.spec_from_name(mt, "IJK-SSBT")
        assert spec.output_flow.kind is DataflowType.STATIONARY

    def test_lenient_letter_matching(self):
        """Paper's XYP-STM labels a multicast+stationary weight as T."""
        conv = workloads.conv2d(k=8, c=8, y=8, x=8, p=3, q=3)
        spec = naming.spec_from_name(conv, "XYP-STM")
        assert spec.flow("B").kind in (
            DataflowType.STATIONARY,
            DataflowType.MULTICAST_STATIONARY,
        )

    def test_letter_count_mismatch(self):
        gemm = workloads.gemm(4, 4, 4)
        with pytest.raises(ValueError):
            naming.spec_from_name(gemm, "MNK-SSST")

    def test_infeasible_raises_lookup_error(self):
        gemm = workloads.gemm(4, 4, 4)
        with pytest.raises(LookupError):
            naming.spec_from_name(gemm, "MNK-UUU")

    def test_search_returns_simplest_stt(self):
        """The returned STT should be simple (small entries)."""
        gemm = workloads.gemm(4, 4, 4)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        total = sum(abs(v) for row in spec.stt.matrix for v in row)
        assert total <= 5


class TestSttCandidates:
    def test_all_full_rank(self):
        from repro.core import linalg

        count = 0
        for stt in naming.stt_candidates(1):
            assert linalg.determinant(stt.matrix) != 0
            count += 1
            if count >= 500:
                break

    def test_complexity_ordering(self):
        stream = naming.stt_candidates(1)
        first = next(stream)
        # The very first candidates are permutation-like matrices.
        total = sum(abs(v) for row in first.matrix for v in row)
        assert total == 3
