"""End-to-end functional validation: generated hardware vs numpy reference.

These are the repo's strongest tests — a pass certifies dataflow analysis,
template selection, interconnect, controller phasing, schedules and the
simulator simultaneously, for every dataflow class of paper Table I.
"""

import numpy as np
import pytest

from repro.core import naming
from repro.core.dataflow import DataflowType
from repro.ir import workloads
from repro.sim.harness import FunctionalHarness, run_functional

GEMM_DATAFLOWS = [
    "MNK-SST",  # output stationary (paper [16])
    "MNK-STS",  # weight stationary (TPU [9])
    "MNK-TSS",  # input stationary
    "MNK-SSS",  # fully systolic
    "MNK-MTM",  # multicast + reduction tree
    "MNK-MMT",  # double multicast, output stationary
    "MNK-MST",
    "MNK-MSS",
    "MNK-SSM",
    "MNK-SMS",
    "MNK-TMS",
    "MNK-MSM",
    "MNK-STM",
]


@pytest.mark.parametrize("name", GEMM_DATAFLOWS)
def test_gemm_dataflows(name):
    gemm = workloads.gemm(4, 4, 6)
    spec = naming.spec_from_name(gemm, name)
    run_functional(spec, rows=4, cols=4)


BATCHED_GEMV_DATAFLOWS = ["MNK-UST", "MNK-UTS", "MNK-USS", "MNK-UMM", "MNK-UMT", "MNK-UMS"]


@pytest.mark.parametrize("name", BATCHED_GEMV_DATAFLOWS)
def test_batched_gemv_dataflows(name):
    bg = workloads.batched_gemv(4, 4, 4)
    spec = naming.spec_from_name(bg, name)
    assert spec.flow("A").kind is DataflowType.UNICAST
    run_functional(spec, rows=4, cols=4)


CONV_DATAFLOWS = [
    "KCX-SST",  # output-stationary systolic (paper §VI)
    "KCX-STS",  # weight-stationary systolic
    "KCX-STM",
    "XPQ-MMT",
    "XYP-MST",
    "KPX-MST",  # ShiDianNao-like
    "KXY-SBU",
    "CPQ-UUB",  # full-reuse output: global reduction tree
]


@pytest.mark.parametrize("name", CONV_DATAFLOWS)
def test_conv2d_dataflows(name):
    conv = workloads.conv2d(k=4, c=4, y=4, x=4, p=3, q=3)
    spec = naming.spec_from_name(conv, name)
    run_functional(spec, rows=4, cols=4)


@pytest.mark.parametrize("name", ["XPQ-MMT", "KQX-MMM", "XYP-STM"])
def test_depthwise_dataflows(name):
    dw = workloads.depthwise_conv(k=4, y=4, x=4, p=3, q=3)
    spec = naming.spec_from_name(dw, name)
    run_functional(spec, rows=4, cols=4)


@pytest.mark.parametrize("name", ["IJK-SSBT", "IKL-UBBB"])
def test_mttkrp_dataflows(name):
    """Three-input-tensor product through the PE compute cell."""
    mt = workloads.mttkrp(3, 4, 4, 3)
    spec = naming.spec_from_name(mt, name)
    run_functional(spec, rows=4, cols=4)


@pytest.mark.parametrize("name", ["IJK-BBBU"])
def test_ttmc_dataflows(name):
    tt = workloads.ttmc(3, 4, 4, 3, 3)
    spec = naming.spec_from_name(tt, name)
    run_functional(spec, rows=4, cols=4)


class TestTiling:
    """Problems larger than the array exercise multi-stage execution."""

    def test_gemm_tiled_space(self):
        gemm = workloads.gemm(8, 8, 4)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        run_functional(spec, rows=4, cols=4)

    def test_gemm_tiled_all_dims(self):
        gemm = workloads.gemm(6, 6, 10)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        run_functional(spec, rows=4, cols=4)  # partial boundary tiles

    def test_gemm_explicit_time_tile(self):
        gemm = workloads.gemm(4, 4, 9)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        run_functional(spec, rows=4, cols=4, tile={"m": 4, "n": 4, "k": 3})

    def test_weight_stationary_tiled(self):
        gemm = workloads.gemm(8, 8, 6)
        spec = naming.spec_from_name(gemm, "MNK-STS")
        run_functional(spec, rows=4, cols=4)

    def test_multicast_tiled(self):
        gemm = workloads.gemm(8, 8, 4)
        spec = naming.spec_from_name(gemm, "MNK-MTM")
        run_functional(spec, rows=4, cols=4)

    def test_conv_sequential_loops(self):
        conv = workloads.conv2d(k=4, c=4, y=3, x=4, p=2, q=2)
        spec = naming.spec_from_name(conv, "KCX-SST")
        run_functional(spec, rows=4, cols=4)


class TestArrayShapes:
    def test_rectangular_array(self):
        gemm = workloads.gemm(2, 6, 4)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        run_functional(spec, rows=2, cols=6)

    def test_tiny_array(self):
        gemm = workloads.gemm(4, 4, 4)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        run_functional(spec, rows=2, cols=2)

    def test_single_row(self):
        gemm = workloads.gemm(1, 4, 4)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        run_functional(spec, rows=1, cols=4)


class TestHarnessProperties:
    def test_deterministic(self):
        gemm = workloads.gemm(4, 4, 4)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        h = FunctionalHarness(spec, 4, 4)
        ins = gemm.random_inputs()
        out1 = h.run(ins)
        out2 = h.run(ins)
        np.testing.assert_array_equal(out1, out2)

    def test_cycles_run_matches_plan(self):
        gemm = workloads.gemm(4, 4, 4)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        h = FunctionalHarness(spec, 4, 4)
        h.check()
        assert h.cycles_run == h.design.plan.total_cycles()

    def test_different_seeds_different_data(self):
        gemm = workloads.gemm(4, 4, 4)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        h = FunctionalHarness(spec, 4, 4)
        h.check(seed=1)
        h.check(seed=2)

    def test_zero_inputs_zero_output(self):
        gemm = workloads.gemm(4, 4, 4)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        h = FunctionalHarness(spec, 4, 4)
        zeros = {
            "A": np.zeros((4, 4), dtype=np.int64),
            "B": np.zeros((4, 4), dtype=np.int64),
        }
        out = h.run(zeros)
        assert not out.any()

    def test_identity_matmul(self):
        gemm = workloads.gemm(4, 4, 4)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        h = FunctionalHarness(spec, 4, 4)
        ident = np.eye(4, dtype=np.int64)
        a = np.arange(16, dtype=np.int64).reshape(4, 4)
        # C = A @ B.T with B = I gives A back
        out = h.run({"A": a, "B": ident})
        np.testing.assert_array_equal(out, a)
