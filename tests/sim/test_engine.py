"""Simulator unit tests on hand-built circuits."""

import pytest

from repro.hw.netlist import Module
from repro.sim.engine import Simulator, _signed


class TestSigned:
    def test_positive(self):
        assert _signed(5, 8) == 5

    def test_negative(self):
        assert _signed(0xFF, 8) == -1
        assert _signed(0x80, 8) == -128

    def test_wraps_input(self):
        assert _signed(256 + 3, 8) == 3


def counter(width=4):
    m = Module("counter")
    ph = m.wire("ph", width)
    q = m.reg(ph, name="cnt")
    one = m.const(1, width)
    nxt = m.add(q, one)
    for cell in m.cells:
        for pin, w in cell.pins.items():
            if w is ph:
                cell.pins[pin] = nxt
    m.output("q", q)
    return m


class TestSimulator:
    def test_combinational_add(self):
        m = Module("m")
        a, b = m.input("a", 8), m.input("b", 8)
        m.output("y", m.add(a, b))
        sim = Simulator(m)
        sim.poke("a", 3)
        sim.poke("b", 4)
        sim.settle()
        assert sim.peek("y") == 7

    def test_signed_multiplication(self):
        m = Module("m")
        a, b = m.input("a", 8), m.input("b", 8)
        m.output("y", m.mul(a, b))
        sim = Simulator(m)
        sim.poke("a", -3)
        sim.poke("b", 5)
        sim.settle()
        assert sim.peek("y") == -15

    def test_add_wraps_at_width(self):
        m = Module("m")
        a, b = m.input("a", 4), m.input("b", 4)
        m.output("y", m.add(a, b))
        sim = Simulator(m)
        sim.poke("a", 7)
        sim.poke("b", 7)
        sim.settle()
        assert sim.peek("y") == -2  # 14 wraps in 4-bit two's complement

    def test_counter_counts(self):
        sim = Simulator(counter())
        values = []
        for _ in range(5):
            sim.settle()
            values.append(sim.peek("q", signed=False))
            sim.clock_edge()
        assert values == [0, 1, 2, 3, 4]

    def test_counter_wraps_at_width(self):
        sim = Simulator(counter(width=2))
        seen = []
        for _ in range(6):
            sim.settle()
            seen.append(sim.peek("q", signed=False))
            sim.clock_edge()
        assert seen == [0, 1, 2, 3, 0, 1]

    def test_register_enable(self):
        m = Module("m")
        d = m.input("d", 8)
        en = m.input("en", 1)
        m.output("q", m.reg(d, en=en))
        sim = Simulator(m)
        sim.poke("d", 9)
        sim.poke("en", 0)
        sim.step()
        assert sim.peek("q") == 0  # enable low: holds init
        sim.poke("en", 1)
        sim.step()
        assert sim.peek("q") == 9

    def test_register_init(self):
        m = Module("m")
        d = m.input("d", 8)
        m.output("q", m.reg(d, init=42))
        sim = Simulator(m)
        sim.settle()
        assert sim.peek("q") == 42

    def test_mux_select(self):
        m = Module("m")
        s = m.input("s", 1)
        a, b = m.input("a", 8), m.input("b", 8)
        m.output("y", m.mux(s, a, b))
        sim = Simulator(m)
        sim.poke("a", 1)
        sim.poke("b", 2)
        sim.poke("s", 1)
        sim.settle()
        assert sim.peek("y") == 1
        sim.poke("s", 0)
        sim.settle()
        assert sim.peek("y") == 2

    def test_unknown_port_raises(self):
        sim = Simulator(counter())
        with pytest.raises(KeyError):
            sim.poke("nope", 1)
        with pytest.raises(KeyError):
            sim.peek("nope")

    def test_dangling_input_reads_zero(self):
        """Array boundaries rely on unconnected inputs being zero."""
        m = Module("m")
        a = m.input("a", 8)
        dangling = m.wire("dangling", 8)
        m.output("y", m.add(a, dangling))
        sim = Simulator(m)
        sim.poke("a", 5)
        sim.settle()
        assert sim.peek("y") == 5

    def test_run_records_traces(self):
        sim = Simulator(counter())
        traces = sim.run({}, cycles=4)
        assert traces["q"] == [0, 1, 2, 3]

    def test_two_phase_semantics(self):
        """All registers sample simultaneously (shift register order-free)."""
        m = Module("m")
        d = m.input("d", 8)
        r1 = m.reg(d, name="r1")
        r2 = m.reg(r1, name="r2")
        m.output("q", r2)
        sim = Simulator(m)
        sim.poke("d", 5)
        sim.step()
        assert sim.peek("q") == 0  # r2 got r1's OLD value
        sim.step()
        assert sim.peek("q") == 5
