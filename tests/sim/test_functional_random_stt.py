"""Property test: ANY realizable full-rank STT yields correct hardware.

This is the strongest property in the repository: pick a random full-rank,
nearest-neighbour STT, generate the accelerator, derive schedules, simulate,
and require bit-exact equality with the loop-nest reference.  It exercises
arbitrary mixes of dataflow classes that no hand-written list would cover.

Dataflows whose idle cycles cannot be zero-gated (all inputs stage-held) are
skipped — the generator rejects them explicitly (see repro.hw.pe).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import linalg
from repro.core.dataflow import DataflowSpec
from repro.core.enumerate import is_realizable
from repro.ir import workloads
from repro.sim.harness import run_functional

STT_MATRICES = (
    st.lists(st.lists(st.integers(-1, 1), min_size=3, max_size=3), min_size=3, max_size=3)
    .map(lambda rows: tuple(tuple(r) for r in rows))
    .filter(lambda m: linalg.determinant(m) != 0)
)


def try_run(statement, selected, matrix, rows=3, cols=3):
    from repro.core.stt import STT

    spec = DataflowSpec(statement, selected, STT(matrix))
    if not is_realizable(spec):
        return "unrealizable"
    try:
        run_functional(spec, rows=rows, cols=cols)
    except NotImplementedError:
        return "all-stationary"  # documented generator limitation
    except ValueError as exc:
        if "does not fit" in str(exc) or "footprint" in str(exc):
            return "no-fit"
        raise
    return "ok"


@given(STT_MATRICES)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_stt_gemm_correct(matrix):
    gemm = workloads.gemm(3, 3, 3)
    outcome = try_run(gemm, ("m", "n", "k"), matrix)
    assert outcome in ("ok", "unrealizable", "no-fit", "all-stationary")


@given(STT_MATRICES)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_stt_batched_gemv_correct(matrix):
    bg = workloads.batched_gemv(3, 3, 3)
    outcome = try_run(bg, ("m", "n", "k"), matrix)
    assert outcome in ("ok", "unrealizable", "no-fit", "all-stationary")


@given(STT_MATRICES, st.sampled_from([("i", "j", "k"), ("i", "j", "l"), ("j", "k", "l")]))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_stt_mttkrp_correct(matrix, selected):
    mt = workloads.mttkrp(3, 3, 3, 3)
    outcome = try_run(mt, selected, matrix)
    assert outcome in ("ok", "unrealizable", "no-fit", "all-stationary")


def test_at_least_some_random_cases_execute():
    """Guard against the property tests passing by skipping everything."""
    gemm = workloads.gemm(3, 3, 3)
    executed = 0
    from repro.core.naming import stt_candidates

    for stt in stt_candidates(1):
        outcome = try_run(gemm, ("m", "n", "k"), stt.matrix)
        if outcome == "ok":
            executed += 1
        if executed >= 5:
            break
    assert executed >= 5
