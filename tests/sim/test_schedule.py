"""Tests for STT-derived injection/collection schedules."""

import pytest

from repro.core import naming
from repro.hw.generator import AcceleratorGenerator
from repro.hw.memory import Scratchpad
from repro.sim.schedule import ScheduleConflict, StageSchedule, build_stage_schedule
from repro.hw.plan import Stage
from repro.ir import workloads


def make(name="MNK-SST", rows=4, cols=4, m=4, n=4, k=4):
    gemm = workloads.gemm(m, n, k)
    spec = naming.spec_from_name(gemm, name)
    design = AcceleratorGenerator(spec, rows, cols).generate()
    sp = Scratchpad(spec, gemm.random_inputs())
    return design, sp


class TestStageSchedule:
    def test_inject_conflict_detection(self):
        sched = StageSchedule(stage=Stage(0, {}, {}))
        sched.inject(3, "a_in_r0c0", 7)
        sched.inject(3, "a_in_r0c0", 7)  # same value: fine
        with pytest.raises(ScheduleConflict):
            sched.inject(3, "a_in_r0c0", 8)

    def test_negative_cycle_rejected(self):
        sched = StageSchedule(stage=Stage(0, {}, {}))
        with pytest.raises(ScheduleConflict):
            sched.inject(-1, "a_in_r0c0", 7)


class TestBuildSchedule:
    def test_injections_within_stage(self):
        design, sp = make()
        stage = next(design.plan.stages())
        sched = build_stage_schedule(design.plan, design.info, sp, stage)
        for cyc in sched.injections:
            assert 0 <= cyc < design.timing.total

    def test_collections_within_stage(self):
        design, sp = make()
        stage = next(design.plan.stages())
        sched = build_stage_schedule(design.plan, design.info, sp, stage)
        assert sched.collections
        for cyc, port, _index in sched.collections:
            assert 0 <= cyc < design.timing.total
            assert port in design.top.outputs

    def test_injection_ports_are_design_inputs(self):
        design, sp = make()
        stage = next(design.plan.stages())
        sched = build_stage_schedule(design.plan, design.info, sp, stage)
        for row in sched.injections.values():
            for port in row:
                assert port in design.top.inputs

    def test_data_ports_complete(self):
        design, sp = make()
        stage = next(design.plan.stages())
        sched = build_stage_schedule(design.plan, design.info, sp, stage)
        control = set(design.info.controls)
        expected = {p for p in design.top.inputs if p not in control}
        assert set(sched.data_ports) == expected

    def test_systolic_injections_only_at_boundary(self):
        design, sp = make("MNK-SST")
        stage = next(design.plan.stages())
        sched = build_stage_schedule(design.plan, design.info, sp, stage)
        a_dir = design.info.tensor("A").sy_space
        grid = design.plan.grid
        entries = {p for p in grid.points() if grid.is_entry(p, a_dir)}
        for row in sched.injections.values():
            for port in row:
                if port.startswith("a_in_"):
                    r, c = port.split("_r")[1].split("c")
                    assert (int(r), int(c)) in entries

    def test_collections_cover_all_outputs(self):
        """Across all stages, every output element is collected (>= once)."""
        design, sp = make("MNK-SST", m=4, n=4, k=4)
        collected = set()
        for stage in design.plan.stages():
            sched = build_stage_schedule(design.plan, design.info, sp, stage)
            for _, _, index in sched.collections:
                collected.add(index)
        assert collected == {(i, j) for i in range(4) for j in range(4)}

    def test_stationary_loads_fill_load_phase(self):
        design, sp = make("MNK-STS")  # B stationary
        stage = next(design.plan.stages())
        sched = build_stage_schedule(design.plan, design.info, sp, stage)
        load_cycles = [c for c in sched.injections if c < design.timing.load_len]
        assert len(load_cycles) == design.timing.load_len
        for cyc in range(design.timing.load_len):
            ports = sched.injections[cyc]
            assert any(p.startswith("b_load_") for p in ports)

    def test_multicast_bus_values_shared(self):
        design, sp = make("MNK-MTM")
        stage = next(design.plan.stages())
        # Reuse consistency is enforced internally; building without a
        # ScheduleConflict is itself the assertion.
        sched = build_stage_schedule(design.plan, design.info, sp, stage)
        bus_injections = [
            (c, p) for c, row in sched.injections.items() for p in row if p.startswith("a_bus")
        ]
        assert bus_injections
