"""CLI smoke tests."""

import re

import pytest

from repro.cli import main


def test_generate_to_file(tmp_path, capsys):
    out = tmp_path / "gemm.v"
    rc = main(
        ["generate", "gemm", "MNK-SST", "--rows", "2", "--cols", "2", "-o", str(out),
         "--extent", "m=4", "--extent", "n=4", "--extent", "k=4"]
    )
    assert rc == 0
    text = out.read_text()
    assert "module pe (" in text
    assert "endmodule" in text


def test_generate_stdout(capsys):
    rc = main(["generate", "gemm", "MNK-SST", "--rows", "2", "--cols", "2",
               "--extent", "m=4", "--extent", "n=4", "--extent", "k=4"])
    assert rc == 0
    assert "module" in capsys.readouterr().out


def test_verify(capsys):
    rc = main(["verify", "gemm", "MNK-SST", "--rows", "2", "--cols", "2",
               "--extent", "m=4", "--extent", "n=4", "--extent", "k=4"])
    assert rc == 0
    assert "matches" in capsys.readouterr().out


def test_evaluate(capsys):
    rc = main(["evaluate", "gemm", "MNK-MTM", "--rows", "16", "--cols", "16"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "performance" in out and "mW" in out


def test_enumerate(capsys):
    rc = main(["enumerate", "gemm", "--extent", "m=8", "--extent", "n=8",
               "--extent", "k=8"])
    assert rc == 0
    assert "distinct realizable designs" in capsys.readouterr().out


def test_explore(tmp_path, capsys):
    cache = tmp_path / "memo.json"
    argv = ["explore", "gemm", "--rows", "8", "--cols", "8", "--top", "3",
            "--extent", "m=64", "--extent", "n=64", "--extent", "k=64",
            "--cache", str(cache)]
    rc = main(argv)
    assert rc == 0
    out = capsys.readouterr().out
    assert "gemm on 8x8" in out
    assert "pareto frontier" in out
    assert cache.exists()
    # warm rerun reuses the memo cache: nothing re-evaluated
    rc = main(argv)
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 evaluated" in out
    assert "space cache hit" in out


def test_explore_multi_workload(capsys):
    rc = main(["explore", "gemm", "batched_gemv", "--rows", "4", "--cols", "4",
               "--one-d", "--top", "2",
               "--extent", "m=16", "--extent", "n=16", "--extent", "k=16"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "gemm on 4x4" in out
    assert "batched_gemv on 4x4" in out


def test_explore_unknown_extent_rejected(capsys):
    rc = main(["explore", "gemm", "--rows", "4", "--cols", "4", "--extent", "mm=2048"])
    assert rc == 2
    assert "mm" in capsys.readouterr().err


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["generate", "nope", "MNK-SST"])


def _shard(path, *, backend):
    """Populate one memo-cache shard via the verify/evaluate front door."""
    from repro.api import LocalSession
    from repro.perf.model import ArrayConfig

    LocalSession(ArrayConfig(rows=2, cols=2), cache=path).evaluate(
        "gemm", "MNK-SST", backend=backend, extents={"m": 4, "n": 4, "k": 4}
    )


class TestCacheCommands:
    """`repro cache merge|compact|stats` end-to-end through main(argv)."""

    def test_stats(self, tmp_path, capsys):
        shard = tmp_path / "a.json"
        _shard(shard, backend="perf")
        assert main(["cache", "stats", str(shard)]) == 0
        out = capsys.readouterr().out
        assert "1 api" in out and str(shard) in out

    def test_stats_missing_file(self, tmp_path, capsys):
        assert main(["cache", "stats", str(tmp_path / "nope.json")]) == 1
        assert "no such cache file" in capsys.readouterr().err

    def test_merge_combines_shards(self, tmp_path, capsys):
        a, b, merged = tmp_path / "a.json", tmp_path / "b.json", tmp_path / "m.json"
        _shard(a, backend="perf")
        _shard(b, backend="cost")
        assert main(["cache", "merge", "-o", str(merged), str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "merged" in out and merged.exists()
        assert main(["cache", "stats", str(merged)]) == 0
        assert "2 api" in capsys.readouterr().out

    def test_merge_rejects_corrupt_shard(self, tmp_path, capsys):
        good, bad = tmp_path / "good.json", tmp_path / "bad.json"
        _shard(good, backend="perf")
        bad.write_text('{"api": {tru')
        merged = tmp_path / "m.json"
        assert main(["cache", "merge", "-o", str(merged), str(good), str(bad)]) == 1
        assert "corrupt" in capsys.readouterr().err
        assert not merged.exists()

    def test_compact_in_place_and_to_output(self, tmp_path, capsys):
        shard = tmp_path / "a.json"
        _shard(shard, backend="perf")
        assert main(["cache", "compact", str(shard)]) == 0
        assert "compacted" in capsys.readouterr().out
        out = tmp_path / "b.json"
        assert main(["cache", "compact", str(shard), "-o", str(out)]) == 0
        capsys.readouterr()
        assert out.exists()
        # the compacted copy is a working cache: stats still parse it
        assert main(["cache", "stats", str(out)]) == 0
        assert "1 api" in capsys.readouterr().out


class TestClientCommands:
    """`repro client ... --url` drives the same cmd_* functions remotely."""

    @pytest.fixture(scope="class")
    def service_url(self):
        from repro.api import LocalSession
        from repro.perf.model import ArrayConfig
        from repro.service import ServiceThread

        with ServiceThread(LocalSession(ArrayConfig(rows=8, cols=8))) as thread:
            yield thread.url

    def test_client_evaluate(self, service_url, capsys):
        rc = main(["client", "evaluate", "gemm", "MNK-MTM", "--rows", "8",
                   "--cols", "8", "--url", service_url])
        assert rc == 0
        out = capsys.readouterr().out
        assert "performance" in out and "mW" in out

    def test_client_verify(self, service_url, capsys):
        rc = main(["client", "verify", "gemm", "MNK-SST", "--rows", "2", "--cols", "2",
                   "--extent", "m=4", "--extent", "n=4", "--extent", "k=4",
                   "--url", service_url])
        assert rc == 0
        assert "matches" in capsys.readouterr().out

    def test_client_explore(self, service_url, capsys):
        rc = main(["client", "explore", "gemm", "--rows", "8", "--cols", "8",
                   "--top", "2", "--extent", "m=64", "--extent", "n=64",
                   "--extent", "k=64", "--url", service_url])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gemm on 8x8" in out and "pareto frontier" in out

    def test_client_stats(self, service_url, capsys):
        rc = main(["client", "stats", "--url", service_url])
        assert rc == 0
        assert service_url in capsys.readouterr().out

    def test_client_tail_job_streams_ndjson(self, service_url, capsys):
        """`repro client tail-job` prints the job's row log as NDJSON lines
        (start/point/failure/end frames) and exits 0 once the job ends."""
        import json

        from repro.service import RemoteSession

        remote = RemoteSession(service_url)
        job = remote.submit_job(
            ["batched_gemv"], one_d_only=True,
            extents={"m": 8, "n": 8, "k": 8}, stream_rows=True,
        )
        remote.close()
        rc = main(["client", "tail-job", job["id"], "--url", service_url])
        assert rc == 0
        captured = capsys.readouterr()
        rows = [json.loads(line) for line in captured.out.splitlines()]
        assert rows[0]["row"] == "start"
        assert rows[-1]["row"] == "end" and rows[-1]["status"] == "done"
        assert any(r["row"] in ("point", "failure") for r in rows)
        assert f"job {job['id']}: done" in captured.err

    def test_client_tail_job_unknown_id(self, service_url, capsys):
        rc = main(["client", "tail-job", "job-424242", "--url", service_url])
        assert rc == 1
        assert "no such job" in capsys.readouterr().err

    def test_client_requires_url(self):
        with pytest.raises(SystemExit):
            main(["client", "evaluate", "gemm", "MNK-SST"])


class TestSweepCommand:
    """`repro sweep --url A --url B` coordinates across several servers."""

    @pytest.fixture(scope="class")
    def fleet_urls(self):
        from repro.api import LocalSession
        from repro.perf.model import ArrayConfig
        from repro.service import ServiceThread

        with ServiceThread(LocalSession(ArrayConfig(rows=8, cols=8))) as a:
            with ServiceThread(LocalSession(ArrayConfig(rows=8, cols=8))) as b:
                yield a.url, b.url

    def test_sweep_over_two_servers(self, fleet_urls, tmp_path, capsys):
        cache = tmp_path / "fold.json"
        rc = main(
            ["sweep", "gemm", "batched_gemv", "--rows", "8", "--cols", "8",
             "--top", "2", "--one-d", "--url", fleet_urls[0],
             "--url", fleet_urls[1], "--cache", str(cache)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "gemm on 8x8" in out and "batched_gemv on 8x8" in out
        assert "pareto frontier" in out
        assert "coordinated 2 item(s) in 2 shard(s) over 2 server(s)" in out
        assert cache.exists()  # remote memo caches folded locally

    def test_sweep_shard_size_and_verbose(self, fleet_urls, capsys):
        """--shard-size groups items per job; --verbose itemizes the report."""
        rc = main(
            ["sweep", "gemm", "batched_gemv", "--rows", "8", "--cols", "8",
             "--top", "2", "--one-d", "--shard-size", "2", "--verbose",
             "--url", fleet_urls[0], "--url", fleet_urls[1]]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "coordinated 2 item(s) in 1 shard(s)" in out
        assert "row(s) streamed" in out

    def test_sweep_verbose_surfaces_reassignment(self, fleet_urls, capsys):
        """A dead fleet member's shards are reassigned loudly under
        --verbose instead of folding silently (the stderr event lines)."""
        rc = main(
            ["sweep", "gemm", "--rows", "8", "--cols", "8", "--one-d",
             "--verbose", "--url", "http://127.0.0.1:9", "--url", fleet_urls[0]]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "[sweep:server_lost]" in err
        # every event line is stamped: wall clock, elapsed, per-event delta
        event_lines = [ln for ln in err.splitlines() if ln.startswith("[sweep:")]
        assert event_lines
        for line in event_lines:
            assert re.search(
                r"^\[sweep:\w+\] \d{2}:\d{2}:\d{2}\.\d{3} "
                r"\+\d+\.\d{3}s Δ\d+\.\d{3}s ",
                line,
            ), line

    def test_sweep_all_servers_dead(self, capsys):
        rc = main(
            ["sweep", "gemm", "--rows", "8", "--cols", "8",
             "--url", "http://127.0.0.1:9"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_sweep_requires_url(self):
        with pytest.raises(SystemExit):
            main(["sweep", "gemm"])
