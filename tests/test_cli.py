"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_generate_to_file(tmp_path, capsys):
    out = tmp_path / "gemm.v"
    rc = main(
        ["generate", "gemm", "MNK-SST", "--rows", "2", "--cols", "2", "-o", str(out),
         "--extent", "m=4", "--extent", "n=4", "--extent", "k=4"]
    )
    assert rc == 0
    text = out.read_text()
    assert "module pe (" in text
    assert "endmodule" in text


def test_generate_stdout(capsys):
    rc = main(["generate", "gemm", "MNK-SST", "--rows", "2", "--cols", "2",
               "--extent", "m=4", "--extent", "n=4", "--extent", "k=4"])
    assert rc == 0
    assert "module" in capsys.readouterr().out


def test_verify(capsys):
    rc = main(["verify", "gemm", "MNK-SST", "--rows", "2", "--cols", "2",
               "--extent", "m=4", "--extent", "n=4", "--extent", "k=4"])
    assert rc == 0
    assert "matches" in capsys.readouterr().out


def test_evaluate(capsys):
    rc = main(["evaluate", "gemm", "MNK-MTM", "--rows", "16", "--cols", "16"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "performance" in out and "mW" in out


def test_enumerate(capsys):
    rc = main(["enumerate", "gemm", "--extent", "m=8", "--extent", "n=8",
               "--extent", "k=8"])
    assert rc == 0
    assert "distinct realizable designs" in capsys.readouterr().out


def test_explore(tmp_path, capsys):
    cache = tmp_path / "memo.json"
    argv = ["explore", "gemm", "--rows", "8", "--cols", "8", "--top", "3",
            "--extent", "m=64", "--extent", "n=64", "--extent", "k=64",
            "--cache", str(cache)]
    rc = main(argv)
    assert rc == 0
    out = capsys.readouterr().out
    assert "gemm on 8x8" in out
    assert "pareto frontier" in out
    assert cache.exists()
    # warm rerun reuses the memo cache: nothing re-evaluated
    rc = main(argv)
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 evaluated" in out
    assert "space cache hit" in out


def test_explore_multi_workload(capsys):
    rc = main(["explore", "gemm", "batched_gemv", "--rows", "4", "--cols", "4",
               "--one-d", "--top", "2",
               "--extent", "m=16", "--extent", "n=16", "--extent", "k=16"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "gemm on 4x4" in out
    assert "batched_gemv on 4x4" in out


def test_explore_unknown_extent_rejected(capsys):
    rc = main(["explore", "gemm", "--rows", "4", "--cols", "4", "--extent", "mm=2048"])
    assert rc == 2
    assert "mm" in capsys.readouterr().err


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["generate", "nope", "MNK-SST"])
