"""Unit tests for iterators and iteration spaces."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.iterspace import Iterator, IterationSpace


class TestIterator:
    def test_basic(self):
        it = Iterator("m", 16)
        assert it.name == "m"
        assert it.extent == 16

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError):
            Iterator("2x", 4)
        with pytest.raises(ValueError):
            Iterator("", 4)

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(ValueError):
            Iterator("m", 0)
        with pytest.raises(ValueError):
            Iterator("m", -3)

    def test_frozen(self):
        it = Iterator("m", 16)
        with pytest.raises(AttributeError):
            it.extent = 8


class TestIterationSpace:
    def test_from_extents_preserves_order(self):
        sp = IterationSpace.from_extents(m=2, n=3, k=4)
        assert sp.names == ("m", "n", "k")
        assert sp.extents == (2, 3, 4)
        assert sp.rank == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            IterationSpace([Iterator("m", 2), Iterator("m", 3)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IterationSpace([])

    def test_position_and_lookup(self):
        sp = IterationSpace.from_extents(m=2, n=3, k=4)
        assert sp.position("n") == 1
        assert sp.positions(("k", "m")) == (2, 0)
        assert sp["k"].extent == 4
        assert "n" in sp
        assert "z" not in sp
        with pytest.raises(KeyError):
            sp.position("z")

    def test_volume(self):
        sp = IterationSpace.from_extents(m=2, n=3, k=4)
        assert sp.volume() == 24

    def test_points_lexicographic(self):
        sp = IterationSpace.from_extents(i=2, j=2)
        assert list(sp.points()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_points_count_matches_volume(self):
        sp = IterationSpace.from_extents(a=3, b=2, c=2)
        assert len(list(sp.points())) == sp.volume()

    def test_select_reorders(self):
        sp = IterationSpace.from_extents(m=2, n=3, k=4)
        sub = sp.select(("k", "m"))
        assert sub.names == ("k", "m")
        assert sub.extents == (4, 2)

    def test_complement_preserves_nest_order(self):
        sp = IterationSpace.from_extents(m=2, n=3, k=4, l=5)
        rest = sp.complement(("k", "m"))
        assert rest.names == ("n", "l")

    def test_complement_of_everything_is_unit(self):
        sp = IterationSpace.from_extents(m=2, n=3)
        rest = sp.complement(("m", "n"))
        assert rest.volume() == 1

    def test_complement_unknown_name(self):
        sp = IterationSpace.from_extents(m=2)
        with pytest.raises(KeyError):
            sp.complement(("z",))

    def test_with_extents_override(self):
        sp = IterationSpace.from_extents(m=2, n=3)
        sp2 = sp.with_extents(n=7)
        assert sp2.extents == (2, 7)
        assert sp.extents == (2, 3)  # original untouched
        with pytest.raises(KeyError):
            sp.with_extents(z=1)

    def test_equality_and_hash(self):
        a = IterationSpace.from_extents(m=2, n=3)
        b = IterationSpace.from_extents(m=2, n=3)
        c = IterationSpace.from_extents(n=3, m=2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c  # order matters

    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4))
    def test_volume_is_product_of_extents(self, extents):
        names = "abcd"
        sp = IterationSpace([Iterator(names[i], e) for i, e in enumerate(extents)])
        prod = 1
        for e in extents:
            prod *= e
        assert sp.volume() == prod
        assert len(list(sp.points())) == prod
