"""Unit tests for tensors and affine access maps."""

import pytest

from repro.ir.iterspace import IterationSpace
from repro.ir.tensor import Tensor, TensorAccess, TensorRole


@pytest.fixture
def gemm_space():
    return IterationSpace.from_extents(m=4, n=5, k=6)


class TestTensor:
    def test_roles(self):
        t = Tensor("C", 2, TensorRole.OUTPUT)
        assert t.is_output
        assert not Tensor("A", 2, TensorRole.INPUT).is_output

    def test_invalid(self):
        with pytest.raises(ValueError):
            Tensor("1bad", 2, TensorRole.INPUT)
        with pytest.raises(ValueError):
            Tensor("A", 0, TensorRole.INPUT)


class TestTensorAccess:
    def test_index_of_gemm_a(self, gemm_space):
        # A[m, k] in GEMM
        acc = TensorAccess(
            Tensor("A", 2, TensorRole.INPUT), gemm_space, [(1, 0, 0), (0, 0, 1)]
        )
        assert acc.index_of((2, 3, 5)) == (2, 5)

    def test_index_of_conv_window(self):
        # A[c, y+p, x+q] pattern, space (c, y, x, p, q)
        sp = IterationSpace.from_extents(c=2, y=4, x=4, p=3, q=3)
        acc = TensorAccess(
            Tensor("A", 3, TensorRole.INPUT),
            sp,
            [(1, 0, 0, 0, 0), (0, 1, 0, 1, 0), (0, 0, 1, 0, 1)],
        )
        assert acc.index_of((1, 2, 3, 1, 2)) == (1, 3, 5)

    def test_row_count_must_match_rank(self, gemm_space):
        with pytest.raises(ValueError):
            TensorAccess(Tensor("A", 2, TensorRole.INPUT), gemm_space, [(1, 0, 0)])

    def test_column_count_must_match_space(self, gemm_space):
        with pytest.raises(ValueError):
            TensorAccess(Tensor("A", 1, TensorRole.INPUT), gemm_space, [(1, 0)])

    def test_restrict_selects_columns(self, gemm_space):
        acc = TensorAccess(
            Tensor("A", 2, TensorRole.INPUT), gemm_space, [(1, 0, 0), (0, 0, 1)]
        )
        # restrict to (k, m): columns swap
        assert acc.restrict(("k", "m")) == ((0, 1), (1, 0))

    def test_shape_simple(self, gemm_space):
        acc = TensorAccess(
            Tensor("A", 2, TensorRole.INPUT), gemm_space, [(1, 0, 0), (0, 0, 1)]
        )
        assert acc.shape() == (4, 6)

    def test_shape_with_window_sum(self):
        sp = IterationSpace.from_extents(y=4, p=3)
        acc = TensorAccess(Tensor("A", 1, TensorRole.INPUT), sp, [(1, 1)])
        # max index = (4-1) + (3-1) = 5 -> size 6
        assert acc.shape() == (6,)
        assert acc.footprint() == 6

    def test_shape_rejects_negative_reach(self):
        sp = IterationSpace.from_extents(y=4)
        acc = TensorAccess(Tensor("A", 1, TensorRole.INPUT), sp, [(-1,)])
        with pytest.raises(ValueError):
            acc.shape()

    def test_equality(self, gemm_space):
        a1 = TensorAccess(Tensor("A", 2, TensorRole.INPUT), gemm_space, [(1, 0, 0), (0, 0, 1)])
        a2 = TensorAccess(Tensor("A", 2, TensorRole.INPUT), gemm_space, [(1, 0, 0), (0, 0, 1)])
        assert a1 == a2
        assert hash(a1) == hash(a2)
