"""Unit tests for the einsum-style statement parser and reference semantics."""

import numpy as np
import pytest

from repro.ir.einsum import Statement, parse_statement
from repro.ir.tensor import TensorRole


class TestParser:
    def test_gemm_roundtrip(self):
        stmt = parse_statement("C[m,n] += A[m,k] * B[n,k]", m=4, n=5, k=6)
        assert stmt.tensor_names == ("A", "B", "C")
        assert stmt.output.tensor.name == "C"
        assert stmt.output.tensor.role is TensorRole.OUTPUT
        assert stmt.access("A").matrix == ((1, 0, 0), (0, 0, 1))
        assert stmt.access("B").matrix == ((0, 1, 0), (0, 0, 1))
        assert stmt.access("C").matrix == ((1, 0, 0), (0, 1, 0))

    def test_conv_window_expression(self):
        stmt = parse_statement(
            "C[k,y,x] += A[c,y+p,x+q] * B[k,c,p,q]", k=2, c=2, y=4, x=4, p=3, q=3
        )
        a = stmt.access("A")
        # space order: k c y x p q
        assert a.matrix == (
            (0, 1, 0, 0, 0, 0),
            (0, 0, 1, 0, 1, 0),
            (0, 0, 0, 1, 0, 1),
        )

    def test_three_input_tensors(self):
        stmt = parse_statement("D[i,j] += A[i,k,l] * B[k,j] * C[l,j]", i=2, j=2, k=2, l=2)
        assert stmt.tensor_names == ("A", "B", "C", "D")
        assert len(stmt.inputs) == 3

    def test_coefficient_in_index(self):
        stmt = parse_statement("C[m] += A[2*m+k]", m=3, k=2)
        assert stmt.access("A").matrix == ((2, 1),)
        assert stmt.access("A").shape() == (6,)

    def test_requires_plus_equals(self):
        with pytest.raises(ValueError):
            parse_statement("C[m] = A[m]", m=3)

    def test_unknown_iterator_rejected(self):
        with pytest.raises(ValueError):
            parse_statement("C[m] += A[z]", m=3)

    def test_unused_iterator_rejected(self):
        with pytest.raises(ValueError):
            parse_statement("C[m] += A[m]", m=3, k=4)

    def test_duplicate_tensor_names_rejected(self):
        with pytest.raises(ValueError):
            parse_statement("A[m] += A[m+k]", m=3, k=2)

    def test_named_statement(self):
        stmt = parse_statement("C[m] += A[m+k]", name="blur", m=3, k=2)
        assert stmt.name == "blur"


class TestReference:
    def test_gemm_matches_numpy(self):
        stmt = parse_statement("C[m,n] += A[m,k] * B[n,k]", m=4, n=5, k=6)
        rng = np.random.default_rng(7)
        ins = stmt.random_inputs(rng)
        expected = ins["A"] @ ins["B"].T
        np.testing.assert_array_equal(stmt.reference(ins), expected)

    def test_conv_matches_scipy_style(self):
        stmt = parse_statement(
            "C[k,y,x] += A[c,y+p,x+q] * B[k,c,p,q]", k=2, c=3, y=4, x=4, p=3, q=3
        )
        ins = stmt.random_inputs()
        got = stmt.reference(ins)
        a, b = ins["A"], ins["B"]
        expected = np.zeros((2, 4, 4), dtype=np.int64)
        for kk in range(2):
            for yy in range(4):
                for xx in range(4):
                    expected[kk, yy, xx] = np.sum(
                        a[:, yy : yy + 3, xx : xx + 3] * b[kk]
                    )
        np.testing.assert_array_equal(got, expected)

    def test_mttkrp_matches_einsum(self):
        stmt = parse_statement("D[i,j] += A[i,k,l] * B[k,j] * C[l,j]", i=3, j=4, k=2, l=2)
        ins = stmt.random_inputs()
        expected = np.einsum("ikl,kj,lj->ij", ins["A"], ins["B"], ins["C"])
        np.testing.assert_array_equal(stmt.reference(ins), expected)

    def test_macs(self):
        stmt = parse_statement("C[m,n] += A[m,k] * B[n,k]", m=4, n=5, k=6)
        assert stmt.macs() == 4 * 5 * 6

    def test_statement_validation(self):
        stmt = parse_statement("C[m,n] += A[m,k] * B[n,k]", m=2, n=2, k=2)
        with pytest.raises(ValueError):
            Statement("bad", stmt.space, stmt.output, [])  # no inputs
        with pytest.raises(ValueError):
            Statement("bad", stmt.space, stmt.inputs[0], stmt.inputs)  # input as output
