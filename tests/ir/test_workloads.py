"""Tests that the Table II workload formulas are encoded faithfully."""

import numpy as np
import pytest

from repro.ir import workloads


class TestTableII:
    """Every workload formula from paper Table II, checked against numpy."""

    def test_gemm(self):
        stmt = workloads.gemm(4, 5, 6)
        ins = stmt.random_inputs()
        np.testing.assert_array_equal(stmt.reference(ins), ins["A"] @ ins["B"].T)

    def test_batched_gemv(self):
        stmt = workloads.batched_gemv(3, 4, 5)
        ins = stmt.random_inputs()
        expected = np.einsum("mkn,mk->mn", ins["A"], ins["B"])
        np.testing.assert_array_equal(stmt.reference(ins), expected)

    def test_conv2d(self):
        stmt = workloads.conv2d(k=2, c=3, y=4, x=4, p=3, q=3)
        ins = stmt.random_inputs()
        expected = np.einsum(
            "cypxq,kcpq->kyx",
            np.lib.stride_tricks.sliding_window_view(ins["A"], (3, 3), axis=(1, 2)).transpose(0, 1, 3, 2, 4),
            ins["B"],
        )
        np.testing.assert_array_equal(stmt.reference(ins), expected)

    def test_depthwise_conv(self):
        stmt = workloads.depthwise_conv(k=3, y=4, x=4, p=3, q=3)
        ins = stmt.random_inputs()
        a, b = ins["A"], ins["B"]
        expected = np.zeros((3, 4, 4), dtype=np.int64)
        for kk in range(3):
            for yy in range(4):
                for xx in range(4):
                    expected[kk, yy, xx] = np.sum(a[kk, yy : yy + 3, xx : xx + 3] * b[kk])
        np.testing.assert_array_equal(stmt.reference(ins), expected)

    def test_mttkrp(self):
        stmt = workloads.mttkrp(3, 4, 2, 2)
        ins = stmt.random_inputs()
        expected = np.einsum("ikl,kj,lj->ij", ins["A"], ins["B"], ins["C"])
        np.testing.assert_array_equal(stmt.reference(ins), expected)

    def test_ttmc(self):
        stmt = workloads.ttmc(2, 3, 4, 2, 2)
        ins = stmt.random_inputs()
        expected = np.einsum("ilm,lj,mk->ijk", ins["A"], ins["B"], ins["C"])
        np.testing.assert_array_equal(stmt.reference(ins), expected)


class TestShapes:
    def test_resnet_layer2_shape(self):
        stmt = workloads.conv2d_resnet_layer2()
        assert stmt.space.extents == (64, 64, 56, 56, 3, 3)
        assert stmt.name == "conv2d_resnet_layer2"

    def test_resnet_layer5_shape(self):
        stmt = workloads.conv2d_resnet_layer5()
        assert stmt.space["x"].extent == 7
        assert stmt.space["y"].extent == 7
        assert stmt.space["k"].extent == 512

    def test_by_name(self):
        stmt = workloads.by_name("gemm", m=8, n=8, k=8)
        assert stmt.space.volume() == 512
        with pytest.raises(KeyError):
            workloads.by_name("nonexistent")

    def test_all_table_ii_instantiable(self):
        for name in workloads.TABLE_II:
            stmt = workloads.by_name(name)
            assert stmt.macs() > 0

    def test_conv_input_shape_includes_halo(self):
        stmt = workloads.conv2d(k=2, c=2, y=4, x=4, p=3, q=3)
        # input image is (y + p - 1) x (x + q - 1)
        assert stmt.access("A").shape() == (2, 6, 6)
