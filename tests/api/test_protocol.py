"""SessionProtocol conformance and the evaluate_many batch primitive."""

import pytest

from repro.api import (
    EvalResult,
    LocalSession,
    Session,
    SessionProtocol,
    register_evaluator,
    reset_registry,
)
from repro.perf.model import ArrayConfig

SMALL = {"m": 4, "n": 4, "k": 4}
SMALL_ARRAY = ArrayConfig(rows=2, cols=2)


def _mixed_requests(session, n_per_backend=2):
    """A deterministic mixed-backend batch (perf/cost/fpga/sim)."""
    names = ["MNK-SST", "MNK-MTM"]
    requests = []
    for name in names[:n_per_backend]:
        for backend in ("perf", "cost", "fpga", "sim"):
            requests.append(
                session.request(
                    "gemm",
                    name,
                    backend=backend,
                    extents=SMALL,
                    array=SMALL_ARRAY,
                    options={"workload_label": "MM"} if backend == "fpga" else {},
                )
            )
    return requests


class TestProtocol:
    def test_local_session_conforms(self):
        assert isinstance(LocalSession(), SessionProtocol)

    def test_remote_session_conforms(self):
        from repro.service import RemoteSession

        # construction is offline: no server needed to check the surface
        assert isinstance(RemoteSession("http://127.0.0.1:1"), SessionProtocol)

    def test_coordinated_session_conforms(self):
        from repro.service import CoordinatedSession

        # a whole fleet answers to the same protocol as one local session
        session = CoordinatedSession(["http://127.0.0.1:1", "http://127.0.0.1:2"])
        assert isinstance(session, SessionProtocol)

    def test_session_alias(self):
        assert Session is LocalSession

    def test_protocol_methods_exist(self):
        for name in (
            "request",
            "evaluate",
            "evaluate_many",
            "explore",
            "sweep",
            "evaluate_names",
            "cache_stats",
            "flush",
        ):
            assert callable(getattr(LocalSession, name)), name


class TestEvaluateMany:
    def test_order_matches_requests(self):
        session = LocalSession(SMALL_ARRAY)
        requests = _mixed_requests(session)
        results = session.evaluate_many(requests)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            assert result.backend == request.backend
            assert result.ok, (request.backend, result.failure_reason)

    def test_matches_single_evaluate(self):
        session = LocalSession(SMALL_ARRAY)
        requests = _mixed_requests(session, n_per_backend=1)
        batch = session.evaluate_many(requests)
        singles = [LocalSession(SMALL_ARRAY).evaluate(r) for r in requests]
        assert [r.metrics for r in batch] == [s.metrics for s in singles]

    def test_accepts_payload_dicts(self):
        session = LocalSession(SMALL_ARRAY)
        request = session.request("gemm", "MNK-SST", extents=SMALL)
        (from_obj,) = session.evaluate_many([request])
        (from_dict,) = session.evaluate_many([request.to_dict()])
        assert from_obj.metrics == from_dict.metrics

    def test_rejects_junk(self):
        with pytest.raises(TypeError, match="DesignRequest"):
            LocalSession(SMALL_ARRAY).evaluate_many(["gemm"])

    def test_warm_batch_is_all_memo_hits(self, tmp_path):
        path = tmp_path / "memo.json"
        cold_session = LocalSession(SMALL_ARRAY, cache=path)
        cold = cold_session.evaluate_many(_mixed_requests(cold_session))
        assert not any(r.cached for r in cold)
        warm_session = LocalSession(SMALL_ARRAY, cache=path)
        warm = warm_session.evaluate_many(_mixed_requests(warm_session))
        assert all(r.cached for r in warm)
        assert warm_session.cache.hits == len(warm)
        for c, w in zip(cold, warm):
            w.cached = False
            assert w == c

    def test_duplicates_evaluate_once(self):
        calls = []

        class Counting:
            backend = "counting"

            def evaluate(self, request):
                calls.append(request.dataflow)
                return EvalResult(
                    backend="counting",
                    workload=request.workload,
                    dataflow=request.dataflow,
                    metrics={"n": 1.0},
                )

        register_evaluator("counting", Counting)
        try:
            session = LocalSession(SMALL_ARRAY)
            request = session.request(
                "gemm", "MNK-SST", backend="counting", extents=SMALL
            )
            results = session.evaluate_many([request, request, request])
            assert len(results) == 3 and len(calls) == 1
            # fan-out copies are detached from each other
            results[0].metrics["n"] = 99.0
            assert results[1].metrics["n"] == 1.0
        finally:
            reset_registry()

    def test_pooled_matches_serial(self):
        """workers>1 routes built-in backends through the process pool,
        bit-identically to the serial path."""
        serial_session = LocalSession(SMALL_ARRAY, workers=0)
        requests = _mixed_requests(serial_session)
        serial = serial_session.evaluate_many(requests)
        pooled_session = LocalSession(SMALL_ARRAY, workers=2, chunk_size=3)
        pooled = pooled_session.evaluate_many(requests)
        assert [r.metrics for r in pooled] == [s.metrics for s in serial]
        assert [r.details for r in pooled] == [s.details for s in serial]

    def test_overridden_builtin_stays_in_process(self):
        """Overriding a built-in (override=True) must not be undone by the
        pool: a spawned worker would resolve the name to the stock built-in,
        so overridden backends ride the in-process path."""
        import os

        pids = []

        class CalibratedCost:
            backend = "cost"

            def evaluate(self, request):
                pids.append(os.getpid())
                return EvalResult(
                    backend="cost",
                    workload=request.workload,
                    dataflow=request.dataflow,
                    metrics={"area_mm2": -1.0, "power_mw": -1.0},  # marker values
                )

        register_evaluator("cost", CalibratedCost, override=True)
        try:
            session = LocalSession(SMALL_ARRAY, workers=2, chunk_size=1)
            requests = [
                session.request("gemm", name, backend="cost", extents=SMALL)
                for name in ("MNK-SST", "MNK-MTM", "MNK-STS")
            ]
            results = session.evaluate_many(requests)
            # the override answered (not the stock CostModel) ...
            assert [r["area_mm2"] for r in results] == [-1.0, -1.0, -1.0]
            # ... and it ran here, never in a pool worker
            assert set(pids) == {os.getpid()}
        finally:
            reset_registry()

    def test_runtime_backend_stays_in_process(self):
        """A backend registered at runtime is unknown to spawned workers, so
        it must ride the in-process path even when a pool is configured."""

        class Local:
            backend = "only-here"

            def evaluate(self, request):
                return EvalResult(
                    backend="only-here",
                    workload=request.workload,
                    metrics={"pid_bound": 1.0},
                )

        register_evaluator("only-here", Local)
        try:
            session = LocalSession(SMALL_ARRAY, workers=2)
            requests = [
                session.request("gemm", "MNK-SST", backend="only-here", extents=SMALL),
                session.request("gemm", "MNK-SST", backend="perf", extents=SMALL),
                session.request("gemm", "MNK-MTM", backend="perf", extents=SMALL),
            ]
            results = session.evaluate_many(requests)
            assert results[0]["pid_bound"] == 1.0
            assert all(r.ok for r in results)
        finally:
            reset_registry()

    def test_resolve_failures_flow_through(self):
        """Structured failures are batch results, not batch aborts."""
        session = LocalSession(SMALL_ARRAY)
        results = session.evaluate_many(
            [
                session.request("batched_gemv", "MNK-TSS", extents=SMALL),
                session.request("gemm", "MNK-SST", extents=SMALL),
            ]
        )
        assert not results[0].ok and results[0].failure_stage == "resolve"
        assert results[1].ok

    def test_empty_batch(self):
        assert LocalSession(SMALL_ARRAY).evaluate_many([]) == []
