"""Session behavior: routing, memoization per backend, delegation, shims.

The behavioral classes (routing, delegation) are parametrized over **both**
``SessionProtocol`` implementations — the in-process ``LocalSession`` and
the HTTP ``RemoteSession`` against a live in-process server — so location
transparency is enforced by the same assertions, not by a parallel suite.
"""

import warnings

import pytest

from repro.api import (
    DesignRequest,
    EvalResult,
    LocalSession,
    Session,
    register_evaluator,
    reset_registry,
)
from repro.explore.engine import EvaluationEngine, MemoCache
from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel

SMALL = {"m": 4, "n": 4, "k": 4}
SMALL_ARRAY = ArrayConfig(rows=2, cols=2)
GEMM_SEL = [("m", "n", "k")]


@pytest.fixture(scope="module")
def service_thread():
    """One live evaluation service for the whole module's remote sessions."""
    from repro.service import ServiceThread

    with ServiceThread(LocalSession(ArrayConfig(rows=8, cols=8))) as thread:
        yield thread


@pytest.fixture(params=["local", "remote"])
def session(request):
    """The same behavioral surface served in-process and over HTTP."""
    if request.param == "local":
        return Session(ArrayConfig(rows=8, cols=8))
    from repro.service import RemoteSession

    thread = request.getfixturevalue("service_thread")
    return RemoteSession(thread.url, array=ArrayConfig(rows=8, cols=8))


class TestRouting:
    def test_perf_backend(self, session):
        r = session.evaluate("gemm", "MNK-SST", extents={"m": 64, "n": 64, "k": 64})
        assert r.ok and r.backend == "perf" and r.dataflow == "MNK-SST"
        assert 0 < r["normalized_perf"] <= 1
        assert r["cycles"] >= r["peak_cycles"]
        # resolved design travels in the details (JSON-safe)
        assert len(r.details["stt"]) == 3

    def test_cost_backend(self, session):
        r = session.evaluate(
            "gemm", "MNK-SST", backend="cost", extents={"m": 64, "n": 64, "k": 64}
        )
        assert r.ok and r["area_mm2"] > 0 and r["power_mw"] > 0

    def test_fpga_backend(self, session):
        r = session.evaluate(
            "gemm",
            "MNK-STS",
            backend="fpga",
            array=ArrayConfig(rows=10, cols=16),
            options={"workload_label": "MM"},
        )
        assert r.ok
        assert r["dsp"] > 0 and r["lut"] > 0
        assert abs(r["freq_mhz"] - 263) < 6  # paper Table III
        assert r.details["row"]["generator"] == "TensorLib"

    def test_sim_backend(self, session):
        r = session.evaluate(
            "gemm", "MNK-SST", backend="sim", array=SMALL_ARRAY, extents=SMALL
        )
        assert r.ok
        assert r["cycles_run"] > 0
        assert r["elements"] == 16

    def test_matches_direct_model_calls(self, session):
        """The facade is an adapter, not a re-implementation."""
        from repro.core import naming
        from repro.cost.model import CostModel

        gemm = workloads.gemm(64, 64, 64)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        direct_perf = PerfModel(session.array).evaluate(spec)
        direct_cost = CostModel.for_array(session.array, width=16).evaluate(spec)
        r_perf = session.evaluate("gemm", "MNK-SST", extents={"m": 64, "n": 64, "k": 64})
        r_cost = session.evaluate(
            "gemm", "MNK-SST", backend="cost", extents={"m": 64, "n": 64, "k": 64}
        )
        assert r_perf["cycles"] == direct_perf.cycles
        assert r_perf["normalized_perf"] == direct_perf.normalized
        assert r_cost["area_mm2"] == direct_cost.area_mm2
        assert r_cost["power_mw"] == direct_cost.power_mw

    def test_explicit_stt_request(self, session):
        r = session.evaluate(
            "gemm",
            selection=("m", "n", "k"),
            stt=((1, 0, 0), (0, 1, 0), (1, 1, 1)),
            extents={"m": 64, "n": 64, "k": 64},
        )
        assert r.ok and r.dataflow == "MNK-SST"  # the paper's canonical OS STT

    def test_self_contained_request(self, session):
        """A full DesignRequest carries its own platform config."""
        req = DesignRequest(
            workload="gemm",
            dataflow="MNK-SST",
            backend="perf",
            extents={"m": 64, "n": 64, "k": 64},
            array=ArrayConfig(rows=4, cols=4),
        )
        r = session.evaluate(req)
        assert r["peak_cycles"] == workloads.gemm(64, 64, 64).macs() / 16

    def test_request_plus_kwargs_rejected(self, session):
        req = session.request("gemm", "MNK-SST")
        with pytest.raises(TypeError, match="not both"):
            session.evaluate(req, backend="cost")

    def test_infeasible_dataflow_is_structured_failure(self, session):
        # Batched-GEMV supports only unicast A (paper): T for A cannot resolve
        r = session.evaluate("batched_gemv", "MNK-TSS", extents={"m": 4, "n": 4, "k": 4})
        assert not r.ok
        assert r.failure_stage == "resolve"
        assert "LookupError" in r.failure_reason

    def test_unknown_backend_raises(self, session):
        with pytest.raises(LookupError, match="registered"):
            session.evaluate("gemm", "MNK-SST", backend="nope")

    def test_custom_backend_via_session(self, session):
        class Doubler:
            backend = "doubler"

            def evaluate(self, request):
                return EvalResult(
                    backend="doubler",
                    workload=request.workload,
                    metrics={"two": 2.0},
                )

        register_evaluator("doubler", Doubler)
        try:
            r = session.evaluate("gemm", "MNK-SST", backend="doubler")
            assert r["two"] == 2.0
        finally:
            reset_registry()


class TestMemoization:
    @pytest.mark.parametrize(
        "backend,kwargs",
        [
            ("perf", {}),
            ("cost", {}),
            ("fpga", {"options": {"workload_label": "MM"}}),
            ("sim", {}),
        ],
    )
    def test_warm_hit_per_backend(self, tmp_path, backend, kwargs):
        """Every backend — including fpga and sim — rides the memo cache."""
        path = tmp_path / "memo.json"
        cold = Session(SMALL_ARRAY, cache=path).evaluate(
            "gemm", "MNK-SST", backend=backend, extents=SMALL, **kwargs
        )
        assert cold.ok and not cold.cached
        warm_session = Session(SMALL_ARRAY, cache=path)
        warm = warm_session.evaluate(
            "gemm", "MNK-SST", backend=backend, extents=SMALL, **kwargs
        )
        assert warm.cached
        assert warm_session.cache.hits == 1
        # identical payloads modulo the transport flag
        warm.cached = False
        assert warm == cold

    def test_sim_warm_hit_skips_simulation(self, tmp_path):
        """A warm sim request never rebuilds the harness (monkey-proof)."""
        path = tmp_path / "memo.json"
        Session(SMALL_ARRAY, cache=path).evaluate(
            "gemm", "MNK-SST", backend="sim", extents=SMALL
        )
        import repro.sim.harness as harness

        calls = []
        original = harness.verify_functional

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        harness.verify_functional = counting
        try:
            warm = Session(SMALL_ARRAY, cache=path).evaluate(
                "gemm", "MNK-SST", backend="sim", extents=SMALL
            )
        finally:
            harness.verify_functional = original
        assert warm.cached and warm.ok
        assert calls == []

    def test_different_backends_do_not_alias(self, tmp_path):
        path = tmp_path / "memo.json"
        session = Session(SMALL_ARRAY, cache=path)
        a = session.evaluate("gemm", "MNK-SST", backend="perf", extents=SMALL)
        b = session.evaluate("gemm", "MNK-SST", backend="cost", extents=SMALL)
        assert not a.cached and not b.cached
        assert session.cache.stats()["api"] == 2

    def test_caller_mutations_cannot_corrupt_cache(self, tmp_path):
        """Returned results are detached copies of the cache entries."""
        session = Session(SMALL_ARRAY, cache=tmp_path / "memo.json")
        first = session.evaluate("gemm", "MNK-SST", extents=SMALL)
        first.details.clear()
        first.metrics.pop("cycles")
        second = session.evaluate("gemm", "MNK-SST", extents=SMALL)
        assert second.cached
        assert second["cycles"] > 0
        assert second.details["stt"]
        second.details["stt"][0][0] = 999
        third = session.evaluate("gemm", "MNK-SST", extents=SMALL)
        assert third.details["stt"][0][0] != 999

    def test_stale_schema_entry_degrades_to_miss(self, tmp_path):
        """A cache entry from another schema version is recomputed, not fatal."""
        path = tmp_path / "memo.json"
        session = Session(SMALL_ARRAY, cache=path)
        session.evaluate("gemm", "MNK-SST", extents=SMALL)
        key = session.request("gemm", "MNK-SST", extents=SMALL).cache_key()
        stale = dict(session.cache._data["api"][key])
        stale["schema_version"] = 99
        session.cache.put("api", key, stale)
        refreshed = Session(SMALL_ARRAY, cache=session.cache).evaluate(
            "gemm", "MNK-SST", extents=SMALL
        )
        assert refreshed.ok and not refreshed.cached  # recomputed + overwritten
        assert Session(SMALL_ARRAY, cache=session.cache).evaluate(
            "gemm", "MNK-SST", extents=SMALL
        ).cached

    def test_autoflush_off_defers_write(self, tmp_path):
        path = tmp_path / "memo.json"
        with Session(SMALL_ARRAY, cache=path, autoflush=False) as session:
            session.evaluate("gemm", "MNK-SST", extents=SMALL)
            assert not path.exists()
        assert path.exists()  # context exit flushed

    def test_backend_bugs_propagate_not_memoized(self, session):
        """Only designed-in rejections become ok=False; bugs raise."""
        from repro.api import get_evaluator, register_evaluator, reset_registry

        class Buggy:
            backend = "buggy"

            def evaluate(self, request):
                from repro.api.backends import _evaluating

                def run(statement, spec):
                    return {}["missing"]  # a KeyError-shaped code bug

                return _evaluating(run, self.backend, request)

        register_evaluator("buggy", Buggy)
        try:
            with pytest.raises(KeyError):
                get_evaluator("buggy").evaluate(
                    session.request("gemm", "MNK-SST", backend="buggy")
                )
        finally:
            reset_registry()

    def test_resolve_failures_memoize_backend_failures_do_not(self, tmp_path):
        """Infeasible-design facts cache (they cost a full STT walk); failures
        inside a backend recompute — they may be bugs fixed by the next build."""
        from repro.api import register_evaluator, reset_registry

        path = tmp_path / "memo.json"
        resolve_kwargs = dict(extents={"m": 4, "n": 4, "k": 4})
        cold = Session(SMALL_ARRAY, cache=path)
        first = cold.evaluate("batched_gemv", "MNK-TSS", **resolve_kwargs)
        assert not first.ok and first.failure_stage == "resolve"
        warm = Session(SMALL_ARRAY, cache=path).evaluate(
            "batched_gemv", "MNK-TSS", **resolve_kwargs
        )
        assert warm.cached and warm.failure_stage == "resolve"

        class AlwaysFails:
            backend = "always-fails"
            calls = 0

            def evaluate(self, request):
                AlwaysFails.calls += 1
                return EvalResult.failure(
                    self.backend, request.workload, stage=self.backend, reason="flaky"
                )

        register_evaluator("always-fails", AlwaysFails)
        try:
            session = Session(SMALL_ARRAY, cache=path)
            a = session.evaluate("gemm", "MNK-SST", backend="always-fails", extents=SMALL)
            b = session.evaluate("gemm", "MNK-SST", backend="always-fails", extents=SMALL)
            assert not a.cached and not b.cached
            assert AlwaysFails.calls == 2
        finally:
            reset_registry()

    def test_cli_cache_tools_reject_corrupt_shards(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.json"
        Session(SMALL_ARRAY, cache=good).evaluate("gemm", "MNK-SST", extents=SMALL)
        bad = tmp_path / "bad.json"
        bad.write_text('{"points": {truncated')
        merged = tmp_path / "m.json"
        assert main(["cache", "merge", "-o", str(merged), str(good), str(bad)]) == 1
        assert "corrupt" in capsys.readouterr().err
        assert not merged.exists()  # nothing written on a rejected merge
        assert main(["cache", "stats", str(bad)]) == 1
        assert main(["cache", "compact", str(bad)]) == 1

    def test_no_cache_means_no_memoization(self):
        session = Session(SMALL_ARRAY, cache=None)
        first = session.evaluate("gemm", "MNK-SST", extents=SMALL)
        second = session.evaluate("gemm", "MNK-SST", extents=SMALL)
        assert not first.cached and not second.cached

    def test_shared_cache_with_engine_paths(self, tmp_path):
        """Session.evaluate and Session.explore share one MemoCache file."""
        path = tmp_path / "memo.json"
        session = Session(ArrayConfig(rows=8, cols=8), cache=path)
        session.evaluate("gemm", "MNK-SST", extents={"m": 64, "n": 64, "k": 64})
        result = session.explore(workloads.gemm(64, 64, 64), selections=GEMM_SEL)
        assert len(result) > 20
        stats = session.cache_stats()
        assert stats["api"] == 1
        assert stats["points"] == len(result) + len(result.failures)
        assert stats["spaces"] == 1


class TestMergeAndCompact:
    def test_shard_merge_combines_backends(self, tmp_path):
        """Two machines' caches fold into one fully warm cache."""
        shard_a, shard_b, merged = (
            tmp_path / "a.json", tmp_path / "b.json", tmp_path / "m.json"
        )
        Session(SMALL_ARRAY, cache=shard_a).evaluate(
            "gemm", "MNK-SST", extents=SMALL
        )
        Session(SMALL_ARRAY, cache=shard_b).evaluate(
            "gemm", "MNK-SST", backend="cost", extents=SMALL
        )
        out = MemoCache(merged)
        added_a = out.merge_from(shard_a)
        added_b = out.merge_from(MemoCache(shard_b))
        assert added_a["api"] == 1 and added_b["api"] == 1
        out.flush()
        warm = Session(SMALL_ARRAY, cache=merged)
        assert warm.evaluate("gemm", "MNK-SST", extents=SMALL).cached
        assert warm.evaluate("gemm", "MNK-SST", backend="cost", extents=SMALL).cached

    def test_merge_first_wins_and_counts(self, tmp_path):
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        Session(SMALL_ARRAY, cache=path_a).evaluate("gemm", "MNK-SST", extents=SMALL)
        Session(SMALL_ARRAY, cache=path_b).evaluate("gemm", "MNK-SST", extents=SMALL)
        cache = MemoCache(path_a)
        assert cache.merge_from(path_b)["api"] == 0  # identical key: first wins

    def test_cli_cache_tools(self, tmp_path, capsys):
        from repro.cli import main

        shard_a, shard_b = tmp_path / "a.json", tmp_path / "b.json"
        merged = tmp_path / "m.json"
        Session(SMALL_ARRAY, cache=shard_a).evaluate("gemm", "MNK-SST", extents=SMALL)
        Session(SMALL_ARRAY, cache=shard_b).evaluate(
            "gemm", "MNK-SST", backend="cost", extents=SMALL
        )
        assert main(["cache", "merge", "-o", str(merged), str(shard_a), str(shard_b)]) == 0
        assert "2" in capsys.readouterr().out
        assert main(["cache", "stats", str(merged)]) == 0
        assert "2 api" in capsys.readouterr().out
        assert main(["cache", "compact", str(merged)]) == 0
        assert "compacted" in capsys.readouterr().out
        assert main(["cache", "stats", str(tmp_path / "missing.json")]) == 1

    def test_cache_stats_via_session(self, tmp_path):
        session = Session(SMALL_ARRAY, cache=tmp_path / "memo.json")
        assert session.cache_stats()["api"] == 0
        assert Session(SMALL_ARRAY).cache_stats() == {}


class TestDelegation:
    def test_explore_matches_engine(self, session):
        """Local and remote explores are bit-identical to the bare engine."""
        gemm = workloads.gemm(64, 64, 64)
        engine = EvaluationEngine(ArrayConfig(rows=8, cols=8))
        via_session = session.explore(gemm, selections=GEMM_SEL)
        via_engine = engine.evaluate(gemm, selections=GEMM_SEL)
        assert [p.metrics() for p in via_session] == [p.metrics() for p in via_engine]
        assert [p.name for p in via_session] == [p.name for p in via_engine]

    def test_explore_accepts_workload_names(self, session):
        result = session.explore(
            "batched_gemv", one_d_only=True, array=ArrayConfig(rows=4, cols=4)
        )
        assert result.workload == "batched_gemv"
        assert result.array == ArrayConfig(rows=4, cols=4)
        assert len(result) > 0

    def test_sweep_delegates(self, session):
        results = session.sweep(
            [workloads.gemm(64, 64, 64), "batched_gemv"],
            selections=None,
            one_d_only=True,
        )
        assert [r.workload for r in results] == ["gemm", "batched_gemv"]

    def test_evaluate_names_delegates(self, session):
        rows = session.evaluate_names("gemm", ["MNK-SST", "MNK-MTM"])
        assert [name for name, _ in rows] == ["MNK-SST", "MNK-MTM"]
        assert all(r.cycles > 0 for _, r in rows)

    def test_evaluate_many_delegates(self, session):
        requests = [
            session.request("gemm", name, backend=backend, extents=SMALL)
            for name in ("MNK-SST", "MNK-MTM")
            for backend in ("perf", "cost")
        ]
        results = session.evaluate_many(requests)
        assert [r.backend for r in results] == ["perf", "cost", "perf", "cost"]
        assert [r.dataflow for r in results] == ["MNK-SST", "MNK-SST", "MNK-MTM", "MNK-MTM"]
        assert all(r.ok for r in results)
        singles = [session.evaluate(request) for request in requests]
        assert [r.metrics for r in results] == [s.metrics for s in singles]

    def test_context_manager_flushes(self, tmp_path):
        path = tmp_path / "memo.json"
        with Session(SMALL_ARRAY, cache=path) as session:
            session.evaluate("gemm", "MNK-SST", extents=SMALL)
        assert path.exists()


class TestDeprecationShims:
    def test_dse_explore_warns(self):
        from repro.explore.dse import explore

        gemm = workloads.gemm(64, 64, 64)
        with pytest.warns(DeprecationWarning, match="Session"):
            pts = explore(gemm, rows=8, cols=8, selections=GEMM_SEL)
        assert len(pts) > 20

    def test_dse_explore_matches_session_results(self):
        """The shim is a pass-through: identical points, identical order."""
        from repro.explore.dse import explore

        gemm = workloads.gemm(64, 64, 64)
        with pytest.warns(DeprecationWarning):
            shim_points = explore(gemm, rows=8, cols=8, selections=GEMM_SEL)
        session_points = (
            Session(ArrayConfig(rows=8, cols=8)).explore(gemm, selections=GEMM_SEL).points
        )
        assert [p.name for p in shim_points] == [p.name for p in session_points]
        assert [p.metrics() for p in shim_points] == [
            p.metrics() for p in session_points
        ]

    def test_perf_evaluate_named_warns(self):
        model = PerfModel(ArrayConfig(rows=8, cols=8))
        gemm = workloads.gemm(64, 64, 64)
        with pytest.warns(DeprecationWarning, match="Session.evaluate"):
            r = model.evaluate_named(gemm, "MNK-SST")
        assert 0 < r.normalized <= 1

    def test_perf_evaluate_named_matches_session_results(self):
        """The shim resolves and scores exactly like the perf backend."""
        model = PerfModel(ArrayConfig(rows=8, cols=8))
        gemm = workloads.gemm(64, 64, 64)
        with pytest.warns(DeprecationWarning):
            shim = model.evaluate_named(gemm, "MNK-SST")
        via_session = Session(ArrayConfig(rows=8, cols=8)).evaluate(
            "gemm", "MNK-SST", extents={"m": 64, "n": 64, "k": 64}
        )
        assert via_session.ok
        assert via_session["cycles"] == shim.cycles
        assert via_session["normalized_perf"] == shim.normalized
        assert via_session["utilization"] == shim.utilization

    def test_new_paths_do_not_warn(self):
        session = Session(ArrayConfig(rows=8, cols=8))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.evaluate("gemm", "MNK-SST", extents={"m": 16, "n": 16, "k": 16})
            session.explore(workloads.gemm(16, 16, 16), selections=GEMM_SEL)


class TestPackageSurface:
    def test_lazy_top_level_exports(self):
        import repro
        from repro.api import SessionProtocol

        assert repro.Session is Session
        assert repro.LocalSession is LocalSession
        assert repro.Session is LocalSession  # the compatible alias
        assert repro.SessionProtocol is SessionProtocol
        assert repro.DesignRequest is DesignRequest
        assert repro.EvalResult is EvalResult
        with pytest.raises(AttributeError):
            repro.not_a_thing
