"""DesignRequest/EvalResult: construction, versioning, JSON round-trip."""

import json

import pytest

from repro.api import (
    SCHEMA_VERSION,
    DesignRequest,
    EvalResult,
    SchemaVersionError,
)
from repro.cost.model import CostParams
from repro.perf.model import ArrayConfig


def _request(**overrides):
    kwargs = dict(
        workload="gemm",
        dataflow="MNK-SST",
        backend="cost",
        extents={"m": 64, "n": 64, "k": 64},
        array=ArrayConfig(rows=8, cols=8),
        width=16,
        options={"resolve": "best"},
    )
    kwargs.update(overrides)
    return DesignRequest(**kwargs)


class TestDesignRequest:
    def test_round_trip_json(self):
        req = _request()
        assert DesignRequest.from_json(req.to_json()) == req

    def test_round_trip_with_explicit_stt(self):
        req = _request(
            dataflow=None,
            selection=["m", "n", "k"],
            stt=[[1, 0, 0], [0, 1, 0], [0, 0, 1]],
        )
        back = DesignRequest.from_json(req.to_json())
        assert back == req
        assert back.stt == ((1, 0, 0), (0, 1, 0), (0, 0, 1))
        assert back.selection == ("m", "n", "k")

    def test_round_trip_with_cost_params(self):
        req = _request(cost=CostParams(e_mul=0.5))
        back = DesignRequest.from_json(req.to_json())
        assert back.cost == CostParams(e_mul=0.5)
        assert back == req

    def test_needs_a_design(self):
        with pytest.raises(ValueError, match="dataflow name or an explicit"):
            DesignRequest(workload="gemm")

    def test_stt_needs_selection(self):
        with pytest.raises(ValueError, match="selection"):
            DesignRequest(workload="gemm", stt=[[1, 0, 0], [0, 1, 0], [0, 0, 1]])

    def test_unknown_schema_version_rejected(self):
        payload = _request().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError, match="not supported"):
            DesignRequest.from_dict(payload)
        payload["schema_version"] = None
        with pytest.raises(SchemaVersionError):
            DesignRequest.from_dict(payload)

    def test_unknown_fields_rejected(self):
        payload = _request().to_dict()
        payload["frobnicate"] = True
        with pytest.raises(ValueError, match="frobnicate"):
            DesignRequest.from_dict(payload)

    def test_cache_key_is_canonical(self):
        """Key independence from dict ordering and sequence flavour."""
        a = _request(extents={"m": 64, "n": 64, "k": 64})
        b = _request(extents={"k": 64, "n": 64, "m": 64})
        assert a.cache_key() == b.cache_key()
        c = _request(
            dataflow=None,
            selection=("m", "n", "k"),
            stt=((1, 0, 0), (0, 1, 0), (0, 0, 1)),
        )
        d = _request(
            dataflow=None,
            selection=["m", "n", "k"],
            stt=[[1, 0, 0], [0, 1, 0], [0, 0, 1]],
        )
        assert c.cache_key() == d.cache_key()
        # and the key is itself valid, version-stamped JSON
        decoded = json.loads(a.cache_key())
        assert decoded["schema_version"] == SCHEMA_VERSION

    def test_different_requests_different_keys(self):
        assert _request().cache_key() != _request(backend="perf").cache_key()
        assert (
            _request().cache_key()
            != _request(array=ArrayConfig(rows=4, cols=4)).cache_key()
        )


class TestEvalResult:
    def test_round_trip_json(self):
        res = EvalResult(
            backend="cost",
            workload="gemm",
            dataflow="MNK-SST",
            metrics={"area_mm2": 0.87, "power_mw": 45.2},
            details={"stt": [[1, 0, 0], [0, 1, 0], [0, 0, 1]]},
        )
        assert EvalResult.from_json(res.to_json()) == res

    def test_failure_round_trip(self):
        res = EvalResult.failure(
            "sim", "gemm", stage="resolve", reason="LookupError: no STT"
        )
        back = EvalResult.from_json(res.to_json())
        assert back == res
        assert not back.ok
        assert back.failure_stage == "resolve"

    def test_metric_getitem(self):
        res = EvalResult(backend="perf", workload="gemm", metrics={"cycles": 5.0})
        assert res["cycles"] == 5.0
        with pytest.raises(KeyError):
            res["nope"]

    def test_unknown_schema_version_rejected(self):
        payload = EvalResult(backend="perf", workload="gemm").to_dict()
        payload["schema_version"] = 99
        with pytest.raises(SchemaVersionError):
            EvalResult.from_dict(payload)
