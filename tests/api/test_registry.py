"""Evaluator registry: built-ins, registration, override, removal."""

import pytest

from repro.api import (
    DesignRequest,
    EvalResult,
    available_backends,
    get_evaluator,
    register_evaluator,
    reset_registry,
    unregister_evaluator,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    reset_registry()


class FakeEvaluator:
    backend = "fake"

    def evaluate(self, request: DesignRequest) -> EvalResult:
        return EvalResult(
            backend=self.backend,
            workload=request.workload,
            dataflow=request.dataflow,
            metrics={"answer": 42.0},
        )


class TestBuiltins:
    def test_four_builtin_backends(self):
        assert set(available_backends()) >= {"cost", "perf", "fpga", "sim"}

    def test_get_evaluator_caches_instances(self):
        assert get_evaluator("cost") is get_evaluator("cost")

    def test_unknown_backend_names_known_ones(self):
        with pytest.raises(LookupError, match="cost"):
            get_evaluator("does-not-exist")


class TestRegistration:
    def test_register_and_route(self):
        register_evaluator("fake", FakeEvaluator)
        assert "fake" in available_backends()
        result = get_evaluator("fake").evaluate(
            DesignRequest(workload="gemm", dataflow="MNK-SST", backend="fake")
        )
        assert result["answer"] == 42.0

    def test_decorator_form(self):
        @register_evaluator("decorated")
        class Decorated(FakeEvaluator):
            backend = "decorated"

        assert get_evaluator("decorated").backend == "decorated"

    def test_duplicate_requires_override(self):
        register_evaluator("fake", FakeEvaluator)
        with pytest.raises(ValueError, match="override"):
            register_evaluator("fake", FakeEvaluator)

    def test_override_replaces_builtin(self):
        register_evaluator("cost", FakeEvaluator, override=True)
        assert isinstance(get_evaluator("cost"), FakeEvaluator)
        reset_registry()
        assert not isinstance(get_evaluator("cost"), FakeEvaluator)

    def test_unregister(self):
        register_evaluator("fake", FakeEvaluator)
        unregister_evaluator("fake")
        assert "fake" not in available_backends()
        with pytest.raises(LookupError):
            unregister_evaluator("fake")
