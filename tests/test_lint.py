"""Tier-1 gate: ``repro lint`` stays clean on the repo's own sources.

This is the analysis pass eating its own dog food — every checker runs over
``src/repro`` *plus* ``scripts/`` and ``benchmarks/`` with the real docs and
the committed baseline, exactly like the CI ``lint-analysis`` job and a
developer's ``repro lint``.  A finding here means either a real concurrency/
wire-contract regression or a checker that needs a fix, a waiver, or a
baseline entry; the failure message renders each finding so the culprit is
one click away.
"""

import time
from pathlib import Path

from repro.analysis import LintOptions, run_lint

REPO = Path(__file__).resolve().parents[1]

LINT_PATHS = [REPO / "src" / "repro", REPO / "scripts", REPO / "benchmarks"]

_CACHED_RESULT = None


def repo_result():
    # module-level memo: four tests share one (expensive) full-tree run,
    # with the on-disk cache disabled so this exercises the real pass
    global _CACHED_RESULT
    if _CACHED_RESULT is None:
        options = LintOptions(
            paths=LINT_PATHS,
            docs_path=REPO / "docs" / "service-api.md",
            baseline_path=REPO / "lint-baseline.json",
            use_cache=False,
        )
        _CACHED_RESULT = run_lint(options)
    return _CACHED_RESULT


def test_repo_sources_lint_clean():
    result = repo_result()
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"repro lint found regressions:\n{rendered}"


def test_pass_actually_covered_the_service_layer():
    """Guard against a vacuous pass: the wire comparison and the call-graph
    walk must have seen the real surface, not an empty file set."""
    result = repo_result()
    assert len(result.files) > 40
    assert result.summary["ra002_routes"] >= 10
    assert set(result.summary["ra002_params"]) == {"since", "keepalive"}
    assert result.summary["ra001_async_functions"] >= 20
    assert result.summary["ra003_guarded_classes"] >= 1
    assert result.summary["ra004_primitives"] >= 5


def test_project_graph_resolved_the_cross_module_surface():
    """The project-wide graph is real: RA005-RA007 saw the actual lock
    sites, error table, and fold roots, and the import resolver stitched a
    substantial number of cross-module call edges."""
    result = repo_result()
    assert result.summary["cross_module_edges"] >= 50
    assert result.summary["ra005_lock_sites"] >= 9
    assert result.summary["ra005_lock_keys"] >= 2
    assert result.summary["ra006_error_types"] >= 6
    assert result.summary["ra006_server_raises"] >= 10
    assert result.summary["ra006_decoders"] == 2
    assert result.summary["ra007_roots"] >= 5
    assert result.summary["ra007_reachable"] >= 20


def test_lint_target_set_includes_scripts_and_benchmarks():
    files = set(repo_result().files)
    assert any(rel.startswith("scripts/") for rel in files), files
    assert any(rel.startswith("benchmarks/") for rel in files), files


def test_waivers_in_production_code_stay_justified():
    """Every inline waiver in src/ suppresses a live finding (no stale
    waivers) and carries a reason (enforced by RA000 at parse time)."""
    result = repo_result()
    for finding, waiver in result.waived:
        assert waiver.reason, finding.render()


def test_warm_cache_is_at_least_5x_faster(tmp_path):
    """The whole-run result cache: an unchanged tree re-lints from the
    hash-and-deserialize fast path, skipping parse and checkers entirely."""
    cache = tmp_path / "lint-cache.json"
    options = LintOptions(
        paths=LINT_PATHS,
        docs_path=REPO / "docs" / "service-api.md",
        baseline_path=REPO / "lint-baseline.json",
        cache_path=cache,
    )
    t0 = time.perf_counter()
    cold = run_lint(options)
    t_cold = time.perf_counter() - t0
    assert cold.summary["cache"] == "miss"
    assert cache.exists()

    t0 = time.perf_counter()
    warm = run_lint(options)
    t_warm = time.perf_counter() - t0
    assert warm.summary["cache"] == "hit"

    assert warm.findings == cold.findings
    assert warm.baselined == cold.baselined
    assert [f for f, _ in warm.waived] == [f for f, _ in cold.waived]
    assert warm.files == cold.files
    assert t_cold >= 5 * t_warm, (
        f"warm cache not fast enough: cold={t_cold:.3f}s warm={t_warm:.3f}s"
    )


def test_cache_invalidates_on_content_change(tmp_path):
    """Editing any linted file must force a full re-run (whole-run key)."""
    src_dir = tmp_path / "proj"
    src_dir.mkdir()
    mod = src_dir / "mod.py"
    mod.write_text("def f():\n    return 1\n")
    cache = tmp_path / "cache.json"
    options = LintOptions(paths=[src_dir], cache_path=cache)

    first = run_lint(options)
    assert first.summary["cache"] == "miss"
    assert run_lint(options).summary["cache"] == "hit"

    mod.write_text("import time\n\n\nasync def f():\n    time.sleep(1)\n")
    changed = run_lint(options)
    assert changed.summary["cache"] == "miss"
    assert any(f.checker == "RA001" for f in changed.findings)
