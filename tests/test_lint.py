"""Tier-1 gate: ``repro lint`` stays clean on the repo's own sources.

This is the analysis pass eating its own dog food — every checker runs over
``src/repro`` with the real docs and the committed baseline, exactly like
the CI ``lint-analysis`` job and a developer's ``repro lint``.  A finding
here means either a real concurrency/wire-contract regression or a checker
that needs a fix, a waiver, or a baseline entry; the failure message renders
each finding so the culprit is one click away.
"""

from pathlib import Path

from repro.analysis import LintOptions, run_lint

REPO = Path(__file__).resolve().parents[1]


def repo_result():
    options = LintOptions(
        paths=[REPO / "src" / "repro"],
        docs_path=REPO / "docs" / "service-api.md",
        baseline_path=REPO / "lint-baseline.json",
    )
    return run_lint(options)


def test_repo_sources_lint_clean():
    result = repo_result()
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"repro lint found regressions:\n{rendered}"


def test_pass_actually_covered_the_service_layer():
    """Guard against a vacuous pass: the wire comparison and the call-graph
    walk must have seen the real surface, not an empty file set."""
    result = repo_result()
    assert len(result.files) > 40
    assert result.summary["ra002_routes"] >= 10
    assert set(result.summary["ra002_params"]) == {"since", "keepalive"}
    assert result.summary["ra001_async_functions"] >= 20
    assert result.summary["ra003_guarded_classes"] >= 1
    assert result.summary["ra004_primitives"] >= 5


def test_waivers_in_production_code_stay_justified():
    """Every inline waiver in src/ suppresses a live finding (no stale
    waivers) and carries a reason (enforced by RA000 at parse time)."""
    result = repo_result()
    for finding, waiver in result.waived:
        assert waiver.reason, finding.render()
