"""Tier-1 gate: ``repro lint`` stays clean on the repo's own sources.

This is the analysis pass eating its own dog food — every checker runs over
``src/repro`` *plus* ``scripts/`` and ``benchmarks/`` with the real docs and
the committed baseline, exactly like the CI ``lint-analysis`` job and a
developer's ``repro lint``.  A finding here means either a real concurrency/
wire-contract regression or a checker that needs a fix, a waiver, or a
baseline entry; the failure message renders each finding so the culprit is
one click away.
"""

import time
from pathlib import Path

from repro.analysis import LintOptions, run_lint

REPO = Path(__file__).resolve().parents[1]

LINT_PATHS = [REPO / "src" / "repro", REPO / "scripts", REPO / "benchmarks"]

_CACHED_RESULT = None


def repo_result():
    # module-level memo: four tests share one (expensive) full-tree run,
    # with the on-disk cache disabled so this exercises the real pass
    global _CACHED_RESULT
    if _CACHED_RESULT is None:
        options = LintOptions(
            paths=LINT_PATHS,
            docs_path=REPO / "docs" / "service-api.md",
            baseline_path=REPO / "lint-baseline.json",
            use_cache=False,
        )
        _CACHED_RESULT = run_lint(options)
    return _CACHED_RESULT


def test_repo_sources_lint_clean():
    result = repo_result()
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"repro lint found regressions:\n{rendered}"


def test_pass_actually_covered_the_service_layer():
    """Guard against a vacuous pass: the wire comparison and the call-graph
    walk must have seen the real surface, not an empty file set."""
    result = repo_result()
    assert len(result.files) > 40
    assert result.summary["ra002_routes"] >= 10
    assert set(result.summary["ra002_params"]) == {"since", "keepalive"}
    assert result.summary["ra001_async_functions"] >= 20
    assert result.summary["ra003_guarded_classes"] >= 1
    assert result.summary["ra004_primitives"] >= 5


def test_project_graph_resolved_the_cross_module_surface():
    """The project-wide graph is real: RA005-RA007 saw the actual lock
    sites, error table, and fold roots, and the import resolver stitched a
    substantial number of cross-module call edges."""
    result = repo_result()
    assert result.summary["cross_module_edges"] >= 50
    assert result.summary["ra005_lock_sites"] >= 9
    assert result.summary["ra005_lock_keys"] >= 2
    assert result.summary["ra006_error_types"] >= 6
    assert result.summary["ra006_server_raises"] >= 10
    assert result.summary["ra006_decoders"] == 2
    assert result.summary["ra007_roots"] >= 5
    assert result.summary["ra007_reachable"] >= 20


def test_dataflow_checkers_saw_the_real_surface():
    """RA008/RA009 are not vacuous: the taint pass seeded real request
    sources in the server, and the lifecycle pass tracked the fleet's
    actual acquisitions (tasks, pools, service threads, sockets)."""
    result = repo_result()
    assert result.summary["ra008_sources"] >= 5
    assert result.summary["ra008_findings"] == 0
    assert result.summary["ra009_resources"] >= 8
    assert result.summary["ra009_leaks"] == 0


def test_lint_target_set_includes_scripts_and_benchmarks():
    files = set(repo_result().files)
    assert any(rel.startswith("scripts/") for rel in files), files
    assert any(rel.startswith("benchmarks/") for rel in files), files


def test_waivers_in_production_code_stay_justified():
    """Every inline waiver in src/ suppresses a live finding (no stale
    waivers) and carries a reason (enforced by RA000 at parse time)."""
    result = repo_result()
    for finding, waiver in result.waived:
        assert waiver.reason, finding.render()


def test_warm_cache_is_at_least_5x_faster(tmp_path):
    """The whole-run result cache: an unchanged tree re-lints from the
    hash-and-deserialize fast path, skipping parse and checkers entirely."""
    cache = tmp_path / "lint-cache.json"
    options = LintOptions(
        paths=LINT_PATHS,
        docs_path=REPO / "docs" / "service-api.md",
        baseline_path=REPO / "lint-baseline.json",
        cache_path=cache,
    )
    t0 = time.perf_counter()
    cold = run_lint(options)
    t_cold = time.perf_counter() - t0
    assert cold.summary["cache"] == "miss"
    assert cache.exists()

    t0 = time.perf_counter()
    warm = run_lint(options)
    t_warm = time.perf_counter() - t0
    assert warm.summary["cache"] == "hit"

    assert warm.findings == cold.findings
    assert warm.baselined == cold.baselined
    assert [f for f, _ in warm.waived] == [f for f, _ in cold.waived]
    assert warm.files == cold.files
    assert t_cold >= 5 * t_warm, (
        f"warm cache not fast enough: cold={t_cold:.3f}s warm={t_warm:.3f}s"
    )


def test_cache_invalidates_on_content_change(tmp_path):
    """Editing any linted file must force a full re-run (whole-run key)."""
    src_dir = tmp_path / "proj"
    src_dir.mkdir()
    mod = src_dir / "mod.py"
    mod.write_text("def f():\n    return 1\n")
    cache = tmp_path / "cache.json"
    options = LintOptions(paths=[src_dir], cache_path=cache)

    first = run_lint(options)
    assert first.summary["cache"] == "miss"
    assert run_lint(options).summary["cache"] == "hit"

    mod.write_text("import time\n\n\nasync def f():\n    time.sleep(1)\n")
    changed = run_lint(options)
    assert changed.summary["cache"] == "miss"
    assert any(f.checker == "RA001" for f in changed.findings)


def test_cache_holds_one_entry_per_scope(tmp_path):
    """Different scopes (file sets / --select) coexist in the v2 cache; a
    re-run over a known scope replaces its entry instead of appending."""
    import json

    src_dir = tmp_path / "proj"
    src_dir.mkdir()
    (src_dir / "a.py").write_text("def f():\n    return 1\n")
    (src_dir / "b.py").write_text("def g():\n    return 2\n")
    cache = tmp_path / "cache.json"

    run_lint(LintOptions(paths=[src_dir], cache_path=cache))
    run_lint(LintOptions(paths=[src_dir / "a.py"], cache_path=cache))
    payload = json.loads(cache.read_text())
    assert len(payload["entries"]) == 2

    # both scopes answer warm now
    assert run_lint(
        LintOptions(paths=[src_dir], cache_path=cache)
    ).summary["cache"] == "hit"
    assert run_lint(
        LintOptions(paths=[src_dir / "a.py"], cache_path=cache)
    ).summary["cache"] == "hit"

    # editing a file replaces that scope's entry — the file never grows
    (src_dir / "a.py").write_text("def f():\n    return 3\n")
    run_lint(LintOptions(paths=[src_dir / "a.py"], cache_path=cache))
    payload = json.loads(cache.read_text())
    assert len(payload["entries"]) == 2


def test_cache_prunes_entries_from_older_checker_sets(tmp_path):
    """An entry written under different checker versions is dead weight —
    the next write drops it instead of letting the file accrete."""
    import json

    src_dir = tmp_path / "proj"
    src_dir.mkdir()
    (src_dir / "a.py").write_text("def f():\n    return 1\n")
    cache = tmp_path / "cache.json"

    run_lint(LintOptions(paths=[src_dir], cache_path=cache))
    payload = json.loads(cache.read_text())
    payload["entries"][0]["key"]["checkers"]["RA999"] = 1  # simulate drift
    # move the poisoned entry to a second scope so it is prune-fodder, not
    # a same-scope replacement
    payload["entries"][0]["key"]["select"] = ["RA999"]
    cache.write_text(json.dumps(payload))

    run_lint(LintOptions(paths=[src_dir], cache_path=cache))
    payload = json.loads(cache.read_text())
    assert len(payload["entries"]) == 1
    assert "RA999" not in payload["entries"][0]["key"]["checkers"]


def test_cache_path_env_var_is_honoured(tmp_path, monkeypatch):
    """REPRO_LINT_CACHE relocates the cache without touching the CLI."""
    src_dir = tmp_path / "proj"
    src_dir.mkdir()
    (src_dir / "a.py").write_text("def f():\n    return 1\n")
    cache = tmp_path / "elsewhere.json"
    monkeypatch.setenv("REPRO_LINT_CACHE", str(cache))

    first = run_lint(LintOptions(paths=[src_dir]))
    assert first.summary["cache"] == "miss"
    assert cache.exists()
    assert run_lint(LintOptions(paths=[src_dir])).summary["cache"] == "hit"

    # an explicit cache_path always beats the environment
    explicit = tmp_path / "explicit.json"
    run_lint(LintOptions(paths=[src_dir], cache_path=explicit))
    assert explicit.exists()


def test_changed_mode_notes_and_exits_zero_outside_history(tmp_path, capsys, monkeypatch):
    """`repro lint --changed` in a repo with no commits (or a bad REF) is a
    note and a clean exit, never a traceback — it runs as a pre-commit hook
    in freshly-initialised checkouts."""
    import subprocess

    from repro.cli import main

    scratch = tmp_path / "fresh"
    scratch.mkdir()
    (scratch / "pyproject.toml").write_text("[project]\nname = 'scratch'\n")
    subprocess.run(["git", "init", "-q", str(scratch)], check=True)
    monkeypatch.chdir(scratch)

    assert main(["lint", "--changed"]) == 0
    out = capsys.readouterr().out
    assert "--changed skipped" in out

    # same contract for a REF that does not exist in a real repo
    subprocess.run(
        ["git", "-C", str(scratch), "commit", "--allow-empty", "-q", "-m", "seed"],
        check=True,
        env={"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
             "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
             "PATH": __import__("os").environ["PATH"]},
    )
    assert main(["lint", "--changed", "no-such-ref"]) == 0
    assert "--changed skipped" in capsys.readouterr().out


def test_lint_registry_gate_passes_and_detects_drift(tmp_path):
    """scripts/check_lint_registry.py: green on the real tree, red with a
    readable diff when the docs catalog drifts from the code registry."""
    import subprocess
    import sys

    script = REPO / "scripts" / "check_lint_registry.py"
    clean = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True
    )
    assert clean.returncode == 0, clean.stderr
    assert "consistent" in clean.stdout

    # drift: a docs catalog missing RA009 must fail with the id named
    doctored = tmp_path / "development.md"
    full = (REPO / "docs" / "development.md").read_text()
    doctored.write_text(
        "\n".join(
            line for line in full.splitlines() if not line.startswith("| `RA009`")
        )
    )
    drifted = subprocess.run(
        [sys.executable, str(script), "--docs", str(doctored)],
        capture_output=True,
        text=True,
    )
    assert drifted.returncode == 1
    assert "RA009" in drifted.stderr and "catalog" in drifted.stderr
