"""Tests for tiling and stage planning."""

import pytest

from repro.core import naming
from repro.core.dataflow import analyze
from repro.core.stt import STT
from repro.hw.plan import StagePlan, choose_tile
from repro.ir import workloads


@pytest.fixture(scope="module")
def gemm_big():
    return workloads.gemm(16, 16, 32)


class TestChooseTile:
    def test_exact_fit(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-SST")
        tile = choose_tile(spec, 4, 4)
        # space rows are unit vectors on two loops: those tile to 4; the time
        # loop runs in full.
        sizes = sorted(tile.values())
        assert sizes[:2] == [4, 4]
        assert sizes[2] == 32

    def test_small_loops_not_overgrown(self):
        conv = workloads.conv2d(k=8, c=8, y=8, x=8, p=3, q=3)
        spec = naming.spec_from_name(conv, "XPQ-MMT")
        tile = choose_tile(spec, 16, 16)
        for name, t in tile.items():
            assert t <= spec.statement.space[name].extent

    def test_skewed_space_row_respects_footprint(self, gemm_big):
        # space row (1,0,1): footprint of (m,k) tiles adds up
        spec = analyze(gemm_big, ("m", "n", "k"), STT([[1, 0, 1], [0, 1, 0], [0, 0, 1]]))
        tile = choose_tile(spec, 8, 8)
        m_t, n_t, k_t = (tile[n] for n in ("m", "n", "k"))
        assert (m_t - 1) + (k_t - 1) + 1 <= 8
        assert n_t <= 8


class TestStagePlan:
    def test_stage_count(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-SST")
        plan = StagePlan(spec, 4, 4, tile={"m": 4, "n": 4, "k": 32})
        # 4x4 tiles over 16x16 -> 16 stages, no sequential loops
        assert plan.n_stages() == 16
        assert len(list(plan.stages())) == 16

    def test_sequential_loops_multiply_stages(self):
        conv = workloads.conv2d(k=4, c=4, y=4, x=4, p=3, q=3)
        spec = naming.spec_from_name(conv, "KCX-SST")
        plan = StagePlan(spec, 4, 4)
        assert plan.n_stages() % (4 * 3 * 3) == 0  # y, p, q sequential

    def test_place_bijective_within_stage(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-SST")
        plan = StagePlan(spec, 4, 4, tile={"m": 4, "n": 4, "k": 8})
        seen = set()
        for local in plan.local_points():
            p, cyc = plan.place(local)
            assert 0 <= p[0] < 4 and 0 <= p[1] < 4
            assert (p, cyc) not in seen
            seen.add((p, cyc))

    def test_place_cycles_inside_exec_phase(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-SST")
        plan = StagePlan(spec, 4, 4, tile={"m": 4, "n": 4, "k": 8})
        t = plan.timing
        for local in plan.local_points():
            _, cyc = plan.place(local)
            assert t.exec_start <= cyc < t.exec_end

    def test_footprint_too_big_rejected(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-SST")
        with pytest.raises(ValueError):
            StagePlan(spec, 4, 4, tile={"m": 8, "n": 4, "k": 4})

    def test_invalid_tile_extent_rejected(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-SST")
        with pytest.raises(ValueError):
            StagePlan(spec, 4, 4, tile={"m": 0, "n": 4, "k": 4})

    def test_lead_zero_without_systolic_inputs(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-MTM")
        plan = StagePlan(spec, 4, 4)
        assert plan.lead == 0

    def test_lead_for_systolic(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-SST")
        plan = StagePlan(spec, 4, 4)
        assert plan.lead == 3  # worst boundary-to-PE distance on a 4x4 array

    def test_out_lag_for_systolic_output(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-STS")
        plan = StagePlan(spec, 4, 4)
        assert plan.out_lag > 0

    def test_timing_load_and_drain(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-STS")  # B stationary
        plan = StagePlan(spec, 4, 4)
        assert plan.timing.load_len == 4  # chain load = rows
        assert plan.timing.drain_len == 0  # C is systolic
        spec2 = naming.spec_from_name(gemm_big, "MNK-SST")  # C stationary
        plan2 = StagePlan(spec2, 4, 4)
        assert plan2.timing.drain_len == 4

    def test_total_cycles(self, gemm_big):
        spec = naming.spec_from_name(gemm_big, "MNK-SST")
        plan = StagePlan(spec, 4, 4, tile={"m": 4, "n": 4, "k": 32})
        assert plan.total_cycles() == plan.n_stages() * plan.timing.total

    def test_stage_global_points_cover_space(self, gemm_big):
        """Every iteration point is visited exactly once across all stages."""
        small = workloads.gemm(4, 4, 4)
        spec = naming.spec_from_name(small, "MNK-SST")
        plan = StagePlan(spec, 2, 2)
        visited = set()
        extents = {n: small.space[n].extent for n in small.space.names}
        for stage in plan.stages():
            for local in plan.local_points():
                ok = all(
                    stage.tile_origin[nm] + off < extents[nm]
                    for nm, off in zip(spec.selected, local)
                )
                if not ok:
                    continue
                pt = stage.global_point(spec, local)
                assert pt not in visited
                visited.add(pt)
        assert len(visited) == small.space.volume()
