"""Verilog emission tests: structure, completeness, determinism."""

import re

import pytest

from repro.core import naming
from repro.hw.generator import AcceleratorGenerator
from repro.hw.netlist import Module
from repro.hw.verilog import emit_module
from repro.ir import workloads


@pytest.fixture(scope="module")
def gemm_design():
    gemm = workloads.gemm(8, 8, 8)
    spec = naming.spec_from_name(gemm, "MNK-SST")
    return AcceleratorGenerator(spec, 2, 2).generate()


class TestEmitModule:
    def test_simple_module(self):
        m = Module("adder")
        a, b = m.input("a", 8), m.input("b", 8)
        m.output("y", m.add(a, b))
        text = emit_module(m)
        assert "module adder (" in text
        assert "input  wire signed [7:0] a" in text
        assert "output wire signed [7:0] y" in text
        assert re.search(r"assign \w+ = a \+ b;", text)
        assert text.strip().endswith("endmodule")

    def test_register_emission(self):
        m = Module("r")
        d = m.input("d", 4)
        en = m.input("en", 1)
        m.output("q", m.reg(d, en=en, init=3))
        text = emit_module(m)
        assert "always @(posedge clk)" in text
        assert re.search(r"if \(en\) \w+ <= d;", text)
        assert "initial" in text and "4'd3" in text

    def test_mux_and_compare(self):
        m = Module("c")
        a, b = m.input("a", 4), m.input("b", 4)
        s = m.lt(a, b)
        m.output("y", m.mux(s, a, b))
        text = emit_module(m)
        assert "$unsigned(a) < $unsigned(b)" in text
        assert "?" in text

    def test_one_bit_ports_have_no_range(self):
        m = Module("c")
        a = m.input("a", 1)
        m.output("y", m.not_(a))
        text = emit_module(m)
        assert "input  wire a" in text


class TestEmitDesign:
    def test_children_before_top(self, gemm_design):
        text = gemm_design.verilog()
        pe_pos = text.index("module pe (")
        arr_pos = text.index("module pe_array (")
        top_pos = text.index(f"module {gemm_design.top.name} (")
        assert pe_pos < arr_pos < top_pos

    def test_every_port_appears(self, gemm_design):
        text = gemm_design.verilog()
        for port in gemm_design.top.inputs:
            assert port in text
        for port in gemm_design.top.outputs:
            assert port in text

    def test_instances_reference_defined_modules(self, gemm_design):
        text = gemm_design.verilog()
        defined = set(re.findall(r"module (\w+) \(", text))
        instantiated = set(re.findall(r"^\s{2}(\w+) \w+ \($", text, re.M))
        assert instantiated <= defined

    def test_balanced_module_endmodule(self, gemm_design):
        text = gemm_design.verilog()
        assert text.count("module ") - text.count("endmodule") == text.count("endmodule") * 0 + (
            len(re.findall(r"^module ", text, re.M)) - text.count("endmodule")
        )
        assert len(re.findall(r"^module ", text, re.M)) == text.count("endmodule")

    def test_deterministic(self, gemm_design):
        assert gemm_design.verilog() == gemm_design.verilog()

    def test_clk_in_every_instance(self, gemm_design):
        text = gemm_design.verilog()
        # Instance openings are indented two spaces: "  <module> <inst> ("
        for inst_open in re.finditer(r"^  (\w+) \w+ \($", text, re.M):
            rest = text[inst_open.end() : text.index(");", inst_open.end())]
            assert ".clk(clk)" in rest, inst_open.group(0)
