"""Tests for reduction tree construction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.netlist import Module
from repro.hw.reduction import adder_count, reduce_tree, tree_depth
from repro.sim.engine import Simulator


def build_tree_module(n):
    m = Module("tree")
    leaves = [m.input(f"x{i}", 16) for i in range(n)]
    m.output("sum", reduce_tree(m, leaves))
    return m


class TestStructure:
    def test_single_leaf_passthrough(self):
        m = Module("t")
        a = m.input("a", 8)
        assert reduce_tree(m, [a]) is a
        assert m.cells == []

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reduce_tree(Module("t"), [])

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 16])
    def test_adder_count(self, n):
        m = build_tree_module(n)
        assert m.cell_count().get("add", 0) == adder_count(n) == n - 1

    def test_depth_balanced(self):
        assert tree_depth(1) == 0
        assert tree_depth(2) == 1
        assert tree_depth(4) == 2
        assert tree_depth(5) == 3
        assert tree_depth(16) == 4

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            tree_depth(0)
        with pytest.raises(ValueError):
            adder_count(0)


class TestBehaviour:
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_sums_correctly(self, values):
        m = build_tree_module(len(values))
        sim = Simulator(m)
        for i, v in enumerate(values):
            sim.poke(f"x{i}", v)
        sim.settle()
        assert sim.peek("sum") == sum(values)
