"""Tests for the top-level accelerator generator."""

import pytest

from repro.core import naming
from repro.hw.generator import AcceleratorGenerator
from repro.ir import workloads


@pytest.fixture(scope="module")
def design():
    gemm = workloads.gemm(8, 8, 8)
    spec = naming.spec_from_name(gemm, "MNK-SST")
    return AcceleratorGenerator(spec, 4, 4).generate()


class TestGenerate:
    def test_top_has_controller_and_array(self, design):
        names = {inst.module.name for inst in design.top.instances}
        assert design.controller.name in names
        assert design.array.name in names

    def test_control_ports_internal(self, design):
        """Control signals come from the controller, not from outside."""
        for ctl in design.info.controls:
            assert ctl not in design.top.inputs

    def test_data_ports_forwarded(self, design):
        for name in design.array.inputs:
            if name not in design.info.controls:
                assert name in design.top.inputs
        for name in design.array.outputs:
            assert name in design.top.outputs

    def test_observability_ports(self, design):
        assert "cycle" in design.top.outputs
        assert "stage_done" in design.top.outputs

    def test_bundle_consistency(self, design):
        assert design.timing is design.plan.timing
        assert design.rows == design.cols == 4
        assert design.memory.bank("A").n_banks > 0

    def test_cell_counts_scale_with_array(self):
        gemm = workloads.gemm(8, 8, 8)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        small = AcceleratorGenerator(spec, 2, 2).generate()
        large = AcceleratorGenerator(spec, 4, 4).generate()
        assert (
            large.top.cell_count()["mul"] == 4 * small.top.cell_count()["mul"]
        )

    def test_name_mentions_workload_and_dataflow(self, design):
        assert "gemm" in design.name
        assert "mnk_sst" in design.name

    def test_width_override(self):
        gemm = workloads.gemm(8, 8, 8)
        spec = naming.spec_from_name(gemm, "MNK-SST")
        d = AcceleratorGenerator(spec, 2, 2, width=16).generate()
        a_port = next(n for n in d.top.inputs if n.startswith("a_in_"))
        assert d.top.inputs[a_port].width == 16
