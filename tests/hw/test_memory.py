"""Tests for memory planning and the behavioural scratchpad."""

import numpy as np
import pytest

from repro.core import naming
from repro.hw.array import build_array
from repro.hw.memory import Scratchpad, plan_memory
from repro.ir import workloads


@pytest.fixture(scope="module")
def gemm():
    return workloads.gemm(8, 8, 8)


class TestPlanMemory:
    def test_systolic_banks_match_boundary(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SST")
        arr, info = build_array(spec, 4, 4)
        mem = plan_memory(spec, info)
        assert mem.bank("A").n_banks == 4
        assert mem.bank("A").pattern == "stream"
        assert mem.bank("C").n_banks == 4  # drain columns
        assert mem.bank("C").pattern == "per_column"

    def test_multicast_banks_per_line(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-MTM")
        arr, info = build_array(spec, 4, 4)
        mem = plan_memory(spec, info)
        assert mem.bank("A").n_banks == 4
        assert mem.bank("A").pattern == "per_line"

    def test_unicast_banks_per_pe(self):
        bg = workloads.batched_gemv(4, 4, 4)
        spec = naming.spec_from_name(bg, "MNK-UST")
        arr, info = build_array(spec, 4, 4)
        mem = plan_memory(spec, info)
        assert mem.bank("A").n_banks == 16
        assert mem.bank("A").pattern == "per_pe"

    def test_full_reuse_scalar_bank(self):
        conv = workloads.conv2d(k=4, c=4, y=4, x=4, p=3, q=3)
        spec = naming.spec_from_name(conv, "CPQ-UUB")
        arr, info = build_array(spec, 4, 4)
        mem = plan_memory(spec, info)
        assert mem.bank("C").n_banks == 1
        assert mem.bank("C").pattern == "scalar"

    def test_totals(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SST")
        arr, info = build_array(spec, 4, 4)
        mem = plan_memory(spec, info)
        assert mem.total_words == sum(b.total_words for b in mem.banks)
        assert mem.total_ports == sum(b.n_banks for b in mem.banks)
        with pytest.raises(KeyError):
            mem.bank("Z")


class TestScratchpad:
    def test_read_and_accumulate(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SST")
        ins = gemm.random_inputs()
        sp = Scratchpad(spec, ins)
        assert sp.read("A", (1, 2)) == ins["A"][1, 2]
        sp.accumulate((0, 0), 5)
        sp.accumulate((0, 0), 7)
        assert sp.output[0, 0] == 12

    def test_shape_validation(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SST")
        bad = {"A": np.zeros((2, 2)), "B": np.zeros((8, 8))}
        with pytest.raises(ValueError):
            Scratchpad(spec, bad)
