"""Unit + property tests for PE array geometry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.geometry import Grid, cross

DIRS = st.tuples(st.integers(-2, 2), st.integers(-2, 2)).filter(lambda d: d != (0, 0))


class TestGrid:
    def test_contains(self):
        g = Grid(2, 3)
        assert (0, 0) in g
        assert (1, 2) in g
        assert (2, 0) not in g
        assert (0, 3) not in g
        assert (-1, 0) not in g

    def test_points_count(self):
        g = Grid(3, 4)
        assert len(list(g.points())) == 12
        assert g.size == 12

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Grid(0, 4)


class TestEntryExit:
    def test_entry_down(self):
        g = Grid(4, 4)
        assert g.entry_point((2, 1), (1, 0)) == ((0, 1), 2)

    def test_entry_right(self):
        g = Grid(4, 4)
        assert g.entry_point((2, 3), (0, 1)) == ((2, 0), 3)

    def test_entry_diagonal(self):
        g = Grid(4, 4)
        assert g.entry_point((2, 3), (1, 1)) == ((0, 1), 2)

    def test_entry_negative_direction(self):
        g = Grid(4, 4)
        assert g.entry_point((1, 1), (-1, 0)) == ((3, 1), 2)

    def test_exit_is_entry_reversed(self):
        g = Grid(4, 4)
        exit_pe, steps = g.exit_point((1, 1), (1, 0))
        assert exit_pe == (3, 1)
        assert steps == 2

    def test_is_entry_is_exit(self):
        g = Grid(3, 3)
        assert g.is_entry((0, 1), (1, 0))
        assert not g.is_entry((1, 1), (1, 0))
        assert g.is_exit((2, 1), (1, 0))

    def test_zero_direction_rejected(self):
        g = Grid(3, 3)
        with pytest.raises(ValueError):
            g.entry_point((1, 1), (0, 0))
        with pytest.raises(ValueError):
            g.lines((0, 0))

    def test_outside_point_rejected(self):
        g = Grid(3, 3)
        with pytest.raises(ValueError):
            g.entry_point((5, 5), (1, 0))

    @given(st.integers(1, 5), st.integers(1, 5), DIRS)
    @settings(max_examples=200)
    def test_entry_walk_consistency(self, rows, cols, d):
        g = Grid(rows, cols)
        for p in g.points():
            entry, steps = g.entry_point(p, d)
            assert entry in g
            assert g.is_entry(entry, d)
            # walking forward `steps` from entry reaches p
            cur = entry
            for _ in range(steps):
                cur = (cur[0] + d[0], cur[1] + d[1])
            assert cur == p


class TestLines:
    def test_rows_as_lines(self):
        g = Grid(3, 4)
        lines = g.lines((0, 1))  # moving along columns -> lines are rows
        assert len(lines) == 3
        for line in lines:
            rows = {p[0] for p in line.points}
            assert len(rows) == 1
            assert len(line.points) == 4

    def test_cols_as_lines(self):
        g = Grid(3, 4)
        lines = g.lines((1, 0))
        assert len(lines) == 4

    def test_diagonal_lines(self):
        g = Grid(3, 3)
        lines = g.lines((1, 1))
        assert len(lines) == 5  # anti-diagonals of a 3x3

    def test_line_points_ordered_along_direction(self):
        g = Grid(4, 4)
        for line in g.lines((1, 1)):
            for p, q in zip(line.points, line.points[1:]):
                assert (q[0] - p[0], q[1] - p[1]) == (1, 1)

    def test_line_of(self):
        g = Grid(4, 4)
        d = (0, 1)
        idx = g.line_of((2, 3), d)
        lines = g.lines(d)
        assert (2, 3) in lines[idx].points

    @given(st.integers(1, 5), st.integers(1, 5), DIRS)
    @settings(max_examples=200)
    def test_lines_partition_grid(self, rows, cols, d):
        g = Grid(rows, cols)
        seen = set()
        for line in g.lines(d):
            for p in line.points:
                assert p not in seen
                seen.add(p)
                assert cross(p, d) == line.raw_id
        assert len(seen) == g.size


class TestLineChains:
    def test_row_lines_shifted_by_column_step(self):
        g = Grid(4, 4)
        # multicast along rows (0,1); systolic hop down (1,0)
        shift = g.line_shift((0, 1), (1, 0))
        assert shift == 1
        chains = g.line_chain((0, 1), (1, 0))
        assert len(chains) == 1
        assert len(chains[0]) == 4

    def test_parallel_directions_rejected(self):
        g = Grid(4, 4)
        with pytest.raises(ValueError):
            g.line_chain((0, 1), (0, 1))

    def test_diagonal_chain(self):
        g = Grid(3, 3)
        chains = g.line_chain((1, 1), (1, 0))
        total = sum(len(c) for c in chains)
        assert total == len(g.lines((1, 1)))

    @given(st.integers(2, 4), st.integers(2, 4))
    @settings(max_examples=50)
    def test_chains_cover_all_lines(self, rows, cols):
        g = Grid(rows, cols)
        mc, sy = (0, 1), (1, 0)
        chains = g.line_chain(mc, sy)
        covered = [raw for chain in chains for raw in chain]
        assert sorted(covered) == sorted(line.raw_id for line in g.lines(mc))
