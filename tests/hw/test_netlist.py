"""Unit tests for the structural netlist IR."""

import pytest

from repro.hw.netlist import Module, flatten


def make_adder():
    m = Module("adder")
    a = m.input("a", 8)
    b = m.input("b", 8)
    m.output("y", m.add(a, b))
    return m


class TestModuleBuilder:
    def test_ports(self):
        m = make_adder()
        assert set(m.inputs) == {"a", "b"}
        assert set(m.outputs) == {"y"}

    def test_duplicate_port_rejected(self):
        m = Module("m")
        m.input("a", 4)
        with pytest.raises(ValueError):
            m.input("a", 4)

    def test_wire_names_uniquified(self):
        m = Module("m")
        w1 = m.wire("x", 4)
        w2 = m.wire("x", 4)
        assert w1.name != w2.name

    def test_zero_width_rejected(self):
        m = Module("m")
        with pytest.raises(ValueError):
            m.wire("w", 0)

    def test_foreign_wire_rejected(self):
        m1, m2 = Module("a"), Module("b")
        w = m1.input("x", 4)
        with pytest.raises(ValueError):
            m2.add(w, w)

    def test_output_must_be_local(self):
        m1, m2 = Module("a"), Module("b")
        w = m1.input("x", 4)
        with pytest.raises(ValueError):
            m2.output("y", w)

    def test_double_drive_rejected(self):
        m = Module("m")
        a = m.input("a", 4)
        m.add(a, a)
        # driving an input port wire via instance output would double-drive;
        # simulate by trying to reuse a driven wire as instance output.
        child = make_adder()
        y = m.wire("y", 8)
        a8 = m.input("a8", 8)
        m.instantiate(child, "u0", a=a8, b=a8, y=y)
        with pytest.raises(ValueError):
            m.instantiate(child, "u1", a=a8, b=a8, y=y)

    def test_delay_chain(self):
        m = Module("m")
        a = m.input("a", 4)
        out = m.delay(a, 3)
        m.output("y", out)
        assert m.cell_count()["reg"] == 3
        assert m.delay(a, 0) is a

    def test_instantiate_validates_ports(self):
        child = make_adder()
        m = Module("top")
        a = m.input("a", 8)
        with pytest.raises(ValueError):  # missing input b
            m.instantiate(child, "u0", a=a)
        with pytest.raises(ValueError):  # unknown port
            m.instantiate(child, "u0", a=a, b=a, zz=a)
        narrow = m.input("n", 4)
        with pytest.raises(ValueError):  # width mismatch
            m.instantiate(child, "u0", a=a, b=narrow)

    def test_cell_count_recursive(self):
        child = make_adder()
        top = Module("top")
        a = top.input("a", 8)
        y0, y1 = top.wire("y0", 8), top.wire("y1", 8)
        top.instantiate(child, "u0", a=a, b=a, y=y0)
        top.instantiate(child, "u1", a=a, b=y0, y=y1)
        top.output("y", y1)
        assert top.cell_count()["add"] == 2

    def test_submodules_unique(self):
        child = make_adder()
        top = Module("top")
        a = top.input("a", 8)
        y0, y1 = top.wire("y0", 8), top.wire("y1", 8)
        top.instantiate(child, "u0", a=a, b=a, y=y0)
        top.instantiate(child, "u1", a=a, b=y0, y=y1)
        assert top.submodules() == [child]


class TestFlatten:
    def test_flat_adder(self):
        flat = flatten(make_adder())
        assert flat.stats()["add"] == 1
        assert set(flat.inputs) == {"a", "b"}
        assert set(flat.outputs) == {"y"}

    def test_hierarchy_flattens(self):
        child = make_adder()
        top = Module("top")
        a = top.input("a", 8)
        b = top.input("b", 8)
        y0 = top.wire("y0", 8)
        top.instantiate(child, "u0", a=a, b=b, y=y0)
        y1 = top.wire("y1", 8)
        top.instantiate(child, "u1", a=y0, b=b, y=y1)
        top.output("y", y1)
        flat = flatten(top)
        assert flat.stats()["add"] == 2

    def test_comb_cycle_detected(self):
        m = Module("m")
        a = m.input("a", 4)
        placeholder = m.wire("loop", 4)
        s = m.add(a, placeholder)
        # create a cycle: retarget placeholder usage onto s's own output
        for cell in m.cells:
            for pin, w in cell.pins.items():
                if w is placeholder:
                    cell.pins[pin] = s
        m.output("y", s)
        with pytest.raises(ValueError, match="combinational cycle"):
            flatten(m)

    def test_register_breaks_cycle(self):
        """acc := acc + a is fine: the reg output is a source."""
        m = Module("m")
        a = m.input("a", 8)
        ph = m.wire("ph", 8)
        q = m.reg(ph, name="acc")
        s = m.add(q, a)
        for cell in m.cells:
            for pin, w in cell.pins.items():
                if w is ph:
                    cell.pins[pin] = s
        m.output("y", q)
        flat = flatten(m)  # must not raise
        assert flat.stats()["reg"] == 1

    def test_comb_order_topological(self):
        m = Module("m")
        a = m.input("a", 8)
        x = m.add(a, a, name="x")
        y = m.add(x, a, name="y")
        z = m.add(y, x, name="z")
        m.output("o", z)
        flat = flatten(m)
        pos = {c.out: i for i, c in enumerate(flat.comb_cells)}
        for cell in flat.comb_cells:
            for pin_wire in cell.pins.values():
                if pin_wire in pos:
                    assert pos[pin_wire] < pos[cell.out]
