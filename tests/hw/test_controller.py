"""Controller tests: the generated counter FSM must match StageTiming."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.controller import StageTiming, build_controller
from repro.sim.engine import Simulator


class TestStageTiming:
    def test_phase_boundaries_with_load_and_drain(self):
        t = StageTiming(load_len=4, exec_len=10, drain_len=4)
        assert t.swap_in_cycle == 4
        assert t.exec_start == 5
        assert t.exec_end == 15
        assert t.swap_out_cycle == 15
        assert t.drain_start == 16
        assert t.total == 20

    def test_no_load_no_drain(self):
        t = StageTiming(load_len=0, exec_len=7, drain_len=0)
        assert t.swap_in_cycle is None
        assert t.exec_start == 0
        assert t.swap_out_cycle is None
        assert t.total == 7

    def test_phase_of(self):
        t = StageTiming(load_len=2, exec_len=3, drain_len=2)
        phases = [t.phase_of(c) for c in range(t.total)]
        assert phases == [
            "load", "load", "swap_in", "execute", "execute", "execute",
            "swap_out", "drain", "drain",
        ]

    def test_phase_of_wraps(self):
        t = StageTiming(load_len=1, exec_len=2, drain_len=0)
        assert t.phase_of(t.total) == t.phase_of(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StageTiming(load_len=0, exec_len=0, drain_len=0)
        with pytest.raises(ValueError):
            StageTiming(load_len=-1, exec_len=2, drain_len=0)


def run_controller(timing: StageTiming, cycles: int):
    ctrl = build_controller(timing)
    sim = Simulator(ctrl)
    trace = []
    for _ in range(cycles):
        sim.settle()
        trace.append(
            {
                "cycle": sim.peek("cycle", signed=False),
                "load_en": sim.peek("load_en", signed=False),
                "swap_in": sim.peek("swap_in", signed=False),
                "acc_clear": sim.peek("acc_clear", signed=False),
                "swap_out": sim.peek("swap_out", signed=False),
                "drain_en": sim.peek("drain_en", signed=False),
                "stage_done": sim.peek("stage_done", signed=False),
            }
        )
        sim.clock_edge()
    return trace


class TestControllerNetlist:
    def assert_matches_timing(self, timing: StageTiming):
        trace = run_controller(timing, 2 * timing.total + 3)
        for t, row in enumerate(trace):
            c = t % timing.total
            phase = timing.phase_of(c)
            assert row["cycle"] == c, f"cycle mismatch at t={t}"
            assert row["load_en"] == (1 if phase == "load" else 0), (t, phase)
            assert row["swap_in"] == (1 if phase == "swap_in" else 0), (t, phase)
            assert row["swap_out"] == (1 if phase == "swap_out" else 0), (t, phase)
            assert row["drain_en"] == (1 if phase == "drain" else 0), (t, phase)
            assert row["acc_clear"] == (1 if c == timing.exec_start else 0), (t, phase)
            assert row["stage_done"] == (1 if c == timing.total - 1 else 0)

    def test_full_schedule(self):
        self.assert_matches_timing(StageTiming(load_len=3, exec_len=5, drain_len=3))

    def test_exec_only(self):
        self.assert_matches_timing(StageTiming(load_len=0, exec_len=6, drain_len=0))

    def test_power_of_two_total_regression(self):
        """Regression: a stage length of exactly 2^n used to truncate the
        drain-phase upper-bound constant to zero (drain_en stuck low)."""
        timing = StageTiming(load_len=0, exec_len=11, drain_len=4)
        assert timing.total == 16
        self.assert_matches_timing(timing)

    def test_single_cycle_exec(self):
        self.assert_matches_timing(StageTiming(load_len=1, exec_len=1, drain_len=1))

    @given(
        st.integers(0, 4), st.integers(1, 9), st.integers(0, 4)
    )
    @settings(max_examples=30, deadline=None)
    def test_property_any_schedule(self, load, execn, drain):
        self.assert_matches_timing(StageTiming(load_len=load, exec_len=execn, drain_len=drain))
