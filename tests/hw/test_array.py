"""Structural tests for PE array generation and interconnect."""

import pytest

from repro.core import naming
from repro.core.dataflow import DataflowType
from repro.hw.array import (
    acc_port,
    build_array,
    drain_port,
    load_port,
)
from repro.ir import workloads


@pytest.fixture(scope="module")
def gemm():
    return workloads.gemm(8, 8, 8)


class TestSystolicWiring:
    def test_output_stationary_boundary_ports(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SST")
        arr, info = build_array(spec, 4, 4)
        # A flows along one axis, B along the other: 4 entries each.
        a_dir = info.tensor("A").sy_space
        b_dir = info.tensor("B").sy_space
        assert a_dir is not None and b_dir is not None
        assert a_dir != b_dir
        a_ports = [name for name in arr.inputs if name.startswith("a_in_")]
        b_ports = [name for name in arr.inputs if name.startswith("b_in_")]
        assert len(a_ports) == 4
        assert len(b_ports) == 4
        # C stationary: one drain port per column.
        for c in range(4):
            assert drain_port("c", c) in arr.outputs

    def test_pe_instance_count(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SST")
        arr, _ = build_array(spec, 3, 5)
        assert len(arr.instances) == 15

    def test_weight_stationary_ports(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-STS")
        arr, _ = build_array(spec, 4, 4)
        for c in range(4):
            assert load_port("b", c) in arr.inputs
        # systolic output exits on the boundary
        c_outs = [name for name in arr.outputs if name.startswith("c_out_")]
        assert len(c_outs) == 4

    def test_delay_registers_for_multicycle_step(self, gemm):
        """A systolic step with dt=2 inserts dt-1 extra link registers."""
        from repro.core.dataflow import analyze
        from repro.core.stt import STT

        # time row (1,1,2): A's reuse dir (0,1,0) maps to (0,1,... t=1);
        # craft T with A step dt=2: T=[[1,0,0],[0,1,0],[1,2,1]] -> T@(0,1,0)=(0,1,2)
        spec = analyze(gemm, ("m", "n", "k"), STT([[1, 0, 0], [0, 1, 0], [1, 2, 1]]))
        assert spec.flow("A").systolic_direction == (0, 1, 2)
        arr, _ = build_array(spec, 3, 3)
        flat_regs = arr.cell_count()["reg"]
        spec1 = analyze(gemm, ("m", "n", "k"), STT([[1, 0, 0], [0, 1, 0], [1, 1, 1]]))
        arr1, _ = build_array(spec1, 3, 3)
        assert flat_regs > arr1.cell_count()["reg"]


class TestMulticastWiring:
    def test_row_buses(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-MTM")
        arr, info = build_array(spec, 4, 4)
        a_buses = [name for name in arr.inputs if name.startswith("a_bus_")]
        assert len(a_buses) == 4  # one bus per line
        # Output reduction trees: one sum port per line.
        c_sums = [name for name in arr.outputs if name.startswith("c_sum_")]
        assert len(c_sums) == 4

    def test_reduction_tree_adder_count(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-MTM")
        arr, _ = build_array(spec, 4, 4)
        # own cells only (not inside PEs): 4 lines x (4-1) adders, plus the
        # array has no other adders of its own.
        own = arr.cell_count(recursive=False)
        assert own["add"] == 4 * 3

    def test_eyeriss_diagonal_buses(self):
        """Diagonal multicast (paper Fig. 4c) produces 2R-1 line buses."""
        dw = workloads.depthwise_conv(k=4, y=4, x=4, p=3, q=3)
        spec = naming.spec_from_name(dw, "KQX-MMM")
        arr, info = build_array(spec, 4, 4)
        diag_flows = [
            fl for fl in spec.flows if fl.multicast_direction is not None
            and fl.multicast_direction[0] != 0 and fl.multicast_direction[1] != 0
        ]
        assert diag_flows, "expected at least one diagonal multicast tensor"
        t = diag_flows[0].tensor_name.lower()
        ports = [n for n in list(arr.inputs) + list(arr.outputs) if n.startswith(f"{t}_")]
        assert len(ports) == 7  # 2*4 - 1 diagonals


class TestUnicastWiring:
    def test_per_pe_ports(self):
        bg = workloads.batched_gemv(4, 4, 4)
        spec = naming.spec_from_name(bg, "MNK-UST")
        arr, _ = build_array(spec, 4, 4)
        a_ports = [name for name in arr.inputs if name.startswith("a_in_")]
        assert len(a_ports) == 16


class TestFullReuse:
    def test_global_tree_and_accumulator(self):
        conv = workloads.conv2d(k=4, c=4, y=4, x=4, p=3, q=3)
        spec = naming.spec_from_name(conv, "CPQ-UUB")
        assert spec.output_flow.kind is DataflowType.FULL_REUSE
        arr, info = build_array(spec, 4, 4)
        assert acc_port("c") in arr.outputs
        own = arr.cell_count(recursive=False)
        assert own["add"] >= 16 - 1 + 1  # global tree + accumulator add
        assert "acc_clear" in arr.inputs


class TestControls:
    def test_controls_forwarded(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SST")
        arr, info = build_array(spec, 4, 4)
        for ctl in ("acc_clear", "swap_out", "drain_en"):
            assert ctl in arr.inputs
            assert ctl in info.controls

    def test_no_spurious_controls(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SSS")  # nothing stationary
        arr, info = build_array(spec, 4, 4)
        assert "load_en" not in arr.inputs
        assert "drain_en" not in arr.inputs
