"""Tests for PE template generation (paper Fig. 3 modules)."""

import pytest

from repro.core import naming
from repro.core.dataflow import DataflowType
from repro.hw.pe import build_pe
from repro.ir import workloads
from repro.sim.engine import Simulator


@pytest.fixture(scope="module")
def gemm():
    return workloads.gemm(8, 8, 8)


class TestPortShapes:
    def test_output_stationary_ports(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SST")
        pe, ports = build_pe(spec)
        # systolic inputs a, b: in + forwarded out
        assert "a_in" in pe.inputs and "a_out" in pe.outputs
        assert "b_in" in pe.inputs and "b_out" in pe.outputs
        # stationary output c: drain chain + controls
        assert "c_drain_in" in pe.inputs and "c_drain_out" in pe.outputs
        for ctl in ("acc_clear", "swap_out", "drain_en"):
            assert ctl in pe.inputs
            assert ports.needs(ctl)
        assert not ports.needs("load_en")

    def test_weight_stationary_ports(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-STS")
        pe, ports = build_pe(spec)
        assert "b_load_in" in pe.inputs and "b_load_out" in pe.outputs
        assert ports.needs("load_en") and ports.needs("swap_in")
        assert "c_psum_in" in pe.inputs and "c_out" in pe.outputs

    def test_multicast_tree_ports(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-MTM")
        pe, _ = build_pe(spec)
        assert "a_in" in pe.inputs  # multicast: direct wire
        assert "c_partial" in pe.outputs  # combinational toward the tree

    def test_unicast_output(self):
        ttmc = workloads.ttmc(4, 4, 4, 4, 4)
        spec = naming.spec_from_name(ttmc, "IJK-BBBU")
        pe, _ = build_pe(spec)
        assert "d_out" in pe.outputs

    def test_three_input_product(self):
        mt = workloads.mttkrp(4, 4, 4, 4)
        spec = naming.spec_from_name(mt, "IJK-SSBT")
        pe, _ = build_pe(spec)
        assert pe.cell_count(recursive=False)["mul"] == 2  # a*b*c chains 2 muls

    def test_all_stationary_inputs_rejected(self):
        """No template combination can gate idle cycles when every input is
        stage-held (see pe.py docstring)."""
        from repro.core.dataflow import analyze
        from repro.core.stt import STT

        # i,j,k identity: B and C are multicast_stationary; craft a spec where
        # A is also stage-held is impossible for ttmc, so use a synthetic one.
        from repro.ir.einsum import parse_statement

        stmt = parse_statement("C[i,k] += A[j]", i=4, j=4, k=4)
        spec = analyze(stmt, ("i", "j", "k"), STT([[1, 0, 0], [0, 1, 0], [0, 0, 1]]))
        assert spec.flow("A").kind is DataflowType.MULTICAST_STATIONARY
        with pytest.raises(NotImplementedError):
            build_pe(spec)


class TestPEBehaviour:
    """Simulate single PEs standalone."""

    def test_systolic_forwarding_delay(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SST")
        pe, _ = build_pe(spec)
        sim = Simulator(pe)
        sim.poke("acc_clear", 0)
        sim.poke("swap_out", 0)
        sim.poke("drain_en", 0)
        sim.poke("a_in", 7)
        sim.step()
        assert sim.peek("a_out") == 7  # one register of delay
        sim.poke("a_in", 9)
        sim.settle()
        assert sim.peek("a_out") == 7  # still last cycle's value
        sim.step()
        assert sim.peek("a_out") == 9

    def test_output_stationary_accumulation_and_drain(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-SST")
        pe, _ = build_pe(spec)
        sim = Simulator(pe)
        for port in ("acc_clear", "swap_out", "drain_en", "c_drain_in"):
            sim.poke(port, 0)
        # acc_clear with first product 2*3
        sim.poke("a_in", 2)
        sim.poke("b_in", 3)
        sim.poke("acc_clear", 1)
        sim.step()
        sim.poke("acc_clear", 0)
        # accumulate 4*5
        sim.poke("a_in", 4)
        sim.poke("b_in", 5)
        sim.step()
        # swap_out captures acc = 6 + 20 = 26 into the drain register
        sim.poke("a_in", 0)
        sim.poke("b_in", 0)
        sim.poke("swap_out", 1)
        sim.step()
        sim.poke("swap_out", 0)
        assert sim.peek("c_drain_out") == 26
        # drain shifts in the neighbour's value
        sim.poke("c_drain_in", 111)
        sim.poke("drain_en", 1)
        sim.step()
        assert sim.peek("c_drain_out") == 111

    def test_weight_stationary_double_buffer(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-STS")
        pe, _ = build_pe(spec)
        sim = Simulator(pe)
        for port in ("load_en", "swap_in", "a_in", "b_load_in", "c_psum_in"):
            sim.poke(port, 0)
        # shift 5 into the shadow register
        sim.poke("b_load_in", 5)
        sim.poke("load_en", 1)
        sim.step()
        sim.poke("load_en", 0)
        assert sim.peek("b_load_out") == 5  # shadow visible on the chain
        # swap into the active register
        sim.poke("swap_in", 1)
        sim.step()
        sim.poke("swap_in", 0)
        # now MAC: c_out = psum_in + a*b = 10 + 3*5
        sim.poke("a_in", 3)
        sim.poke("c_psum_in", 10)
        sim.step()
        assert sim.peek("c_out") == 25

    def test_multicast_product_combinational(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-MTM")
        pe, _ = build_pe(spec)
        sim = Simulator(pe)
        sim.poke("load_en", 0)
        sim.poke("swap_in", 0)
        # b is stationary: load 4 and swap in
        sim.poke("b_load_in", 4)
        sim.poke("load_en", 1)
        sim.step()
        sim.poke("load_en", 0)
        sim.poke("swap_in", 1)
        sim.step()
        sim.poke("swap_in", 0)
        sim.poke("a_in", -3)
        sim.settle()
        assert sim.peek("c_partial") == -12  # same cycle (combinational)

    def test_signed_wraparound_matches_width(self, gemm):
        spec = naming.spec_from_name(gemm, "MNK-MTM")
        pe, _ = build_pe(spec, width=8)
        sim = Simulator(pe)
        for port in ("load_en", "swap_in"):
            sim.poke(port, 0)
        sim.poke("b_load_in", 100)
        sim.poke("load_en", 1)
        sim.step()
        sim.poke("load_en", 0)
        sim.poke("swap_in", 1)
        sim.step()
        sim.poke("swap_in", 0)
        sim.poke("a_in", 100)
        sim.settle()
        # 100*100 = 10000 -> wraps to 10000 mod 256 = 16 (two's complement)
        assert sim.peek("c_partial") == ((10000 + 128) % 256) - 128
