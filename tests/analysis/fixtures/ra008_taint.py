"""RA008 fixture: request input reaching sinks, sanitized and not."""

import json
import subprocess


class MiniServer:
    async def _route(self, method, path, params, payload, writer):
        if path == "/v1/report":
            # SEEDED: a body field used as a filesystem path, unsanitized
            destination = payload.get("report_path")
            with open(destination, "w") as fh:
                fh.write("{}")
        elif path == "/v1/batch":
            # SEEDED: an allocation sized by a raw body field — int() alone
            # launders content, not magnitude
            count = int(payload.get("count", 1))
            buffers = [b""] * count
            writer.write(b"%d" % len(buffers))
        elif path == "/v1/lookup":
            # SEEDED: query param steering dynamic dispatch
            handler = getattr(self, params.get("op", "noop"))
            handler()
        elif path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/") :]
            self._job_tool(job_id)
        elif path == "/v1/ok":
            # clean: the item list passes the registered sanitizer, and the
            # cursor passes _since_param, before either touches anything
            items = self._job_items(payload)
            cursor = self._since_param(params) or 0
            writer.write(json.dumps({"items": len(items), "at": cursor}).encode())

    async def _read_frame(self, reader):
        raw = await reader.readline()
        headers = json.loads(raw)
        # SEEDED: wire-declared length sizing a read with no bound check
        body = await reader.readexactly(int(headers.get("length", 0)))
        return body

    def _job_tool(self, job_id):
        # SEEDED (via the one-level call summary from _route): the path
        # segment reaches a subprocess argv
        subprocess.run(["job-tool", job_id])

    def _cache_probe(self, params, cache):
        # SEEDED: a raw query param as a memo-cache key
        return cache.get("designs", params.get("key"))

    @staticmethod
    def _job_items(payload):
        items = payload.get("items") or []
        if len(items) > 64:
            raise ValueError("too many items")
        return [str(i) for i in items]

    @staticmethod
    def _since_param(params):
        raw = params.get("since")
        return None if raw is None else int(raw)

    def noop(self):
        return None
