"""RA005 fixture: lock-order cycles, plus the disciplined patterns.

``AbbaPair`` seeds the classic two-lock inversion; ``TwoInstanceMerge``
seeds the subtler same-class trap (hold *our* lock while taking the same
lock on *another* instance) next to the snapshot-then-fold fix.
"""

import threading


class AbbaPair:
    def __init__(self):
        self._state_lock = threading.Lock()
        self._io_lock = threading.Lock()
        self.state = {}

    def forward(self):
        with self._state_lock:
            # SEEDED: state_lock -> io_lock here, io_lock -> state_lock in
            # backward(): two threads deadlock
            with self._io_lock:
                self.state["io"] = True

    def backward(self):
        with self._io_lock:
            with self._state_lock:
                self.state["io"] = False


class TwoInstanceMerge:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}

    def merge_bad(self, other: "TwoInstanceMerge"):
        # SEEDED: holds self._lock while acquiring other._lock — the same
        # lock on two instances; a.merge_bad(b) racing b.merge_bad(a) hangs
        with self._lock:
            with other._lock:
                self._data.update(other._data)

    def merge_good(self, other: "TwoInstanceMerge"):
        # snapshot-then-fold: never holds both locks at once
        with other._lock:
            theirs = dict(other._data)
        with self._lock:
            self._data.update(theirs)
