# ruff: noqa
"""Waiver-syntax fixture: a waived violation and two malformed pragmas."""

import time


async def waived_inline() -> None:
    time.sleep(0)  # repro-lint: waive[RA001] fixture: deliberate, covered by test


async def waived_standalone() -> None:
    # repro-lint: waive[RA001] fixture: standalone comment covers the next line
    time.sleep(0)


async def unwaived() -> None:
    time.sleep(0)  # this one must still be reported


async def bad_pragmas() -> None:
    x = 1  # repro-lint: wave[RA001] typo in the verb -> RA000
    y = 2  # repro-lint: waive[RA001]
    return x + y
