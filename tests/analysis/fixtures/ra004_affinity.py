# ruff: noqa
"""RA004 fixture: an asyncio primitive poked from a worker thread.

`BadBridge._worker` runs on an executor thread (dispatched by reference from
`run`) and calls `.set()` on an asyncio.Event directly — the seeded
violation.  `GoodBridge` routes the same wake-up through
`loop.call_soon_threadsafe`, the sanctioned pattern.
"""

import asyncio


class BadBridge:
    def __init__(self):
        self._done = asyncio.Event()

    def _worker(self):
        # SEEDED: asyncio.Event.set() from a thread corrupts loop state
        self._done.set()

    async def run(self):
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._worker)
        await self._done.wait()


class GoodBridge:
    def __init__(self):
        self._done = asyncio.Event()
        self._loop = None

    def _worker(self):
        self._loop.call_soon_threadsafe(self._done.set)

    async def run(self):
        self._loop = asyncio.get_running_loop()
        await self._loop.run_in_executor(None, self._worker)
        await self._done.wait()
