"""RA007 fixture: a fold path with seeded nondeterminism beside clean code."""

import time


class MiniCoordinator:
    def sweep(self, shards):
        rows = []
        for shard in shards:
            rows.extend(self._fold_rows(shard))
        rows.extend(self.sorted_fold(shards))
        return rows

    def _fold_rows(self, shard):
        # SEEDED: iterating a bare set — salted, per-process order
        seen = set(shard)
        out = []
        for item in seen:
            out.append(self._stamp(item))
        return out

    def _stamp(self, item):
        # SEEDED: wall-clock read two hops down the fold path
        return (item, time.time())

    def sorted_fold(self, shards):
        # sorting the set restores a stable order: not a finding
        return [item for item in sorted(set(shards))]


class MiniSession:
    def sweep(self, designs):
        # Session classes are transport, not fold executors: retry jitter
        # here is legitimate and must not be flagged
        time.sleep(0.01)
        return designs
