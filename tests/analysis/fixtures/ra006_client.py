"""RA006 fixture: both client classes route errors through the decoder."""

from fixsvc import wire


class RemoteSession:
    def _call(self, payload):
        if "error_type" in payload:
            wire.raise_remote_error(payload)
        return payload


class AsyncRemoteSession:
    async def _call(self, payload):
        if "error_type" in payload:
            wire.raise_remote_error(payload)
        return payload
