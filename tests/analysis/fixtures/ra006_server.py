"""RA006 fixture: a server whose handler tree raises one unmapped type."""

from fixsvc import wire


class MiniServer:
    async def _route(self, method, path, payload):
        if path == "/v1/schema" and payload.get("v") != 1:
            raise wire.SchemaVersionError("unsupported schema")
        if path == "/v1/jobs":
            return self._submit(payload)
        raise LookupError(path)

    def _submit(self, payload):
        if "design" not in payload:
            raise ValueError("missing design")
        if payload.get("admin"):
            # SEEDED: PermissionError has no _ERROR_TYPES entry — the
            # client would see a bare RuntimeError
            raise PermissionError("admin endpoints are disabled")
        return {"ok": True}

    def not_a_server_path(self):
        # unreachable from _route: an unmapped raise here is fine
        raise OSError("local-only failure")
