# ruff: noqa
"""RA002 fixture: a miniature client for the paired server fixture.

Calls GET /v1/healthz, POST /v1/evaluate, GET /v1/jobs/<id>?since= — plus a
POST /v1/flush the server fixture does not implement (the seeded drift).
"""


class MiniClient:
    def _call(self, method, path, body=None):
        raise NotImplementedError

    def healthz(self):
        return self._call("GET", "/v1/healthz")

    def evaluate(self, payload):
        return self._call("POST", "/v1/evaluate", payload)

    def job(self, job_id, since=0):
        path = f"/v1/jobs/{job_id}"
        if since:
            path += f"?since={int(since)}"
        return self._call("GET", path)

    def flush(self):
        # SEEDED: the server fixture has no POST /v1/flush route
        return self._call("POST", "/v1/flush")
