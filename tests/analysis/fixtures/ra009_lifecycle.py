"""RA009 fixture: resources leaked and resources correctly discharged."""

import asyncio
import json
import subprocess
from concurrent.futures import ProcessPoolExecutor


class MiniCoordinator:
    async def leaky_fanout(self, shards):
        # SEEDED: tasks spawned and never cancelled/awaited/handed off
        watchers = []
        for shard in shards:
            watchers.append(asyncio.create_task(self._watch(shard)))
        await asyncio.sleep(1)

    async def leaky_pool(self, items):
        # SEEDED: a process pool with no shutdown on any path
        pool = ProcessPoolExecutor(max_workers=2)
        return [pool.submit(json.dumps, item) for item in items]

    def leaky_probe(self, cmd):
        # SEEDED: a subprocess spawned and abandoned
        subprocess.Popen(cmd)
        return True

    async def clean_fanout(self, shards, state):
        # the coordinator teardown idiom: cancel-by-iteration + gather,
        # not under finally — may-release counts it
        folder = asyncio.create_task(self._fold(state))
        workers = []
        for shard in shards:
            workers.append(asyncio.create_task(self._watch(shard)))
        await state.done.wait()
        for task in workers:
            task.cancel()
        folder.cancel()
        await asyncio.gather(*workers, folder, return_exceptions=True)

    def clean_pool(self, items):
        pool = ProcessPoolExecutor(max_workers=2)
        try:
            return [f.result() for f in [pool.submit(json.dumps, i) for i in items]]
        finally:
            pool.shutdown()

    def clean_handoff(self):
        # ownership transfer: stored on an attribute, the object owns it now
        self._runner = asyncio.ensure_future(self._fold(None))

    def clean_file(self, path):
        with open(path) as fh:
            return fh.read()

    async def _watch(self, shard):
        await asyncio.sleep(0)

    async def _fold(self, state):
        await asyncio.sleep(0)
