# ruff: noqa
"""RA002 fixture: a miniature server `_route` dispatcher.

Implements GET /v1/healthz, POST /v1/evaluate, GET /v1/jobs/<id> — but NOT
the POST /v1/flush the paired client fixture calls (the seeded drift).
"""


class MiniServer:
    async def _route(self, method, path, params, body, writer):
        route = (method, path)
        if route == ("GET", "/v1/healthz"):
            return {"ok": True}
        if route == ("POST", "/v1/evaluate"):
            return {"result": body}
        if method == "GET" and path.startswith("/v1/jobs/"):
            since = params.get("since")
            return {"job": path, "since": since}
        raise LookupError(path)
