# ruff: noqa
"""RA003 fixture: lock-discipline violation plus a clean twin class."""

import threading


class LeakyCache:
    """Mutates `_entries` under the lock in one place, bare in another."""

    def __init__(self):
        self._lock = threading.RLock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._entries.update({})

    def get(self, key):
        # SEEDED: `_entries` is lock-guarded elsewhere but read bare here
        return self._entries.get(key)


class TidyCache:
    """Every `_entries` touch outside __init__ holds the lock."""

    def __init__(self):
        self._lock = threading.RLock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def get(self, key):
        with self._lock:
            return self._entries.get(key)
