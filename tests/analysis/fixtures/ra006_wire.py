"""RA006 fixture: the miniature wire module (the error-envelope waist)."""


class SchemaVersionError(ValueError):
    pass


_ERROR_TYPES: dict = {
    "SchemaVersionError": SchemaVersionError,
    "LookupError": LookupError,
    "ValueError": ValueError,
}


def raise_remote_error(payload):
    exc_type = _ERROR_TYPES.get(payload.get("error_type", ""), RuntimeError)
    raise exc_type(payload.get("error", "remote failure"))
