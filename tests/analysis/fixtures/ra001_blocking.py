# ruff: noqa
"""RA001 fixture: blocking calls reachable from async bodies.

Loaded as *text* by tests/analysis/test_checkers.py and fed to the checker
via SourceFile.from_text — never imported.  Each seeded violation is marked
with a `SEEDED:` comment so the asserting test reads like the checker's spec.
"""

import asyncio
import time


def _sync_helper() -> None:
    # SEEDED: blocking call two hops below a coroutine (indirect RA001)
    with open("/tmp/fixture", "w") as fh:
        fh.write("x")


def _middle() -> None:
    _sync_helper()


async def handler() -> None:
    # SEEDED: direct blocking call on the event loop (direct RA001)
    time.sleep(0.1)
    _middle()


async def offloaded_is_fine() -> None:
    loop = asyncio.get_running_loop()
    # a *reference* handed to an executor is not a loop-context call edge
    await loop.run_in_executor(None, _sync_helper)
