"""Each RA checker catches its seeded fixture; the suppression layers work.

The fixtures under ``tests/analysis/fixtures/`` are loaded as *text* and fed
through :meth:`SourceFile.from_text` — they are never imported, and each
seeded violation is marked with a ``SEEDED:`` comment in the fixture itself.
"""

from pathlib import Path

import pytest

from repro.analysis import LintOptions, run_lint
from repro.analysis.checkers import LintContext
from repro.analysis.checkers.blocking import BlockingInAsyncChecker, classify_blocking
from repro.analysis.checkers.determinism import FoldDeterminismChecker
from repro.analysis.checkers.error_contract import ErrorEnvelopeChecker
from repro.analysis.checkers.lifecycle import ResourceLifecycleChecker
from repro.analysis.checkers.lock_order import LockOrderChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.loop_affinity import LoopAffinityChecker
from repro.analysis.checkers.taint import TaintChecker
from repro.analysis.checkers.wire_contract import WireContractChecker
from repro.analysis.findings import scan_waivers
from repro.analysis.source import SourceFile, load_source

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).parent.parent.parent
SRC = REPO / "src" / "repro"


def real_source(rel: str) -> SourceFile:
    """A real repo module, display-pathed the way the runner loads it."""
    return load_source(SRC / rel, SRC.parent)


def real_service_sources() -> list[SourceFile]:
    """The modules the cross-module checkers need for surgery tests."""
    rels = [
        "service/wire.py",
        "service/server.py",
        "service/client.py",
        "service/coordinator.py",
        "explore/engine.py",
        "api/types.py",
    ]
    return [real_source(rel) for rel in rels]


def surgically(sources: list[SourceFile], rel_suffix: str, old: str, new: str):
    """Replace ``old`` with ``new`` in the one source ending in ``rel_suffix``."""
    out = []
    for source in sources:
        if source.rel.endswith(rel_suffix):
            assert old in source.text, f"{old!r} not found in {source.rel}"
            out.append(SourceFile.from_text(source.text.replace(old, new), source.rel))
        else:
            out.append(source)
    return out


def fixture_source(name: str, rel: str | None = None) -> SourceFile:
    text = (FIXTURES / name).read_text()
    return SourceFile.from_text(text, rel=rel or name)


def check_one(checker, *sources, docs_text=None):
    context = LintContext(docs_text=docs_text, summary={})
    return checker.check(list(sources), context)


class TestBlockingChecker:
    def test_direct_blocking_call_caught(self):
        findings = check_one(BlockingInAsyncChecker(), fixture_source("ra001_blocking.py"))
        direct = [f for f in findings if f.symbol == "handler" and "time.sleep" in f.message]
        assert direct, findings
        assert "in async handler" in direct[0].message

    def test_indirect_chain_caught_and_reported(self):
        findings = check_one(BlockingInAsyncChecker(), fixture_source("ra001_blocking.py"))
        indirect = [f for f in findings if f.symbol == "_sync_helper"]
        assert indirect, findings
        # the message names the whole call chain back to the coroutine
        assert "handler -> _middle -> _sync_helper" in indirect[0].message

    def test_executor_reference_not_flagged(self):
        findings = check_one(BlockingInAsyncChecker(), fixture_source("ra001_blocking.py"))
        assert not [f for f in findings if f.symbol == "offloaded_is_fine"]

    def test_classifier_strips_self(self):
        assert classify_blocking("self.session.flush") is not None
        assert classify_blocking("asyncio.sleep") is None


class TestLockChecker:
    def test_unguarded_read_of_guarded_attr_caught(self):
        findings = check_one(LockDisciplineChecker(), fixture_source("ra003_locks.py"))
        assert len(findings) == 1, findings
        finding = findings[0]
        assert finding.symbol == "LeakyCache.get"
        assert "_entries" in finding.message and "_lock" in finding.message

    def test_disciplined_class_is_clean(self):
        findings = check_one(LockDisciplineChecker(), fixture_source("ra003_locks.py"))
        assert not [f for f in findings if f.symbol.startswith("TidyCache")]


class TestLoopAffinityChecker:
    def test_thread_side_set_caught(self):
        findings = check_one(LoopAffinityChecker(), fixture_source("ra004_affinity.py"))
        assert len(findings) == 1, findings
        finding = findings[0]
        assert finding.symbol == "BadBridge._worker"
        assert ".set()" in finding.message
        assert "call_soon_threadsafe" in finding.message

    def test_call_soon_threadsafe_pattern_is_clean(self):
        findings = check_one(LoopAffinityChecker(), fixture_source("ra004_affinity.py"))
        assert not [f for f in findings if f.symbol.startswith("GoodBridge")]


class TestWireContractChecker:
    """The miniature server/client/docs trio drifts in exactly one place."""

    def trio(self):
        server = fixture_source("ra002_server.py", rel="mini/service/server.py")
        client = fixture_source("ra002_client.py", rel="mini/service/client.py")
        docs = (FIXTURES / "ra002_docs.md").read_text()
        return server, client, docs

    def test_seeded_drift_caught(self):
        server, client, docs = self.trio()
        findings = check_one(WireContractChecker(), server, client, docs_text=docs)
        assert len(findings) == 1, findings
        assert "POST /v1/flush" in findings[0].message
        assert findings[0].path == "mini/service/client.py"

    def test_agreeing_trio_is_clean(self):
        server, client, docs = self.trio()
        fixed = client.text.replace('self._call("POST", "/v1/flush")', "None")
        client = SourceFile.from_text(fixed, rel=client.rel)
        findings = check_one(WireContractChecker(), server, client, docs_text=docs)
        assert findings == [], findings

    def test_no_service_sources_is_a_noop(self):
        context = LintContext(summary={})
        findings = WireContractChecker().check(
            [fixture_source("ra001_blocking.py")], context
        )
        assert findings == []
        assert context.summary["ra002_routes"] == 0


class TestLockOrderChecker:
    def test_abba_cycle_caught(self):
        findings = check_one(LockOrderChecker(), fixture_source("ra005_lock_order.py"))
        cycles = [f for f in findings if "lock-order cycle" in f.message]
        assert len(cycles) == 1, findings
        assert "_state_lock" in cycles[0].message
        assert "_io_lock" in cycles[0].message

    def test_two_instance_same_lock_caught(self):
        findings = check_one(LockOrderChecker(), fixture_source("ra005_lock_order.py"))
        same = [f for f in findings if f.symbol == "TwoInstanceMerge.merge_bad"]
        assert len(same) == 1, findings
        assert "'other'" in same[0].message and "'self'" in same[0].message

    def test_snapshot_then_fold_is_clean(self):
        findings = check_one(LockOrderChecker(), fixture_source("ra005_lock_order.py"))
        assert not [f for f in findings if f.symbol == "TwoInstanceMerge.merge_good"]

    def test_real_merge_from_discipline_is_clean(self):
        """The documented snapshot-then-fold in MemoCache.merge_from holds."""
        context = LintContext(summary={})
        findings = LockOrderChecker().check(real_service_sources(), context)
        assert findings == [], findings
        # ... and not vacuously: the checker saw the real acquisition sites
        assert context.summary["ra005_lock_sites"] >= 9
        assert context.summary["ra005_lock_keys"] >= 2

    def test_deletion_sensitivity_inverted_merge_from(self):
        """Nesting ours inside other._lock in merge_from must be caught."""
        sources = surgically(
            real_service_sources(),
            "explore/engine.py",
            "        with other._lock:\n"
            "            theirs = {s: dict(other._data[s]) for s in self._SECTIONS}\n",
            "        with other._lock:\n"
            "            with self._lock:\n"
            "                theirs = {s: dict(other._data[s]) for s in self._SECTIONS}\n",
        )
        findings = check_one(LockOrderChecker(), *sources)
        assert any(
            f.symbol == "MemoCache.merge_from" and "two threads" in f.message.lower()
            for f in findings
        ), findings


class TestErrorEnvelopeChecker:
    def trio(self):
        return [
            fixture_source("ra006_wire.py", rel="fixsvc/wire.py"),
            fixture_source("ra006_server.py", rel="fixsvc/server.py"),
            fixture_source("ra006_client.py", rel="fixsvc/client.py"),
        ]

    def test_unmapped_raise_on_server_path_caught(self):
        findings = check_one(ErrorEnvelopeChecker(), *self.trio())
        assert len(findings) == 1, findings
        finding = findings[0]
        assert finding.symbol == "MiniServer._submit"
        assert "PermissionError" in finding.message
        assert "_route -> " in finding.message or "-> MiniServer._submit" in finding.message

    def test_unreachable_raise_not_flagged(self):
        findings = check_one(ErrorEnvelopeChecker(), *self.trio())
        assert not [f for f in findings if "OSError" in f.message]

    def test_mapped_raises_are_clean(self):
        sources = self.trio()
        fixed = surgically(
            sources,
            "fixsvc/server.py",
            'raise PermissionError("admin endpoints are disabled")',
            'raise ValueError("admin endpoints are disabled")',
        )
        findings = check_one(ErrorEnvelopeChecker(), *fixed)
        assert findings == [], findings

    def test_client_without_decoder_caught(self):
        broken = surgically(
            self.trio(),
            "fixsvc/client.py",
            """class RemoteSession:
    def _call(self, payload):
        if "error_type" in payload:
            wire.raise_remote_error(payload)
        return payload""",
            """class RemoteSession:
    def _call(self, payload):
        return payload""",
        )
        findings = check_one(ErrorEnvelopeChecker(), *broken)
        assert any(
            f.symbol == "RemoteSession" and "raise_remote_error" in f.message
            for f in findings
        ), findings

    def test_no_error_table_is_a_noop(self):
        findings = check_one(
            ErrorEnvelopeChecker(), fixture_source("ra001_blocking.py")
        )
        assert findings == []

    def test_real_contract_is_clean_and_not_vacuous(self):
        context = LintContext(summary={})
        findings = ErrorEnvelopeChecker().check(real_service_sources(), context)
        assert findings == [], findings
        assert context.summary["ra006_error_types"] >= 6
        assert context.summary["ra006_server_raises"] >= 10
        assert context.summary["ra006_decoders"] == 2

    def test_deletion_sensitivity_error_types_entry(self):
        """Dropping wire._ERROR_TYPES['ValueError'] must fail the lint."""
        sources = surgically(
            real_service_sources(),
            "service/wire.py",
            '    "ValueError": ValueError,\n',
            "",
        )
        findings = check_one(ErrorEnvelopeChecker(), *sources)
        assert any("ValueError" in f.message for f in findings), findings

    def test_deletion_sensitivity_decoder_table_use(self):
        """raise_remote_error that stops consulting the table must fail."""
        sources = surgically(
            real_service_sources(),
            "service/wire.py",
            "exc_type = _ERROR_TYPES.get(",
            "exc_type = dict().get(",
        )
        findings = check_one(ErrorEnvelopeChecker(), *sources)
        assert any(
            f.symbol == "raise_remote_error" and "_ERROR_TYPES" in f.message
            for f in findings
        ), findings


class TestFoldDeterminismChecker:
    def test_bare_set_iteration_caught(self):
        findings = check_one(FoldDeterminismChecker(), fixture_source("ra007_fold.py"))
        sets = [f for f in findings if "bare set" in f.message]
        assert len(sets) == 1, findings
        assert sets[0].symbol == "MiniCoordinator._fold_rows"

    def test_clock_read_down_the_chain_caught(self):
        findings = check_one(FoldDeterminismChecker(), fixture_source("ra007_fold.py"))
        clocks = [f for f in findings if "time.time" in f.message]
        assert len(clocks) == 1, findings
        assert clocks[0].symbol == "MiniCoordinator._stamp"
        assert "fold path" in clocks[0].message

    def test_sorted_set_and_session_jitter_not_flagged(self):
        findings = check_one(FoldDeterminismChecker(), fixture_source("ra007_fold.py"))
        assert not [f for f in findings if f.symbol == "MiniCoordinator.sorted_fold"]
        assert not [f for f in findings if f.symbol.startswith("MiniSession")]

    def test_real_fold_paths_only_carry_the_waived_token(self):
        context = LintContext(summary={})
        findings = FoldDeterminismChecker().check(real_service_sources(), context)
        # the sweep token is the single (inline-waived) finding; checker-level
        # runs see it raw because waivers apply at the runner layer
        assert len(findings) == 1, findings
        assert "uuid.uuid4" in findings[0].message
        assert findings[0].symbol == "SweepCoordinator.sweep"
        assert context.summary["ra007_roots"] >= 5
        assert context.summary["ra007_reachable"] >= 20

    def test_deletion_sensitivity_fold_over_bare_set(self):
        """Making _fold_caches iterate a set(...) must be caught."""
        sources = surgically(
            real_service_sources(),
            "service/coordinator.py",
            "for server in self._healthy_servers():",
            "for server in set(self._healthy_servers()):",
        )
        findings = check_one(FoldDeterminismChecker(), *sources)
        assert any(
            "bare set" in f.message and f.path.endswith("coordinator.py")
            for f in findings
        ), findings


class TestTaintChecker:
    def test_seeded_flows_caught(self):
        findings = check_one(TaintChecker(), fixture_source("ra008_taint.py"))
        assert {f.line for f in findings} == {12, 18, 22, 38, 44, 48}, findings
        by_line = {f.line: f.message for f in findings}
        assert "filesystem path" in by_line[12]
        assert "sequence-repeat allocation" in by_line[18]
        assert "dynamic attribute dispatch" in by_line[22]
        assert "read sized by the value" in by_line[38]
        assert "subprocess invocation" in by_line[44]
        assert "memo-cache key" in by_line[48]

    def test_int_launders_content_but_not_magnitude(self):
        # /v1/batch wraps the body field in int() and still fires: int()
        # clears the string-content taint, not the attacker-sized magnitude
        findings = check_one(TaintChecker(), fixture_source("ra008_taint.py"))
        batch = [f for f in findings if f.line == 18]
        assert batch, findings

    def test_one_level_summary_crosses_into_helpers(self):
        # the /v1/jobs/ path segment only reaches subprocess.run inside
        # _job_tool — caught via the call-summary walk, reported there
        findings = check_one(TaintChecker(), fixture_source("ra008_taint.py"))
        helper = [f for f in findings if f.symbol == "MiniServer._job_tool"]
        assert len(helper) == 1, findings
        assert "request 'path'" in helper[0].message

    def test_sanitized_route_is_clean(self):
        # /v1/ok routes everything through _job_items/_since_param: no
        # finding may point at the clean branch (lines 27-32)
        findings = check_one(TaintChecker(), fixture_source("ra008_taint.py"))
        assert not [f for f in findings if 27 <= f.line <= 32], findings

    def test_no_route_class_is_a_noop(self):
        findings = check_one(TaintChecker(), fixture_source("ra003_locks.py"))
        assert findings == []

    def test_real_server_is_clean_and_not_vacuous(self):
        context = LintContext(summary={})
        findings = TaintChecker().check(real_service_sources(), context)
        assert findings == [], findings
        assert context.summary["ra008_sources"] >= 5

    def test_deletion_sensitivity_body_bound(self):
        """Replacing the bounded_body() call with a raw int() of the wire
        header must trip RA008: content-length then sizes readexactly with
        its magnitude unchecked."""
        sources = surgically(
            real_service_sources(),
            "service/server.py",
            "length = wire.bounded_body(\n"
            '            headers.get("content-length"), self.max_body_bytes\n'
            "        )",
            'length = int(headers.get("content-length", 0) or 0)',
        )
        findings = check_one(TaintChecker(), *sources)
        assert any(
            f.symbol == "EvaluationService._read_request"
            and "read sized by the value" in f.message
            for f in findings
        ), findings


class TestResourceLifecycleChecker:
    def test_seeded_leaks_caught(self):
        findings = check_one(
            ResourceLifecycleChecker(), fixture_source("ra009_lifecycle.py")
        )
        assert {f.line for f in findings} == {14, 19, 24}, findings
        kinds = {f.line: f.message.split(" acquired")[0] for f in findings}
        assert kinds == {14: "task", 19: "process pool", 24: "subprocess"}

    def test_release_idioms_are_clean(self):
        # clean_fanout (cancel-by-iteration + gather), clean_pool
        # (finally: shutdown), clean_handoff (attribute store), clean_file
        # (with): none may fire
        findings = check_one(
            ResourceLifecycleChecker(), fixture_source("ra009_lifecycle.py")
        )
        clean = {"MiniCoordinator.clean_fanout", "MiniCoordinator.clean_pool",
                 "MiniCoordinator.clean_handoff", "MiniCoordinator.clean_file"}
        assert not [f for f in findings if f.symbol in clean], findings

    def test_counts_resources_not_just_leaks(self):
        context = LintContext(summary={})
        ResourceLifecycleChecker().check(
            [fixture_source("ra009_lifecycle.py")], context
        )
        assert context.summary["ra009_resources"] == 8
        assert context.summary["ra009_leaks"] == 3

    def test_real_sources_are_clean_and_not_vacuous(self):
        context = LintContext(summary={})
        findings = ResourceLifecycleChecker().check(real_service_sources(), context)
        assert findings == [], findings
        assert context.summary["ra009_resources"] >= 8

    def test_deletion_sensitivity_lane_teardown(self):
        """Deleting the coordinator's cancel-on-exit block leaves the worker
        tasks and the folder task with no discharge — RA009 must fire."""
        sources = surgically(
            real_service_sources(),
            "service/coordinator.py",
            "            for task in workers:\n"
            "                task.cancel()\n"
            "            folder.cancel()\n"
            "            await asyncio.gather(*workers, folder, "
            "return_exceptions=True)\n",
            "",
        )
        findings = check_one(ResourceLifecycleChecker(), *sources)
        assert any(
            f.symbol == "SweepCoordinator._sweep_async" and "task" in f.message
            for f in findings
        ), findings


class TestWaivers:
    def test_waiver_suppresses_inline_and_standalone(self):
        source = fixture_source("waivers.py")
        result = run_lint(LintOptions(select={"RA001"}), sources=[source])
        assert [f.symbol for f in result.findings if f.checker == "RA001"] == [
            "unwaived"
        ], result.findings
        waived_symbols = {f.symbol for f, _ in result.waived}
        assert waived_symbols == {"waived_inline", "waived_standalone"}

    def test_malformed_pragmas_become_ra000(self):
        source = fixture_source("waivers.py")
        waivers, malformed = scan_waivers(source.rel, source.text)
        assert len(waivers) == 2
        messages = sorted(f.message for f in malformed)
        assert len(malformed) == 2, malformed
        assert any("malformed" in m for m in messages)
        assert any("no justification" in m for m in messages)

    def test_ra000_findings_fail_the_run(self):
        source = fixture_source("waivers.py")
        result = run_lint(LintOptions(select={"RA001"}), sources=[source])
        assert {f.checker for f in result.findings} == {"RA000", "RA001"}
        assert not result.ok

    def test_pragma_text_in_docstrings_is_ignored(self):
        source = SourceFile.from_text(
            '"""Docs quoting the syntax: # repro-lint: waive[RA001] reason."""\n'
        )
        waivers, malformed = scan_waivers(source.rel, source.text)
        assert waivers == [] and malformed == []


class TestBaseline:
    def test_write_then_suppress_round_trip(self, tmp_path):
        from repro.analysis.runner import write_baseline

        source = fixture_source("ra003_locks.py")
        first = run_lint(LintOptions(select={"RA003"}), sources=[source])
        assert len(first.findings) == 1
        baseline = tmp_path / "baseline.json"
        write_baseline(first, baseline)

        second = run_lint(
            LintOptions(select={"RA003"}, baseline_path=baseline), sources=[source]
        )
        assert second.ok
        assert [f.symbol for f in second.baselined] == ["LeakyCache.get"]

    def test_baseline_survives_line_drift(self, tmp_path):
        from repro.analysis.runner import write_baseline

        source = fixture_source("ra003_locks.py")
        first = run_lint(LintOptions(select={"RA003"}), sources=[source])
        baseline = tmp_path / "baseline.json"
        write_baseline(first, baseline)
        # shift every line down: the finding moves, its identity does not
        shifted = SourceFile.from_text("# pad\n# pad\n" + source.text, rel=source.rel)
        second = run_lint(
            LintOptions(select={"RA003"}, baseline_path=baseline), sources=[shifted]
        )
        assert second.ok, second.findings


class TestOutput:
    def test_json_payload_shape(self):
        import json

        from repro.analysis import result_to_json

        source = fixture_source("ra004_affinity.py")
        result = run_lint(LintOptions(select={"RA004"}), sources=[source])
        payload = json.loads(result_to_json(result))
        assert payload["ok"] is False
        (finding,) = payload["findings"]
        assert finding["checker"] == "RA004"
        assert finding["path"] == "ra004_affinity.py"
        # both bridges bind the same attr name, registered once module-wide
        assert payload["summary"]["ra004_primitives"] == 1

    def test_text_verdict_line(self):
        from repro.analysis import format_text

        source = fixture_source("ra004_affinity.py")
        result = run_lint(LintOptions(select={"RA004"}), sources=[source])
        text = format_text(result)
        assert "1 finding(s)" in text.splitlines()[-1]
        assert "BadBridge._worker" in text


class TestCli:
    def test_lint_subcommand_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "mod.py"
        bad.write_text(
            "import time\n\n\nasync def f():\n    time.sleep(1)\n"
        )
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RA001" in out and "time.sleep" in out

    def test_lint_subcommand_clean_exit(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "mod.py"
        good.write_text("async def f():\n    return 1\n")
        assert main(["lint", str(good)]) == 0
        assert "clean" in capsys.readouterr().out


@pytest.mark.parametrize(
    "name",
    [
        "ra001_blocking.py",
        "ra002_server.py",
        "ra002_client.py",
        "ra003_locks.py",
        "ra004_affinity.py",
        "ra005_lock_order.py",
        "ra006_wire.py",
        "ra006_server.py",
        "ra006_client.py",
        "ra007_fold.py",
        "ra008_taint.py",
        "ra009_lifecycle.py",
        "waivers.py",
    ],
)
def test_fixtures_parse(name):
    fixture_source(name)
