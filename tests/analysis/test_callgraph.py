"""The project-wide call graph resolves the shapes the checkers lean on.

Everything here feeds in-memory sources through :class:`ProjectGraph` — the
``rel`` paths double as module names (``pkg/mod.py`` -> ``pkg.mod``), so the
fixtures can import each other exactly like real files would.
"""

from repro.analysis.callgraph import ModuleGraph, ProjectGraph, module_name
from repro.analysis.source import SourceFile


def src(rel: str, text: str) -> SourceFile:
    return SourceFile.from_text(text, rel=rel)


def graph(*files: tuple[str, str]) -> ProjectGraph:
    return ProjectGraph([src(rel, text) for rel, text in files])


def edges_of(g: ProjectGraph, fqn: str) -> set[str]:
    return {callee for _site, callee in g.calls[fqn] if callee is not None}


class TestModuleName:
    def test_plain_and_package(self):
        assert module_name("repro/service/wire.py") == "repro.service.wire"
        assert module_name("pkg/__init__.py") == "pkg"


class TestCrossModuleResolution:
    def test_from_import_and_module_attr(self):
        g = graph(
            ("pkg/util.py", "def helper():\n    return 1\n"),
            (
                "pkg/user.py",
                "from pkg import util\n"
                "from pkg.util import helper\n"
                "def a():\n    return util.helper()\n"
                "def b():\n    return helper()\n",
            ),
        )
        assert edges_of(g, "pkg.user:a") == {"pkg.util:helper"}
        assert edges_of(g, "pkg.user:b") == {"pkg.util:helper"}

    def test_import_alias(self):
        g = graph(
            ("pkg/util.py", "def helper():\n    return 1\n"),
            (
                "pkg/user.py",
                "import pkg.util as u\n" "def a():\n    return u.helper()\n",
            ),
        )
        assert edges_of(g, "pkg.user:a") == {"pkg.util:helper"}

    def test_package_reexport(self):
        g = graph(
            ("pkg/__init__.py", "from pkg.impl import thing\n"),
            ("pkg/impl.py", "def thing():\n    return 1\n"),
            (
                "app/main.py",
                "import pkg\n" "def run():\n    return pkg.thing()\n",
            ),
        )
        assert edges_of(g, "app.main:run") == {"pkg.impl:thing"}

    def test_cross_module_edges_query(self):
        g = graph(
            ("pkg/util.py", "def helper():\n    return local()\n\ndef local():\n    return 1\n"),
            (
                "pkg/user.py",
                "from pkg.util import helper\n"
                "def a():\n    return helper()\n",
            ),
        )
        crossing = g.cross_module_edges()
        assert ("pkg.user:a", "pkg.util:helper") in crossing
        # the intra-module helper -> local edge does not count
        assert ("pkg.util:helper", "pkg.util:local") not in crossing


class TestDecoratedDefs:
    def test_decorated_functions_still_resolve(self):
        g = graph(
            (
                "pkg/mod.py",
                "import functools\n"
                "def deco(fn):\n    return fn\n"
                "@deco\n"
                "def target():\n    return 1\n"
                "@functools.lru_cache\n"
                "def cached():\n    return target()\n",
            ),
        )
        assert "pkg.mod:target" in g.functions
        assert edges_of(g, "pkg.mod:cached") == {"pkg.mod:target"}


class TestAsyncShapes:
    def test_async_generators_and_async_for(self):
        g = graph(
            (
                "pkg/mod.py",
                "async def rows():\n"
                "    for i in range(3):\n"
                "        yield i\n"
                "async def consume():\n"
                "    async for row in rows():\n"
                "        handle(row)\n"
                "def handle(row):\n    return row\n",
            ),
        )
        assert g.functions["pkg.mod:rows"].is_async
        # both the async-for iterable call and the body call are edges
        assert edges_of(g, "pkg.mod:consume") == {
            "pkg.mod:rows",
            "pkg.mod:handle",
        }
        # loop context pulls the sync handler in behind the coroutine
        assert "pkg.mod:handle" in g.loop_context()


class TestMethodDispatch:
    def test_staticmethod_and_classmethod_local(self):
        g = graph(
            (
                "pkg/mod.py",
                "class C:\n"
                "    @staticmethod\n"
                "    def s():\n        return 1\n"
                "    @classmethod\n"
                "    def c(cls):\n        return cls.s()\n"
                "    def m(self):\n        return C.c()\n",
            ),
        )
        assert edges_of(g, "pkg.mod:C.m") == {"pkg.mod:C.c"}
        assert edges_of(g, "pkg.mod:C.c") == {"pkg.mod:C.s"}

    def test_imported_class_staticmethod(self):
        g = graph(
            (
                "pkg/lib.py",
                "class Codec:\n"
                "    @staticmethod\n"
                "    def decode(b):\n        return b\n",
            ),
            (
                "pkg/user.py",
                "from pkg.lib import Codec\n"
                "def run(b):\n    return Codec.decode(b)\n",
            ),
        )
        assert edges_of(g, "pkg.user:run") == {"pkg.lib:Codec.decode"}

    def test_inherited_method_across_modules(self):
        g = graph(
            (
                "pkg/base.py",
                "class Base:\n" "    def shared(self):\n        return 1\n",
            ),
            (
                "pkg/sub.py",
                "from pkg.base import Base\n"
                "class Sub(Base):\n"
                "    def run(self):\n        return self.shared()\n",
            ),
        )
        assert edges_of(g, "pkg.sub:Sub.run") == {"pkg.base:Base.shared"}

    def test_constructor_edge_to_init(self):
        g = graph(
            (
                "pkg/lib.py",
                "class Thing:\n"
                "    def __init__(self):\n        self.x = 1\n",
            ),
            (
                "pkg/user.py",
                "from pkg.lib import Thing\n"
                "def make():\n    return Thing()\n",
            ),
        )
        assert edges_of(g, "pkg.user:make") == {"pkg.lib:Thing.__init__"}


class TestStarImports:
    def test_star_import_resolves_bare_names(self):
        g = graph(
            ("pkg/util.py", "def helper():\n    return 1\n"),
            (
                "pkg/user.py",
                "from pkg.util import *\n" "def a():\n    return helper()\n",
            ),
        )
        assert edges_of(g, "pkg.user:a") == {"pkg.util:helper"}

    def test_star_import_does_not_shadow_locals(self):
        g = graph(
            ("pkg/util.py", "def helper():\n    return 1\n"),
            (
                "pkg/user.py",
                "from pkg.util import *\n"
                "def helper():\n    return 2\n"
                "def a():\n    return helper()\n",
            ),
        )
        assert edges_of(g, "pkg.user:a") == {"pkg.user:helper"}


class TestImportCycles:
    def test_mutual_imports_terminate(self):
        g = graph(
            (
                "pkg/a.py",
                "from pkg import b\n"
                "def fa():\n    return b.fb()\n",
            ),
            (
                "pkg/b.py",
                "from pkg import a\n"
                "def fb():\n    return a.fa()\n",
            ),
        )
        assert edges_of(g, "pkg.a:fa") == {"pkg.b:fb"}
        assert edges_of(g, "pkg.b:fb") == {"pkg.a:fa"}
        # closure over the call cycle terminates too
        chains = g.closure({"pkg.a:fa"})
        assert set(chains) == {"pkg.a:fa", "pkg.b:fb"}

    def test_reexport_cycle_terminates(self):
        # two __init__ files re-exporting from each other: lookup gives up
        # instead of recursing forever
        g = graph(
            ("x/__init__.py", "from y import thing\n"),
            ("y/__init__.py", "from x import thing\n"),
            ("app/main.py", "import x\ndef run():\n    return x.thing()\n"),
        )
        assert edges_of(g, "app.main:run") == set()

    def test_inheritance_cycle_terminates(self):
        g = graph(
            (
                "pkg/mod.py",
                "class A(B):\n    pass\n"
                "class B(A):\n"
                "    def m(self):\n        return self.missing()\n",
            ),
        )
        assert edges_of(g, "pkg.mod:B.m") == set()


class TestModuleGraphStillLocal:
    def test_module_graph_api_unchanged(self):
        mg = ModuleGraph(
            src(
                "solo.py",
                "async def main():\n    work()\n" "def work():\n    return 1\n",
            )
        )
        assert set(mg.loop_context()) == {"main", "work"}
