"""Unit tests for the forward dataflow engine under the RA008/RA009 checkers.

Each test builds a tiny module as text, runs :class:`FunctionWalker` with a
recording domain, and asserts on the final environment — the engine's only
output.  Checker-level behaviour (sinks, sanitizers, releases) is covered in
``test_checkers.py``; here we pin the propagation semantics those checkers
lean on: strong vs weak updates, branch merging, tuple unpacking, chain
rooting, call binding, and loop-carried flow.
"""

import ast

from repro.analysis.callgraph import ProjectGraph
from repro.analysis.dataflow import (
    EMPTY,
    Domain,
    FunctionWalker,
    Label,
    bind_arguments,
)
from repro.analysis.source import SourceFile

TAINT = Label(kind="t", origin="seed", line=1)


class SeedDomain(Domain):
    """Taints one parameter by name; records every returned value set."""

    def __init__(self, param="payload"):
        self.param = param
        self.returned_values = []

    def seed_params(self, fqn, info):
        names = {a.arg for a in info.node.args.posonlyargs + info.node.args.args}
        return {self.param: frozenset({TAINT})} if self.param in names else {}

    def returned(self, walker, node, values):
        self.returned_values.append(values)


def walk(text: str, fqn_tail: str, domain: Domain | None = None):
    """Build a one-module graph, walk ``mod:<fqn_tail>``, return (env, domain)."""
    graph = ProjectGraph([SourceFile.from_text(text, rel="mod.py")])
    domain = domain or SeedDomain()
    walker = FunctionWalker(graph, f"mod:{fqn_tail}", domain)
    return walker.run(), domain


class TestPropagation:
    def test_assignment_chain_carries_labels(self):
        env, _ = walk(
            "def f(payload):\n"
            "    a = payload\n"
            "    b = a\n"
            "    c = b.field\n",
            "f",
        )
        assert env["a"] == {TAINT}
        assert env["b"] == {TAINT}
        assert env["c"] == {TAINT}

    def test_strong_update_kills_straight_line_facts(self):
        env, _ = walk(
            "def f(payload):\n"
            "    a = payload\n"
            "    a = 0\n",
            "f",
        )
        assert env["a"] == EMPTY

    def test_aug_assign_accumulates(self):
        env, _ = walk(
            "def f(payload):\n"
            "    total = 0\n"
            "    total += payload\n",
            "f",
        )
        assert env["total"] == {TAINT}

    def test_tuple_unpack_is_element_wise_for_literal_rhs(self):
        env, _ = walk(
            "def f(payload):\n"
            "    a, b = payload, 1\n",
            "f",
        )
        assert env["a"] == {TAINT}
        assert env["b"] == EMPTY

    def test_tuple_unpack_smears_for_opaque_rhs(self):
        # non-literal RHS: arity is unknowable, every target gets the union
        env, _ = walk(
            "def f(payload):\n"
            "    a, b = payload\n",
            "f",
        )
        assert env["a"] == {TAINT}
        assert env["b"] == {TAINT}

    def test_attribute_store_is_weak(self):
        # weak update: the chain root accumulates, it is not replaced
        env, _ = walk(
            "def f(self, payload):\n"
            "    self.box = payload\n"
            "    self.box = 0\n",
            "f",
        )
        assert env["self.box"] == {TAINT}

    def test_subscript_store_taints_the_container_root(self):
        env, _ = walk(
            "def f(payload):\n"
            "    headers = {}\n"
            "    headers['x'] = payload\n"
            "    probe = headers\n",
            "f",
        )
        assert env["probe"] == {TAINT}

    def test_chain_lookup_inherits_prefix_facts(self):
        # job.payload carries whatever job carries (prefix union)
        env, _ = walk(
            "def f(payload):\n"
            "    job = payload\n"
            "    field = job.inner.deep\n",
            "f",
        )
        assert env["field"] == {TAINT}


class TestControlFlow:
    def test_branch_arms_merge_pointwise(self):
        env, _ = walk(
            "def f(payload, flag):\n"
            "    x = 0\n"
            "    if flag:\n"
            "        x = payload\n"
            "    else:\n"
            "        y = payload\n",
            "f",
        )
        assert env["x"] == {TAINT}  # either-arm fact survives the join
        assert env["y"] == {TAINT}

    def test_loop_carried_flow_needs_the_second_pass(self):
        # `carry` is poisoned at the *bottom* of the loop and read at the
        # top — only the second pass over the body text sees it
        env, _ = walk(
            "def f(payload, items):\n"
            "    carry = 0\n"
            "    for item in items:\n"
            "        use = carry\n"
            "        carry = payload\n",
            "f",
        )
        assert env["use"] == {TAINT}

    def test_for_target_inherits_iterable_facts(self):
        env, _ = walk(
            "def f(payload):\n"
            "    for item in payload:\n"
            "        got = item\n",
            "f",
        )
        assert env["got"] == {TAINT}

    def test_try_folds_finally_into_one_env(self):
        env, _ = walk(
            "def f(payload):\n"
            "    try:\n"
            "        x = 1\n"
            "    finally:\n"
            "        x = payload\n",
            "f",
        )
        assert env["x"] == {TAINT}

    def test_comprehension_target_bound_from_iterable(self):
        env, _ = walk(
            "def f(payload):\n"
            "    out = [str(i) for i in payload]\n",
            "f",
        )
        assert env["out"] == {TAINT}

    def test_nested_def_is_a_separate_scope(self):
        env, _ = walk(
            "def f(payload):\n"
            "    def inner():\n"
            "        leak = payload\n"
            "    return inner\n",
            "f",
        )
        assert "leak" not in env

    def test_fstring_and_ifexp_carry_facts(self):
        env, _ = walk(
            "def f(payload, flag):\n"
            "    msg = f'got {payload}'\n"
            "    pick = payload if flag else 0\n",
            "f",
        )
        assert env["msg"] == {TAINT}
        assert env["pick"] == {TAINT}


class TestCallsAndReturns:
    def test_default_call_semantics_propagate_arguments(self):
        env, _ = walk(
            "def f(payload):\n"
            "    out = str(payload)\n",
            "f",
        )
        assert env["out"] == {TAINT}

    def test_returned_hook_sees_shipped_facts(self):
        _, domain = walk(
            "def f(payload):\n"
            "    return payload\n",
            "f",
        )
        assert domain.returned_values
        assert domain.returned_values[-1] == {TAINT}

    def test_resolved_callee_comes_from_the_project_graph(self):
        text = (
            "def helper(x):\n"
            "    return x\n"
            "\n"
            "def f(payload):\n"
            "    helper(payload)\n"
        )
        graph = ProjectGraph([SourceFile.from_text(text, rel="mod.py")])

        seen = {}

        class Recorder(SeedDomain):
            def call(self, walker, node, raw, recv, args, kwargs):
                seen[raw] = walker.resolved_callee(node)
                return super().call(walker, node, raw, recv, args, kwargs)

        FunctionWalker(graph, "mod:f", Recorder()).run()
        assert seen == {"helper": "mod:helper"}

    def test_bind_arguments_skips_self_and_maps_keywords(self):
        text = (
            "class C:\n"
            "    def callee(self, first, second, *, flag=None):\n"
            "        return first\n"
        )
        graph = ProjectGraph([SourceFile.from_text(text, rel="mod.py")])
        info = graph.functions["mod:C.callee"]
        call = ast.parse("obj.callee(a, flag=b)").body[0].value
        bound = bind_arguments(
            info,
            call,
            args=[(call.args[0], frozenset({TAINT}))],
            kwargs={"flag": frozenset({TAINT})},
        )
        assert bound == {"first": {TAINT}, "flag": {TAINT}}

    def test_seed_overrides_flow_into_the_walk(self):
        text = "def callee(first):\n    echo = first\n"
        graph = ProjectGraph([SourceFile.from_text(text, rel="mod.py")])
        walker = FunctionWalker(
            graph,
            "mod:callee",
            Domain(),
            seed={"first": frozenset({TAINT})},
        )
        env = walker.run()
        assert env["echo"] == {TAINT}
