"""RA002 against the real service sources: agreement now, drift detection.

The acceptance bar for the wire-contract checker: deleting any one route
from ``server._route`` — or any one endpoint row from
``docs/service-api.md`` — must make the pass fail.  These tests corrupt
in-memory copies of the real files and assert exactly that.
"""

from pathlib import Path

import pytest

from repro.analysis.checkers import LintContext
from repro.analysis.checkers.wire_contract import (
    WireContractChecker,
    docs_contract,
    extract_client_contract,
    extract_server_contract,
)
from repro.analysis.source import SourceFile, load_source

REPO = Path(__file__).resolve().parents[2]
SERVER = REPO / "src" / "repro" / "service" / "server.py"
CLIENT = REPO / "src" / "repro" / "service" / "client.py"
DOCS = REPO / "docs" / "service-api.md"


@pytest.fixture(scope="module")
def real_sources():
    root = REPO / "src"
    return (
        load_source(SERVER, root),
        load_source(CLIENT, root),
        DOCS.read_text(),
    )


def run_checker(server, client, docs_text):
    context = LintContext(docs_text=docs_text, summary={})
    findings = WireContractChecker().check([server, client], context)
    return findings, context.summary


class TestRealContractAgrees:
    def test_clean_and_nontrivial(self, real_sources):
        server, client, docs_text = real_sources
        findings, summary = run_checker(server, client, docs_text)
        assert findings == [], [f.render() for f in findings]
        # the comparison actually covered the surface — no vacuous pass
        assert summary["ra002_routes"] >= 10
        assert summary["ra002_routes"] == summary["ra002_client_routes"]
        assert summary["ra002_routes"] == summary["ra002_docs_routes"]
        assert set(summary["ra002_params"]) == {"since", "keepalive"}

    def test_both_clients_cover_every_route(self, real_sources):
        server, client, _ = real_sources
        server_routes = set(extract_server_contract(server).routes)
        client_routes = set(extract_client_contract(client).routes)
        assert server_routes == client_routes

    def test_docs_table_matches_server(self, real_sources):
        server, _, docs_text = real_sources
        server_routes = set(extract_server_contract(server).routes)
        docs_routes = set(docs_contract("docs/service-api.md", docs_text).routes)
        assert server_routes == docs_routes


class TestDeletionSensitivity:
    def test_every_server_route_deletion_is_caught(self, real_sources):
        """Renaming any single route literal in _route must fail the pass."""
        server, client, docs_text = real_sources
        routes = extract_server_contract(server).routes
        assert routes
        for method, path in routes:
            literal = f'"{path}"'
            if literal not in server.text:
                continue  # parametrized routes (synthesized <id> paths)
            corrupted = SourceFile.from_text(
                server.text.replace(literal, f'"{path}-gone"', 1), rel=server.rel
            )
            findings, _ = run_checker(corrupted, client, docs_text)
            rendered = "\n".join(f.render() for f in findings)
            assert findings, f"deleting {method} {path} went unnoticed"
            assert path in rendered

    def test_parametrized_route_deletion_is_caught(self, real_sources):
        """The startswith/endswith job branches are part of the contract too."""
        server, client, docs_text = real_sources
        corrupted = SourceFile.from_text(
            server.text.replace('path.startswith("/v1/jobs/")', "False", 1),
            rel=server.rel,
        )
        findings, _ = run_checker(corrupted, client, docs_text)
        assert any("/v1/jobs/<id>" in f.message for f in findings), [
            f.render() for f in findings
        ]

    def test_every_docs_row_deletion_is_caught(self, real_sources):
        """Dropping any one endpoint line from the docs must fail the pass."""
        server, client, docs_text = real_sources
        lines = docs_text.splitlines()
        doc_routes = docs_contract("docs", docs_text).routes
        for method, path in sorted(doc_routes):
            pruned = [
                line
                for i, line in enumerate(lines, start=1)
                if not (f"{method} {path}" in line)
            ]
            assert len(pruned) < len(lines)
            findings, _ = run_checker(server, client, "\n".join(pruned))
            assert any(
                "undocumented" in f.message and path in f.message for f in findings
            ), f"dropping the {method} {path} doc rows went unnoticed"

    def test_dropped_query_param_is_caught(self, real_sources):
        server, client, docs_text = real_sources
        stripped = docs_text.replace("keepalive=", "kept_alive_", 1)
        # strip every mention so the param disappears from the docs contract
        while "keepalive=" in stripped:
            stripped = stripped.replace("keepalive=", "kept_alive_", 1)
        findings, _ = run_checker(server, client, stripped)
        assert any(
            "keepalive" in f.message and "undocumented" in f.message for f in findings
        ), [f.render() for f in findings]

    def test_client_only_route_is_caught(self, real_sources):
        server, client, docs_text = real_sources
        extended = client.text.replace(
            'self._roundtrip("GET", "/v1/healthz", None)',
            'self._roundtrip("GET", "/v1/ghost", None)',
            1,
        )
        assert extended != client.text
        corrupted = SourceFile.from_text(extended, rel=client.rel)
        findings, _ = run_checker(server, corrupted, docs_text)
        assert any("/v1/ghost" in f.message for f in findings), [
            f.render() for f in findings
        ]
