"""The sweep coordinator: sharding, failure reassignment, 503 fallback, folds.

Every equality assertion here is against a plain ``LocalSession.sweep()`` on
the same grid — the coordinator's contract is that distribution is invisible
in the results: same order, same metrics, same structured failures, however
the shards landed and whichever servers died along the way.
"""

import pytest

from repro.api import LocalSession
from repro.explore.engine import MemoCache
from repro.perf.model import ArrayConfig
from repro.service import (
    CoordinatedSession,
    RemoteSession,
    ServiceThread,
    SweepCoordinator,
)

ARRAY = ArrayConfig(rows=8, cols=8)
SMALL_ARRAY = ArrayConfig(rows=4, cols=4)
WORKLOADS = ["gemm", "batched_gemv"]
#: Wire-serializable engine options that keep each shard fast.
SWEEP_KW = dict(one_d_only=True, selections=[("m", "n", "k")])


def names_and_metrics(results):
    return [[(p.name, p.metrics()) for p in r] for r in results]


def failure_rows(results):
    return [
        [(p.name, p.failure.stage, p.failure.reason) for p in r.failures]
        for r in results
    ]


@pytest.fixture(scope="module")
def local_results():
    return LocalSession(ARRAY).sweep(WORKLOADS, **SWEEP_KW)


@pytest.fixture(scope="module")
def fleet():
    """Two live servers, each with its own in-memory memo cache."""
    with ServiceThread(LocalSession(ARRAY, cache=MemoCache())) as a:
        with ServiceThread(LocalSession(ARRAY, cache=MemoCache())) as b:
            yield a, b


class TestDeterministicFold:
    def test_matches_local_sweep(self, fleet, local_results):
        a, b = fleet
        session = CoordinatedSession([a.url, b.url], array=ARRAY)
        results = session.sweep(WORKLOADS, **SWEEP_KW)
        assert [r.workload for r in results] == [r.workload for r in local_results]
        assert names_and_metrics(results) == names_and_metrics(local_results)
        assert failure_rows(results) == failure_rows(local_results)
        report = session.coordinator.last_report
        assert report["shards"] == 2 and report["jobs"] == 2
        assert report["servers_lost"] == 0
        session.close()

    def test_multi_config_order_is_configs_major(self, fleet):
        a, b = fleet
        configs = [ARRAY, SMALL_ARRAY]
        session = CoordinatedSession([a.url, b.url], array=ARRAY)
        results = session.sweep(WORKLOADS, configs=configs, **SWEEP_KW)
        local = LocalSession(ARRAY).sweep(WORKLOADS, configs=configs, **SWEEP_KW)
        assert [(r.workload, r.array) for r in results] == [
            (r.workload, r.array) for r in local
        ]
        assert names_and_metrics(results) == names_and_metrics(local)
        session.close()

    def test_stats_travel_with_job_results(self, fleet, local_results):
        a, b = fleet
        session = CoordinatedSession([a.url], array=ARRAY)
        (result, _) = session.sweep(WORKLOADS, **SWEEP_KW)
        assert result.stats.enumerated == len(result.points) + len(result.failures)
        assert result.stats.enumerated == local_results[0].stats.enumerated
        session.close()

    def test_empty_sweep(self, fleet):
        a, _ = fleet
        session = CoordinatedSession([a.url], array=ARRAY)
        assert session.sweep([]) == []
        session.close()

    def test_unknown_option_rejected_before_dispatch(self, fleet):
        a, _ = fleet
        session = CoordinatedSession([a.url], array=ARRAY)
        with pytest.raises(ValueError, match="unknown explore option"):
            session.sweep(WORKLOADS, bogus_option=True)
        session.close()


class TestFailureModes:
    def test_dead_server_work_is_reassigned(self, fleet, local_results):
        """A server that is gone before the sweep starts forfeits its shards."""
        a, _ = fleet
        session = CoordinatedSession(
            ["http://127.0.0.1:9", a.url], array=ARRAY, backoff=0.01
        )
        results = session.sweep(WORKLOADS, **SWEEP_KW)
        assert names_and_metrics(results) == names_and_metrics(local_results)
        assert session.coordinator.last_report["servers_lost"] == 1
        session.close()

    def test_server_killed_mid_sweep_is_reassigned(self, local_results):
        """The acceptance scenario: kill a shard's server after its job was
        submitted; the coordinator must notice when the row stream dies and
        re-run the shard on the survivor, with a fold identical to local."""
        victim = ServiceThread(LocalSession(ARRAY)).start()
        survivor = ServiceThread(LocalSession(ARRAY)).start()

        class KillAfterSubmit(RemoteSession):
            armed = True

            def submit_job(self, *args, **kwargs):
                job = super().submit_job(*args, **kwargs)
                if KillAfterSubmit.armed and self.url == victim.url:
                    KillAfterSubmit.armed = False
                    victim.stop()  # the server dies with the job in flight
                return job

        def factory(url):
            return KillAfterSubmit(url, array=ARRAY, retries=1, backoff=0.01)

        try:
            coordinator = SweepCoordinator(
                [victim.url, survivor.url],
                array=ARRAY,
                max_inflight=1,
                session_factory=factory,
            )
            results = coordinator.sweep(WORKLOADS, **SWEEP_KW)
            assert names_and_metrics(results) == names_and_metrics(local_results)
            report = coordinator.last_report
            assert report["servers_lost"] == 1
            assert report["reassigned"] >= 1
            coordinator.close()
        finally:
            victim.stop()
            survivor.stop()

    def test_all_servers_dead_raises(self):
        session = CoordinatedSession(
            ["http://127.0.0.1:9", "http://127.0.0.1:10"],
            array=ARRAY,
            backoff=0.01,
        )
        with pytest.raises(RuntimeError, match="servers are gone"):
            session.sweep(WORKLOADS, **SWEEP_KW)
        session.close()

    def test_shard_failure_budget_raises(self, fleet):
        """A shard that keeps failing must raise, never silently drop work."""
        a, _ = fleet

        class AlwaysFailJobs(RemoteSession):
            def submit_job(self, *args, **kwargs):
                job = super().submit_job(*args, **kwargs)
                super().cancel_job(job["id"])  # forces failed/cancelled polls
                return job

        coordinator = SweepCoordinator(
            [a.url],
            array=ARRAY,
            max_retries=1,
            session_factory=lambda url: AlwaysFailJobs(url, array=ARRAY),
        )
        with pytest.raises(RuntimeError, match="failed after"):
            coordinator.sweep(WORKLOADS, **SWEEP_KW)
        coordinator.close()


class TestFallback:
    def test_full_queue_falls_back_to_evaluate_many(self, local_results):
        """max_queued_jobs=0 means every submit would 503: the shard ships as
        chunked evaluate_many batches and still folds identically."""
        with ServiceThread(LocalSession(ARRAY), max_queued_jobs=0) as thread:
            session = CoordinatedSession([thread.url], array=ARRAY)
            results = session.sweep(WORKLOADS, **SWEEP_KW)
            assert names_and_metrics(results) == names_and_metrics(local_results)
            assert failure_rows(results) == failure_rows(local_results)
            report = session.coordinator.last_report
            assert report["fallbacks"] == 2 and report["jobs"] == 0
            session.close()

    def test_mixed_fleet_job_plus_fallback(self, local_results):
        """One server with jobs, one without: both carry shards, one fold."""
        with ServiceThread(LocalSession(ARRAY)) as jobs_ok:
            with ServiceThread(LocalSession(ARRAY), max_queued_jobs=0) as no_jobs:
                session = CoordinatedSession(
                    [no_jobs.url, jobs_ok.url], array=ARRAY, max_inflight=1
                )
                results = session.sweep(WORKLOADS, **SWEEP_KW)
                assert names_and_metrics(results) == names_and_metrics(local_results)
                report = session.coordinator.last_report
                assert report["fallbacks"] >= 1
                session.close()


class TestCacheFold:
    def test_remote_caches_fold_into_local(self, tmp_path, local_results):
        cache_path = tmp_path / "fold.json"
        with ServiceThread(LocalSession(ARRAY, cache=MemoCache())) as thread:
            session = CoordinatedSession([thread.url], array=ARRAY, cache=cache_path)
            session.sweep(WORKLOADS, **SWEEP_KW)
            session.close()
        assert cache_path.exists()
        folded = MemoCache(cache_path)
        stats = folded.stats()
        # the servers' engine sections made it into the local fold cache
        assert stats["points"] > 0 and stats["spaces"] > 0
        # and the folded cache warms a plain LocalSession to zero evaluations
        warm = LocalSession(ARRAY, cache=folded).sweep(WORKLOADS, **SWEEP_KW)
        assert all(r.stats.evaluated == 0 for r in warm)
        assert names_and_metrics(warm) == names_and_metrics(local_results)


class TestFallbackCache:
    def test_fallback_shards_warm_the_fold_cache(self, tmp_path, local_results):
        """The evaluate_many fallback writes the engine cache sections
        (spaces/points) into the fold cache, so even a job-less fleet leaves
        a cache that warms a LocalSession to zero evaluations — and a warm
        rerun ships no requests at all."""
        cache_path = tmp_path / "fold.json"
        with ServiceThread(LocalSession(ARRAY), max_queued_jobs=0) as thread:
            cold = CoordinatedSession([thread.url], array=ARRAY, cache=cache_path)
            cold_results = cold.sweep(WORKLOADS, **SWEEP_KW)
            assert cold.coordinator.last_report["fallbacks"] == 2
            cold.close()

            warm = CoordinatedSession([thread.url], array=ARRAY, cache=cache_path)
            warm_results = warm.sweep(WORKLOADS, **SWEEP_KW)
            warm.close()
        assert names_and_metrics(cold_results) == names_and_metrics(local_results)
        assert names_and_metrics(warm_results) == names_and_metrics(local_results)
        assert all(r.stats.evaluated == 0 for r in warm_results)
        assert all(r.stats.space_cache_hit for r in warm_results)
        # and the same file warms a plain in-process session
        local_warm = LocalSession(ARRAY, cache=cache_path).sweep(WORKLOADS, **SWEEP_KW)
        assert all(r.stats.evaluated == 0 for r in local_warm)


class TestIncrementalStreaming:
    """The since-cursor fold path: rows stream, snapshots never re-ship."""

    def test_rows_streamed_not_reshipped(self, fleet, local_results):
        """The fold is built from the pushed row stream: the report counts
        exactly one streamed row per design, and the terminal snapshot
        (records + stats, no rows) rides the end frame — a completed job
        costs zero poll round-trips."""
        a, b = fleet

        class RecordingSession(RemoteSession):
            snapshots = []

            def poll_job(self, job_id, **kwargs):
                snapshot = super().poll_job(job_id, **kwargs)
                RecordingSession.snapshots.append(snapshot)
                return snapshot

        RecordingSession.snapshots = []
        coordinator = SweepCoordinator(
            [a.url, b.url],
            array=ARRAY,
            session_factory=lambda url: RecordingSession(url, array=ARRAY),
        )
        results = coordinator.sweep(WORKLOADS, **SWEEP_KW)
        assert names_and_metrics(results) == names_and_metrics(local_results)
        total_rows = sum(len(r.points) + len(r.failures) for r in results)
        assert coordinator.last_report["rows_streamed"] == total_rows
        # every row crossed the wire exactly once — on the stream; the
        # terminal snapshot arrived on the end frame, so no job ever
        # needed a poll round-trip
        assert RecordingSession.snapshots == []
        coordinator.close()

    def test_cursor_reset_refolds_without_duplication(self, fleet, local_results):
        """A mid-stream reset frame (the server re-ran the job / restarted
        its log) drops the partial fold and rebuilds from the replay — the
        result is identical, never doubled."""
        a, _ = fleet

        class ResetMidStream(RemoteSession):
            armed = True

            def job_rows_async(self, job_id, *, since=0, **kwargs):
                inner = super().job_rows_async(job_id, since=since, **kwargs)

                async def wrapped():
                    streamed = 0
                    async for frame in inner:
                        yield frame
                        if frame.get("row") in ("point", "failure"):
                            streamed += 1
                            if ResetMidStream.armed and streamed >= 1:
                                # fake a log restart after the first folded
                                # row: reset, then replay the log from 0
                                ResetMidStream.armed = False
                                break
                    else:
                        return
                    await inner.aclose()
                    yield {"row": "reset"}
                    replay = RemoteSession.job_rows_async(
                        self, job_id, since=0, **kwargs
                    )
                    async for frame in replay:
                        if frame.get("row") == "start":
                            continue
                        yield frame

                return wrapped()

        ResetMidStream.armed = True
        coordinator = SweepCoordinator(
            [a.url],
            array=ARRAY,
            session_factory=lambda url: ResetMidStream(url, array=ARRAY),
        )
        results = coordinator.sweep(WORKLOADS, **SWEEP_KW)
        assert not ResetMidStream.armed, "no stream ever carried a data row"
        assert names_and_metrics(results) == names_and_metrics(local_results)
        coordinator.close()

    def test_vanished_job_is_requeued_and_refolded(self, fleet, local_results):
        """A server that answers but no longer knows the job (restarted,
        pruned) voids the cursor: the shard re-runs from scratch."""
        a, _ = fleet
        events = []

        class ForgetfulServer(RemoteSession):
            armed = True

            def job_rows_async(self, job_id, **kwargs):
                if ForgetfulServer.armed:
                    ForgetfulServer.armed = False

                    async def forgot():
                        raise LookupError(f"no such job {job_id!r}")
                        yield  # noqa: B901 — unreachable; makes a generator

                    return forgot()
                return super().job_rows_async(job_id, **kwargs)

        ForgetfulServer.armed = True
        coordinator = SweepCoordinator(
            [a.url],
            array=ARRAY,
            on_event=events.append,
            session_factory=lambda url: ForgetfulServer(url, array=ARRAY),
        )
        results = coordinator.sweep(WORKLOADS, **SWEEP_KW)
        assert names_and_metrics(results) == names_and_metrics(local_results)
        assert coordinator.last_report["reassigned"] >= 1
        kinds = [e["event"] for e in events]
        assert "job_vanished" in kinds and "reassigned" in kinds
        vanished = next(e for e in events if e["event"] == "job_vanished")
        assert vanished["server"] == a.url and vanished["job"].startswith("job-")
        coordinator.close()


class TestPipelinedFolding:
    """The asyncio dispatch loop: stream-kill reassignment, the bounded
    fold queue under backpressure, and concurrent capacity probing."""

    def test_stream_death_mid_row_triggers_immediate_requeue(self, local_results):
        """SIGKILL-equivalent while a row stream is OPEN: the consumer dies
        with the connection, the shard requeues at once (no poll round to
        wait for), and the survivor's fold is identical to local."""
        import asyncio

        victim = ServiceThread(LocalSession(ARRAY)).start()
        survivor = ServiceThread(LocalSession(ARRAY)).start()

        class KillOnFirstStreamedRow(RemoteSession):
            armed = True

            def job_rows_async(self, job_id, **kwargs):
                inner = super().job_rows_async(job_id, **kwargs)
                if self.url != victim.url:
                    return inner

                async def wrapped():
                    async for frame in inner:
                        if (
                            KillOnFirstStreamedRow.armed
                            and frame.get("row") in ("point", "failure")
                        ):
                            KillOnFirstStreamedRow.armed = False
                            # stop() joins the server thread: keep the event
                            # loop responsive by parking it on the executor
                            await asyncio.get_running_loop().run_in_executor(
                                None, victim.stop
                            )
                        yield frame

                return wrapped()

        def factory(url):
            return KillOnFirstStreamedRow(url, array=ARRAY, retries=1, backoff=0.01)

        try:
            events = []
            coordinator = SweepCoordinator(
                [victim.url, survivor.url],
                array=ARRAY,
                max_inflight=1,
                on_event=events.append,
                session_factory=factory,
            )
            results = coordinator.sweep(WORKLOADS, **SWEEP_KW)
            assert not KillOnFirstStreamedRow.armed, "no victim stream ever ran"
            assert names_and_metrics(results) == names_and_metrics(local_results)
            report = coordinator.last_report
            assert report["servers_lost"] == 1
            assert report["reassigned"] >= 1
            assert "server_lost" in [e["event"] for e in events]
            coordinator.close()
        finally:
            victim.stop()
            survivor.stop()

    def test_bounded_fold_queue_under_backpressure(self, fleet, local_results):
        """A deliberately slow fold callback throttles the consumers through
        the bounded queue instead of buffering unboundedly — and slowing the
        folder changes neither fold order nor results."""
        import asyncio

        a, b = fleet
        folded = []

        async def slow_fold(point):
            folded.append(point.name)
            await asyncio.sleep(0.002)  # ~5x a typical evaluation

        bound = 4
        coordinator = SweepCoordinator(
            [a.url, b.url],
            array=ARRAY,
            fold_queue=bound,
            on_row=slow_fold,
        )
        results = coordinator.sweep(WORKLOADS, **SWEEP_KW)
        assert names_and_metrics(results) == names_and_metrics(local_results)
        assert failure_rows(results) == failure_rows(local_results)
        total_rows = sum(len(r.points) + len(r.failures) for r in results)
        assert len(folded) == total_rows
        report = coordinator.last_report
        assert report["rows_streamed"] == total_rows
        # the queue high-water mark proves the bound held under pressure
        assert 0 < report["fold_queue_peak"] <= bound
        coordinator.close()

    def test_healthz_probes_run_concurrently(self, fleet):
        """A slow (hung) healthz answer delays sweep start by ~one probe,
        not one per server — the probes fan out together."""
        import time as _time

        a, _ = fleet
        delay = 0.8

        class SlowHealthz(RemoteSession):
            def _call(self, method, path, payload=None):
                if path == "/v1/healthz":
                    _time.sleep(delay)
                return super()._call(method, path, payload)

        coordinator = SweepCoordinator(
            [a.url, a.url, a.url],
            array=ARRAY,
            session_factory=lambda url: SlowHealthz(url, array=ARRAY),
        )
        t0 = _time.monotonic()
        results = coordinator.sweep(["gemm"], **SWEEP_KW)
        elapsed = _time.monotonic() - t0
        assert len(results) == 1
        # serial probing alone would cost 3 * delay = 2.4s
        assert elapsed < 3 * delay
        coordinator.close()


class TestWeightedSharding:
    def test_shard_size_groups_items_fold_identical(self, fleet):
        """shard_size > 1 groups several (config, workload) items per job;
        the folded list stays bit-identical to local, configs-major."""
        a, b = fleet
        configs = [ARRAY, SMALL_ARRAY]
        local = LocalSession(ARRAY).sweep(WORKLOADS, configs=configs, **SWEEP_KW)
        session = CoordinatedSession(
            [a.url, b.url], array=ARRAY, shard_size=2
        )
        results = session.sweep(WORKLOADS, configs=configs, **SWEEP_KW)
        assert [(r.workload, r.array) for r in results] == [
            (r.workload, r.array) for r in local
        ]
        assert names_and_metrics(results) == names_and_metrics(local)
        assert failure_rows(results) == failure_rows(local)
        report = session.coordinator.last_report
        # 2 configs x 2 workloads = 4 items in 2 two-item shards
        assert report["items"] == 4 and report["shards"] == 2
        assert report["jobs"] == 2
        session.close()

    def test_oversized_shard_is_one_job_per_config(self, fleet, local_results):
        a, _ = fleet
        session = CoordinatedSession([a.url], array=ARRAY, shard_size=64)
        results = session.sweep(WORKLOADS, **SWEEP_KW)
        assert names_and_metrics(results) == names_and_metrics(local_results)
        assert session.coordinator.last_report["shards"] == 1
        session.close()

    def test_shard_size_validated(self, fleet):
        a, _ = fleet
        with pytest.raises(ValueError, match="shard_size"):
            SweepCoordinator([a.url], shard_size=0)

    def test_capacity_weighted_inflight_from_healthz(self, fleet):
        """A server advertising a process pool is weighted up to `workers`
        inflight jobs; max_jobs clamps; non-advertising servers keep the
        max_inflight baseline."""
        a, _ = fleet

        def probe_with(info_overrides, **kwargs):
            class AdvertisingSession(RemoteSession):
                def _call(self, method, path, payload=None):
                    out = super()._call(method, path, payload)
                    if path == "/v1/healthz":
                        out.update(info_overrides)
                    return out

            coordinator = SweepCoordinator(
                [a.url],
                array=ARRAY,
                session_factory=lambda url: AdvertisingSession(url, array=ARRAY),
                **kwargs,
            )
            server = coordinator.servers[0]
            coordinator._probe(server)
            capacity = coordinator._inflight_limit(server)
            coordinator.close()
            return capacity

        assert probe_with({"workers": 6}) == 6
        assert probe_with({"workers": 6, "max_jobs": 4}) == 4
        assert probe_with({"workers": 0}) == 2  # serial server: baseline
        assert probe_with({}, max_inflight=3) == 3
        # the baseline is a floor, never lowered by a small pool
        assert probe_with({"workers": 1}, max_inflight=3) == 3

    def test_fallback_with_grouped_shards_matches_local(self, local_results):
        """shard_size > 1 on a job-less (--max-jobs 0) server: every item in
        the group rides evaluate_many and still folds identically."""
        with ServiceThread(LocalSession(ARRAY), max_queued_jobs=0) as thread:
            session = CoordinatedSession([thread.url], array=ARRAY, shard_size=2)
            results = session.sweep(WORKLOADS, **SWEEP_KW)
            assert names_and_metrics(results) == names_and_metrics(local_results)
            report = session.coordinator.last_report
            assert report["jobs"] == 0 and report["fallbacks"] == 1
            assert report["items"] == 2
            session.close()


class TestSessionSurface:
    def test_evaluate_and_names_fail_over(self, fleet):
        a, _ = fleet
        session = CoordinatedSession(
            ["http://127.0.0.1:9", a.url], array=ARRAY, backoff=0.01
        )
        result = session.evaluate("gemm", "MNK-SST", extents={"m": 4, "n": 4, "k": 4})
        assert result.ok
        rows = session.evaluate_names("gemm", ["MNK-SST"])
        assert rows[0][0] == "MNK-SST"
        assert session.coordinator.servers[0].healthy is False
        session.close()

    def test_evaluate_many_spreads_and_reassembles(self, fleet):
        a, b = fleet
        session = CoordinatedSession([a.url, b.url], array=ARRAY)
        requests = [
            session.request(
                "gemm", name, backend=backend, extents={"m": 4, "n": 4, "k": 4}
            )
            for name in ("MNK-SST", "MNK-MTM")
            for backend in ("perf", "cost")
        ]
        results = session.evaluate_many(requests)
        local = LocalSession(ARRAY).evaluate_many(requests)
        assert [r.metrics for r in results] == [r.metrics for r in local]
        session.close()

    def test_explore_rides_one_server(self, fleet):
        a, b = fleet
        session = CoordinatedSession([a.url, b.url], array=ARRAY)
        result = session.explore("gemm", **SWEEP_KW)
        local = LocalSession(ARRAY).explore("gemm", **SWEEP_KW)
        assert [p.metrics() for p in result] == [p.metrics() for p in local]
        session.close()

    def test_cache_stats_aggregates(self, fleet):
        a, b = fleet
        session = CoordinatedSession([a.url, b.url], array=ARRAY)
        session.evaluate("gemm", "MNK-SST", extents={"m": 4, "n": 4, "k": 4})
        stats = session.cache_stats()
        assert stats.get("api", 0) >= 1
        session.close()
