"""Property-style fuzz of the ``/v1`` body decoding path.

The server's contract for hostile input is a *clean* client error: malformed,
oversized, deeply nested, or wrong-typed bodies must come back as enveloped
4xx responses — never a 500, never a hung connection.  The body bound
(:func:`repro.service.wire.bounded_body`, ``--max-body-bytes``) and the
nesting guard (``RecursionError`` folded into the invalid-JSON 400) are what
RA008 proves statically; these tests prove them dynamically.

The service fixture runs with a deliberately small 4 KiB body bound so the
oversize paths are cheap to exercise.
"""

import http.client
import json
import socket

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import LocalSession
from repro.perf.model import ArrayConfig
from repro.service import ServiceThread
from repro.service import wire

BODY_LIMIT = 4096

#: JSON documents that are *shaped wrong* for every /v1 route: scalars where
#: objects belong, objects with junk keys, wrong-typed field values.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
_wrong_typed = st.one_of(
    _scalars,
    st.lists(_scalars, max_size=4),
    st.dictionaries(st.text(max_size=8), _scalars, max_size=4),
    st.fixed_dictionaries(
        {
            "workload": _scalars,
            "dataflow": st.lists(_scalars, max_size=3),
            "extents": _scalars,
        }
    ),
    st.fixed_dictionaries({"workloads": _scalars, "configs": _scalars}),
)


@pytest.fixture(scope="module")
def service():
    session = LocalSession(ArrayConfig(rows=2, cols=2))
    with ServiceThread(session, max_body_bytes=BODY_LIMIT) as thread:
        yield thread


def _post(service, path, body, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=timeout)
    try:
        conn.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestOversizedBody:
    def test_body_past_the_bound_is_413(self, service):
        body = b'{"pad": "' + b"x" * (BODY_LIMIT + 100) + b'"}'
        status, raw = _post(service, "/v1/evaluate", body)
        assert status == 413
        payload = json.loads(raw)
        assert payload["error_type"] == "PayloadTooLargeError"
        assert str(BODY_LIMIT) in payload["error"]

    def test_server_survives_an_oversized_body(self, service):
        _post(service, "/v1/evaluate", b"x" * (BODY_LIMIT * 4))
        # the service answers the *next* connection normally
        conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=30)
        conn.request("GET", "/v1/healthz")
        assert conn.getresponse().status == 200
        conn.close()

    def test_garbage_content_length_is_400(self, service):
        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=30
        ) as sock:
            sock.sendall(
                b"POST /v1/evaluate HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: banana\r\n\r\n"
            )
            head = sock.recv(64)
        assert b"400" in head.split(b"\r\n", 1)[0]

    def test_negative_content_length_is_400(self, service):
        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=30
        ) as sock:
            sock.sendall(
                b"POST /v1/evaluate HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: -5\r\n\r\n"
            )
            head = sock.recv(64)
        assert b"400" in head.split(b"\r\n", 1)[0]


class TestDeeplyNestedBody:
    def test_nesting_past_the_recursion_limit_is_400(self, service):
        depth = 2000  # > CPython's default recursion limit, < the body bound
        body = b"[" * depth + b"]" * depth
        assert len(body) <= BODY_LIMIT
        status, raw = _post(service, "/v1/evaluate", body)
        assert status == 400
        assert "invalid JSON" in json.loads(raw)["error"]

    def test_nested_inside_a_field_is_400_not_500(self, service):
        nest = "[" * 1900 + "]" * 1900
        body = ('{"extents": ' + nest + "}").encode()
        status, _ = _post(service, "/v1/evaluate", body)
        assert status == 400


class TestWrongTypedBodies:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(document=_wrong_typed)
    def test_wrong_typed_json_is_a_clean_4xx(self, service, document):
        body = json.dumps(document).encode()
        if len(body) > BODY_LIMIT:
            body = b"{}"
        for path in ("/v1/evaluate", "/v1/jobs"):
            status, raw = _post(service, path, body)
            assert 400 <= status < 500, (path, document, status, raw)
            payload = json.loads(raw)
            assert "error" in payload and "error_type" in payload

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(junk=st.binary(min_size=1, max_size=256))
    def test_raw_bytes_never_500_or_hang(self, service, junk):
        status, raw = _post(service, "/v1/evaluate", junk)
        assert 400 <= status < 500, (junk, status, raw)


class TestJobCap:
    def test_job_expansion_past_the_cap_is_400(self, service):
        # 60 workloads x 20 configs = 1200 expanded items > MAX_JOB_ITEMS,
        # from a compact body (bare workload names inherit job extents)
        body = json.dumps(
            {
                "workloads": ["gemm"] * 60,
                "extents": {"m": 4, "n": 4, "k": 4},
                "configs": [{"rows": 2, "cols": 2}] * 20,
            }
        ).encode()
        assert len(body) <= BODY_LIMIT
        status, raw = _post(service, "/v1/jobs", body)
        assert status == 400
        payload = json.loads(raw)
        assert "capped" in payload["error"]

    def test_oversized_workloads_list_is_400(self, service):
        body = json.dumps({"workloads": ["g"] * (wire.MAX_JOB_ITEMS + 1)}).encode()
        if len(body) > BODY_LIMIT:
            # past the body bound it is refused even earlier, as a 413
            status, _ = _post(service, "/v1/jobs", body)
            assert status == 413
        else:
            status, raw = _post(service, "/v1/jobs", body)
            assert status == 400
            assert "capped" in json.loads(raw)["error"]

    def test_bounded_body_unit_contract(self):
        assert wire.bounded_body("123") == 123
        assert wire.bounded_body(None) == 0
        with pytest.raises(ValueError):
            wire.bounded_body("banana")
        with pytest.raises(ValueError):
            wire.bounded_body("-1")
        with pytest.raises(wire.PayloadTooLargeError):
            wire.bounded_body(str(wire.MAX_BODY_BYTES + 1))
        assert issubclass(wire.PayloadTooLargeError, ValueError)
