"""The evaluation service: wire protocol, streaming, jobs, shutdown."""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import SCHEMA_VERSION, LocalSession
from repro.api.types import SchemaVersionError
from repro.perf.model import ArrayConfig
from repro.service import RemoteSession, ServiceThread

SMALL = {"m": 4, "n": 4, "k": 4}
SMALL_ARRAY = ArrayConfig(rows=2, cols=2)


@pytest.fixture(scope="module")
def cached_service(tmp_path_factory):
    """A server whose session owns an on-disk memo cache."""
    cache = tmp_path_factory.mktemp("service") / "memo.json"
    session = LocalSession(ArrayConfig(rows=8, cols=8), cache=cache, autoflush=False)
    with ServiceThread(session) as thread:
        yield thread


@pytest.fixture()
def remote(cached_service):
    return RemoteSession(cached_service.url, array=ArrayConfig(rows=8, cols=8))


def _raw(service: ServiceThread) -> http.client.HTTPConnection:
    return http.client.HTTPConnection("127.0.0.1", service.port, timeout=60)


class TestWireProtocol:
    def test_healthz_advertises_schema(self, cached_service):
        conn = _raw(cached_service)
        conn.request("GET", "/v1/healthz")
        info = json.loads(conn.getresponse().read())
        assert info["status"] == "ok"
        assert info["schema_version"] == SCHEMA_VERSION
        assert set(info["backends"]) >= {"cost", "perf", "fpga", "sim"}
        conn.close()

    def test_schema_header_mismatch_is_409(self, cached_service):
        conn = _raw(cached_service)
        conn.request("GET", "/v1/cache/stats", headers={"X-Repro-Schema": "99"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 409
        assert payload["error_type"] == "SchemaVersionError"
        assert payload["schema_version"] == SCHEMA_VERSION
        conn.close()

    def test_stale_payload_schema_is_409(self, remote):
        request = remote.request("gemm", "MNK-SST", extents=SMALL).to_dict()
        request["schema_version"] = 99
        with pytest.raises(SchemaVersionError, match="99"):
            remote.evaluate(request)

    def test_unknown_route_is_404(self, remote):
        with pytest.raises(LookupError, match="no route"):
            remote._call("GET", "/v1/nope")

    def test_invalid_json_body_is_400(self, cached_service):
        conn = _raw(cached_service)
        conn.request(
            "POST", "/v1/evaluate", body=b"{truncated",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        assert "invalid JSON" in json.loads(response.read())["error"]
        conn.close()

    def test_unknown_backend_maps_to_lookup_error(self, remote):
        with pytest.raises(LookupError, match="registered"):
            remote.evaluate("gemm", "MNK-SST", backend="nope", extents=SMALL)

    def test_unreachable_server_is_connection_error(self):
        session = RemoteSession("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ConnectionError, match="no evaluation service"):
            session.evaluate("gemm", "MNK-SST", extents=SMALL)


class TestEvaluation:
    def test_server_memoizes_across_clients(self, cached_service):
        """The memo cache is the server's: a second client gets warm hits."""
        request_kwargs = dict(extents={"m": 6, "n": 6, "k": 6}, array=SMALL_ARRAY)
        first = RemoteSession(cached_service.url).evaluate(
            "gemm", "MNK-SST", **request_kwargs
        )
        second = RemoteSession(cached_service.url).evaluate(
            "gemm", "MNK-SST", **request_kwargs
        )
        assert not first.cached and second.cached
        first.cached = second.cached = False
        assert first == second

    def test_evaluate_many_round_trip(self, remote):
        requests = [
            remote.request("gemm", name, backend=backend, extents=SMALL, array=SMALL_ARRAY)
            for name in ("MNK-SST", "MNK-MTM")
            for backend in ("perf", "cost")
        ]
        results = remote.evaluate_many(requests)
        assert [r.backend for r in results] == ["perf", "cost", "perf", "cost"]
        assert all(r.ok for r in results)

    def test_client_array_governs_not_servers(self, cached_service):
        """A remote session's own platform wins over the server's default.

        The server runs 8x8; a client configured 4x4 must get 4x4 answers
        from explore and evaluate_names — exactly like a LocalSession(4x4).
        """
        four = ArrayConfig(rows=4, cols=4)
        extents = {"m": 64, "n": 64, "k": 64}
        remote = RemoteSession(cached_service.url, array=four)
        local = LocalSession(four)
        remote_result = remote.explore(
            "gemm", extents=extents, selections=[("m", "n", "k")]
        )
        local_result = local.explore(
            "gemm", extents=extents, selections=[("m", "n", "k")]
        )
        assert remote_result.array == four
        assert [p.metrics() for p in remote_result] == [
            p.metrics() for p in local_result
        ]
        remote_names = remote.evaluate_names("gemm", ["MNK-SST"])
        local_names = local.evaluate_names("gemm", ["MNK-SST"])
        assert remote_names[0][1].cycles == local_names[0][1].cycles

    def test_cache_stats_and_flush(self, remote, cached_service):
        remote.evaluate("gemm", "MNK-SST", extents={"m": 5, "n": 5, "k": 5})
        stats = remote.cache_stats()
        assert stats["api"] >= 1
        remote.flush()
        assert Path(cached_service.session.cache.path).exists()


class TestStreaming:
    def test_explore_streams_ndjson_rows(self, cached_service):
        """Raw wire check: chunked NDJSON with start/point/stats framing."""
        conn = _raw(cached_service)
        payload = {
            "workload": "gemm",
            "extents": {"m": 64, "n": 64, "k": 64},
            "options": {"selections": [["m", "n", "k"]]},
        }
        conn.request(
            "POST", "/v1/explore", body=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        rows = [json.loads(line) for line in response.read().splitlines()]
        conn.close()
        assert rows[0]["row"] == "start"
        assert rows[0]["workload"] == "gemm"
        assert rows[-1]["row"] == "stats"
        kinds = {row["row"] for row in rows[1:-1]}
        assert kinds <= {"point", "failure"} and "point" in kinds
        assert rows[-1]["enumerated"] == len(rows) - 2

    def test_streamed_rows_arrive_incrementally(self, cached_service):
        """The first design rows land before the sweep finishes — streaming,
        not buffer-then-dump."""
        conn = _raw(cached_service)
        payload = {"workload": "gemm", "extents": {"m": 64, "n": 64, "k": 64}}
        conn.request(
            "POST", "/v1/explore", body=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        first_rows = [json.loads(response.readline()) for _ in range(3)]
        remaining = response.read().splitlines()
        conn.close()
        assert first_rows[0]["row"] == "start"
        assert all(r["row"] in ("point", "failure") for r in first_rows[1:])
        assert json.loads(remaining[-1])["row"] == "stats"

    def test_remote_explore_counts_are_complete(self, remote):
        """Every enumerated design reaches the client as a point or failure."""
        result = remote.explore("gemm", extents={"m": 64, "n": 64, "k": 64})
        assert len(result) > 0
        assert result.stats.enumerated == len(result.points) + len(result.failures)
        assert result.array == ArrayConfig(rows=8, cols=8)  # the session default

    def test_unknown_explore_option_rejected_before_stream(self, remote):
        """Bad options fail as a clean 400, not a broken stream."""
        with pytest.raises(ValueError, match="unknown explore option"):
            remote.explore("gemm", options_that_do_not_exist=True)

    def test_unknown_extent_rejected_like_local(self, remote):
        """A mistyped extent raises, never silently serves the default size
        (same TypeError contract as LocalSession.explore)."""
        with pytest.raises(TypeError, match="does not accept extent"):
            remote.explore("gemm", extents={"M": 64})
        with pytest.raises(TypeError):
            LocalSession(ArrayConfig(rows=4, cols=4)).explore("gemm", extents={"M": 64})


def _wait_terminal(remote, job_id, budget=120):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        job = remote.job(job_id)
        if job["status"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {budget}s")


class TestJobs:
    def test_job_lifecycle(self, remote):
        job = remote.submit_job(
            ["batched_gemv"], one_d_only=True, extents={"m": 8, "n": 8, "k": 8}
        )
        assert job["status"] in ("queued", "running")
        assert job["progress"] == {"completed": 0, "total": 1}
        job = _wait_terminal(remote, job["id"])
        assert job["status"] == "done", job
        assert job["progress"] == {"completed": 1, "total": 1}
        (row,) = job["results"]
        assert row["workload"] == "batched_gemv"
        assert row["points"] > 0
        assert row["best"] and row["pareto"]
        assert "rows" not in row  # full rows only on request (include_rows)
        assert any(j["id"] == job["id"] for j in remote.jobs())

    def test_include_rows_round_trip(self, remote):
        """include_rows keeps every design as a wire row the client can
        rebuild into the exact local EvaluationResult (the coordinator's
        fold-in source)."""
        from repro.ir import workloads as workload_lib
        from repro.service import wire

        extents = {"m": 8, "n": 8, "k": 8}
        job = remote.submit_job(
            ["batched_gemv"], one_d_only=True, extents=extents, include_rows=True
        )
        job = _wait_terminal(remote, job["id"])
        assert job["status"] == "done", job
        (record,) = job["results"]
        assert len(record["rows"]) == record["points"] + record["failures"]
        statement = workload_lib.by_name("batched_gemv", **extents)
        points = [wire.row_to_point(row, statement) for row in record["rows"]]
        local = LocalSession(ArrayConfig(rows=8, cols=8)).explore(
            "batched_gemv", extents=extents, one_d_only=True
        )
        assert [p.metrics() for p in points if p.ok] == [
            p.metrics() for p in local.points
        ]

    def test_unknown_job_404(self, remote):
        with pytest.raises(LookupError, match="no such job"):
            remote.job("job-999999")

    def test_bad_job_payload_rejected(self, remote):
        with pytest.raises(ValueError, match="workloads"):
            remote._call("POST", "/v1/jobs", {"workloads": []})
        with pytest.raises(KeyError, match="unknown workload"):
            remote.submit_job(["nope"])

    def test_queue_bound_cancel_and_drain(self, tmp_path):
        """A dedicated small-queue server: fill it, overflow 503, cancel one."""
        session = LocalSession(ArrayConfig(rows=8, cols=8), cache=tmp_path / "m.json")
        with ServiceThread(session, max_queued_jobs=2) as thread:
            remote = RemoteSession(thread.url)
            # a job that runs long enough to hold the runner busy
            long_job = remote.submit_job(
                ["gemm"], extents={"m": 64, "n": 64, "k": 64}
            )
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if remote.job(long_job["id"])["status"] == "running":
                    break
                time.sleep(0.01)
            assert remote.job(long_job["id"])["status"] == "running"
            queued_a = remote.submit_job(["batched_gemv"], one_d_only=True)
            queued_b = remote.submit_job(["batched_gemv"], one_d_only=True)
            with pytest.raises(RuntimeError, match="queue full"):
                remote.submit_job(["batched_gemv"], one_d_only=True)
            cancelled = remote.cancel_job(queued_b["id"])
            assert cancelled["status"] == "cancelled"
            assert cancelled["cancelled_while"] == "queued"  # never started
            # everything not cancelled still completes
            deadline = time.monotonic() + 240
            while time.monotonic() < deadline:
                states = {
                    job_id: remote.job(job_id)["status"]
                    for job_id in (long_job["id"], queued_a["id"])
                }
                if set(states.values()) <= {"done", "failed"}:
                    break
                time.sleep(0.1)
            assert states == {long_job["id"]: "done", queued_a["id"]: "done"}
            assert remote.job(queued_b["id"])["status"] == "cancelled"

    def test_cancel_running_job_keeps_partial_results(self, tmp_path):
        """DELETE on a *running* job: the runner stops between workloads, the
        job lands `cancelled` with the partial results it finished, and the
        DELETE response says the cancel hit a running job (regression: the
        flag used to be set with nothing reported back)."""
        session = LocalSession(ArrayConfig(rows=8, cols=8))
        with ServiceThread(session) as thread:
            remote = RemoteSession(thread.url)
            job = remote.submit_job(
                # two slow workloads: the cancel lands while the first runs
                ["gemm", "batched_gemv"],
                extents={"m": 64, "n": 64, "k": 64},
            )
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if remote.job(job["id"])["status"] == "running":
                    break
                time.sleep(0.01)
            snapshot = remote.cancel_job(job["id"])
            assert snapshot["cancelled_while"] == "running"
            assert snapshot["cancel_requested"] is True
            assert snapshot["status"] == "running"  # cooperative, not instant
            job = _wait_terminal(remote, job["id"])
            assert job["status"] == "cancelled"
            assert job["cancelled_while"] == "running"
            # partial: the second workload never ran
            assert job["progress"]["total"] == 2
            assert job["progress"]["completed"] < 2
            for record in job.get("results", []):
                assert record["workload"] == "gemm"

    def test_submit_key_is_idempotent(self, remote):
        """A retried submit (lost response) with the same submit_key gets
        the original job back instead of double-enqueueing the sweep."""
        kwargs = dict(
            one_d_only=True,
            extents={"m": 8, "n": 8, "k": 8},
            submit_key="sweep-token:shard-0:attempt-0",
        )
        first = remote.submit_job(["batched_gemv"], **kwargs)
        second = remote.submit_job(["batched_gemv"], **kwargs)
        assert second["id"] == first["id"]
        fresh = remote.submit_job(
            ["batched_gemv"], one_d_only=True, extents={"m": 8, "n": 8, "k": 8},
            submit_key="sweep-token:shard-0:attempt-1",
        )
        assert fresh["id"] != first["id"]
        for job in (first, fresh):
            assert _wait_terminal(remote, job["id"])["status"] == "done"

    def test_per_item_extents_in_one_job(self, remote):
        """Workloads entries may be {"workload", "extents"} payloads carrying
        their own problem sizes — the wire shape behind shard_size > 1."""
        job = remote.submit_job(
            [
                {"workload": "gemm", "extents": {"m": 8, "n": 8, "k": 8}},
                {"workload": "batched_gemv", "extents": {"m": 4, "n": 4, "k": 4}},
            ],
            one_d_only=True,
        )
        assert job["workloads"] == ["gemm", "batched_gemv"]
        job = _wait_terminal(remote, job["id"])
        assert job["status"] == "done", job
        first, second = job["results"]
        local = LocalSession(ArrayConfig(rows=8, cols=8))
        assert first["points"] == len(
            local.explore("gemm", extents={"m": 8, "n": 8, "k": 8}, one_d_only=True)
        )
        assert second["points"] == len(
            local.explore(
                "batched_gemv", extents={"m": 4, "n": 4, "k": 4}, one_d_only=True
            )
        )

    def test_bad_workloads_entry_rejected(self, remote):
        with pytest.raises(ValueError, match="workloads"):
            remote.submit_job([{"extents": {"m": 4}}])
        with pytest.raises(ValueError, match="workloads"):
            remote._call("POST", "/v1/jobs", {"workloads": [42]})

    def test_jobs_disabled_is_503(self, tmp_path):
        """--max-jobs 0 disables the queue: submit answers 503 up front and
        healthz advertises max_jobs=0 so coordinators skip the probe."""
        from repro.service.wire import ServiceBusyError

        session = LocalSession(ArrayConfig(rows=8, cols=8))
        with ServiceThread(session, max_queued_jobs=0) as thread:
            remote = RemoteSession(thread.url)
            info = remote._call("GET", "/v1/healthz")
            assert info["max_jobs"] == 0
            with pytest.raises(ServiceBusyError, match="disabled"):
                remote.submit_job(["batched_gemv"], one_d_only=True)


class TestJobRowStreaming:
    """The incremental row cursor (`?since=`) and the /rows long-poll."""

    EXTENTS = {"m": 8, "n": 8, "k": 8}

    def _submit(self, remote, workloads=("batched_gemv",), **kwargs):
        kwargs.setdefault("one_d_only", True)
        kwargs.setdefault("extents", self.EXTENTS)
        kwargs.setdefault("stream_rows", True)
        return remote.submit_job(list(workloads), **kwargs)

    def test_since_cursor_pages_the_row_log(self, remote):
        job = self._submit(remote)
        job = _wait_terminal(remote, job["id"])
        assert job["status"] == "done", job
        full = remote.poll_job(job["id"], since=0)
        rows = full["rows"]
        assert rows and full["rows_total"] == len(rows)
        # seq is the 1-based, strictly increasing job-global cursor
        assert [row["seq"] for row in rows] == list(range(1, len(rows) + 1))
        assert all(row["item"] == 0 for row in rows)
        (record,) = full["results"]
        assert len(rows) == record["points"] + record["failures"]
        # a mid-log cursor returns exactly the rows after it
        middle = remote.poll_job(job["id"], since=len(rows) // 2)
        assert [r["seq"] for r in middle["rows"]] == [
            r["seq"] for r in rows[len(rows) // 2 :]
        ]
        # a caught-up cursor returns an empty page, not an error
        done = remote.poll_job(job["id"], since=full["rows_total"])
        assert done["rows"] == [] and done["rows_total"] == full["rows_total"]
        assert "cursor_reset" not in done

    def test_cursor_past_end_resets_with_full_snapshot(self, remote):
        """A cursor beyond the log (e.g. from a previous run of the job id)
        comes back as the full row list plus cursor_reset — the client's
        signal to drop its fold and resync."""
        job = self._submit(remote)
        job = _wait_terminal(remote, job["id"])
        full = remote.poll_job(job["id"], since=0)
        stale = remote.poll_job(job["id"], since=full["rows_total"] + 100)
        assert stale["cursor_reset"] is True
        assert [r["seq"] for r in stale["rows"]] == [r["seq"] for r in full["rows"]]

    def test_rows_sequence_spans_items(self, remote):
        """A multi-item job has one global seq across items, and each row
        names the (config, workload) item it belongs to."""
        job = self._submit(remote, workloads=("gemm", "batched_gemv"))
        job = _wait_terminal(remote, job["id"])
        assert job["status"] == "done", job
        rows = remote.poll_job(job["id"], since=0)["rows"]
        assert [row["seq"] for row in rows] == list(range(1, len(rows) + 1))
        items = [row["item"] for row in rows]
        assert set(items) == {0, 1}
        assert items == sorted(items)  # item 0's rows all precede item 1's

    def test_since_without_row_log_is_client_error(self, remote):
        """Jobs that did not opt into rows reject cursor polls loudly instead
        of serving an indistinguishable empty page."""
        job = remote.submit_job(
            ["batched_gemv"], one_d_only=True, extents=self.EXTENTS
        )
        _wait_terminal(remote, job["id"])
        with pytest.raises(ValueError, match="stream_rows"):
            remote.poll_job(job["id"], since=0)
        with pytest.raises(ValueError, match="row log"):
            list(remote.iter_job_rows(job["id"]))

    def test_bad_since_is_client_error(self, remote):
        job = self._submit(remote)
        _wait_terminal(remote, job["id"])
        with pytest.raises(ValueError, match="since"):
            remote._call("GET", f"/v1/jobs/{job['id']}?since=banana")

    def test_tail_stream_long_polls_while_running(self, cached_service):
        """iter_job_rows yields rows *while the job runs*: the stream opens
        before the job finishes and still sees every row through to the end
        frame."""
        remote = RemoteSession(cached_service.url)
        job = remote.submit_job(
            ["gemm"],
            extents={"m": 64, "n": 64, "k": 64},
            stream_rows=True,
        )
        # a second connection tails while the first job may still be queued
        tail = RemoteSession(cached_service.url)
        rows = list(tail.iter_job_rows(job["id"]))
        assert rows[0]["row"] == "start" and rows[0]["id"] == job["id"]
        assert rows[-1]["row"] == "end" and rows[-1]["status"] == "done"
        data = rows[1:-1]
        assert data and all(r["row"] in ("point", "failure") for r in data)
        assert [r["seq"] for r in data] == list(range(1, len(data) + 1))
        assert rows[-1]["rows_total"] == len(data)
        # the tail saw exactly what a terminal cursor poll serves
        snapshot = remote.poll_job(job["id"], since=0)
        assert [r["seq"] for r in snapshot["rows"]] == [r["seq"] for r in data]
        remote.close()
        tail.close()

    def test_tail_resumes_from_since_cursor(self, remote):
        job = self._submit(remote)
        _wait_terminal(remote, job["id"])
        total = remote.poll_job(job["id"], since=0)["rows_total"]
        resumed = list(remote.iter_job_rows(job["id"], since=total - 1))
        data = [r for r in resumed if r["row"] in ("point", "failure")]
        assert [r["seq"] for r in data] == [total]

    def test_tail_with_stale_cursor_on_running_job_resets_mid_stream(self):
        """A stale cursor against a *running* job that ends short of it
        cannot be flagged on the start frame (the job might still catch up):
        the reset travels mid-stream and the full log replays after it —
        never a silent zero-row end frame."""
        from repro.service.server import Job

        with ServiceThread(LocalSession(SMALL_ARRAY)) as thread:
            # fabricate a running job the way the runner thread builds one:
            # rows appended from another thread, status flipped after
            job = Job(
                id="job-fab",
                payload={"workloads": ["gemm"]},
                status="running",
                keep_rows=True,
                total_items=1,
            )
            thread.service.jobs[job.id] = job
            stream = RemoteSession(thread.url).iter_job_rows(job.id, since=50)
            start = next(stream)
            assert start["row"] == "start"
            assert "cursor_reset" not in start  # running: might still catch up
            row = {"row": "failure", "seq": 1, "item": 0, "selection": ["m"],
                   "stt": [[1]], "stage": "perf", "reason": "fabricated"}
            job.rows.append(row)
            job.status = "done"  # ends at 1 row: far short of cursor 50
            rest = list(stream)
            assert [r["row"] for r in rest] == ["reset", "failure", "end"]
            assert rest[1]["seq"] == 1
            assert rest[-1]["status"] == "done" and rest[-1]["rows_total"] == 1

    def test_cancel_mid_stream_ends_the_tail(self, tmp_path):
        """Cancelling a running job terminates its row stream with an end
        frame reporting `cancelled` — a tail never hangs on a dead job."""
        session = LocalSession(ArrayConfig(rows=8, cols=8))
        with ServiceThread(session) as thread:
            remote = RemoteSession(thread.url)
            job = remote.submit_job(
                ["gemm", "batched_gemv"],
                extents={"m": 64, "n": 64, "k": 64},
                stream_rows=True,
            )
            stream = RemoteSession(thread.url).iter_job_rows(job["id"])
            seen = [next(stream)]  # the start frame: the stream is live
            assert seen[0]["row"] == "start"
            # read a couple of data rows so the cancel lands mid-stream
            for row in stream:
                seen.append(row)
                if len([r for r in seen if r["row"] != "start"]) >= 2:
                    break
            remote.cancel_job(job["id"])
            seen.extend(stream)  # drain to the end frame
            assert seen[-1]["row"] == "end"
            assert seen[-1]["status"] == "cancelled"
            # cancellation is cooperative per design: the log holds the rows
            # that finished, contiguous from 1, and the cursor still pages
            data = [r for r in seen if r["row"] in ("point", "failure")]
            assert [r["seq"] for r in data] == list(range(1, len(data) + 1))
            snapshot = remote.poll_job(job["id"], since=0)
            assert snapshot["status"] == "cancelled"
            assert snapshot["rows_total"] == seen[-1]["rows_total"]


    def test_keepalive_frames_prove_liveness_while_idle(self):
        """A live job producing nothing heartbeats `keepalive` frames, so a
        tail can tell a slow job from a dead connection."""
        from repro.service.server import Job

        with ServiceThread(LocalSession(SMALL_ARRAY)) as thread:
            job = Job(
                id="job-idle",
                payload={"workloads": ["gemm"]},
                status="running",
                keep_rows=True,
                total_items=1,
            )
            thread.service.jobs[job.id] = job
            stream = RemoteSession(thread.url).iter_job_rows(
                job.id, keepalive=0.05, keepalives=True
            )
            assert next(stream)["row"] == "start"
            beat = next(stream)  # nothing evaluates: the next frame is a beat
            assert beat == {"row": "keepalive", "status": "running", "rows_total": 0}
            row = {"row": "failure", "seq": 1, "item": 0, "selection": ["m"],
                   "stt": [[1]], "stage": "perf", "reason": "fabricated"}
            job.rows.append(row)
            job.status = "done"
            rest = list(stream)
            assert [r["row"] for r in rest[-2:]] == ["failure", "end"]
            # beats between the first and the finish are fine; rows are not
            assert all(r["row"] == "keepalive" for r in rest[:-2])

    def test_tail_swallows_keepalives_by_default(self):
        """Without `keepalives=True` the heartbeat frames are transport
        detail: consumers see only start/rows/end."""
        from repro.service.server import Job

        with ServiceThread(LocalSession(SMALL_ARRAY)) as thread:
            job = Job(
                id="job-quiet",
                payload={"workloads": ["gemm"]},
                status="running",
                keep_rows=True,
                total_items=1,
            )
            thread.service.jobs[job.id] = job
            stream = RemoteSession(thread.url).iter_job_rows(job.id, keepalive=0.05)
            assert next(stream)["row"] == "start"
            # give the server time to emit (and the client to swallow) beats
            time.sleep(0.2)
            job.status = "done"
            assert [r["row"] for r in stream] == ["end"]

    def test_end_frame_carries_terminal_snapshot(self, remote):
        """The end frame embeds the job's terminal snapshot (records + stats,
        no row page), so a streaming consumer closes its books without a
        follow-up poll round-trip."""
        job = self._submit(remote)
        rows = list(remote.iter_job_rows(job["id"]))
        end = rows[-1]
        assert end["row"] == "end"
        snapshot = end["job"]
        assert snapshot["status"] == "done"
        assert "rows" not in snapshot  # the rows already streamed
        data = [r for r in rows if r["row"] in ("point", "failure")]
        assert data and end["rows_total"] == len(data)
        assert snapshot["results"] == remote.poll_job(job["id"])["results"]

    def test_stream_leaves_connection_reusable(self, remote):
        """Consuming a row stream to its end frame must drain the chunked
        body fully: the next request on the recycled keep-alive socket would
        otherwise fail mid-response and retry — and a retried POST /v1/jobs
        submits a duplicate job."""
        before = len(remote.jobs())
        job = self._submit(remote)
        assert list(remote.iter_job_rows(job["id"]))[-1]["row"] == "end"
        second = self._submit(remote)  # same session, same socket
        _wait_terminal(remote, second["id"])
        assert len(remote.jobs()) == before + 2  # no phantom resubmission

    def _truncating_session(self, url, drop_after, **kwargs):
        """A RemoteSession whose first row stream dies after `drop_after`
        NDJSON lines — the server-killed-mid-stream shape."""

        class TruncatedResponse:
            def __init__(self, response, left):
                self._response = response
                self._left = left

            def readline(self):
                if self._left == 0:
                    self._response.close()  # the socket dies mid-body
                    return b""
                self._left -= 1
                return self._response.readline()

            def read(self, *args):
                return self._response.read(*args)

        class DroppingSession(RemoteSession):
            dropped = False

            def _stream(self, path, payload, method="POST"):
                response = super()._stream(path, payload, method)
                if self.dropped or "/rows" not in path:
                    return response
                self.dropped = True
                return TruncatedResponse(response, drop_after)

        return DroppingSession(url, **kwargs)

    def test_stream_reconnects_with_cursor_after_mid_stream_drop(self, remote):
        """Regression: a row stream that dies mid-flight must resume from the
        last seen `seq` — every row exactly once, no duplicates, no gaps."""
        job = self._submit(remote)
        _wait_terminal(remote, job["id"])
        total = remote.poll_job(job["id"], since=0)["rows_total"]
        assert total > 4
        # die after the start frame + 3 data rows: resume lands mid-log
        session = self._truncating_session(
            remote.url, drop_after=4, backoff=0.01
        )
        rows = list(session.iter_job_rows(job["id"]))
        assert session.dropped  # the fault actually fired
        assert [r["row"] for r in rows[:1]] == ["start"]  # start not re-yielded
        data = [r for r in rows if r["row"] in ("point", "failure")]
        assert [r["seq"] for r in data] == list(range(1, total + 1))
        assert rows[-1]["row"] == "end" and rows[-1]["rows_total"] == total
        session.close()

    def test_stream_drop_without_reconnect_raises(self, remote):
        """`reconnect=False` surfaces the drop instead of resuming; a retry
        budget of zero does the same even with reconnect on."""
        job = self._submit(remote)
        _wait_terminal(remote, job["id"])
        session = self._truncating_session(remote.url, drop_after=2, backoff=0.01)
        with pytest.raises(ConnectionError, match="dropped"):
            list(session.iter_job_rows(job["id"], reconnect=False))
        session.close()
        session = self._truncating_session(
            remote.url, drop_after=2, backoff=0.01, retries=0
        )
        with pytest.raises(ConnectionError, match="without progress"):
            list(session.iter_job_rows(job["id"]))
        session.close()


class TestRetryBackoff:
    def test_connect_errors_retry_with_jittered_backoff(self, monkeypatch):
        """Transport failures retry up to `retries` times: the first retry is
        immediate (recycled keep-alive), later ones sleep an exponentially
        growing jittered backoff (regression: exactly one blind retry)."""
        from repro.service import client as client_mod

        sleeps = []
        monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
        session = RemoteSession(
            "http://127.0.0.1:9", timeout=2, retries=3, backoff=0.25
        )
        with pytest.raises(ConnectionError, match="no evaluation service"):
            session.evaluate("gemm", "MNK-SST", extents=SMALL)
        # attempts 0+1 are back to back; attempts 2 and 3 back off first
        assert len(sleeps) == 2
        assert 0.5 * 0.25 <= sleeps[0] <= 1.5 * 0.25
        assert 0.5 * 0.50 <= sleeps[1] <= 1.5 * 0.50
        assert sleeps[1] > sleeps[0] * 0.5  # exponential floor, jitter aside

    def test_retries_zero_fails_fast(self, monkeypatch):
        from repro.service import client as client_mod

        sleeps = []
        monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
        session = RemoteSession("http://127.0.0.1:9", timeout=2, retries=0)
        with pytest.raises(ConnectionError):
            session.evaluate("gemm", "MNK-SST", extents=SMALL)
        assert sleeps == []

    def test_http_errors_never_retry(self, cached_service, monkeypatch):
        """A 4xx is an answer, not an outage: exactly one round-trip past the
        handshake, no reconnect, no backoff."""
        session = RemoteSession(cached_service.url, retries=3, backoff=5.0)
        roundtrips = []
        original = session._roundtrip

        def counting(method, path, payload):
            roundtrips.append(path)
            return original(method, path, payload)

        monkeypatch.setattr(session, "_roundtrip", counting)
        with pytest.raises(LookupError, match="registered"):
            session.evaluate("gemm", "MNK-SST", backend="nope", extents=SMALL)
        assert roundtrips == ["/v1/healthz", "/v1/evaluate"]

    def test_retry_bounds_validated(self):
        with pytest.raises(ValueError, match="retries"):
            RemoteSession("http://127.0.0.1:9", retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            RemoteSession("http://127.0.0.1:9", backoff=-0.1)


class TestCachePull:
    def test_pull_round_trips_through_memo_cache(self, remote, cached_service):
        """GET /v1/cache returns the server's sections; MemoCache.from_payload
        + merge_from fold them into a local cache (the live alternative to
        `repro cache merge` on shard files)."""
        from repro.explore.engine import MemoCache

        result = remote.evaluate("gemm", "MNK-SST", extents={"m": 7, "n": 7, "k": 7})
        assert result.ok
        sections = remote.cache_pull()
        assert sections["api"]  # the evaluation above is in there
        local = MemoCache()
        added = local.merge_from(MemoCache.from_payload(sections))
        assert added["api"] == len(sections["api"])
        # merged entries serve: a LocalSession on the pulled cache gets a hit
        session = LocalSession(ArrayConfig(rows=8, cols=8), cache=local)
        warm = session.evaluate("gemm", "MNK-SST", extents={"m": 7, "n": 7, "k": 7})
        assert warm.cached

    def test_pull_without_cache_is_empty(self, tmp_path):
        session = LocalSession(SMALL_ARRAY)  # no cache configured
        with ServiceThread(session) as thread:
            assert RemoteSession(thread.url).cache_pull() == {}


class TestCleanShutdown:
    def test_service_thread_shutdown_closes_socket(self, tmp_path):
        session = LocalSession(SMALL_ARRAY, cache=tmp_path / "memo.json")
        thread = ServiceThread(session).start()
        remote = RemoteSession(thread.url)
        remote.evaluate("gemm", "MNK-SST", extents=SMALL)
        port = thread.port
        thread.stop()
        # the session cache was flushed on close ...
        assert (tmp_path / "memo.json").exists()
        # ... and nothing is listening anymore
        with pytest.raises(OSError):
            probe = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
            probe.request("GET", "/v1/healthz")
            probe.getresponse()

    def test_cli_serve_subprocess_sigint(self, tmp_path):
        """`repro serve` on an ephemeral port: serve traffic, exit 0 on SIGINT."""
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else str(src)
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--rows", "2", "--cols", "2", "--cache", str(tmp_path / "memo.json")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            assert match, banner
            remote = RemoteSession(match.group(0))
            result = remote.evaluate("gemm", "MNK-SST", extents=SMALL)
            assert result.ok
            remote.close()
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                out, _ = proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert proc.returncode == 0, out
        assert "shutdown complete" in out
        assert (tmp_path / "memo.json").exists()  # flushed during close
