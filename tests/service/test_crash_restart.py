"""Crash-only operation: SIGKILL a journaled server, restart it, lose nothing.

Every test here runs a *real* ``repro serve`` subprocess (via
:mod:`tests.service.faultlib`) with ``--journal-dir``, kills it with SIGKILL
at a parametrized point of a job's life, restarts it **on the same port**,
and asserts the journal contract from the outside:

- the job is rebuilt — rows, cursor, records, status, ``submit_key`` dedup —
  and an interrupted job finishes with the journaled prefix *adopted*, not
  re-evaluated (``replayed_rows``);
- a client row stream resumes across the crash from its last ``seq`` with no
  duplicate and no missing row;
- a coordinated sweep rides ``restart_grace`` through the crash and ends
  with a fold bit-identical to ``LocalSession.sweep()`` and **zero repeated
  evaluations** (``sum(stats.evaluated) + rows_replayed`` equals the local
  evaluation count exactly).

The in-process :class:`ServiceThread` appears only where subprocess timing
would make an assertion racy (the cursor-boundary regression), never for the
kill itself — a crash that runs ``finally`` blocks is not a crash.
"""

import threading
import time

import pytest

from repro.api import LocalSession
from repro.perf.model import ArrayConfig
from repro.service import RemoteSession, ServiceThread, SweepCoordinator

from .faultlib import (
    ServerProcess,
    journaled_rows,
    journaled_terminal,
    wait_for,
)

ARRAY = ArrayConfig(rows=8, cols=8)
#: One mid-size job: ~200 designs, seconds of evaluation — long enough that
#: a kill triggered off the journal lands mid-run, short enough for CI.
WORKLOAD = "gemm"
EXTENTS = {"m": 12, "n": 12, "k": 12}


def _wait_terminal(remote, job_id, budget=120):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        job = remote.job(job_id)
        if job["status"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {budget}s")


def _sans_stats(records):
    # a resumed item's fresh stats honestly count only post-crash
    # evaluations; everything else in the record must be identical
    return [{k: v for k, v in r.items() if k != "stats"} for r in records]


@pytest.fixture(scope="module")
def reference_job():
    """The uninterrupted run every crashed run must reproduce exactly."""
    with ServiceThread(LocalSession(ARRAY)) as srv:
        remote = RemoteSession(srv.url)
        job = remote.submit_job([WORKLOAD], extents=EXTENTS, stream_rows=True)
        snap = _wait_terminal(remote, job["id"])
        assert snap["status"] == "done", snap
        rows = remote.poll_job(job["id"], since=0)["rows"]
        return rows, snap["results"]


class TestCrashRestart:
    """SIGKILL at parametrized points; restart must lose nothing."""

    @pytest.mark.parametrize(
        "kill_point", ["after_submit", "mid_stream", "after_terminal"]
    )
    def test_job_survives_kill_and_restart(
        self, tmp_path, kill_point, reference_job
    ):
        ref_rows, ref_results = reference_job
        journal = tmp_path / "journal"
        server = ServerProcess(journal_dir=journal).start()
        try:
            remote = RemoteSession(server.url, retries=1, backoff=0.05)
            job = remote.submit_job(
                [WORKLOAD],
                extents=EXTENTS,
                stream_rows=True,
                submit_key="crash-restart-1",
            )
            job_id = job["id"]

            if kill_point == "after_submit":
                # header on disk, no rows yet: the rebuilt job re-enters the
                # queue and runs from scratch under its original id
                assert wait_for(
                    lambda: journal.exists() and any(journal.iterdir())
                ), "journal header never reached the disk"
            elif kill_point == "mid_stream":
                assert wait_for(lambda: journaled_rows(journal) >= 5), (
                    "fewer than 5 rows journaled before the job ended"
                )
            else:  # after_terminal: the flip is flushed before the end frame
                assert wait_for(lambda: journaled_terminal(journal))
            server.kill()
            if kill_point == "mid_stream":
                assert not journaled_terminal(journal), (
                    "job finished before the mid-stream kill; grow EXTENTS"
                )

            rows_on_disk = journaled_rows(journal)
            server.restart()
            snap = _wait_terminal(remote, job_id)
            assert snap["status"] == "done", snap

            # bit-identical recovery: same rows, same records
            page = remote.poll_job(job_id, since=0)
            assert page["rows"] == ref_rows
            assert _sans_stats(snap["results"]) == _sans_stats(ref_results)

            if kill_point == "after_terminal":
                # rebuilt terminal job: nothing re-ran, nothing replayed
                assert "resumed" not in snap
            else:
                assert snap.get("resumed") is True
                # zero repeated evaluations: every journaled row was adopted,
                # the fresh stats count exactly the remainder
                assert snap["replayed_rows"] == rows_on_disk
                evaluated = sum(r["stats"]["evaluated"] for r in snap["results"])
                assert evaluated + snap["replayed_rows"] == len(ref_rows)

            # submit_key dedup survives the restart: a transport-retried
            # POST lands on the rebuilt job instead of double-enqueueing
            dup = remote.submit_job(
                [WORKLOAD],
                extents=EXTENTS,
                stream_rows=True,
                submit_key="crash-restart-1",
            )
            assert dup["id"] == job_id
        finally:
            server.stop()

    def test_row_stream_resumes_across_kill(self, tmp_path, reference_job):
        """A client long-poll rides the crash: its retry loop reconnects to
        the restarted server with ``since=<last seq>`` and the merged stream
        has every row exactly once — no duplicates, no gaps."""
        ref_rows, _ = reference_job
        journal = tmp_path / "journal"
        server = ServerProcess(journal_dir=journal).start()
        restarted = threading.Event()

        def killer():
            if not wait_for(lambda: journaled_rows(journal) >= 5):
                return  # the stream loop below will fail loudly on the count
            server.kill()
            time.sleep(0.3)  # a visible outage, not an instant flap
            server.restart()
            restarted.set()

        try:
            # a generous retry budget: the client must outlive the restart
            # (subprocess startup is seconds), not declare the server dead
            remote = RemoteSession(server.url, retries=60, backoff=0.2)
            job = remote.submit_job([WORKLOAD], extents=EXTENTS, stream_rows=True)
            kt = threading.Thread(target=killer)
            kt.start()
            frames = list(remote.iter_job_rows(job["id"]))
            kt.join(timeout=120)
            assert not any(f.get("row") == "reset" for f in frames), (
                "a deterministic resume must never reset the cursor"
            )
            seqs = [f["seq"] for f in frames if f.get("row") in ("point", "failure")]
            assert restarted.is_set(), "server never restarted"
            assert seqs == list(range(1, len(ref_rows) + 1))
            snap = remote.job(job["id"])
            assert snap["status"] == "done"
            assert snap.get("resumed") is True
        finally:
            server.stop()


class TestCursorBoundary:
    """Regression: a restart landing *exactly* on the last folded row.

    ``since == rows_total`` on a journal-rebuilt job is a valid cursor one
    past the end of the log — a plain "nothing new" resume.  An off-by-one
    that treats it as stale (``cursor_reset``) would discard the caller's
    whole fold; one that treats ``rows_total - 1`` as consumed would drop
    the final row.  Pin both edges, against a rebuilt job on a restarted
    server (in-process: the boundary is about cursor math, not crash I/O).
    """

    def test_since_on_last_row_is_plain_resume(self, tmp_path):
        journal = tmp_path / "journal"
        srv = ServiceThread(LocalSession(ARRAY), journal_dir=journal).start()
        try:
            remote = RemoteSession(srv.url)
            job = remote.submit_job(
                ["batched_gemv"],
                one_d_only=True,
                extents={"m": 8, "n": 8, "k": 8},
                stream_rows=True,
            )
            snap = _wait_terminal(remote, job["id"])
            assert snap["status"] == "done"
            total = remote.poll_job(job["id"], since=0)["rows_total"]
            assert total > 0
            port = srv.port
        finally:
            srv.stop()

        srv = ServiceThread(
            LocalSession(ARRAY), port=port, journal_dir=journal
        ).start()
        try:
            remote = RemoteSession(srv.url)
            # exactly on the end of the log: no reset, no rows, clean end
            page = remote.poll_job(job["id"], since=total)
            assert "cursor_reset" not in page
            assert page["rows"] == [] and page["rows_total"] == total
            frames = list(remote.iter_job_rows(job["id"], since=total))
            assert [f["row"] for f in frames] == ["start", "end"]
            assert "cursor_reset" not in frames[0]
            # one before the end: exactly the final row, never a replay
            start, last, end = list(
                remote.iter_job_rows(job["id"], since=total - 1)
            )
            assert last["seq"] == total and end["row"] == "end"
            # one PAST the end is a stale cursor from another life: reset
            stale = remote.poll_job(job["id"], since=total + 1)
            assert stale.get("cursor_reset") is True
            assert len(stale["rows"]) == total
        finally:
            srv.stop()


class TestCrashRestartSweep:
    """The acceptance scenario, end to end."""

    def test_kill9_mid_sweep_zero_repeated_evaluations(self, tmp_path):
        workloads = ["gemm", "batched_gemv", "depthwise_conv"]
        local = LocalSession(ARRAY).sweep(workloads)
        local_evaluated = sum(r.stats.evaluated for r in local)

        victim = ServerProcess(journal_dir=tmp_path / "victim").start()
        survivor = ServerProcess(journal_dir=tmp_path / "survivor").start()
        events = []
        outage = {}

        def killer():
            if not wait_for(lambda: journaled_rows(tmp_path / "victim") >= 4):
                return
            victim.kill()
            outage["killed"] = True
            victim.restart()

        try:
            coordinator = SweepCoordinator(
                [victim.url, survivor.url],
                array=ARRAY,
                restart_grace=60.0,
                retries=1,
                backoff=0.05,
                on_event=lambda e: events.append(dict(e)),
            )
            kt = threading.Thread(target=killer)
            kt.start()
            results = coordinator.sweep(workloads)
            kt.join(timeout=120)
            report = coordinator.last_report
            coordinator.close()

            assert outage.get("killed"), "victim never produced 4 journaled rows"
            # the fold is bit-identical to a local sweep...
            assert [r.workload for r in results] == [r.workload for r in local]
            assert [[(p.name, p.metrics()) for p in r] for r in results] == [
                [(p.name, p.metrics()) for p in r] for r in local
            ]
            assert [len(r.failures) for r in results] == [
                len(r.failures) for r in local
            ]
            # ...reached by resuming, not re-running: no shard was forfeited,
            # and the fleet evaluated each design exactly once
            assert report["resumed"] >= 1, (report, [e["event"] for e in events])
            assert report["reassigned"] == 0, report
            assert "job_resumed" in [e["event"] for e in events]
            fleet_evaluated = sum(r.stats.evaluated for r in results)
            assert fleet_evaluated + report["rows_replayed"] == local_evaluated
        finally:
            victim.stop()
            survivor.stop()
