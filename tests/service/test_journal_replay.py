"""Property test: journal replay is exact under arbitrary crash points.

The durability argument for ``--journal-dir`` rests on one invariant: for
*any* byte offset a crash can truncate the NDJSON journal at — mid-line,
between lines, at zero — decoding tolerates the tear and replays a job
whose snapshot equals the pre-crash snapshot **up to the last durably
written ``seq``**: the surviving rows are exactly a prefix, their seqs
contiguous from 1, the per-item records a matching prefix, and the terminal
status present only when the ``end`` entry itself survived whole.

Hypothesis drives random row/record interleavings, terminal states and cut
offsets (the empty file and the torn final line fall out of the offset
range); a second property feeds random garbage tails to pin the
drop-everything-after-damage rule.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import assume, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.service import wire  # noqa: E402
from repro.service.server import Job  # noqa: E402


def _entries(n_rows: int, item_size: int, with_end: bool, status: str):
    """A plausible journal history: header, rows, per-item records, end."""
    entries: list[tuple[str, dict]] = [
        (
            "job",
            {
                "schema_version": 1,
                "id": "job-3",
                "payload": {"workloads": ["w"], "submit_key": "sk"},
                "total_items": max(1, (n_rows + item_size - 1) // item_size),
                "keep_rows": True,
            },
        )
    ]
    for i in range(n_rows):
        entries.append(
            (
                "row",
                {
                    "row": "point" if i % 3 else "failure",
                    "seq": i + 1,
                    "item": i // item_size,
                    "name": f"d{i}",
                    "metrics": {"x": i},
                },
            )
        )
        if (i + 1) % item_size == 0:
            entries.append(
                (
                    "record",
                    {
                        "workload": "w",
                        "item": i // item_size,
                        "points": item_size,
                        "failures": 0,
                    },
                )
            )
    if with_end:
        entries.append(
            ("end", {"status": status, "error": None, "cancelled_while": None})
        )
    return entries


@given(
    n_rows=st.integers(0, 25),
    item_size=st.integers(1, 8),
    with_end=st.booleans(),
    status=st.sampled_from(["done", "failed", "cancelled"]),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_any_truncation_replays_the_durable_prefix(
    n_rows, item_size, with_end, status, data
):
    entries = _entries(n_rows, item_size, with_end, status)
    lines = [
        wire.encode_journal_entry(wire.journal_entry(kind, fields))
        for kind, fields in entries
    ]
    blob = b"".join(lines)
    cut = data.draw(st.integers(0, len(blob)), label="cut")

    # ground truth: exactly the lines whose trailing newline survived the cut
    whole, consumed = 0, 0
    for line in lines:
        if consumed + len(line) > cut:
            break
        whole += 1
        consumed += len(line)

    decoded = wire.decode_journal(blob[:cut])
    assert decoded == [
        wire.journal_entry(kind, fields) for kind, fields in entries[:whole]
    ]

    fields = wire.replay_journal(decoded)
    if whole == 0:
        # the header never became durable: the job was never created
        assert fields is None
        return

    survived = entries[1:whole]
    exp_rows = [f for kind, f in survived if kind == "row"]
    exp_records = [f for kind, f in survived if kind == "record"]
    end_survived = with_end and whole == len(entries)

    assert fields["id"] == "job-3"
    assert fields["payload"]["submit_key"] == "sk"  # dedup data survives
    assert fields["rows"] == exp_rows
    assert fields["results"] == exp_records
    assert fields["status"] == (status if end_survived else None)

    # rebuild the Job the way the server's startup replay does, and compare
    # its snapshot to the pre-crash job truncated at the last durable seq
    job = Job(
        id=fields["id"],
        payload=fields["payload"],
        total_items=fields["total_items"],
        keep_rows=fields["keep_rows"],
    )
    job.rows = fields["rows"]
    job.results = fields["results"]
    if fields["status"] is None:
        job.resumed = True  # queued/running at the crash: resumes
    else:
        job.status = fields["status"]
    snap = job.snapshot(since=0)
    assert snap["rows"] == exp_rows
    assert snap["rows_total"] == len(exp_rows)
    # seqs are a contiguous prefix: seq == index + 1 is the cursor invariant
    assert [row["seq"] for row in snap["rows"]] == list(
        range(1, len(exp_rows) + 1)
    )
    assert snap["progress"]["completed"] == len(exp_records)
    assert snap["status"] == (status if end_survived else "queued")


@given(
    n_rows=st.integers(0, 10),
    garbage=st.binary(min_size=1, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_garbage_tail_never_corrupts_the_prefix(n_rows, garbage):
    """Damage after the durable prefix is dropped wholesale, never parsed."""
    assume(b'"journal"' not in garbage)  # a forged valid line is not damage
    entries = _entries(n_rows, 3, False, "done")
    blob = b"".join(
        wire.encode_journal_entry(wire.journal_entry(kind, fields))
        for kind, fields in entries
    )
    decoded = wire.decode_journal(blob + garbage)
    # the tail is torn (no trailing newline) or damaged (unparseable /
    # untagged): either way everything before it is intact, nothing after
    # the first damaged line leaks through
    assert decoded[: len(entries)] == [
        wire.journal_entry(kind, fields) for kind, fields in entries
    ]
    assert len(decoded) == len(entries)


def test_entries_before_header_are_rejected():
    """A journal that starts mid-history is not one this server wrote."""
    row = wire.journal_entry("row", {"seq": 1, "item": 0})
    assert wire.replay_journal([row]) is None


def test_empty_journal_replays_to_nothing():
    assert wire.decode_journal(b"") == []
    assert wire.replay_journal([]) is None
