"""Fault-injection harness: real ``repro serve`` subprocesses, killed on cue.

The crash/restart suite (``test_crash_restart.py``) and the restart smoke
script exercise the job journal the only honest way — ``SIGKILL`` against a
real server process, so no ``atexit``/``finally`` cleanup ever runs — and
this module keeps that machinery reusable:

- :class:`ServerProcess` spawns ``repro serve`` (optionally with
  ``--journal-dir``), parses the banner for the bound port, and can
  :meth:`kill` (SIGKILL + wait) and :meth:`restart` **on the same port**
  with the same journal directory — the full hard-crash + recovery cycle.
- :func:`journaled_rows` / :func:`journaled_entries` count fsync-flushed
  journal entries on disk, which is how tests time their kills: "mid-stream
  at row N" means *N rows durably journaled*, not N rows merely produced.
- :func:`wait_for` is the tiny poll loop every kill-point trigger shares.

Kill points the suite parametrizes over:

``after_submit``
    the job's header entry is on disk, no rows yet — the job re-enters the
    queue on restart and runs from scratch (dedup keeps its id).
``mid_stream``
    at least N row entries are on disk — restart adopts them and evaluates
    only the remainder.
``after_terminal``
    the ``end`` entry is on disk (the server forces a flush *between* the
    terminal flip and the ``/rows`` end frame) — restart rebuilds a
    terminal job; a client cursor sitting exactly on the last row must
    resume cleanly, not reset.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

_BANNER_RE = re.compile(r"http://[\d.]+:(\d+)")


def _env() -> dict[str, str]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    return env


class ServerProcess:
    """One ``repro serve`` subprocess that can be SIGKILLed and restarted.

    ``port=0`` binds ephemerally on the first :meth:`start`; the bound port
    is remembered so :meth:`restart` comes back at the same URL — which is
    what lets clients and coordinators resume against it.
    """

    def __init__(
        self,
        *,
        port: int = 0,
        rows: int = 8,
        cols: int = 8,
        journal_dir: str | os.PathLike | None = None,
        extra_args: tuple[str, ...] = (),
    ):
        self.port = port
        self.rows = rows
        self.cols = cols
        self.journal_dir = str(journal_dir) if journal_dir is not None else None
        self.extra_args = tuple(extra_args)
        self.proc: subprocess.Popen | None = None
        self.url: str | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self, timeout: float = 60.0) -> "ServerProcess":
        args = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(self.port),
            "--rows",
            str(self.rows),
            "--cols",
            str(self.cols),
            *self.extra_args,
        ]
        if self.journal_dir is not None:
            args += ["--journal-dir", self.journal_dir]
        self.proc = subprocess.Popen(
            args,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env(),
        )
        assert self.proc.stdout is not None
        deadline = time.monotonic() + timeout
        banner = ""
        while time.monotonic() < deadline:
            banner = self.proc.stdout.readline()
            if not banner and self.proc.poll() is not None:
                raise RuntimeError(
                    f"repro serve exited {self.proc.returncode} before binding"
                )
            match = _BANNER_RE.search(banner)
            if match:
                self.port = int(match.group(1))  # pin: restarts reuse it
                self.url = match.group(0)
                return self
        raise RuntimeError(f"no service URL in banner within {timeout}s: {banner!r}")

    def kill(self, timeout: float = 30.0) -> None:
        """SIGKILL — the hard crash: no shutdown path runs, buffers die."""
        assert self.proc is not None, "server not started"
        self.proc.kill()
        self.proc.wait(timeout=timeout)

    def restart(self, timeout: float = 60.0) -> "ServerProcess":
        """Come back on the *same* port with the same journal directory."""
        assert self.proc is not None and self.proc.poll() is not None, (
            "restart() expects the previous process to be dead (call kill())"
        )
        return self.start(timeout=timeout)

    def interrupt(self, timeout: float = 30.0) -> str:
        """SIGINT clean shutdown; returns captured output for assertions."""
        assert self.proc is not None, "server not started"
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGINT)
            deadline = time.monotonic() + timeout
            while self.proc.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            if self.proc.poll() is None:
                self.proc.kill()
                self.proc.wait(timeout=10)
                raise AssertionError(f"server on port {self.port} ignored SIGINT")
        return self.proc.stdout.read() if self.proc.stdout else ""

    def stop(self) -> None:
        """Best-effort teardown for fixtures (idempotent)."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                pass

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def __enter__(self) -> "ServerProcess":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- journal observation (the kill-point triggers) ----------------------
def journaled_entries(journal_dir: str | os.PathLike) -> list[dict]:
    """Every complete journal entry currently fsync'd across the directory."""
    entries: list[dict] = []
    try:
        names = sorted(os.listdir(journal_dir))
    except OSError:
        return entries
    for name in names:
        if not name.endswith(".ndjson"):
            continue
        try:
            with open(os.path.join(journal_dir, name), "rb") as handle:
                data = handle.read()
        except OSError:
            continue
        for line in data.split(b"\n"):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn tail: the replay codec drops it too
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def journaled_rows(journal_dir: str | os.PathLike) -> int:
    """How many *row* entries are durably on disk (the mid-stream trigger)."""
    return sum(1 for e in journaled_entries(journal_dir) if e.get("journal") == "row")


def journaled_terminal(journal_dir: str | os.PathLike) -> bool:
    """Whether any job's terminal ``end`` entry reached the disk."""
    return any(e.get("journal") == "end" for e in journaled_entries(journal_dir))


def wait_for(predicate, budget: float = 60.0, pause: float = 0.01) -> bool:
    """Poll ``predicate`` until true or the budget runs out."""
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(pause)
    return False
