"""Wire codec symmetry: every encode in ``wire.py`` has a decode round-trip.

The service's NDJSON rows, statement payloads, and error envelopes are the
only things that cross process boundaries — if any encode/decode pair drifts
apart, the failure shows up as subtly-wrong sweep results on a remote
machine.  These tests pin the symmetry locally: encode, decode, compare
against the original object field by field.
"""

import dataclasses
import math

import pytest

from repro.api import LocalSession
from repro.api.types import SchemaVersionError
from repro.core.enumerate import EnumerationStats
from repro.explore.engine import DesignFailure, DesignPoint, EvaluationStats
from repro.ir import workloads as workload_lib
from repro.perf.model import ArrayConfig
from repro.service import wire

EXTENTS = {"m": 4, "n": 4, "k": 4}


@pytest.fixture(scope="module")
def explored():
    """One tiny real sweep: points with genuine metrics and specs."""
    session = LocalSession(ArrayConfig(rows=2, cols=2))
    return session.explore("batched_gemv", extents=EXTENTS, one_d_only=True)


@pytest.fixture(scope="module")
def statement():
    return workload_lib.by_name("batched_gemv", **EXTENTS)


class TestPointRows:
    def test_ok_points_round_trip(self, explored, statement):
        assert explored.points, "fixture sweep produced no points"
        for point in explored.points:
            row = wire.point_to_row(point)
            assert row["row"] == "point"
            back = wire.row_to_point(row, statement)
            assert back.ok
            assert back.spec.selected == point.spec.selected
            assert back.spec.stt.matrix == point.spec.stt.matrix
            assert back.normalized_perf == point.normalized_perf
            assert back.cycles == point.cycles
            assert back.area_mm2 == point.area_mm2
            assert back.power_mw == point.power_mw
            assert back.seq == point.seq

    def test_failure_points_round_trip(self, explored, statement):
        spec = explored.points[0].spec
        failed = DesignPoint(
            spec=spec,
            failure=DesignFailure(
                spec_name=spec.name,
                letters=spec.letters,
                stage="perf",
                reason="ValueError: seeded",
            ),
            seq=7,
        )
        row = wire.point_to_row(failed)
        assert row["row"] == "failure"
        assert row["stage"] == "perf" and row["reason"] == "ValueError: seeded"
        back = wire.row_to_point(row, statement)
        assert not back.ok
        assert back.failure == failed.failure
        assert back.seq == 7
        assert math.isnan(back.normalized_perf)

    def test_seq_omitted_when_unassigned(self, explored, statement):
        bare = DesignPoint(spec=explored.points[0].spec, normalized_perf=1.0)
        row = wire.point_to_row(bare)
        assert "seq" not in row
        assert wire.row_to_point(row, statement).seq is None


class TestStatsRows:
    def test_stats_round_trip(self, explored):
        stats = explored.stats
        row = wire.stats_to_row(stats)
        assert row["row"] == "stats"
        assert wire.row_to_stats(row) == stats

    def test_nested_enum_stats_rebuilt_as_dataclass(self):
        stats = EvaluationStats(
            enumerated=3,
            evaluated=2,
            skipped=1,
            cache_hits=5,
            enum=EnumerationStats(candidates=9, invalid=4, yielded=3),
        )
        back = wire.row_to_stats(wire.stats_to_row(stats))
        assert isinstance(back.enum, EnumerationStats)
        assert back == stats


class TestStatementPayloads:
    def test_name_form_round_trip(self, statement):
        payload = wire.statement_payload("batched_gemv", EXTENTS)
        back = wire.instantiate_statement(payload)
        assert back.name == statement.name
        assert back.space.names == statement.space.names
        assert back.space.extents == statement.space.extents

    def test_statement_form_round_trip(self, statement):
        payload = wire.statement_payload(statement)
        assert payload["workload"] == "batched_gemv"
        back = wire.instantiate_statement(payload)
        assert back.space.extents == statement.space.extents

    def test_unknown_workload_and_extents_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            wire.statement_payload("nope")
        with pytest.raises(TypeError, match="does not accept"):
            wire.instantiate_statement(
                {"workload": "batched_gemv", "extents": {"zz": 3}}
            )


class TestJobItems:
    def test_bare_names_inherit_job_extents(self):
        items = wire.job_items(
            {"workloads": ["gemm", "batched_gemv"], "extents": EXTENTS}
        )
        assert [i["workload"] for i in items] == ["gemm", "batched_gemv"]
        assert all(i["extents"] == EXTENTS for i in items)
        # every item decodes into a real statement (the round trip)
        for item in items:
            wire.instantiate_statement(item)

    def test_per_item_extents_override(self):
        items = wire.job_items(
            {
                "workloads": [
                    {"workload": "gemm", "extents": {"m": 8, "n": 8, "k": 8}},
                    "gemm",
                ],
                "extents": EXTENTS,
            }
        )
        assert items[0]["extents"] == {"m": 8, "n": 8, "k": 8}
        assert items[1]["extents"] == EXTENTS

    def test_malformed_job_payloads_rejected(self):
        with pytest.raises(ValueError, match="workloads"):
            wire.job_items({"workloads": []})
        with pytest.raises(ValueError, match="workloads"):
            wire.job_items({"workloads": [{"extents": {}}]})
        with pytest.raises(ValueError, match="extents"):
            wire.job_items({"workloads": ["gemm"], "extents": [1]})


class TestArrayConfig:
    def test_round_trip_all_fields(self):
        array = ArrayConfig(rows=3, cols=5)
        back = wire.array_from_dict(wire.array_to_dict(array))
        assert dataclasses.asdict(back) == dataclasses.asdict(array)


class TestErrorEnvelopes:
    @pytest.mark.parametrize("exc_type", sorted(wire._ERROR_TYPES, key=str))
    def test_each_named_type_round_trips(self, exc_type):
        exc = wire._ERROR_TYPES[exc_type]("seeded failure")
        payload = wire.error_payload(exc)
        assert payload["error_type"] == exc_type
        with pytest.raises(wire._ERROR_TYPES[exc_type], match="seeded failure"):
            wire.raise_remote_error(payload, status=400)

    def test_keyerror_message_unwrapped(self):
        payload = wire.error_payload(KeyError("missing thing"))
        assert payload["error"] == "missing thing"  # not "'missing thing'"

    def test_schema_mismatch_survives_the_wire(self):
        payload = wire.error_payload(SchemaVersionError("v1 != v2"))
        with pytest.raises(SchemaVersionError, match="v1 != v2"):
            wire.raise_remote_error(payload, status=409)

    def test_503_maps_to_busy_regardless_of_type(self):
        payload = wire.error_payload(RuntimeError("queue full"))
        with pytest.raises(wire.ServiceBusyError, match="queue full"):
            wire.raise_remote_error(payload, status=503)

    def test_unknown_type_degrades_to_runtime_error(self):
        with pytest.raises(RuntimeError, match="exploded"):
            wire.raise_remote_error(
                {"error": "exploded", "error_type": "WeirdServerThing"}, status=500
            )


class TestEngineOptions:
    def test_known_options_pass_and_normalize(self):
        out = wire.engine_options(
            {"options": {"one_d_only": True, "selections": [["i", "j"]]}}
        )
        assert out["one_d_only"] is True
        assert out["selections"] == [("i", "j")]

    def test_unknown_option_named_in_error(self):
        with pytest.raises(ValueError, match="predicates"):
            wire.engine_options({"options": {"predicates": []}})

    def test_absent_options_block_is_empty(self):
        assert wire.engine_options({}) == {}
