"""Paper Table II: the six tensor algebra workloads.

Prints each formula as parsed by the IR and benchmarks full accelerator
generation (spec -> PE -> array -> controller -> memory) for a representative
dataflow of every workload — the paper's productivity claim is that this step
is automatic and fast.
"""

from bench_util import print_table

from repro.core import naming
from repro.hw.generator import AcceleratorGenerator
from repro.ir import workloads

REPRESENTATIVE = {
    "gemm": ("MNK-SST", workloads.gemm),
    "batched_gemv": ("MNK-UST", workloads.batched_gemv),
    "conv2d": ("KCX-SST", workloads.conv2d),
    "depthwise_conv": ("XPQ-MMT", workloads.depthwise_conv),
    "mttkrp": ("IJK-SSBT", workloads.mttkrp),
    "ttmc": ("IJL-SSBT", workloads.ttmc),
}


def generate_all():
    designs = {}
    for wname, (dataflow, factory) in REPRESENTATIVE.items():
        stmt = factory()
        spec = naming.spec_from_name(stmt, dataflow)
        designs[wname] = AcceleratorGenerator(spec, 8, 8).generate()
    return designs


def test_table2_workloads(benchmark):
    designs = benchmark.pedantic(generate_all, rounds=1, iterations=1)
    rows = []
    for wname, (dataflow, factory) in REPRESENTATIVE.items():
        stmt = factory()
        design = designs[wname]
        cells = design.top.cell_count()
        rows.append(
            [
                wname,
                " * ".join(t for t in stmt.tensor_names[:-1]) + f" -> {stmt.tensor_names[-1]}",
                stmt.space.rank,
                dataflow,
                cells.get("mul", 0),
                cells.get("reg", 0),
            ]
        )
    print_table(
        "Table II workloads, each generated as an 8x8 accelerator",
        ["workload", "tensors", "loops", "dataflow", "muls", "regs"],
        rows,
    )
    assert len(designs) == 6
    # MTTKRP/TTMc have 3 input tensors -> 2 multipliers per PE.
    assert designs["mttkrp"].top.cell_count()["mul"] == 2 * 64
