"""Paper Fig. 6: power-vs-area scatter of the dataflow design space.

16x16 array, INT16, 320 MHz ASIC target.  The paper reports 148 GEMM points
and 33 Depthwise-Conv2D points with energy varying 1.8x while area varies
only 1.16x; multicast-input designs (MM?) burn the most power, reduction-tree
outputs stay cheap, stationary designs pay for control.
"""

from bench_util import bench_session, print_table

from repro.ir import workloads
from repro.perf.model import ArrayConfig


def compute():
    session = bench_session(workers=0)
    assert session.array == ArrayConfig(rows=16, cols=16)  # paper §VI-A platform
    gemm_result, dw_result = session.sweep(
        [workloads.gemm(1024, 1024, 1024)]
    ) + session.sweep(
        [workloads.depthwise_conv(k=64, y=56, x=56, p=3, q=3)], one_d_only=True
    )
    assert not gemm_result.failures and not dw_result.failures
    return (
        [(pt.spec, pt) for pt in gemm_result.points],
        [(pt.spec, pt) for pt in dw_result.points],
    )


def _scatter_summary(label, points):
    areas = sorted(r.area_mm2 for _, r in points)
    powers = sorted(r.power_mw for _, r in points)
    hottest = max(points, key=lambda sr: sr[1].power_mw)
    coolest = min(points, key=lambda sr: sr[1].power_mw)
    print_table(
        f"Fig. 6 {label}: {len(points)} design points (paper: GEMM 148 / DW 33)",
        ["metric", "min", "max", "ratio"],
        [
            ["area (mm^2)", f"{areas[0]:.3f}", f"{areas[-1]:.3f}", f"{areas[-1]/areas[0]:.2f}x"],
            ["power (mW)", f"{powers[0]:.1f}", f"{powers[-1]:.1f}", f"{powers[-1]/powers[0]:.2f}x"],
        ],
    )
    print(f"  hottest: {hottest[0].name} @ {hottest[1].power_mw:.1f} mW")
    print(f"  coolest: {coolest[0].name} @ {coolest[1].power_mw:.1f} mW")
    return areas, powers


def test_fig6_power_area(benchmark):
    gemm_points, dw_points = benchmark.pedantic(compute, rounds=1, iterations=1)
    g_areas, g_powers = _scatter_summary("(a) GEMM", gemm_points)
    _scatter_summary("(b) Depthwise-Conv2D", dw_points)

    # Paper claims:
    assert 100 <= len(gemm_points) <= 300  # same order as 148
    assert 20 <= len(dw_points) <= 150  # same order as 33
    # dataflow moves power much more than area
    area_ratio = g_areas[-1] / g_areas[0]
    power_ratio = g_powers[-1] / g_powers[0]
    assert power_ratio > area_ratio
    assert area_ratio < 1.35
    assert power_ratio > 1.4
    # double-multicast-input designs are the hottest GEMM designs
    hottest = max(gemm_points, key=lambda sr: sr[1].power_mw)
    assert hottest[0].letters.startswith("MM")
