"""Ablation: on-chip bandwidth sensitivity of unicast dataflows.

Paper §VI-A blames Batched-GEMV / MTTKRP unicast dataflows on the 32 GB/s
on-chip budget.  Sweeping the budget shows the unicast design scaling almost
linearly with bandwidth while a reuse-heavy design stays flat — the crossover
the paper's explanation implies.
"""

from bench_util import print_table, resolve_best

from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel


def compute():
    bg = workloads.batched_gemv(64, 512, 512)
    gemm = workloads.gemm(512, 512, 512)
    rows = []
    for bw in (8, 16, 32, 64, 128, 256, 512):
        model = PerfModel(ArrayConfig(onchip_bw_gbps=bw))
        uni = model.evaluate(resolve_best(bg, "MNK-UST", model))
        reuse = model.evaluate(resolve_best(gemm, "MNK-SST", model))
        rows.append((bw, uni.normalized, uni.bandwidth_stall, reuse.normalized))
    return rows


def test_ablation_bandwidth(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Ablation: normalized perf vs on-chip bandwidth (GB/s)",
        ["GB/s", "BGEMV MNK-UST", "stall", "GEMM MNK-SST"],
        [
            [bw, f"{u:.3f}", f"{s:.1f}x", f"{r:.3f}"]
            for bw, u, s, r in rows
        ],
    )
    unicast = [u for _, u, _, _ in rows]
    # Boundary streams saturate at the paper's 32 GB/s operating point, so
    # the reuse-heavy design is flat from there on; unicast keeps scaling.
    reuse = [r for bw, _, _, r in rows if bw >= 32]
    assert unicast[-1] > 3 * unicast[0], "unicast scales with bandwidth"
    assert max(reuse) - min(reuse) < 0.1, "reuse-heavy dataflow barely moves"
    # paper's operating point: at 32 GB/s the unicast design is ~5x stalled
    at32 = next(s for bw, _, s, _ in rows if bw == 32)
    assert at32 > 4.0
