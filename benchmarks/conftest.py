"""Benchmark suite configuration: make bench_util importable and share
expensive fixtures (enumerated design spaces) across files."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.enumerate import enumerate_designs  # noqa: E402
from repro.ir import workloads  # noqa: E402


@pytest.fixture(scope="session")
def gemm_design_space():
    """The canonical realizable GEMM design space (paper: 148 points)."""
    return enumerate_designs(
        workloads.gemm(1024, 1024, 1024), realizable_only=True, canonical=True
    )
