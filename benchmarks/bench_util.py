"""Shared helpers for the benchmark harness.

Every ``bench_*`` file regenerates one table or figure of the paper: it
computes the series with the library, prints it in the paper's layout (so the
output can be compared side by side with the PDF), and times the computation
under pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.api import Session
from repro.core.dataflow import DataflowSpec
from repro.core.naming import best_spec_from_name
from repro.ir.einsum import Statement
from repro.perf.model import PerfModel, PerfResult

__all__ = [
    "bench_session",
    "resolve_best",
    "print_table",
    "print_series",
    "evaluate_names",
]

#: Set ``REPRO_BENCH_CACHE=/path/cache.json`` to warm-cache benchmark reruns.
_BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE")


def bench_session(model: PerfModel | None = None, **kwargs) -> Session:
    """The shared evaluation session for benchmark runs.

    All paper benchmarks route through the :class:`repro.api.Session` facade
    so name resolution and design evaluation hit the same memo cache (opt in
    via the ``REPRO_BENCH_CACHE`` environment variable).
    """
    kwargs.setdefault("cache", _BENCH_CACHE)
    return Session(perf=model, **kwargs)


def resolve_best(
    statement: Statement, name: str, model: PerfModel, limit: int = 24
) -> DataflowSpec:
    """The best-performing STT realization of a paper dataflow name.

    The paper's authors tune each named dataflow; we emulate that by scoring
    every matching STT with the performance model and keeping the best.
    """
    return best_spec_from_name(
        statement, name, lambda s: model.evaluate(s).normalized, limit=limit
    )


def evaluate_names(
    statement: Statement,
    names: Sequence[str],
    model: PerfModel | Session,
) -> list[tuple[str, PerfResult]]:
    """Evaluate a list of paper dataflow names, best STT per name."""
    session = model if isinstance(model, Session) else bench_session(model)
    return session.evaluate_names(statement, names)


def print_series(title: str, rows: Sequence[tuple[str, PerfResult]]) -> None:
    """Print one Fig. 5 sub-plot as a text bar chart."""
    print(f"\n== {title} ==")
    print(f"{'dataflow':<14} {'normalized':>10}  {'util':>5} {'stall':>6}  bar")
    for name, result in rows:
        bar = "#" * int(round(result.normalized * 40))
        print(
            f"{name:<14} {result.normalized:>9.1%}  {result.utilization:>5.2f}"
            f" {result.bandwidth_stall:>5.2f}x  {bar}"
        )


def print_table(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    print(f"\n== {title} ==")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
