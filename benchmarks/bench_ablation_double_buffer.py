"""Ablation: double buffering and packing (design choices of paper Fig. 3c/d).

The stationary templates use double buffers so stage loads overlap compute;
packing replicates small loops across the array.  Toggling each quantifies
its contribution on workloads the paper highlights.
"""

from bench_util import print_table, resolve_best

from repro.hw.plan import StagePlan
from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel


def serialized_cycles(spec, cfg):
    """Stage cost without load/compute overlap (no double buffering)."""
    plan = StagePlan(spec, cfg.rows, cfg.cols)
    t = plan.timing
    skew = plan.lead + plan.out_lag + 1
    return plan.n_stages() * (plan.t_span + t.load_len + t.drain_len + skew)


def compute():
    cfg = ArrayConfig()
    model = PerfModel(cfg)
    rows = []
    for wname, stmt, dataflow in [
        ("gemm", workloads.gemm(256, 256, 64), "MNK-STS"),
        ("gemm", workloads.gemm(256, 256, 64), "MNK-SST"),
        ("conv2d-L5", workloads.conv2d_resnet_layer5(), "KCX-SST"),
    ]:
        spec = resolve_best(stmt, dataflow, model)
        overlapped = model.evaluate(spec).cycles
        serial = serialized_cycles(spec, cfg)
        rows.append((wname, dataflow, overlapped, serial, serial / overlapped))
    # packing ablation on the depthwise small-p workload
    dw = workloads.depthwise_conv(k=64, y=56, x=56, p=3, q=3)
    packed_model = PerfModel(cfg, allow_packing=True)
    unpacked_model = PerfModel(cfg, allow_packing=False)
    spec = resolve_best(dw, "XPQ-MMT", packed_model)
    pack_row = (
        "depthwise",
        "XPQ-MMT pack",
        packed_model.evaluate(spec).cycles,
        unpacked_model.evaluate(spec).cycles,
        unpacked_model.evaluate(spec).cycles / packed_model.evaluate(spec).cycles,
    )
    return rows, pack_row


def test_ablation_double_buffer_and_packing(benchmark):
    rows, pack_row = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Ablation: double buffering (overlap) and packing",
        ["workload", "dataflow", "optimized cyc", "ablated cyc", "speedup"],
        [
            [w, d, f"{o:.3g}", f"{s:.3g}", f"{x:.2f}x"]
            for w, d, o, s, x in rows + [pack_row]
        ],
    )
    for _, dataflow, overlapped, serial, _ in rows:
        has_stationary = "T" in dataflow.split("-")[1]
        if has_stationary:
            assert serial > overlapped, dataflow
    assert pack_row[4] > 1.5  # packing p=3 onto 16 rows is a big win
