"""Paper Fig. 5(f, g): Conv2D on ResNet layer 2 and layer 5.

Paper findings reproduced here:

- selecting KCX makes Conv2D a large-bound GEMM and performs best,
- dataflows that put x/y/p on the array lose utilization on layer 5 where
  x = y = 7,
- KPX-MST-style dataflows idle on communication delay when execution windows
  are short.

Infeasible figure labels (KCP-BUS, KPX-MMM, XYP-MMM — see EXPERIMENTS.md)
are replaced by their nearest feasible neighbours.
"""

from bench_util import bench_session, evaluate_names, print_series

from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel

CONV_DATAFLOWS = [
    "KXY-SBU",
    "KCX-SST",
    "KCX-STS",
    "KCX-STM",
    "CPQ-UUB",
    "XPQ-MMT",
    "XPQ-SSM",
    "XYP-MST",
    "KPX-MST",
]


def compute():
    session = bench_session(PerfModel(ArrayConfig()))
    out = {}
    for layer in (workloads.conv2d_resnet_layer2(), workloads.conv2d_resnet_layer5()):
        out[layer.name] = evaluate_names(layer, CONV_DATAFLOWS, session)
    return out


def test_fig5fg_conv2d(benchmark):
    per_layer = benchmark.pedantic(compute, rounds=1, iterations=1)
    for layer_name, rows in per_layer.items():
        print_series(f"Fig. 5(f/g) {layer_name}, 16x16 PEs", rows)
    l2 = dict(per_layer["conv2d_resnet_layer2"])
    l5 = dict(per_layer["conv2d_resnet_layer5"])
    # KCX (GEMM-ized conv) is the best family on both layers.
    for layer in (l2, l5):
        kcx_best = max(layer[n].normalized for n in ("KCX-SST", "KCX-STS", "KCX-STM"))
        others = max(
            layer[n].normalized for n in ("XYP-MST", "KPX-MST", "CPQ-UUB", "KXY-SBU")
        )
        assert kcx_best > others
    # Layer 5's tiny x=y=7 hurts spatial x/y dataflows more than layer 2.
    assert l5["XYP-MST"].utilization <= l2["XYP-MST"].utilization
