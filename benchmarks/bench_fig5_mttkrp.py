"""Paper Fig. 5(d): MTTKRP dataflows.

Paper finding: "the unicast dataflows (e.g. IKL-UBBB ...) perform worse than
others because unicast dataflows require all PEs to transfer data with
on-chip memory simultaneously and bandwidth becomes insufficient."
"""

from bench_util import bench_session, evaluate_names, print_series

from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel

MTTKRP_DATAFLOWS = [
    "IJK-SSBT",
    "IJK-SSBM",
    "IJK-TSBS",
    "IJK-MSBT",
    "IJL-SBTS",
    "IKL-UBBB",  # unicast A: the paper's bandwidth-bound case
]


def compute():
    session = bench_session(PerfModel(ArrayConfig()))
    mt = workloads.mttkrp(128, 128, 128, 128)
    return evaluate_names(mt, MTTKRP_DATAFLOWS, session)


def test_fig5d_mttkrp(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("Fig. 5(d) MTTKRP, 16x16 PEs", rows)
    results = dict(rows)
    unicast = results["IKL-UBBB"]
    assert unicast.bandwidth_stall > 3.0
    best_reuse = max(
        r.normalized for n, r in results.items() if n != "IKL-UBBB"
    )
    assert unicast.normalized < best_reuse
