"""Paper Fig. 5(b): Batched-GEMV dataflows.

Tensor A is touched exactly once per iteration (full-rank access), so only
unicast dataflows exist for it, and the 32 GB/s on-chip bandwidth caps
normalized performance around 20% (paper §VI-A).
"""

from bench_util import bench_session, evaluate_names, print_series

from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel

BATCHED_GEMV_DATAFLOWS = [
    "MNK-USS",
    "MNK-UST",
    "MNK-UTS",
    "MNK-UMM",
    "MNK-UMT",
    "MNK-UMS",
]


def compute():
    session = bench_session(PerfModel(ArrayConfig()))
    bg = workloads.batched_gemv(64, 512, 512)
    return evaluate_names(bg, BATCHED_GEMV_DATAFLOWS, session)


def test_fig5b_batched_gemv(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("Fig. 5(b) Batched-GEMV, 16x16 PEs", rows)
    for name, result in rows:
        # bandwidth-bound: every dataflow stalls on A's unicast traffic
        assert result.bandwidth_stall > 3.0, name
        assert result.normalized < 0.35, name
