"""Paper Table III: FPGA comparison against Susy and PolySA.

TensorLib rows come from our resource/frequency model of the generated
systolic design (10x16 array, vectorization 8, FP32, KCX-STS / MNK-STS
weight-stationary dataflow); prior-generator rows are their published
numbers.  The §VI-C floorplanning ablation (263 -> 328 MHz) is included.
"""

from bench_util import print_table

from repro.core import naming
from repro.fpga.baselines import PRIOR_GENERATORS
from repro.fpga.resources import FPGAModel
from repro.ir import workloads


def compute():
    model = FPGAModel()
    mm_spec = naming.spec_from_name(workloads.gemm(64, 64, 64), "MNK-STS")
    conv_spec = naming.spec_from_name(
        workloads.conv2d(k=16, c=16, y=16, x=16, p=3, q=3), "KCX-STS"
    )
    ours_mm = model.evaluate(mm_spec, 10, 16, workload_label="MM")
    ours_conv = model.evaluate(conv_spec, 10, 16, workload_label="Conv")
    ours_mm_fp = model.evaluate(mm_spec, 10, 16, workload_label="MM", floorplan_optimized=True)
    return ours_mm, ours_conv, ours_mm_fp


def test_table3_fpga(benchmark):
    ours_mm, ours_conv, ours_mm_fp = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [b.generator, b.device, b.workload, b.lut_pct, b.dsp_pct, b.bram_pct, b.freq_mhz, b.gops]
        for b in PRIOR_GENERATORS
    ]
    for r in (ours_mm, ours_conv):
        d = r.row()
        rows.append(
            ["TensorLib", d["device"], d["workload"], d["LUT%"], d["DSP%"], d["BRAM%"], d["MHz"], d["Gop/s"]]
        )
    print_table(
        "Table III: FPGA performance comparison (MM / Conv workloads)",
        ["generator", "device", "workload", "LUT%", "DSP%", "BRAM%", "MHz", "Gop/s"],
        rows,
    )
    print(
        f"\n  §VI-C floorplan ablation: MM frequency {ours_mm.row()['MHz']} MHz -> "
        f"{ours_mm_fp.row()['MHz']} MHz with SLR-aware placement (paper: 263 -> 328)"
    )

    best_prior_mm = max(b.gops for b in PRIOR_GENERATORS if b.workload == "MM")
    improvement = ours_mm.gops / best_prior_mm - 1.0
    print(f"  throughput improvement vs best prior (MM): {improvement:.0%} (paper: 21%)")
    assert 0.15 <= improvement <= 0.30
    assert abs(ours_mm.freq_mhz - 263) < 6
    assert abs(ours_mm_fp.freq_mhz - 328) < 6
    assert abs(ours_conv.gops - 626) < 20
