"""Ablation: multicast vs systolic pipeline overhead as the time loop grows.

The paper explains MTM > SST on GEMM by pipeline overhead: a systolic array
pays array-depth fill/drain skew per stage, a multicast array does not.  The
gap must therefore shrink as the reduction loop (stage length) grows — this
bench sweeps K and prints both series.
"""

from bench_util import print_table, resolve_best

from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel


def compute():
    model = PerfModel(ArrayConfig())
    rows = []
    for k in (32, 64, 128, 256, 1024):
        gemm = workloads.gemm(256, 256, k)
        sst = model.evaluate(resolve_best(gemm, "MNK-SST", model))
        mtm = model.evaluate(resolve_best(gemm, "MNK-MTM", model))
        rows.append((k, sst.normalized, mtm.normalized))
    return rows


def test_ablation_pipeline_overhead(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Ablation: pipeline overhead vs reduction length (GEMM 256x256xK)",
        ["K", "MNK-SST", "MNK-MTM", "gap"],
        [
            [k, f"{sst:.3f}", f"{mtm:.3f}", f"{mtm - sst:.3f}"]
            for k, sst, mtm in rows
        ],
    )
    gaps = [mtm - sst for _, sst, mtm in rows]
    assert all(g > 0 for g in gaps), "multicast always ahead"
    assert gaps[-1] < gaps[0], "gap shrinks as the stage lengthens"
