"""Paper Fig. 5(c): Depthwise-Conv2D dataflows.

Depthwise convolution has no large reduction dimension (only the 3x3 kernel
loops reduce), so the Conv2D-style KCX dataflows do not exist and the
all-multicast Eyeriss-like designs (paper: "KPX-MMM and XYP-MMM perform
better") win.

Name notes vs the paper's figure labels (full details in EXPERIMENTS.md):
the paper's KPX-MMM/XYP-MMM resolve in our canonical notation to KQX/KPY
selections (x<->y kernel-axis naming); KXY-SSU and KPQ-MUU are infeasible
under the paper's own Table I rules (tensor A has a full-rank access under
those selections, forcing U) — the nearest feasible unicast designs KXY-UBU
and KPQ-UUB stand in for them.
"""

from bench_util import bench_session, evaluate_names, print_series

from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel

DEPTHWISE_DATAFLOWS = [
    "KXY-UBU",  # paper KXY-SSU (nearest feasible)
    "KPQ-UUB",  # paper KPQ-MUU (nearest feasible)
    "XPQ-MMT",
    "XYP-STM",
    "KQX-MMM",  # paper KPX-MMM
    "KPY-MMM",  # paper XYP-MMM
    "XYP-MST",
]


def compute():
    session = bench_session(PerfModel(ArrayConfig()))
    dw = workloads.depthwise_conv(k=64, y=56, x=56, p=3, q=3)
    return evaluate_names(dw, DEPTHWISE_DATAFLOWS, session)


def test_fig5c_depthwise(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("Fig. 5(c) Depthwise-Conv2D, 16x16 PEs", rows)
    results = dict(rows)
    # The all-multicast designs beat the unicast ones (paper claim).
    best_mmm = max(results["KQX-MMM"].normalized, results["KPY-MMM"].normalized)
    assert best_mmm > results["KXY-UBU"].normalized
    assert best_mmm > results["KPQ-UUB"].normalized
    # Unicast designs are bandwidth-bound.
    assert results["KXY-UBU"].bandwidth_stall > 2.0
