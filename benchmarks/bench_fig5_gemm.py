"""Paper Fig. 5(a): normalized performance of GEMM dataflows.

16x16 PE array, 320 MHz, 32 GB/s on-chip bandwidth (paper §VI-A).  The
paper's qualitative result: multicast dataflows (MTM) beat systolic (SST)
because of smaller pipeline overhead; every GEMM dataflow reaches high
utilization because all three loops are large.
"""

from bench_util import bench_session, evaluate_names, print_series

from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel

#: The Fig. 5(a) dataflow list (U* names in the shared axis belong to
#: Batched-GEMV; GEMM tensors always have rank-1 reuse).
GEMM_DATAFLOWS = [
    "MNK-MTM",
    "MNK-MSM",
    "MNK-STM",
    "MNK-MMT",
    "MNK-MST",
    "MNK-SST",
    "MNK-TSS",
    "MNK-STS",
    "MNK-SSM",
    "MNK-SSS",
]


def compute():
    session = bench_session(PerfModel(ArrayConfig()))
    gemm = workloads.gemm(1024, 1024, 1024)
    return evaluate_names(gemm, GEMM_DATAFLOWS, session)


def test_fig5a_gemm(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("Fig. 5(a) GEMM, 16x16 PEs, normalized performance", rows)
    results = dict(rows)
    # Paper findings encoded as assertions: multicast (MTM) beats systolic
    # (SST) on pipeline overhead, and the classic temporal-reduction
    # dataflows all run near peak on large GEMM.
    assert results["MNK-MTM"].normalized > results["MNK-SST"].normalized
    assert results["MNK-MTM"].normalized > 0.95
    for name in ("MNK-SST", "MNK-STS", "MNK-TSS", "MNK-MST", "MNK-STM"):
        assert results[name].normalized > 0.8, name
    # Spatial-reduction dataflows (output reduction tree fed by two systolic/
    # stationary inputs) are tile-cramped under the STT and fall well below.
    assert results["MNK-SSS"].normalized < results["MNK-SST"].normalized
