"""Paper Fig. 5(e): TTMc dataflows.

Same qualitative story as MTTKRP: unicast dataflows (IJK-BBBU touches the
output once per cycle per PE, ILM-UBBB streams A per PE) lose to dataflows
that keep reuse on chip.
"""

from bench_util import bench_session, evaluate_names, print_series

from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel

TTMC_DATAFLOWS = [
    "IJL-SSBT",
    "IJL-SSBM",
    "IJL-STBS",
    "JKM-BSTS",
    "IJK-BBBU",  # unicast output
    "ILM-UBBB",  # unicast A
]


def compute():
    session = bench_session(PerfModel(ArrayConfig()))
    tt = workloads.ttmc(64, 64, 64, 64, 64)
    return evaluate_names(tt, TTMC_DATAFLOWS, session)


def test_fig5e_ttmc(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("Fig. 5(e) TTMc, 16x16 PEs", rows)
    results = dict(rows)
    best_reuse = max(
        results[n].normalized for n in ("IJL-SSBT", "IJL-SSBM", "IJL-STBS")
    )
    assert results["IJK-BBBU"].normalized < best_reuse
    assert results["ILM-UBBB"].normalized < best_reuse
    assert results["ILM-UBBB"].bandwidth_stall > 3.0
