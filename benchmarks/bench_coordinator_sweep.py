"""Coordinated-sweep scaling: fold identity, pipelined latency, poll traffic,
crash recovery.

Four experiments:

**Fold identity** (``test_coordinated_sweep_matches_local``) runs the same
workload x config sweep four ways —

- **local**: ``LocalSession.sweep()`` in-process (the reference fold);
- **1 server**: a :class:`CoordinatedSession` over one live service;
- **2 servers**: the same coordinator over a *weighted* two-server fleet
  (one server advertises a process pool via healthz ``workers``), shards
  split between them via the job API;
- **2 servers, shard_size=2**: same fleet with sweep items grouped two per
  job —

and reports wall-clock per transport plus the coordinator's shard report.
The asserted bars are correctness, not speed (two servers on one CI box
share the same cores):

- every fold is bit-identical to the local sweep — shard placement,
  capacity weighting and ``shard_size`` grouping included;
- the two-server run actually distributed (both servers completed shards);
- the coordinator's folded memo cache warms a *local* session to zero
  evaluations — the distributed sweep's cache is as good as a local one.

**Pipelined latency** (``test_pipelined_folding_beats_cursor_polling``) races
the asyncio push-fold dispatch loop against a faithful reconstruction of the
fixed-cadence cursor-poll loop it replaced, over the same three-server fleet
and the same shard grid.  The asserted bars are the two latencies the rewrite
exists to cut — time-to-first-folded-row (the poll loop cannot see a row
before its first cadence boundary; the long-poll stream pushes it the moment
it exists) and end-to-end wall clock (the poll loop pays a cadence lag at
every shard completion before the lane resubmits; the event-driven lanes
pay none) — plus fold identity: the pipelined fleet's results must stay
bit-identical to ``LocalSession.sweep()``.  Each loop runs twice,
alternating, and the per-path minimum is compared, which damps the
shared-box noise CI runs swim in.  The measured numbers land in
``BENCH_coordinator.json`` at the repo root for the CI artifact upload.

**Poll traffic** (``test_streaming_vs_snapshot_poll_payload``) measures the
wire cost of watching a running job's per-design rows, streaming vs
snapshot:

- **snapshot**: every poll asks ``?since=0`` — the full row list so far —
  which is what a client without a cursor has to do for live rows.
  Cumulative payload grows ~quadratically with sweep length (each of ~T
  polls re-ships O(rows-so-far)).
- **streaming**: every poll advances the ``?since=`` cursor, so each row
  crosses the wire exactly once and cumulative payload stays linear.

The asserted bars: identical row logs both ways, each row shipped exactly
once on the streaming path, and the snapshot/streaming byte ratio *growing*
with sweep length — the superlinear gap incremental streaming closes.

**Crash recovery** (``test_journal_resume_beats_shard_rerun_after_crash``)
kills and restarts a single-server fleet mid-sweep under both recovery
transports — the legacy **re-run-shard** path (no journal: the restarted
server has never heard of the job, the coordinator re-submits and the shard
re-evaluates from design 1) and the **journal-resume** path
(``--journal-dir``: the restarted server rebuilds the job, adopts the
journaled prefix and evaluates only the remainder) — and counts
*evaluations repeated*: total evaluations across both server lives minus
the uninterrupted count.  The asserted bar is the reason journals exist:
resume repeats **zero** evaluations while re-run repeats every pre-crash
row; wall clock per transport is recorded alongside (not asserted — a
~25-design replay gap drowns in shared-box noise).  Both this experiment
and the latency race merge their numbers into ``BENCH_coordinator.json``.

Run:  pytest benchmarks/bench_coordinator_sweep.py
"""

import json
import os
import re
import shutil
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path

from bench_util import print_table

from repro.api import LocalSession
from repro.explore.engine import MemoCache
from repro.perf.model import ArrayConfig
from repro.service import (
    CoordinatedSession,
    RemoteSession,
    ServiceThread,
    SweepCoordinator,
)
from repro.service import wire

ARRAY = ArrayConfig(rows=8, cols=8)
WORKLOADS = ["gemm", "batched_gemv"]
CONFIGS = [ARRAY, ArrayConfig(rows=4, cols=4)]
SWEEP_KW = dict(one_d_only=True, selections=[("m", "n", "k")])


def _digest(results):
    return [(r.workload, r.array.rows, [p.metrics() for p in r]) for r in results]


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _merge_artifact(update: dict) -> Path:
    """Fold ``update`` into ``BENCH_coordinator.json`` (two tests share it)."""
    artifact = Path(__file__).resolve().parent.parent / "BENCH_coordinator.json"
    try:
        existing = json.loads(artifact.read_text())
        if not isinstance(existing, dict):
            existing = {}
    except (OSError, ValueError):
        existing = {}
    existing.update(update)
    artifact.write_text(json.dumps(existing, indent=2) + "\n")
    return artifact


def test_coordinated_sweep_matches_local(benchmark, tmp_path):
    local, local_s = _timed(
        lambda: LocalSession(ARRAY).sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
    )
    points = sum(len(r) + len(r.failures) for r in local)

    # node_a advertises a 2-process pool: the coordinator's probe weights its
    # inflight up to 2 while node_b (serial) keeps the max_inflight baseline
    with ServiceThread(LocalSession(ARRAY, workers=2, cache=MemoCache())) as node_a:
        with ServiceThread(LocalSession(ARRAY, cache=MemoCache())) as node_b:
            single = CoordinatedSession([node_a.url], array=ARRAY)
            fold_cache = tmp_path / "fold.json"
            fleet = CoordinatedSession(
                [node_a.url, node_b.url],
                array=ARRAY,
                cache=fold_cache,
                max_inflight=1,
            )
            grouped = CoordinatedSession(
                [node_a.url, node_b.url], array=ARRAY, shard_size=2
            )

            def run():
                one, one_s = _timed(
                    lambda: single.sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
                )
                two, two_s = _timed(
                    lambda: fleet.sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
                )
                wide, wide_s = _timed(
                    lambda: grouped.sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
                )
                return one, one_s, two, two_s, wide, wide_s

            one, one_s, two, two_s, wide, wide_s = benchmark.pedantic(
                run, rounds=1, iterations=1
            )
            report = fleet.coordinator.last_report
            grouped_report = grouped.coordinator.last_report
            capacities = [s.capacity for s in fleet.coordinator.servers]
            completed = [s.completed for s in fleet.coordinator.servers]
            single.close()
            fleet.close()
            grouped.close()

    print_table(
        f"sweep: {len(WORKLOADS)} workloads x {len(CONFIGS)} configs "
        f"({points} designs)",
        ["transport", "sweep s", "designs/s"],
        [
            ["local", f"{local_s:.2f}", f"{points / local_s:.0f}"],
            ["coordinated x1", f"{one_s:.2f}", f"{points / one_s:.0f}"],
            ["coordinated x2", f"{two_s:.2f}", f"{points / two_s:.0f}"],
            ["x2 shard_size=2", f"{wide_s:.2f}", f"{points / wide_s:.0f}"],
        ],
    )
    print(
        f"  two-server report: {report}, shards per server: {completed}, "
        f"weighted capacities: {capacities}"
    )
    print(f"  grouped report: {grouped_report}")

    # correctness bars: distribution must be invisible in the results
    assert _digest(one) == _digest(local)
    assert _digest(two) == _digest(local)
    assert _digest(wide) == _digest(local)
    assert report["shards"] == len(WORKLOADS) * len(CONFIGS)
    assert all(done > 0 for done in completed), "a server sat idle"
    # the probe picked up node_a's advertised pool (weighted sharding)
    assert capacities[0] == 2 and capacities[1] == 1
    # shard_size=2 really grouped: one job per config, half the submissions
    assert grouped_report["shards"] == len(CONFIGS)
    assert grouped_report["items"] == len(WORKLOADS) * len(CONFIGS)
    # rows streamed incrementally, one wire row per design, per sweep
    assert report["rows_streamed"] == points
    assert grouped_report["rows_streamed"] == points

    # the folded cache is as warm as a local one: zero re-evaluations
    warm = LocalSession(ARRAY, cache=fold_cache).sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
    assert all(r.stats.evaluated == 0 for r in warm)
    assert _digest(warm) == _digest(local)


def _start_server(cache: Path) -> tuple[subprocess.Popen, str]:
    """One out-of-process ``repro serve`` on an ephemeral port, warm cache."""
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else str(src)
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--rows", "8", "--cols", "8", "--cache", str(cache)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    assert match, f"no service URL in banner: {banner!r}"
    return proc, match.group(0)


def _cursor_poll_sweep(sessions, workloads, configs, options, *, poll_interval):
    """The pre-pipelining dispatch loop, reconstructed faithfully.

    One thread, fixed cadence: a serial healthz probe round, then rounds of
    (top up one in-flight job per idle server) -> ``sleep(poll_interval)``
    -> (serial ``since=``-cursor poll per open job), decoding every row with
    :func:`wire.row_to_point` — the same per-row fold work the pipelined
    folder does, so the race measures dispatch latency, not decode cost.

    Returns ``(time_to_first_row, elapsed, rows_decoded)``, clocks started
    before the probe round (both loops pay their own startup).
    """
    t0 = time.perf_counter()
    for session in sessions:
        session._call("GET", "/v1/healthz")  # serial round-trip per server
    pending = deque(
        (wire.instantiate_statement(wire.statement_payload(w)),
         wire.statement_payload(w), config)
        for config in configs
        for w in workloads
    )
    open_jobs = {}  # session -> [job_id, cursor, statement]
    first_row = None
    rows_decoded = 0
    while pending or open_jobs:
        for session in sessions:
            if session not in open_jobs and pending:
                statement, payload, config = pending.popleft()
                job = session.submit_job(
                    [dict(payload)],
                    configs=[config],
                    stream_rows=True,
                    **options,
                )
                open_jobs[session] = [job["id"], 0, statement]
        time.sleep(poll_interval)
        for session, slot in list(open_jobs.items()):
            job_id, cursor, statement = slot
            snapshot = session.poll_job(job_id, since=cursor)
            for row in snapshot["rows"]:
                wire.row_to_point(row, statement)
                rows_decoded += 1
                if first_row is None:
                    first_row = time.perf_counter() - t0
            slot[1] = snapshot["rows_total"]
            if snapshot["status"] in ("done", "failed", "cancelled"):
                assert snapshot["status"] == "done", snapshot
                del open_jobs[session]
    return first_row, time.perf_counter() - t0, rows_decoded


def test_pipelined_folding_beats_cursor_polling(tmp_path):
    """The push-fold loop must beat the cadence loop it replaced, twice over.

    Three servers, twelve one-item shards (four dispatch waves per lane): the
    poll loop pays its cadence at first-row discovery and at every shard
    completion, so the deeper the wave count the more lag it compounds; the
    pipelined loop's long-poll streams and event-driven lanes pay neither.
    Alternating rounds, min per path, both latency bars strict — and the
    pipelined fold stays bit-identical to local.
    """
    configs = [
        ARRAY,
        ArrayConfig(rows=7, cols=7),
        ArrayConfig(rows=6, cols=6),
        ArrayConfig(rows=5, cols=5),
        ArrayConfig(rows=4, cols=4),
        ArrayConfig(rows=3, cols=3),
    ]
    # pre-warm one memo cache and hand every server its own copy: with
    # evaluation memoized the race isolates the dispatch loops' own latency —
    # which is the thing this PR changed — instead of measuring compute both
    # loops pay identically.  The servers are real subprocesses (as deployed,
    # and as the smoke test runs them): in-process ServiceThreads would share
    # the benchmark's GIL, which hides server work inside the poll loop's
    # sleeps and charges it to the pipelined loop's folding instead.
    warm_path = tmp_path / "memo.json"
    local = LocalSession(ARRAY, cache=str(warm_path)).sweep(
        WORKLOADS, configs, **SWEEP_KW
    )
    points = sum(len(r) + len(r.failures) for r in local)
    options = wire.engine_options({"options": SWEEP_KW})
    # min-of-N damps shared-box noise; 10 alternating rounds keeps the two
    # latency bars stable on a single-core runner (3 is visibly flaky there)
    rounds = int(os.environ.get("BENCH_ROUNDS", "10"))

    procs = []
    urls = []
    for i in range(3):
        node_cache = tmp_path / f"memo-{i}.json"
        shutil.copy(warm_path, node_cache)
        proc, url = _start_server(node_cache)
        procs.append(proc)
        urls.append(url)

    first_fold = {}

    def on_row(_point):
        if "t" not in first_fold:
            first_fold["t"] = time.perf_counter() - first_fold["t0"]

    coordinator = SweepCoordinator(urls, array=ARRAY, max_inflight=1, on_row=on_row)
    sessions = [RemoteSession(url) for url in urls]
    try:
        # one untimed lap of each loop first: server processes page in their
        # code paths on the first sweep they serve, and whichever loop runs
        # first would eat that cost
        _cursor_poll_sweep(
            sessions, WORKLOADS, configs, options,
            poll_interval=coordinator.poll_interval,
        )
        first_fold["t0"] = time.perf_counter()
        coordinator.sweep(WORKLOADS, configs, **SWEEP_KW)

        pipe_ttfr, pipe_e2e, poll_ttfr, poll_e2e = [], [], [], []
        digests = []
        for _ in range(rounds):  # alternate to share box noise fairly
            ttfr, elapsed, rows = _cursor_poll_sweep(
                sessions, WORKLOADS, configs, options,
                poll_interval=coordinator.poll_interval,
            )
            assert rows == points
            poll_ttfr.append(ttfr)
            poll_e2e.append(elapsed)

            first_fold.clear()
            first_fold["t0"] = time.perf_counter()
            results, elapsed = _timed(
                lambda: coordinator.sweep(WORKLOADS, configs, **SWEEP_KW)
            )
            assert coordinator.last_report["rows_streamed"] == points
            digests.append(_digest(results))
            pipe_ttfr.append(first_fold["t"])
            pipe_e2e.append(elapsed)
    finally:
        coordinator.close()
        for session in sessions:
            session.close()
        for proc in procs:
            proc.kill()
            proc.wait(timeout=30)

    print_table(
        f"pipelined push-fold vs cursor polling: 3 servers, "
        f"{len(WORKLOADS) * len(configs)} shards, {points} designs, "
        f"min of {rounds}",
        ["dispatch loop", "first row s", "end-to-end s"],
        [
            ["cursor poll", f"{min(poll_ttfr):.3f}", f"{min(poll_e2e):.2f}"],
            ["pipelined", f"{min(pipe_ttfr):.3f}", f"{min(pipe_e2e):.2f}"],
        ],
    )

    # fold identity: the pipelined fleet is invisible in the results
    assert all(d == _digest(local) for d in digests)
    # the two latency bars the rewrite exists to cut — both strict
    assert min(pipe_ttfr) < min(poll_ttfr), (pipe_ttfr, poll_ttfr)
    assert min(pipe_e2e) < min(poll_e2e), (pipe_e2e, poll_e2e)

    artifact = _merge_artifact({
        "fleet": len(urls),
        "shards": len(WORKLOADS) * len(configs),
        "designs": points,
        "rounds": rounds,
        "cursor_poll": {
            "time_to_first_row_s": min(poll_ttfr),
            "end_to_end_s": min(poll_e2e),
        },
        "pipelined": {
            "time_to_first_row_s": min(pipe_ttfr),
            "end_to_end_s": min(pipe_e2e),
        },
        "speedup": {
            "time_to_first_row": min(poll_ttfr) / min(pipe_ttfr),
            "end_to_end": min(poll_e2e) / min(pipe_e2e),
        },
    })
    print(f"  wrote {artifact}")


def _crash_recovery_sweep(tmp_path, *, journal, kill_at=24):
    """One single-server sweep with a real SIGKILL + restart mid-sweep.

    A real ``repro serve`` subprocess (the fault-injection harness from
    ``tests/service/faultlib.py`` — an in-process stop is not a crash: the
    evaluator thread survives the loop and quietly finishes the job).  A
    watcher thread polls the running job until ``kill_at`` rows exist,
    SIGKILLs the server and restarts it on the same port, with the same
    journal directory when journaled.  The coordinator rides the outage via
    ``restart_grace`` either way — what differs is the recovery transport:
    journal-resume (rebuilt job, journaled prefix adopted) vs re-run-shard
    (fresh job under the same ``submit_key``, every design re-evaluated).

    Returns ``(results, elapsed_s, report)``.
    """
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from tests.service.faultlib import ServerProcess, journaled_rows, wait_for

    journal_dir = tmp_path / "journal"
    server = ServerProcess(
        journal_dir=journal_dir if journal else None
    ).start()

    def crash_and_restart():
        watcher = RemoteSession(server.url, retries=30, backoff=0.1)

        def rows_visible():
            jobs = watcher.jobs()
            if not jobs:
                return False
            return watcher.poll_job(jobs[0]["id"], since=0)["rows_total"] >= kill_at

        armed = wait_for(rows_visible)
        if armed and journal:
            # kill with a journaled prefix to adopt, not just produced rows
            armed = wait_for(lambda: journaled_rows(journal_dir) >= 8)
        watcher.close()
        if not armed:
            return  # job outran the watcher; the assertions below fail loudly
        server.kill()
        server.restart()

    coordinator = SweepCoordinator(
        [server.url], array=ARRAY, restart_grace=60.0, retries=1, backoff=0.05
    )
    watcher_thread = threading.Thread(target=crash_and_restart)
    watcher_thread.start()
    try:
        results, elapsed = _timed(lambda: coordinator.sweep(["gemm"]))
    finally:
        watcher_thread.join(timeout=120)
        report = dict(coordinator.last_report)
        coordinator.close()
        server.stop()
    return results, elapsed, report


def test_journal_resume_beats_shard_rerun_after_crash(tmp_path):
    """Journal resume evaluates only the remainder; shard re-run, everything.

    The same SIGKILL + restart under both recovery transports.  The metric
    is *fleet evaluations performed by the recovery* — the final job's
    folded ``stats.evaluated``, which on a resumed job honestly counts only
    post-crash work: re-run always pays the full design count again, resume
    pays it minus every journaled row it adopted.  The evaluation counts are
    the asserted bars (deterministic); wall clock is recorded for the
    artifact only — a ~25-design replay gap drowns in shared-box noise.
    """
    local = LocalSession(ARRAY).sweep(["gemm"])
    local_evaluated = sum(r.stats.evaluated for r in local)

    runs = {
        "rerun": _crash_recovery_sweep(tmp_path / "rerun", journal=False),
        "resume": _crash_recovery_sweep(tmp_path / "resume", journal=True),
    }

    table = []
    out = {"designs": local_evaluated}
    evaluated = {}
    for label, (results, elapsed, report) in runs.items():
        # fold identity first: recovery must be invisible in the results
        assert _digest(results) == _digest(local), label
        assert report["resumed"] >= 1, (label, report)
        evaluated[label] = sum(r.stats.evaluated for r in results)
        table.append([
            label,
            f"{report['rows_replayed']}",
            f"{evaluated[label]}",
            f"{elapsed:.2f}",
        ])
        out[label] = {
            "rows_replayed": report["rows_replayed"],
            "evaluations": evaluated[label],
            "wall_s": elapsed,
        }

    print_table(
        f"crash recovery: single server SIGKILLed+restarted mid-sweep "
        f"({local_evaluated} designs)",
        ["transport", "rows replayed", "evaluations", "sweep s"],
        table,
    )

    # the bar journals exist for: re-run pays the whole shard again, resume
    # adopts the journaled prefix and evaluates exactly the remainder
    rerun, resume = runs["rerun"][2], runs["resume"][2]
    assert rerun["rows_replayed"] == 0, rerun
    assert evaluated["rerun"] == local_evaluated, (evaluated, local_evaluated)
    assert resume["rows_replayed"] >= 8, resume
    assert evaluated["resume"] + resume["rows_replayed"] == local_evaluated
    assert evaluated["resume"] < evaluated["rerun"], evaluated

    artifact = _merge_artifact({"crash_recovery": out})
    print(f"  wrote {artifact}")


def _watch_job(remote, workloads, *, snapshot_mode, poll_interval=0.02):
    """Submit one stream_rows job and poll it to completion, tallying bytes.

    ``snapshot_mode=True`` polls ``since=0`` every round (the full row list
    so far — what a cursor-less client must do for live rows);
    ``snapshot_mode=False`` advances the cursor so each poll carries only
    new rows.  Returns (rows_seen, polls, payload_bytes).
    """
    job = remote.submit_job(
        ["gemm"] * workloads,
        extents={"m": 32, "n": 32, "k": 32},
        one_d_only=True,
        stream_rows=True,
    )
    cursor = 0
    rows_seen = 0
    polls = 0
    payload_bytes = 0
    while True:
        snapshot = remote.poll_job(
            job["id"], since=0 if snapshot_mode else cursor
        )
        polls += 1
        payload_bytes += len(json.dumps(snapshot).encode())
        if snapshot_mode:
            rows_seen = snapshot["rows_total"]
        else:
            rows_seen += len(snapshot["rows"])
        cursor = snapshot["rows_total"]
        if snapshot["status"] in ("done", "failed", "cancelled"):
            assert snapshot["status"] == "done", snapshot
            return rows_seen, polls, payload_bytes
        time.sleep(poll_interval)


def test_streaming_vs_snapshot_poll_payload():
    """Cursor polls ship each row once; since=0 polls re-ship the world.

    The byte ratio between the two must *grow* with sweep length — the
    snapshot path is superlinear in rows while the streaming path is linear.
    """
    lengths = [1, 3]
    table = []
    ratios = []
    # no memo cache: every job is equally cold, so both modes watch the
    # same amount of work and the poll schedules are comparable
    with ServiceThread(LocalSession(ARRAY)) as node:
        remote = RemoteSession(node.url)
        for length in lengths:
            stream_rows, stream_polls, stream_bytes = _watch_job(
                remote, length, snapshot_mode=False
            )
            snap_rows, snap_polls, snap_bytes = _watch_job(
                remote, length, snapshot_mode=True
            )
            assert stream_rows == snap_rows > 0  # both watched every design
            ratio = snap_bytes / stream_bytes
            ratios.append(ratio)
            table.append(
                [
                    f"{length} workload(s)",
                    f"{stream_rows}",
                    f"{stream_polls} / {snap_polls}",
                    f"{stream_bytes:,}",
                    f"{snap_bytes:,}",
                    f"{ratio:.1f}x",
                ]
            )
        remote.close()

    print_table(
        "job-row polling: cursor (since=<seq>) vs full snapshot (since=0)",
        ["sweep length", "rows", "polls s/f", "stream B", "snapshot B", "ratio"],
        table,
    )

    # the snapshot path re-ships rows: strictly more bytes at every length
    assert all(r > 1.0 for r in ratios), ratios
    # and the gap widens superlinearly with sweep length: tripling the work
    # must grow the byte *ratio*, not just the byte counts
    assert ratios[-1] > ratios[0], ratios
