"""Coordinated-sweep scaling: one session, one server, a two-server fleet.

Runs the same workload x config sweep three ways —

- **local**: ``LocalSession.sweep()`` in-process (the reference fold);
- **1 server**: a :class:`CoordinatedSession` over one live service;
- **2 servers**: the same coordinator over two services, shards split
  between them via the job API —

and reports wall-clock per transport plus the coordinator's shard report.
The asserted bars are correctness, not speed (two servers on one CI box
share the same cores):

- every fold is bit-identical to the local sweep, shard placement included;
- the two-server run actually distributed (both servers completed shards);
- the coordinator's folded memo cache warms a *local* session to zero
  evaluations — the distributed sweep's cache is as good as a local one.

Run:  pytest benchmarks/bench_coordinator_sweep.py
"""

import time

from bench_util import print_table

from repro.api import LocalSession
from repro.explore.engine import MemoCache
from repro.perf.model import ArrayConfig
from repro.service import CoordinatedSession, ServiceThread

ARRAY = ArrayConfig(rows=8, cols=8)
WORKLOADS = ["gemm", "batched_gemv"]
CONFIGS = [ARRAY, ArrayConfig(rows=4, cols=4)]
SWEEP_KW = dict(one_d_only=True, selections=[("m", "n", "k")])


def _digest(results):
    return [(r.workload, r.array.rows, [p.metrics() for p in r]) for r in results]


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_coordinated_sweep_matches_local(benchmark, tmp_path):
    local, local_s = _timed(
        lambda: LocalSession(ARRAY).sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
    )
    points = sum(len(r) + len(r.failures) for r in local)

    with ServiceThread(LocalSession(ARRAY, cache=MemoCache())) as node_a:
        with ServiceThread(LocalSession(ARRAY, cache=MemoCache())) as node_b:
            single = CoordinatedSession([node_a.url], array=ARRAY)
            fold_cache = tmp_path / "fold.json"
            fleet = CoordinatedSession(
                [node_a.url, node_b.url], array=ARRAY, cache=fold_cache
            )

            def run():
                one, one_s = _timed(
                    lambda: single.sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
                )
                two, two_s = _timed(
                    lambda: fleet.sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
                )
                return one, one_s, two, two_s

            one, one_s, two, two_s = benchmark.pedantic(run, rounds=1, iterations=1)
            report = fleet.coordinator.last_report
            completed = [s.completed for s in fleet.coordinator.servers]
            single.close()
            fleet.close()

    print_table(
        f"sweep: {len(WORKLOADS)} workloads x {len(CONFIGS)} configs "
        f"({points} designs)",
        ["transport", "sweep s", "designs/s"],
        [
            ["local", f"{local_s:.2f}", f"{points / local_s:.0f}"],
            ["coordinated x1", f"{one_s:.2f}", f"{points / one_s:.0f}"],
            ["coordinated x2", f"{two_s:.2f}", f"{points / two_s:.0f}"],
        ],
    )
    print(f"  two-server report: {report}, shards per server: {completed}")

    # correctness bars: distribution must be invisible in the results
    assert _digest(one) == _digest(local)
    assert _digest(two) == _digest(local)
    assert report["shards"] == len(WORKLOADS) * len(CONFIGS)
    assert all(done > 0 for done in completed), "a server sat idle"

    # the folded cache is as warm as a local one: zero re-evaluations
    warm = LocalSession(ARRAY, cache=fold_cache).sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
    assert all(r.stats.evaluated == 0 for r in warm)
    assert _digest(warm) == _digest(local)
