"""Coordinated-sweep scaling: fold identity, weighted shards, poll traffic.

Two experiments:

**Fold identity** (``test_coordinated_sweep_matches_local``) runs the same
workload x config sweep four ways —

- **local**: ``LocalSession.sweep()`` in-process (the reference fold);
- **1 server**: a :class:`CoordinatedSession` over one live service;
- **2 servers**: the same coordinator over a *weighted* two-server fleet
  (one server advertises a process pool via healthz ``workers``), shards
  split between them via the job API;
- **2 servers, shard_size=2**: same fleet with sweep items grouped two per
  job —

and reports wall-clock per transport plus the coordinator's shard report.
The asserted bars are correctness, not speed (two servers on one CI box
share the same cores):

- every fold is bit-identical to the local sweep — shard placement,
  capacity weighting and ``shard_size`` grouping included;
- the two-server run actually distributed (both servers completed shards);
- the coordinator's folded memo cache warms a *local* session to zero
  evaluations — the distributed sweep's cache is as good as a local one.

**Poll traffic** (``test_streaming_vs_snapshot_poll_payload``) measures the
wire cost of watching a running job's per-design rows, streaming vs
snapshot:

- **snapshot**: every poll asks ``?since=0`` — the full row list so far —
  which is what a client without a cursor has to do for live rows.
  Cumulative payload grows ~quadratically with sweep length (each of ~T
  polls re-ships O(rows-so-far)).
- **streaming**: every poll advances the ``?since=`` cursor, so each row
  crosses the wire exactly once and cumulative payload stays linear.

The asserted bars: identical row logs both ways, each row shipped exactly
once on the streaming path, and the snapshot/streaming byte ratio *growing*
with sweep length — the superlinear gap incremental streaming closes.

Run:  pytest benchmarks/bench_coordinator_sweep.py
"""

import json
import time

from bench_util import print_table

from repro.api import LocalSession
from repro.explore.engine import MemoCache
from repro.perf.model import ArrayConfig
from repro.service import CoordinatedSession, RemoteSession, ServiceThread

ARRAY = ArrayConfig(rows=8, cols=8)
WORKLOADS = ["gemm", "batched_gemv"]
CONFIGS = [ARRAY, ArrayConfig(rows=4, cols=4)]
SWEEP_KW = dict(one_d_only=True, selections=[("m", "n", "k")])


def _digest(results):
    return [(r.workload, r.array.rows, [p.metrics() for p in r]) for r in results]


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_coordinated_sweep_matches_local(benchmark, tmp_path):
    local, local_s = _timed(
        lambda: LocalSession(ARRAY).sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
    )
    points = sum(len(r) + len(r.failures) for r in local)

    # node_a advertises a 2-process pool: the coordinator's probe weights its
    # inflight up to 2 while node_b (serial) keeps the max_inflight baseline
    with ServiceThread(LocalSession(ARRAY, workers=2, cache=MemoCache())) as node_a:
        with ServiceThread(LocalSession(ARRAY, cache=MemoCache())) as node_b:
            single = CoordinatedSession([node_a.url], array=ARRAY)
            fold_cache = tmp_path / "fold.json"
            fleet = CoordinatedSession(
                [node_a.url, node_b.url],
                array=ARRAY,
                cache=fold_cache,
                max_inflight=1,
            )
            grouped = CoordinatedSession(
                [node_a.url, node_b.url], array=ARRAY, shard_size=2
            )

            def run():
                one, one_s = _timed(
                    lambda: single.sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
                )
                two, two_s = _timed(
                    lambda: fleet.sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
                )
                wide, wide_s = _timed(
                    lambda: grouped.sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
                )
                return one, one_s, two, two_s, wide, wide_s

            one, one_s, two, two_s, wide, wide_s = benchmark.pedantic(
                run, rounds=1, iterations=1
            )
            report = fleet.coordinator.last_report
            grouped_report = grouped.coordinator.last_report
            capacities = [s.capacity for s in fleet.coordinator.servers]
            completed = [s.completed for s in fleet.coordinator.servers]
            single.close()
            fleet.close()
            grouped.close()

    print_table(
        f"sweep: {len(WORKLOADS)} workloads x {len(CONFIGS)} configs "
        f"({points} designs)",
        ["transport", "sweep s", "designs/s"],
        [
            ["local", f"{local_s:.2f}", f"{points / local_s:.0f}"],
            ["coordinated x1", f"{one_s:.2f}", f"{points / one_s:.0f}"],
            ["coordinated x2", f"{two_s:.2f}", f"{points / two_s:.0f}"],
            ["x2 shard_size=2", f"{wide_s:.2f}", f"{points / wide_s:.0f}"],
        ],
    )
    print(
        f"  two-server report: {report}, shards per server: {completed}, "
        f"weighted capacities: {capacities}"
    )
    print(f"  grouped report: {grouped_report}")

    # correctness bars: distribution must be invisible in the results
    assert _digest(one) == _digest(local)
    assert _digest(two) == _digest(local)
    assert _digest(wide) == _digest(local)
    assert report["shards"] == len(WORKLOADS) * len(CONFIGS)
    assert all(done > 0 for done in completed), "a server sat idle"
    # the probe picked up node_a's advertised pool (weighted sharding)
    assert capacities[0] == 2 and capacities[1] == 1
    # shard_size=2 really grouped: one job per config, half the submissions
    assert grouped_report["shards"] == len(CONFIGS)
    assert grouped_report["items"] == len(WORKLOADS) * len(CONFIGS)
    # rows streamed incrementally, one wire row per design, per sweep
    assert report["rows_streamed"] == points
    assert grouped_report["rows_streamed"] == points

    # the folded cache is as warm as a local one: zero re-evaluations
    warm = LocalSession(ARRAY, cache=fold_cache).sweep(WORKLOADS, CONFIGS, **SWEEP_KW)
    assert all(r.stats.evaluated == 0 for r in warm)
    assert _digest(warm) == _digest(local)


def _watch_job(remote, workloads, *, snapshot_mode, poll_interval=0.02):
    """Submit one stream_rows job and poll it to completion, tallying bytes.

    ``snapshot_mode=True`` polls ``since=0`` every round (the full row list
    so far — what a cursor-less client must do for live rows);
    ``snapshot_mode=False`` advances the cursor so each poll carries only
    new rows.  Returns (rows_seen, polls, payload_bytes).
    """
    job = remote.submit_job(
        ["gemm"] * workloads,
        extents={"m": 32, "n": 32, "k": 32},
        one_d_only=True,
        stream_rows=True,
    )
    cursor = 0
    rows_seen = 0
    polls = 0
    payload_bytes = 0
    while True:
        snapshot = remote.poll_job(
            job["id"], since=0 if snapshot_mode else cursor
        )
        polls += 1
        payload_bytes += len(json.dumps(snapshot).encode())
        if snapshot_mode:
            rows_seen = snapshot["rows_total"]
        else:
            rows_seen += len(snapshot["rows"])
        cursor = snapshot["rows_total"]
        if snapshot["status"] in ("done", "failed", "cancelled"):
            assert snapshot["status"] == "done", snapshot
            return rows_seen, polls, payload_bytes
        time.sleep(poll_interval)


def test_streaming_vs_snapshot_poll_payload():
    """Cursor polls ship each row once; since=0 polls re-ship the world.

    The byte ratio between the two must *grow* with sweep length — the
    snapshot path is superlinear in rows while the streaming path is linear.
    """
    lengths = [1, 3]
    table = []
    ratios = []
    # no memo cache: every job is equally cold, so both modes watch the
    # same amount of work and the poll schedules are comparable
    with ServiceThread(LocalSession(ARRAY)) as node:
        remote = RemoteSession(node.url)
        for length in lengths:
            stream_rows, stream_polls, stream_bytes = _watch_job(
                remote, length, snapshot_mode=False
            )
            snap_rows, snap_polls, snap_bytes = _watch_job(
                remote, length, snapshot_mode=True
            )
            assert stream_rows == snap_rows > 0  # both watched every design
            ratio = snap_bytes / stream_bytes
            ratios.append(ratio)
            table.append(
                [
                    f"{length} workload(s)",
                    f"{stream_rows}",
                    f"{stream_polls} / {snap_polls}",
                    f"{stream_bytes:,}",
                    f"{snap_bytes:,}",
                    f"{ratio:.1f}x",
                ]
            )
        remote.close()

    print_table(
        "job-row polling: cursor (since=<seq>) vs full snapshot (since=0)",
        ["sweep length", "rows", "polls s/f", "stream B", "snapshot B", "ratio"],
        table,
    )

    # the snapshot path re-ships rows: strictly more bytes at every length
    assert all(r > 1.0 for r in ratios), ratios
    # and the gap widens superlinearly with sweep length: tripling the work
    # must grow the byte *ratio*, not just the byte counts
    assert ratios[-1] > ratios[0], ratios
