"""Evaluation-service throughput: local vs remote sessions, cold vs warm.

Measures the batch primitive behind the service — ``evaluate_many`` over a
mixed-backend request set (perf + cost + fpga + sim, ≥ 64 requests) — through
both :class:`SessionProtocol` implementations:

- **local**: ``LocalSession.evaluate_many`` in-process;
- **remote**: the same batch through ``RemoteSession`` against a live
  in-process :class:`~repro.service.server.ServiceThread` (real HTTP, real
  JSON, real memo cache on the server side).

Reported per transport: requests/sec for the batch, p50/p95 single-request
latency, and the cold -> warm speedup.  The asserted bars:

- a warm batch is served entirely from the memo cache (``cached=True`` on
  every result) and is ≥ 3x faster than the cold run, locally and remotely;
- local and remote batches return identical metrics (location transparency
  costs serialization, never correctness).

Run:  pytest benchmarks/bench_service_throughput.py
"""

import statistics
import time

from bench_util import print_table

from repro.api import LocalSession
from repro.perf.model import ArrayConfig

ARRAY = ArrayConfig(rows=8, cols=8)
SIM_ARRAY = ArrayConfig(rows=2, cols=2)


def mixed_requests(session) -> list:
    """A deterministic mixed-backend batch: 74 requests over 4 backends.

    The perf/cost requests use ``resolve="best"`` — the expensive STT-scoring
    policy — so the cold run pays realistic model time for the warm run to
    recoup from the memo cache.
    """
    requests = []
    for size in (8, 12, 16, 20, 24, 28, 32, 40):
        for name in ("MNK-SST", "MNK-MTM", "MNK-STS"):
            extents = {"m": size, "n": size, "k": size}
            requests.append(
                session.request(
                    "gemm", name, backend="perf", extents=extents,
                    options={"resolve": "best"},
                )
            )
            requests.append(
                session.request(
                    "gemm", name, backend="cost", extents=extents,
                    options={"resolve": "best"},
                )
            )
            requests.append(
                session.request(
                    "gemm", name, backend="fpga", extents=extents,
                    options={"workload_label": "MM"},
                )
            )
    for seed in (0, 1):
        requests.append(
            session.request(
                "gemm", "MNK-SST", backend="sim", array=SIM_ARRAY,
                extents={"m": 4, "n": 4, "k": 4}, options={"seed": seed},
            )
        )
    assert len(requests) >= 64, "the acceptance bar is a 64+ request batch"
    return requests


def _timed_batch(session, requests):
    t0 = time.perf_counter()
    results = session.evaluate_many(requests)
    return results, time.perf_counter() - t0


def _latency_percentiles(session, requests, repeat=3):
    """p50/p95 of warm single-request evaluate() latency, in milliseconds."""
    samples = []
    for request in requests[: min(32, len(requests))] * repeat:
        t0 = time.perf_counter()
        session.evaluate(request)
        samples.append((time.perf_counter() - t0) * 1e3)
    samples.sort()
    p50 = statistics.median(samples)
    p95 = samples[int(0.95 * (len(samples) - 1))]
    return p50, p95


def _report(rows):
    print_table(
        "evaluate_many: 74 mixed-backend requests (perf/cost/fpga/sim)",
        ["transport", "run", "req/s", "batch s", "p50 ms", "p95 ms"],
        rows,
    )


def test_local_warm_batch_memo_speedup(benchmark, tmp_path):
    session = LocalSession(ARRAY, cache=tmp_path / "memo.json", autoflush=False)
    requests = mixed_requests(session)

    def run():
        cold, cold_s = _timed_batch(session, requests)
        warm, warm_s = _timed_batch(session, requests)
        return cold, cold_s, warm, warm_s

    cold, cold_s, warm, warm_s = benchmark.pedantic(run, rounds=1, iterations=1)
    p50, p95 = _latency_percentiles(session, requests)
    n = len(requests)
    _report(
        [
            ["local", "cold", f"{n / cold_s:.0f}", f"{cold_s:.3f}", "-", "-"],
            ["local", "warm", f"{n / warm_s:.0f}", f"{warm_s:.3f}",
             f"{p50:.2f}", f"{p95:.2f}"],
        ]
    )
    speedup = cold_s / warm_s
    print(f"  local warm speedup: {speedup:.1f}x")

    assert all(r.ok for r in cold)
    assert not any(r.cached for r in cold)
    assert all(r.cached for r in warm)  # the whole batch rode the memo cache
    assert [r.metrics for r in warm] == [r.metrics for r in cold]
    assert speedup >= 3.0, f"warm batch only {speedup:.1f}x faster than cold"


def test_remote_matches_local_and_memoizes(benchmark, tmp_path):
    from repro.service import RemoteSession, ServiceThread

    local = LocalSession(ARRAY, cache=tmp_path / "local.json", autoflush=False)
    local_results, _ = _timed_batch(local, mixed_requests(local))

    server_session = LocalSession(
        ARRAY, cache=tmp_path / "server.json", autoflush=False
    )
    with ServiceThread(server_session) as thread:
        remote = RemoteSession(thread.url, array=ARRAY)
        requests = mixed_requests(remote)

        def run():
            cold, cold_s = _timed_batch(remote, requests)
            warm, warm_s = _timed_batch(remote, requests)
            return cold, cold_s, warm, warm_s

        cold, cold_s, warm, warm_s = benchmark.pedantic(run, rounds=1, iterations=1)
        p50, p95 = _latency_percentiles(remote, requests)
        n = len(requests)
        _report(
            [
                ["remote", "cold", f"{n / cold_s:.0f}", f"{cold_s:.3f}", "-", "-"],
                ["remote", "warm", f"{n / warm_s:.0f}", f"{warm_s:.3f}",
                 f"{p50:.2f}", f"{p95:.2f}"],
            ]
        )
        speedup = cold_s / warm_s
        print(f"  remote warm speedup: {speedup:.1f}x (HTTP round-trips included)")

        # location transparency: byte-identical metrics local vs remote
        assert [r.metrics for r in cold] == [r.metrics for r in local_results]
        assert all(r.cached for r in warm)  # server-side memo hits
        assert speedup >= 3.0, f"remote warm batch only {speedup:.1f}x faster"
