"""Paper Table I: the reuse-subspace -> dataflow taxonomy.

Regenerates the table by classifying a canonical example of every row and
benchmarks classification throughput over the full bound-1 STT space (the
inner loop of every design-space sweep)."""

from bench_util import print_table

from repro.core.dataflow import DataflowSpec, classify
from repro.core.naming import stt_candidates
from repro.core.reuse import reuse_space
from repro.core.stt import STT
from repro.ir import workloads


def taxonomy_examples():
    """One (workload, tensor, STT) witness per Table I row."""
    gemm = workloads.gemm(8, 8, 8)
    ttmc = workloads.ttmc(4, 4, 4, 4, 4)
    conv = workloads.conv2d(k=4, c=4, y=4, x=4, p=3, q=3)
    bgemv = workloads.batched_gemv(4, 4, 4)
    ident = STT([[1, 0, 0], [0, 1, 0], [0, 0, 1]])
    paper_t = STT([[1, 0, 0], [0, 1, 0], [1, 1, 1]])
    cases = [
        ("unicast", bgemv, "A", ("m", "n", "k"), ident),
        ("stationary", gemm, "C", ("m", "n", "k"), paper_t),
        ("systolic", gemm, "A", ("m", "n", "k"), paper_t),
        ("multicast", gemm, "A", ("m", "n", "k"), ident),
        ("broadcast", ttmc, "A", ("i", "j", "k"), STT([[0, 1, 0], [0, 0, 1], [1, 0, 0]])),
        ("multicast_stationary", ttmc, "B", ("i", "j", "k"), ident),
        ("systolic_multicast", ttmc, "B", ("i", "j", "k"), STT([[1, 0, 0], [0, 1, 1], [0, 0, 1]])),
        ("full_reuse", conv, "C", ("c", "p", "q"), ident),
    ]
    rows = []
    for expected, stmt, tensor, sel, stt in cases:
        rs = reuse_space(stmt.access(tensor).restrict(sel), stt)
        kind = classify(rs)
        assert kind.value == expected, (expected, kind)
        rows.append(
            [kind.reuse_dim, kind.value, kind.letter, f"{stmt.name}:{tensor}", str(rs.basis)]
        )
    return rows


def classify_design_space():
    """Classify GEMM under every bound-1 STT (sweep inner loop)."""
    gemm = workloads.gemm(8, 8, 8)
    counts: dict[str, int] = {}
    for stt in stt_candidates(1):
        spec = DataflowSpec(gemm, ("m", "n", "k"), stt)
        counts[spec.letters] = counts.get(spec.letters, 0) + 1
    return counts


def test_table1_taxonomy(benchmark):
    rows = taxonomy_examples()
    counts = benchmark.pedantic(classify_design_space, rounds=1, iterations=1)
    print_table(
        "Table I: reuse subspace dimension -> tensor dataflow",
        ["dim", "dataflow", "letter", "witness", "space-time reuse basis"],
        rows,
    )
    total = sum(counts.values())
    print(f"\n  classified {total} full-rank STTs for GEMM; letter histogram:")
    for letters, n in sorted(counts.items(), key=lambda kv: -kv[1])[:8]:
        print(f"    {letters}: {n}")
    # GEMM: every tensor has rank-2 access, so dims 0/2/3 never occur.
    assert set("".join(counts)) <= set("STM")
