"""Generator productivity: hardware generation and simulation throughput.

The paper's core pitch is productivity — "TensorLib remarkably improves the
productivity for the development and optimization of spatial hardware
architecture".  This bench measures what that means here: full accelerator
generation time vs array size, Verilog emission size, and netlist simulation
speed.
"""

import pytest
from bench_util import print_table

from repro.core import naming
from repro.hw.generator import AcceleratorGenerator
from repro.ir import workloads
from repro.sim.harness import FunctionalHarness


@pytest.fixture(scope="module")
def spec():
    return naming.spec_from_name(workloads.gemm(64, 64, 64), "MNK-SST")


@pytest.mark.parametrize("dim", [4, 8, 16])
def test_generation_scaling(benchmark, spec, dim):
    design = benchmark(lambda: AcceleratorGenerator(spec, dim, dim).generate())
    cells = design.top.cell_count()
    verilog_lines = design.verilog().count("\n")
    print_table(
        f"generated {dim}x{dim} output-stationary GEMM accelerator",
        ["PEs", "muls", "regs", "adds", "verilog lines"],
        [[dim * dim, cells.get("mul", 0), cells.get("reg", 0), cells.get("add", 0), verilog_lines]],
    )
    assert cells["mul"] == dim * dim


def test_simulation_throughput(benchmark):
    gemm = workloads.gemm(4, 4, 8)
    spec = naming.spec_from_name(gemm, "MNK-SST")
    harness = FunctionalHarness(spec, 4, 4)

    def run():
        harness.check()
        return harness.cycles_run

    cycles = benchmark(run)
    print(f"\n  simulated {cycles} cycles of a 4x4 array (flattened netlist)")
