"""Generator productivity: hardware generation and simulation throughput.

The paper's core pitch is productivity — "TensorLib remarkably improves the
productivity for the development and optimization of spatial hardware
architecture".  This bench measures what that means here: full accelerator
generation time vs array size, Verilog emission size, and netlist simulation
speed.
"""

import pytest
from bench_util import print_table

from repro.core import naming
from repro.hw.generator import AcceleratorGenerator
from repro.ir import workloads
from repro.sim.harness import FunctionalHarness


@pytest.fixture(scope="module")
def spec():
    return naming.spec_from_name(workloads.gemm(64, 64, 64), "MNK-SST")


@pytest.mark.parametrize("dim", [4, 8, 16])
def test_generation_scaling(benchmark, spec, dim):
    design = benchmark(lambda: AcceleratorGenerator(spec, dim, dim).generate())
    cells = design.top.cell_count()
    verilog_lines = design.verilog().count("\n")
    print_table(
        f"generated {dim}x{dim} output-stationary GEMM accelerator",
        ["PEs", "muls", "regs", "adds", "verilog lines"],
        [[dim * dim, cells.get("mul", 0), cells.get("reg", 0), cells.get("add", 0), verilog_lines]],
    )
    assert cells["mul"] == dim * dim


def test_simulation_throughput(benchmark):
    gemm = workloads.gemm(4, 4, 8)
    spec = naming.spec_from_name(gemm, "MNK-SST")
    harness = FunctionalHarness(spec, 4, 4)

    def run():
        harness.check()
        return harness.cycles_run

    cycles = benchmark(run)
    print(f"\n  simulated {cycles} cycles of a 4x4 array (flattened netlist)")


def _smoke(budget_s: float = 60.0) -> int:
    """Standalone perf sanity check for CI: no pytest-benchmark needed.

    Generates small accelerators, runs one netlist simulation and a small
    engine sweep, and fails when any step blows past the time budget — a
    coarse tripwire against order-of-magnitude regressions.
    """
    import time

    from repro.explore.engine import EvaluationEngine
    from repro.perf.model import ArrayConfig

    t0 = time.perf_counter()
    spec = naming.spec_from_name(workloads.gemm(64, 64, 64), "MNK-SST")
    for dim in (4, 8):
        design = AcceleratorGenerator(spec, dim, dim).generate()
        cells = design.top.cell_count()
        assert cells["mul"] == dim * dim, (dim, cells)
        print(f"  generated {dim}x{dim} accelerator: {cells.get('reg', 0)} regs")
    gemm = workloads.gemm(4, 4, 8)
    FunctionalHarness(naming.spec_from_name(gemm, "MNK-SST"), 4, 4).check()
    print("  4x4 netlist simulation matches the numpy reference")
    engine = EvaluationEngine(ArrayConfig(rows=8, cols=8))
    result = engine.evaluate(
        workloads.gemm(64, 64, 64), selections=[("m", "n", "k")]
    )
    assert len(result) > 20 and not result.failures, result.stats.summary()
    print(f"  engine sweep: {result.stats.summary()}")
    elapsed = time.perf_counter() - t0
    print(f"  smoke total: {elapsed:.1f}s (budget {budget_s:.0f}s)")
    if elapsed > budget_s:
        print("  FAIL: smoke run exceeded the time budget")
        return 1
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="quick CI sanity run (no pytest)"
    )
    parser.add_argument("--budget", type=float, default=60.0, help="seconds allowed")
    args = parser.parse_args()
    if not args.smoke:
        parser.error("run under pytest for full benchmarks, or pass --smoke")
    sys.exit(_smoke(args.budget))
