"""Evaluation-session throughput: cold vs warm sweeps, serial vs parallel.

The unified :class:`repro.api.Session` facade's scaling claims, measured on
the paper's headline sweep (every realizable GEMM dataflow on a 16x16 INT16
array):

- a warm on-disk memo cache makes a repeated ``Session.sweep()`` >= 5x
  faster than the cold run (both enumeration and model evaluation are
  memoized), and
- process-pool evaluation (``workers=N``) returns bit-identical points in
  the same order as the serial path.

Run:  pytest benchmarks/bench_engine_sweep.py
"""

import time

from bench_util import print_table

from repro.api import Session
from repro.ir import workloads
from repro.perf.model import ArrayConfig


def _sweep(cache_path):
    session = Session(ArrayConfig(rows=16, cols=16), width=16, cache=cache_path)
    t0 = time.perf_counter()
    (result,) = session.sweep([workloads.gemm(1024, 1024, 1024)])
    return result, time.perf_counter() - t0


def test_session_warm_cache_speedup(benchmark, tmp_path):
    cache = tmp_path / "memo.json"

    def run():
        cold_result, cold_s = _sweep(cache)
        warm_result, warm_s = _sweep(cache)
        return cold_result, cold_s, warm_result, warm_s

    cold_result, cold_s, warm_result, warm_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = cold_s / warm_s
    print_table(
        "Session.sweep: 16x16 GEMM design space, cold vs warm memo cache",
        ["run", "designs", "evaluated", "cache hits", "seconds"],
        [
            ["cold", len(cold_result), cold_result.stats.evaluated,
             cold_result.stats.cache_hits, f"{cold_s:.3f}"],
            ["warm", len(warm_result), warm_result.stats.evaluated,
             warm_result.stats.cache_hits, f"{warm_s:.3f}"],
        ],
    )
    print(f"  warm speedup: {speedup:.1f}x")

    assert len(cold_result) == len(warm_result)
    assert warm_result.stats.space_cache_hit
    assert warm_result.stats.cache_hits == len(warm_result)
    assert warm_result.stats.evaluated == 0
    # identical metrics either way
    assert [p.metrics() for p in cold_result] == [p.metrics() for p in warm_result]
    # the acceptance bar: warm run at least 5x faster than cold
    assert speedup >= 5.0, f"warm cache speedup only {speedup:.1f}x"


def test_session_parallel_matches_serial(benchmark):
    session = Session(ArrayConfig(rows=16, cols=16), width=16, chunk_size=8)
    gemm = workloads.gemm(256, 256, 256)
    selections = [("m", "n", "k")]

    serial = session.explore(gemm, selections=selections, workers=0)
    parallel = benchmark.pedantic(
        lambda: session.explore(gemm, selections=selections, workers=2),
        rounds=1,
        iterations=1,
    )
    assert [p.name for p in serial] == [p.name for p in parallel]
    # bit-identical floats: pooled results travel by pickle, not text
    assert [p.metrics() for p in serial] == [p.metrics() for p in parallel]
    print(
        f"\n  serial == parallel on {len(serial)} GEMM points "
        f"({serial.stats.summary()})"
    )
