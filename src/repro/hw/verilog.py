"""Verilog-2001 emission from the netlist IR.

The paper compiles Chisel to Verilog before synthesis; we print our netlist
IR in the same spirit.  Every module gets an implicit ``clk``; registers
become ``always @(posedge clk)`` processes with ``initial`` values (honoured
by FPGA synthesis, matching the simulator's reset-free semantics).

Data wires are declared ``signed`` so arithmetic matches the simulator's
two's-complement behaviour; the unsigned counter comparison (``LT``) casts
explicitly.
"""

from __future__ import annotations

from repro.hw.netlist import Cell, CellKind, Module

__all__ = ["emit_module", "emit_design"]

_BINOPS = {
    CellKind.ADD: "+",
    CellKind.SUB: "-",
    CellKind.MUL: "*",
    CellKind.EQ: "==",
    CellKind.NEQ: "!=",
    CellKind.AND: "&&",
    CellKind.OR: "||",
}


def _decl(width: int, signed: bool = True) -> str:
    rng = f"[{width - 1}:0] " if width > 1 else ""
    sgn = "signed " if signed and width > 1 else ""
    return f"{sgn}{rng}"


def emit_module(mod: Module) -> str:
    """Emit one module definition (children are emitted by
    :func:`emit_design`)."""
    lines: list[str] = []
    ports = ["clk"]
    ports += [f"{name}" for name in mod.inputs]
    ports += [f"{name}" for name in mod.outputs]
    lines.append(f"module {mod.name} (")
    decls = ["  input  wire clk"]
    for name, wire in mod.inputs.items():
        decls.append(f"  input  wire {_decl(wire.width)}{name}")
    for name, wire in mod.outputs.items():
        decls.append(f"  output wire {_decl(wire.width)}{name}")
    lines.append(",\n".join(decls))
    lines.append(");")

    # Wire declarations: every non-port wire that something references.
    port_wires = {id(w) for w in mod.inputs.values()}
    reg_outs = {id(c.out) for c in mod.cells if c.kind.is_sequential}
    referenced: set[int] = set()
    for cell in mod.cells:
        referenced.add(id(cell.out))
        referenced.update(id(w) for w in cell.pins.values())
    for inst in mod.instances:
        referenced.update(id(w) for w in inst.bindings.values())
    for w in mod.wires:
        if id(w) in port_wires or id(w) not in referenced:
            continue
        kind = "reg " if id(w) in reg_outs else "wire"
        lines.append(f"  {kind} {_decl(w.width)}{w.name};")

    # Output ports driven by internal wires need assigns (unless the output
    # *is* the internal wire name — we always alias for clarity).
    for name, src in mod.outputs.items():
        lines.append(f"  assign {name} = {src.name};")

    # Combinational cells.
    for cell in mod.cells:
        if cell.kind.is_sequential:
            continue
        lines.append(f"  {_comb_stmt(cell)}")

    # Sequential cells.
    regs = [c for c in mod.cells if c.kind.is_sequential]
    if regs:
        for cell in regs:
            init = cell.params.get("init", 0)
            lines.append(f"  initial {cell.out.name} = {_lit(init, cell.out.width)};")
        lines.append("  always @(posedge clk) begin")
        for cell in regs:
            d = cell.pins["d"].name
            if "en" in cell.pins:
                lines.append(f"    if ({cell.pins['en'].name}) {cell.out.name} <= {d};")
            else:
                lines.append(f"    {cell.out.name} <= {d};")
        lines.append("  end")

    # Instances.
    for inst in mod.instances:
        conns = [".clk(clk)"]
        conns += [f".{port}({wire.name})" for port, wire in sorted(inst.bindings.items())]
        lines.append(f"  {inst.module.name} {inst.name} (")
        lines.append("    " + ",\n    ".join(conns))
        lines.append("  );")

    lines.append("endmodule")
    return "\n".join(lines)


def _lit(value: int, width: int) -> str:
    masked = value & ((1 << width) - 1)
    return f"{width}'d{masked}"


def _comb_stmt(cell: Cell) -> str:
    out = cell.out.name
    if cell.kind is CellKind.CONST:
        return f"assign {out} = {_lit(cell.params['value'], cell.out.width)};"
    if cell.kind in _BINOPS:
        a, b = cell.pins["a"].name, cell.pins["b"].name
        return f"assign {out} = {a} {_BINOPS[cell.kind]} {b};"
    if cell.kind is CellKind.LT:
        a, b = cell.pins["a"].name, cell.pins["b"].name
        return f"assign {out} = $unsigned({a}) < $unsigned({b});"
    if cell.kind is CellKind.MUX:
        return (
            f"assign {out} = {cell.pins['sel'].name} ? "
            f"{cell.pins['a'].name} : {cell.pins['b'].name};"
        )
    if cell.kind is CellKind.NOT:
        return f"assign {out} = !{cell.pins['a'].name};"
    raise NotImplementedError(f"no Verilog template for {cell.kind}")


def emit_design(top: Module) -> str:
    """Emit the full hierarchy: children first, then ``top``.

    Module names are uniquified if two distinct modules share a name.
    """
    modules = top.submodules() + [top]
    seen: dict[str, Module] = {}
    for mod in modules:
        if mod.name in seen and seen[mod.name] is not mod:
            mod.name = f"{mod.name}_{id(mod) & 0xFFFF:x}"
        seen[mod.name] = mod
    header = "// Generated by the TensorLib reproduction framework\n"
    return header + "\n\n".join(emit_module(m) for m in modules) + "\n"
