"""Hardware generation: from a :class:`~repro.core.dataflow.DataflowSpec` to RTL.

The paper builds parameterized Chisel templates; we build the same templates
over a small structural netlist IR:

- :mod:`repro.hw.netlist` — wires, primitive cells, hierarchical modules,
  flattening (the "mini-Chisel" substrate),
- :mod:`repro.hw.pe` — the six PE internal module templates of paper Fig. 3(1),
- :mod:`repro.hw.reduction` — balanced adder trees for multicast outputs,
- :mod:`repro.hw.array` — PE array interconnection (paper Fig. 3(2) / Fig. 4),
- :mod:`repro.hw.controller` — loop counters and stage-phase FSM,
- :mod:`repro.hw.memory` — on-chip buffer configuration and behavioural banks,
- :mod:`repro.hw.generator` — the top-level :class:`AcceleratorGenerator`,
- :mod:`repro.hw.verilog` — Verilog-2001 emission.
"""

from repro.hw.netlist import CellKind, Module, Wire
from repro.hw.generator import AcceleratorGenerator, AcceleratorDesign

__all__ = ["CellKind", "Module", "Wire", "AcceleratorGenerator", "AcceleratorDesign"]
