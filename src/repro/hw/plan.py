"""Execution planning: tiling, stage geometry and phase timing.

The selected loops map onto the array through the STT; when their extents (or
the skew of the space rows) exceed the physical array, the loops are tiled
and each tile executes as one *stage* (paper §IV: "when PE and memory sizes
are determined, the loops are performed tiling to fit the hardware
resources").  The sequential (non-selected) loops contribute further stages.

:class:`StagePlan` captures everything geometric about a stage:

- the tile extents and the resulting space offset/footprint,
- the stage-local time span ``t_span`` of the tile under the time row,
- the systolic injection *lead* (how many cycles before first use a value
  must enter the boundary),
- the :class:`~repro.hw.controller.StageTiming` phase schedule,
- the enumeration of stages (tile origins x sequential-loop points).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.dataflow import DataflowSpec, DataflowType
from repro.hw.controller import StageTiming
from repro.hw.geometry import Grid

__all__ = ["choose_tile", "StagePlan", "Stage"]


def _space_footprint(space_rows, tile: Sequence[int]) -> tuple[int, int]:
    """Extent of the tile's image under the two space rows (box image)."""
    spans = []
    for row in space_rows:
        lo = sum(min(0, coeff) * (t - 1) for coeff, t in zip(row, tile))
        hi = sum(max(0, coeff) * (t - 1) for coeff, t in zip(row, tile))
        spans.append(hi - lo + 1)
    return (spans[0], spans[1])


def choose_tile(spec: DataflowSpec, rows: int, cols: int) -> dict[str, int]:
    """Pick tile extents for the selected loops so the space image fits.

    Greedy: grow the loop whose increment keeps the footprint legal and adds
    the most parallelism, until nothing can grow.  For unit space rows this
    reduces to "spatial loops tile to the array dimension, the time loop runs
    in full", matching the paper's experiments.
    """
    sel_space = spec.selected_space
    extents = sel_space.extents
    space_rows = spec.stt.space_rows
    dims = (rows, cols)
    tile = [1] * len(extents)

    def fits(t: Sequence[int]) -> bool:
        fp = _space_footprint(space_rows, t)
        return fp[0] <= dims[0] and fp[1] <= dims[1]

    if not fits(tile):
        raise ValueError(f"even a 1x1x1 tile does not fit a {rows}x{cols} array")
    grew = True
    while grew:
        grew = False
        for i in range(len(tile)):
            if tile[i] < extents[i]:
                cand = list(tile)
                cand[i] += 1
                if fits(cand):
                    tile = cand
                    grew = True
    return dict(zip(sel_space.names, tile))


@dataclass(frozen=True)
class Stage:
    """One stage: where the tile sits in the full iteration space."""

    index: int
    tile_origin: dict[str, int]  # selected loop -> base value
    sequential: dict[str, int]  # non-selected loop -> value

    def global_point(self, spec: DataflowSpec, local: Sequence[int]) -> tuple[int, ...]:
        """Full iteration point for a tile-local selected-loop point."""
        values = dict(self.sequential)
        for name, base, off in zip(spec.selected, (self.tile_origin[n] for n in spec.selected), local):
            values[name] = base + off
        return tuple(values[n] for n in spec.statement.space.names if n in values)


class StagePlan:
    """Complete geometric plan for executing a spec on a ``rows x cols`` array."""

    def __init__(
        self,
        spec: DataflowSpec,
        rows: int,
        cols: int,
        tile: dict[str, int] | None = None,
    ):
        self.spec = spec
        self.grid = Grid(rows, cols)
        self.tile = dict(tile) if tile is not None else choose_tile(spec, rows, cols)
        sel = spec.selected_space
        for name in sel.names:
            if not 1 <= self.tile[name] <= sel[name].extent:
                raise ValueError(f"tile extent {self.tile[name]} invalid for loop {name!r}")
        self.tile_extents = tuple(self.tile[n] for n in sel.names)

        # Space image of the local tile box and its normalizing offset.
        space_rows = spec.stt.space_rows
        p_lo = []
        p_hi = []
        for row in space_rows:
            lo = sum(min(0, c) * (t - 1) for c, t in zip(row, self.tile_extents))
            hi = sum(max(0, c) * (t - 1) for c, t in zip(row, self.tile_extents))
            p_lo.append(lo)
            p_hi.append(hi)
        self.space_offset = (-p_lo[0], -p_lo[1])
        footprint = (p_hi[0] - p_lo[0] + 1, p_hi[1] - p_lo[1] + 1)
        if footprint[0] > rows or footprint[1] > cols:
            raise ValueError(
                f"tile space footprint {footprint} exceeds array {rows}x{cols}"
            )
        self.footprint = footprint

        # Stage-local time range.
        trow = spec.stt.time_row
        t_lo = sum(min(0, c) * (t - 1) for c, t in zip(trow, self.tile_extents))
        t_hi = sum(max(0, c) * (t - 1) for c, t in zip(trow, self.tile_extents))
        self.t_min = t_lo
        self.t_span = t_hi - t_lo + 1

        # Systolic injection lead: worst-case boundary-to-PE travel time.
        self.lead = self._compute_lead()
        # Output flush lag: systolic partial sums computed on the last cycle
        # still have to travel to the array boundary before collection.
        self.out_lag = self._compute_out_lag()
        self.timing = self._compute_timing()

    # ------------------------------------------------------------------
    def _compute_lead(self) -> int:
        lead = 0
        for flow in self.spec.input_flows:
            if flow.kind is DataflowType.SYSTOLIC:
                s1, s2, dt = flow.systolic_direction
                max_steps = max(
                    self.grid.entry_point(p, (s1, s2))[1] for p in self.grid.points()
                )
                lead = max(lead, max_steps * dt)
            elif flow.kind is DataflowType.SYSTOLIC_MULTICAST:
                mc = (flow.multicast_direction[0], flow.multicast_direction[1])
                sy = flow.systolic_direction
                chains = self.grid.line_chain(mc, (sy[0], sy[1]))
                max_pos = max(len(chain) - 1 for chain in chains)
                lead = max(lead, max_pos * sy[2])
        return lead

    def _compute_out_lag(self) -> int:
        flow = self.spec.output_flow
        if flow.kind is DataflowType.SYSTOLIC:
            s1, s2, dt = flow.systolic_direction
            max_steps = max(
                self.grid.exit_point(p, (s1, s2))[1] for p in self.grid.points()
            )
            return max_steps * dt
        if flow.kind is DataflowType.SYSTOLIC_MULTICAST:
            mc = (flow.multicast_direction[0], flow.multicast_direction[1])
            sy = flow.systolic_direction
            chains = self.grid.line_chain(mc, (sy[0], sy[1]))
            return max(len(chain) - 1 for chain in chains) * sy[2]
        return 0

    def _compute_timing(self) -> StageTiming:
        has_chain_load = any(
            fl.kind is DataflowType.STATIONARY for fl in self.spec.input_flows
        )
        has_bus_load = any(
            fl.kind in (DataflowType.MULTICAST_STATIONARY, DataflowType.FULL_REUSE)
            for fl in self.spec.input_flows
        )
        load_len = self.grid.rows if has_chain_load else (1 if has_bus_load else 0)
        drain_len = (
            self.grid.rows
            if self.spec.output_flow.kind is DataflowType.STATIONARY
            else 0
        )
        # +1 flush for registered outputs, +out_lag for systolic exit travel.
        exec_len = self.lead + self.t_span + 1 + self.out_lag
        return StageTiming(load_len=load_len, exec_len=exec_len, drain_len=drain_len)

    # ------------------------------------------------------------------
    def local_points(self) -> Iterator[tuple[int, ...]]:
        """All tile-local selected-loop points."""
        return itertools.product(*(range(t) for t in self.tile_extents))

    def place(self, local: Sequence[int]) -> tuple[tuple[int, int], int]:
        """Map a tile-local point to (PE coordinate, stage-local cycle).

        The cycle is relative to the start of the execute phase *plus* the
        systolic lead, i.e. the actual compute cycle within the stage is
        ``timing.exec_start + lead + (t - t_min)`` — kept here in one place so
        the schedule and the controller cannot drift.
        """
        space, t = self.spec.stt.apply(local)
        p = (space[0] + self.space_offset[0], space[1] + self.space_offset[1])
        cycle = self.timing.exec_start + self.lead + (t - self.t_min)
        return p, cycle

    def stages(self) -> Iterator[Stage]:
        """Enumerate stages: sequential-loop points x tile origins."""
        sel = self.spec.selected_space
        seq = self.spec.sequential_space
        origins = [
            range(0, sel[name].extent, self.tile[name]) for name in sel.names
        ]
        index = 0
        for seq_point in seq.points():
            seq_vals = {
                name: val
                for name, val in zip(seq.names, seq_point)
                if name != "_unit"
            }
            for origin in itertools.product(*origins):
                yield Stage(
                    index=index,
                    tile_origin=dict(zip(sel.names, origin)),
                    sequential=seq_vals,
                )
                index += 1

    def n_stages(self) -> int:
        sel = self.spec.selected_space
        n = self.spec.sequential_space.volume()
        for name in sel.names:
            n *= -(-sel[name].extent // self.tile[name])
        return n

    def total_cycles(self) -> int:
        return self.n_stages() * self.timing.total

    def __repr__(self) -> str:
        return (
            f"StagePlan(tile={self.tile}, footprint={self.footprint}, "
            f"t_span={self.t_span}, lead={self.lead}, stages={self.n_stages()})"
        )
