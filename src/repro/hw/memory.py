"""On-chip memory configuration and behavioural scratchpad model.

The paper assigns "each group of PEs that reuse the same tensor indexes ...
a particular memory bank" (§V-B) and generates a flexible memory template
with configurable load/store patterns.  We reproduce that as:

- :class:`BankConfig` / :class:`MemoryConfig` — the *structural* outcome of
  memory generation: how many banks each tensor needs, their port widths and
  depths, and the access pattern class.  The FPGA/ASIC cost models consume
  this (BRAM counts, SRAM area).
- :class:`Scratchpad` — a behavioural model holding the actual tensors during
  functional simulation.  The schedule generator decides *which element* each
  port needs each cycle; the scratchpad serves those reads and applies
  read-modify-write accumulation for partial outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.dataflow import DataflowSpec, DataflowType
from repro.hw.array import ArrayInfo

__all__ = ["BankConfig", "MemoryConfig", "Scratchpad", "plan_memory"]


@dataclass(frozen=True)
class BankConfig:
    """One tensor's bank allocation."""

    tensor: str
    is_output: bool
    n_banks: int
    words_per_bank: int
    pattern: str  # "stream" | "per_line" | "per_pe" | "per_column" | "scalar"

    @property
    def total_words(self) -> int:
        return self.n_banks * self.words_per_bank


@dataclass(frozen=True)
class MemoryConfig:
    """Complete on-chip buffer plan for a generated accelerator."""

    banks: tuple[BankConfig, ...]

    def bank(self, tensor: str) -> BankConfig:
        for b in self.banks:
            if b.tensor == tensor:
                return b
        raise KeyError(f"no bank plan for tensor {tensor!r}")

    @property
    def total_words(self) -> int:
        return sum(b.total_words for b in self.banks)

    @property
    def total_ports(self) -> int:
        return sum(b.n_banks for b in self.banks)


def plan_memory(spec: DataflowSpec, info: ArrayInfo) -> MemoryConfig:
    """Derive the bank plan from the dataflow (paper §V-B).

    Port counts follow the interconnect: one bank per multicast line, per
    unicast PE, per stationary column chain, per systolic boundary entry.
    Depths provision a double-buffered tile of the tensor footprint.
    """
    grid = info.grid
    banks = []
    for flow in spec.flows:
        wiring = info.tensor(flow.tensor_name)
        kind = flow.kind
        if kind is DataflowType.UNICAST:
            n, pattern = grid.size, "per_pe"
        elif kind in (DataflowType.MULTICAST, DataflowType.MULTICAST_STATIONARY):
            n, pattern = len(wiring.line_map), "per_line"
        elif kind is DataflowType.SYSTOLIC_MULTICAST:
            chains = len(grid.line_chain(wiring.line_dir, wiring.sy_space))
            n, pattern = chains, "per_line"
        elif kind is DataflowType.SYSTOLIC:
            s = wiring.sy_space
            n = sum(1 for p in grid.points() if grid.is_entry(p, s))
            pattern = "stream"
        elif kind is DataflowType.STATIONARY:
            n, pattern = grid.cols, "per_column"
        elif kind in (DataflowType.BROADCAST, DataflowType.FULL_REUSE):
            n, pattern = 1, "scalar"
        else:  # pragma: no cover - exhaustive
            raise AssertionError(kind)
        footprint = flow.access.footprint()
        words = max(2, 2 * -(-footprint // max(n, 1)))  # double-buffered tile
        banks.append(
            BankConfig(
                tensor=flow.tensor_name,
                is_output=flow.is_output,
                n_banks=n,
                words_per_bank=words,
                pattern=pattern,
            )
        )
    return MemoryConfig(banks=tuple(banks))


class Scratchpad:
    """Behavioural on-chip buffer used by the functional harness.

    Holds input tensors read-only and accumulates into the output tensor
    (read-modify-write, as the paper's memory template does for partial
    results that revisit the buffer).
    """

    def __init__(self, spec: DataflowSpec, inputs: Mapping[str, np.ndarray]):
        self.spec = spec
        self.inputs: dict[str, np.ndarray] = {}
        for flow in spec.input_flows:
            name = flow.tensor_name
            arr = np.asarray(inputs[name])
            expected = flow.access.shape()
            if arr.shape != expected:
                raise ValueError(
                    f"tensor {name} has shape {arr.shape}, access needs {expected}"
                )
            self.inputs[name] = arr
        self.output = np.zeros(spec.output_flow.access.shape(), dtype=np.int64)

    def read(self, tensor: str, index: tuple[int, ...]) -> int:
        return int(self.inputs[tensor][index])

    def accumulate(self, index: tuple[int, ...], value: int) -> None:
        self.output[index] += value
