"""PE-array geometry shared by hardware generation and schedule derivation.

Coordinates: ``p = (row, col)`` with ``0 <= row < rows`` and ``0 <= col <
cols``.  A *space direction* is the ``(dp1, dp2)`` part of a reuse vector.

Lines
-----
Multicast buses and systolic chains group PEs into *lines* along a direction
``d``: the set of PEs reachable from each other by integer steps of ``d``.
The cross product ``row * d2 - col * d1`` is constant along a line and serves
as its raw id; :func:`line_ids` normalizes raw ids to a dense ``0..G-1``
range for port naming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["Grid", "cross", "Line"]


def cross(p: Sequence[int], d: Sequence[int]) -> int:
    """Line invariant of point ``p`` along direction ``d`` (2-D cross product)."""
    return p[0] * d[1] - p[1] * d[0]


@dataclass(frozen=True)
class Line:
    """One line of PEs along a direction."""

    raw_id: int
    index: int
    points: tuple[tuple[int, int], ...]  # ordered along +d


class Grid:
    """A ``rows x cols`` PE array with line/boundary geometry helpers."""

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ValueError(f"grid needs positive dims, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    def __contains__(self, p: Sequence[int]) -> bool:
        return 0 <= p[0] < self.rows and 0 <= p[1] < self.cols

    def points(self) -> Iterator[tuple[int, int]]:
        for r in range(self.rows):
            for c in range(self.cols):
                yield (r, c)

    @property
    def size(self) -> int:
        return self.rows * self.cols

    # -- systolic chains --------------------------------------------------
    def entry_point(self, p: Sequence[int], d: Sequence[int]) -> tuple[tuple[int, int], int]:
        """First in-array PE of the line through ``p`` along ``d`` and the
        number of ``d``-steps from that entry to ``p``.

        Data travelling along ``d`` is injected at the entry PE; an element
        needed at ``p`` at time ``t`` enters at ``t - steps * dt``.
        """
        if d[0] == 0 and d[1] == 0:
            raise ValueError("entry_point needs a nonzero direction")
        if tuple(p) not in self:
            raise ValueError(f"{p} outside {self.rows}x{self.cols} grid")
        cur = (p[0], p[1])
        steps = 0
        while True:
            prev = (cur[0] - d[0], cur[1] - d[1])
            if prev not in self:
                return cur, steps
            cur = prev
            steps += 1

    def exit_point(self, p: Sequence[int], d: Sequence[int]) -> tuple[tuple[int, int], int]:
        """Last in-array PE of the line through ``p`` along ``d`` (and steps)."""
        entry, back = self.entry_point(p, (-d[0], -d[1]))
        return entry, back

    def is_entry(self, p: Sequence[int], d: Sequence[int]) -> bool:
        """True when ``p - d`` falls outside the array."""
        return (p[0] - d[0], p[1] - d[1]) not in self

    def is_exit(self, p: Sequence[int], d: Sequence[int]) -> bool:
        return (p[0] + d[0], p[1] + d[1]) not in self

    # -- lines -------------------------------------------------------------
    def lines(self, d: Sequence[int]) -> list[Line]:
        """All lines along direction ``d``, indexed densely by raw id order."""
        if d[0] == 0 and d[1] == 0:
            raise ValueError("lines need a nonzero direction")
        groups: dict[int, list[tuple[int, int]]] = {}
        for p in self.points():
            groups.setdefault(cross(p, d), []).append(p)
        lines = []
        for index, raw in enumerate(sorted(groups)):
            pts = groups[raw]
            # Order points along +d (project onto d).
            pts.sort(key=lambda p: p[0] * d[0] + p[1] * d[1])
            lines.append(Line(raw_id=raw, index=index, points=tuple(pts)))
        return lines

    def line_index(self, d: Sequence[int]) -> dict[int, int]:
        """Map raw line id -> dense index for direction ``d``."""
        return {line.raw_id: line.index for line in self.lines(d)}

    def line_of(self, p: Sequence[int], d: Sequence[int]) -> int:
        """Dense line index of the line through ``p`` along ``d``."""
        return self.line_index(d)[cross(p, d)]

    # -- line graphs for systolic+multicast dataflows ----------------------
    def line_shift(self, mc: Sequence[int], sy_space: Sequence[int]) -> int:
        """Raw-id delta when a line along ``mc`` shifts by ``sy_space``.

        Used by the systolic+multicast dataflow: the value held by line ``g``
        moves to line ``g + shift`` after one systolic hop.
        """
        return cross(sy_space, mc)

    def line_chain(self, mc: Sequence[int], sy_space: Sequence[int]) -> list[list[int]]:
        """Chains of raw line ids connected by systolic hops.

        Returns one list per chain, ordered from entry line to exit line.
        Raises if the shift is zero (the systolic direction must actually move
        across lines — otherwise the two reuse directions are parallel, which
        a rank-2 reuse space precludes).
        """
        shift = self.line_shift(mc, sy_space)
        if shift == 0:
            raise ValueError("systolic direction does not cross multicast lines")
        raw_ids = {line.raw_id for line in self.lines(mc)}
        chains = []
        for raw in sorted(raw_ids):
            if raw - shift not in raw_ids:  # entry line
                chain = []
                cur = raw
                while cur in raw_ids:
                    chain.append(cur)
                    cur += shift
                chains.append(chain)
        return chains
