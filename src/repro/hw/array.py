"""PE array generation: interconnect per tensor dataflow (paper §V-B).

The array instantiates ``rows x cols`` copies of the generated PE and wires
them according to each tensor's reuse directions:

- **systolic** — neighbour links along the space step, with ``dt - 1`` extra
  delay registers when the reuse step spans more than one cycle (the PE
  itself contributes one register),
- **multicast** — one bus per *line* of PEs along the sharing direction
  (rows, columns or diagonals — paper Fig. 4(b,c)),
- **broadcast** — a single bus to every PE,
- **stationary** — shadow-register load chains down each column, and drain
  chains for stationary outputs,
- **reduction tree** — per-line balanced adder trees for multicast outputs
  (paper Fig. 4(d)), with array-level accumulators for the stationary-
  combined cases,
- **systolic+multicast** — line registers: each bus value hops to the next
  line after ``dt`` cycles,
- **unicast** — a private port per PE.

Port naming is centralized in the ``*_port`` helpers; the simulation harness
uses the same helpers, so schedules and hardware cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.dataflow import DataflowSpec, DataflowType, TensorDataflow
from repro.hw.geometry import Grid, cross
from repro.hw.netlist import Module, Wire
from repro.hw.pe import DEFAULT_WIDTH, build_pe
from repro.hw.reduction import reduce_tree

__all__ = [
    "ArrayInfo",
    "TensorWiring",
    "build_array",
    "in_port",
    "out_port",
    "bus_port",
    "line_in_port",
    "load_port",
    "drain_port",
    "sum_port",
    "acc_port",
    "chain_port",
]


# ---------------------------------------------------------------------------
# Port naming (shared with the simulation harness)
# ---------------------------------------------------------------------------

def in_port(tensor: str, r: int, c: int) -> str:
    """Per-PE data input (unicast input, systolic entry)."""
    return f"{tensor.lower()}_in_r{r}c{c}"


def out_port(tensor: str, r: int, c: int) -> str:
    """Per-PE data output (unicast output, systolic exit)."""
    return f"{tensor.lower()}_out_r{r}c{c}"


def bus_port(tensor: str, line: int | None = None) -> str:
    """Multicast line bus (or the global broadcast bus when ``line is None``)."""
    t = tensor.lower()
    return f"{t}_bus" if line is None else f"{t}_bus_l{line}"


def line_in_port(tensor: str, line: int) -> str:
    """Entry bus of a systolic+multicast line chain."""
    return f"{tensor.lower()}_line_in_l{line}"


def load_port(tensor: str, c: int) -> str:
    """Stationary-input load-chain entry for column ``c``."""
    return f"{tensor.lower()}_load_c{c}"


def drain_port(tensor: str, c: int) -> str:
    """Stationary-output drain-chain exit for column ``c``."""
    return f"{tensor.lower()}_drain_c{c}"


def sum_port(tensor: str, line: int | None = None) -> str:
    """Reduction-tree root (registered) for a multicast/broadcast output."""
    t = tensor.lower()
    return f"{t}_sum" if line is None else f"{t}_sum_l{line}"


def acc_port(tensor: str, line: int | None = None) -> str:
    """Array-level accumulator output (full-reuse / multicast+stationary)."""
    t = tensor.lower()
    return f"{t}_acc" if line is None else f"{t}_acc_l{line}"


def chain_port(tensor: str, line: int) -> str:
    """Exit of a systolic+multicast output line chain."""
    return f"{tensor.lower()}_chain_l{line}"


# ---------------------------------------------------------------------------
# Array metadata handed to the harness / models
# ---------------------------------------------------------------------------


@dataclass
class TensorWiring:
    """How one tensor is physically wired across the array."""

    flow: TensorDataflow
    #: dense line index per raw cross-product id (line-based dataflows).
    line_map: dict[int, int] = field(default_factory=dict)
    #: multicast direction used for the lines.
    line_dir: tuple[int, int] | None = None
    #: systolic space step and delay.
    sy_space: tuple[int, int] | None = None
    sy_delay: int = 0
    #: raw-id shift per systolic hop (systolic+multicast only).
    line_shift: int = 0

    @property
    def kind(self) -> DataflowType:
        return self.flow.kind

    @property
    def tensor(self) -> str:
        return self.flow.tensor_name


@dataclass
class ArrayInfo:
    """Geometry + wiring summary for a generated PE array."""

    grid: Grid
    wiring: dict[str, TensorWiring]
    controls: tuple[str, ...]
    width: int

    def tensor(self, name: str) -> TensorWiring:
        return self.wiring[name]


# ---------------------------------------------------------------------------
# Array construction
# ---------------------------------------------------------------------------


def _space(vec: Sequence[int]) -> tuple[int, int]:
    return (vec[0], vec[1])


def build_array(
    spec: DataflowSpec,
    rows: int,
    cols: int,
    width: int = DEFAULT_WIDTH,
    name: str = "pe_array",
) -> tuple[Module, ArrayInfo]:
    """Generate the PE array module for a dataflow spec.

    Returns the array module and an :class:`ArrayInfo` describing the wiring
    (used by the functional harness and the cost models).
    """
    grid = Grid(rows, cols)
    pe, pe_ports = build_pe(spec, width=width)
    arr = Module(name)

    # Control inputs: PE controls plus array-level accumulator clear.
    control_names = list(pe_ports.controls)
    out_kind = spec.output_flow.kind
    if out_kind in (DataflowType.FULL_REUSE, DataflowType.MULTICAST_STATIONARY):
        if "acc_clear" not in control_names:
            control_names.append("acc_clear")
    controls = {cname: arr.input(cname, 1) for cname in control_names}

    # Per-PE binding dictionaries, filled tensor by tensor.
    bindings: dict[tuple[int, int], dict[str, Wire]] = {p: {} for p in grid.points()}
    # Pre-created per-PE output wires (so inter-PE nets exist before
    # instantiation).
    pe_out_wires: dict[tuple[str, tuple[int, int]], Wire] = {}

    def pe_out(port: str, p: tuple[int, int]) -> Wire:
        key = (port, p)
        if key not in pe_out_wires:
            pe_out_wires[key] = arr.wire(f"{port}_r{p[0]}c{p[1]}", pe.ports[port].width)
        return pe_out_wires[key]

    wiring: dict[str, TensorWiring] = {}
    zero = arr.const(0, width, "zero")

    # ---- input tensors ----------------------------------------------------
    for flow in spec.input_flows:
        t = flow.tensor_name.lower()
        kind = flow.kind
        tw = TensorWiring(flow=flow)
        if kind is DataflowType.SYSTOLIC:
            s1, s2, dt = flow.systolic_direction
            tw.sy_space, tw.sy_delay = (s1, s2), dt
            for p in grid.points():
                if grid.is_entry(p, (s1, s2)):
                    src = arr.input(in_port(t, *p), width)
                else:
                    upstream = pe_out(f"{t}_out", (p[0] - s1, p[1] - s2))
                    src = arr.delay(upstream, dt - 1, name=f"{t}_lnk_r{p[0]}c{p[1]}_")
                bindings[p][f"{t}_in"] = src
                bindings[p][f"{t}_out"] = pe_out(f"{t}_out", p)
        elif kind is DataflowType.STATIONARY:
            for c in range(cols):
                chain = arr.input(load_port(t, c), width)
                for r in range(rows):
                    bindings[(r, c)][f"{t}_load_in"] = chain
                    chain = pe_out(f"{t}_load_out", (r, c))
                    bindings[(r, c)][f"{t}_load_out"] = chain
        elif kind is DataflowType.MULTICAST:
            mc = _space(flow.multicast_direction)
            tw.line_dir = mc
            tw.line_map = grid.line_index(mc)
            buses = {
                raw: arr.input(bus_port(t, idx), width) for raw, idx in tw.line_map.items()
            }
            for p in grid.points():
                bindings[p][f"{t}_in"] = buses[cross(p, mc)]
        elif kind is DataflowType.BROADCAST:
            bus = arr.input(bus_port(t), width)
            for p in grid.points():
                bindings[p][f"{t}_in"] = bus
        elif kind is DataflowType.FULL_REUSE:
            bus = arr.input(bus_port(t), width)
            for p in grid.points():
                bindings[p][f"{t}_bus"] = bus
        elif kind is DataflowType.MULTICAST_STATIONARY:
            mc = _space(flow.multicast_direction)
            tw.line_dir = mc
            tw.line_map = grid.line_index(mc)
            buses = {
                raw: arr.input(bus_port(t, idx), width) for raw, idx in tw.line_map.items()
            }
            for p in grid.points():
                bindings[p][f"{t}_bus"] = buses[cross(p, mc)]
        elif kind is DataflowType.UNICAST:
            for p in grid.points():
                bindings[p][f"{t}_in"] = arr.input(in_port(t, *p), width)
        elif kind is DataflowType.SYSTOLIC_MULTICAST:
            mc = _space(flow.multicast_direction)
            sy = flow.systolic_direction
            tw.line_dir = mc
            tw.line_map = grid.line_index(mc)
            tw.sy_space, tw.sy_delay = _space(sy), sy[2]
            tw.line_shift = grid.line_shift(mc, _space(sy))
            buses: dict[int, Wire] = {}
            for chain_ids in grid.line_chain(mc, _space(sy)):
                for pos, raw in enumerate(chain_ids):
                    if pos == 0:
                        buses[raw] = arr.input(line_in_port(t, tw.line_map[raw]), width)
                    else:
                        buses[raw] = arr.delay(
                            buses[chain_ids[pos - 1]], sy[2], name=f"{t}_linereg_l{tw.line_map[raw]}_"
                        )
            for p in grid.points():
                bindings[p][f"{t}_in"] = buses[cross(p, mc)]
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled input dataflow {kind}")
        wiring[flow.tensor_name] = tw

    # ---- output tensor ------------------------------------------------------
    out_flow = spec.output_flow
    t = out_flow.tensor_name.lower()
    tw = TensorWiring(flow=out_flow)
    partials_needed = out_kind in (
        DataflowType.MULTICAST,
        DataflowType.BROADCAST,
        DataflowType.MULTICAST_STATIONARY,
        DataflowType.FULL_REUSE,
        DataflowType.SYSTOLIC_MULTICAST,
    )
    if out_kind is DataflowType.SYSTOLIC:
        s1, s2, dt = out_flow.systolic_direction
        tw.sy_space, tw.sy_delay = (s1, s2), dt
        for p in grid.points():
            if grid.is_entry(p, (s1, s2)):
                src = zero
            else:
                upstream = pe_out(f"{t}_out", (p[0] - s1, p[1] - s2))
                src = arr.delay(upstream, dt - 1, name=f"{t}_lnk_r{p[0]}c{p[1]}_")
            bindings[p][f"{t}_psum_in"] = src
            bindings[p][f"{t}_out"] = pe_out(f"{t}_out", p)
            if grid.is_exit(p, (s1, s2)):
                arr.output(out_port(t, *p), pe_out(f"{t}_out", p))
    elif out_kind is DataflowType.STATIONARY:
        for c in range(cols):
            chain: Wire = zero
            for r in range(rows):
                bindings[(r, c)][f"{t}_drain_in"] = chain
                chain = pe_out(f"{t}_drain_out", (r, c))
                bindings[(r, c)][f"{t}_drain_out"] = chain
            arr.output(drain_port(t, c), chain)
    elif out_kind is DataflowType.UNICAST:
        for p in grid.points():
            w = pe_out(f"{t}_out", p)
            bindings[p][f"{t}_out"] = w
            arr.output(out_port(t, *p), w)
    elif partials_needed:
        partial = {
            p: pe_out(f"{t}_partial", p) for p in grid.points()
        }
        for p in grid.points():
            bindings[p][f"{t}_partial"] = partial[p]
        if out_kind is DataflowType.BROADCAST:
            root = reduce_tree(arr, [partial[p] for p in grid.points()], name=f"{t}_tree")
            arr.output(sum_port(t), arr.reg(root, name=f"{t}_sum_reg"))
        elif out_kind is DataflowType.FULL_REUSE:
            root = reduce_tree(arr, [partial[p] for p in grid.points()], name=f"{t}_tree")
            acc = _accumulator(arr, root, controls["acc_clear"], f"{t}_acc")
            arr.output(acc_port(t), acc)
        elif out_kind is DataflowType.MULTICAST:
            mc = _space(out_flow.multicast_direction)
            tw.line_dir = mc
            tw.line_map = grid.line_index(mc)
            for line in grid.lines(mc):
                root = reduce_tree(
                    arr, [partial[p] for p in line.points], name=f"{t}_tree_l{line.index}"
                )
                arr.output(
                    sum_port(t, line.index), arr.reg(root, name=f"{t}_sum_reg_l{line.index}")
                )
        elif out_kind is DataflowType.MULTICAST_STATIONARY:
            mc = _space(out_flow.multicast_direction)
            tw.line_dir = mc
            tw.line_map = grid.line_index(mc)
            for line in grid.lines(mc):
                root = reduce_tree(
                    arr, [partial[p] for p in line.points], name=f"{t}_tree_l{line.index}"
                )
                acc = _accumulator(arr, root, controls["acc_clear"], f"{t}_acc_l{line.index}")
                arr.output(acc_port(t, line.index), acc)
        else:  # SYSTOLIC_MULTICAST
            mc = _space(out_flow.multicast_direction)
            sy = out_flow.systolic_direction
            tw.line_dir = mc
            tw.line_map = grid.line_index(mc)
            tw.sy_space, tw.sy_delay = _space(sy), sy[2]
            tw.line_shift = grid.line_shift(mc, _space(sy))
            trees = {}
            for line in grid.lines(mc):
                trees[line.raw_id] = reduce_tree(
                    arr, [partial[p] for p in line.points], name=f"{t}_tree_l{line.index}"
                )
            for chain_ids in grid.line_chain(mc, _space(sy)):
                value: Wire | None = None
                for raw in chain_ids:
                    if value is None:
                        value = trees[raw]
                    else:
                        value = arr.add(trees[raw], value, name=f"{t}_chain_add_l{tw.line_map[raw]}")
                    if raw != chain_ids[-1]:
                        value = arr.delay(value, sy[2], name=f"{t}_chain_dly_l{tw.line_map[raw]}_")
                arr.output(chain_port(t, tw.line_map[chain_ids[-1]]), value)
    else:  # pragma: no cover - exhaustive
        raise AssertionError(f"unhandled output dataflow {out_kind}")
    wiring[out_flow.tensor_name] = tw

    # ---- instantiate the PEs -------------------------------------------------
    for p in grid.points():
        binds = dict(bindings[p])
        for cname, cwire in controls.items():
            if cname in pe.inputs:
                binds[cname] = cwire
        arr.instantiate(pe, f"pe_r{p[0]}c{p[1]}", **binds)

    info = ArrayInfo(grid=grid, wiring=wiring, controls=tuple(control_names), width=width)
    return arr, info


def _accumulator(mod: Module, value: Wire, clear: Wire, name: str) -> Wire:
    """``acc := clear ? value : acc + value`` (free-running register)."""
    placeholder = mod.wire(f"{name}_d", value.width)
    acc_q = mod.reg(placeholder, name=name)
    total = mod.add(acc_q, value, name=f"{name}_sum")
    muxed = mod.mux(clear, value, total, name=f"{name}_mux")
    for cell in mod.cells:
        for pin, wire in cell.pins.items():
            if wire is placeholder:
                cell.pins[pin] = muxed
    return acc_q
