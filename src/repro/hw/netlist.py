"""A structural netlist IR — the substrate the hardware templates build on.

The paper implements its templates in Chisel; this module provides the
equivalent facilities in plain Python:

- :class:`Wire` — a named signal with a bit width,
- :class:`Cell` — a primitive (adder, register, mux, …) connecting wires,
- :class:`Module` — a hierarchical container with ports, cells and instances
  of other modules,
- :func:`flatten` — recursive elaboration into a flat cell/wire graph that the
  cycle simulator executes and that resource models count.

Design notes
------------
* Arithmetic is two's-complement at each wire's width; the simulator wraps
  values exactly as the emitted Verilog would.
* Every module has an implicit clock; registers are the only sequential
  cells.  There is no implicit reset — registers start at their ``init``
  value (matching Verilog ``initial`` blocks, which FPGA synthesis honours).
* Combinational loops are rejected at flatten time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["CellKind", "Wire", "Cell", "Instance", "Module", "FlatNetlist", "flatten"]


class CellKind(enum.Enum):
    """Primitive cell alphabet.

    ``a``/``b``/``sel``/``d`` name input pins; every cell drives exactly one
    output wire.  Arithmetic cells treat operands as signed two's-complement
    of the output width.
    """

    CONST = "const"  # params: value
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MUX = "mux"  # pins: sel, a (sel=1), b (sel=0)
    EQ = "eq"
    NEQ = "neq"
    LT = "lt"  # unsigned a < b (used for counter comparisons)
    AND = "and"
    OR = "or"
    NOT = "not"
    REG = "reg"  # pins: d, optional en; params: init

    @property
    def is_sequential(self) -> bool:
        return self is CellKind.REG


@dataclass(eq=False)
class Wire:
    """A signal inside one module.  Identity-based equality."""

    name: str
    width: int
    module: "Module" = field(repr=False)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"wire {self.name!r} needs positive width")

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


@dataclass(eq=False)
class Cell:
    """A primitive cell: ``pins`` maps pin names to wires, ``out`` is driven."""

    kind: CellKind
    pins: dict[str, Wire]
    out: Wire
    params: dict[str, int] = field(default_factory=dict)
    name: str = ""


@dataclass(eq=False)
class Instance:
    """An instantiation of a child module with port bindings."""

    module: "Module"
    name: str
    bindings: dict[str, Wire]  # child port name -> parent wire


class Module:
    """A hierarchical hardware module.

    Provides a builder API mirroring the subset of Chisel the paper's
    templates need: port declaration, primitive helpers (``add``, ``mux``,
    ``reg``, …) and submodule instantiation.
    """

    def __init__(self, name: str):
        self.name = name
        self.wires: list[Wire] = []
        self.cells: list[Cell] = []
        self.instances: list[Instance] = []
        self.inputs: dict[str, Wire] = {}
        self.outputs: dict[str, Wire] = {}
        self._names: set[str] = set()
        self._driven: set[int] = set()

    # -- wires and ports -------------------------------------------------
    def _unique(self, base: str) -> str:
        if base not in self._names:
            self._names.add(base)
            return base
        i = 1
        while f"{base}_{i}" in self._names:
            i += 1
        name = f"{base}_{i}"
        self._names.add(name)
        return name

    def wire(self, name: str, width: int) -> Wire:
        w = Wire(self._unique(name), width, self)
        self.wires.append(w)
        return w

    def input(self, name: str, width: int) -> Wire:
        if name in self.inputs or name in self.outputs:
            raise ValueError(f"duplicate port {name!r} on {self.name}")
        w = self.wire(name, width)
        if w.name != name:
            raise ValueError(f"port name {name!r} collides with an existing wire")
        self.inputs[name] = w
        self._driven.add(id(w))  # driven from outside
        return w

    def output(self, name: str, source: Wire) -> Wire:
        if name in self.inputs or name in self.outputs:
            raise ValueError(f"duplicate port {name!r} on {self.name}")
        if source.module is not self:
            raise ValueError(f"output {name!r} source belongs to {source.module.name}")
        self.outputs[name] = source
        return source

    @property
    def ports(self) -> dict[str, Wire]:
        return {**self.inputs, **self.outputs}

    # -- primitive helpers ------------------------------------------------
    def _cell(self, kind: CellKind, pins: Mapping[str, Wire], width: int, name: str = "", **params: int) -> Wire:
        for pin, w in pins.items():
            if w.module is not self:
                raise ValueError(
                    f"pin {pin} of {kind.value} cell uses wire {w.name!r} from "
                    f"module {w.module.name!r}, not {self.name!r}"
                )
        out = self.wire(name or kind.value, width)
        cell = Cell(kind, dict(pins), out, dict(params), name=out.name)
        if id(out) in self._driven:
            raise ValueError(f"wire {out.name!r} already driven")
        self._driven.add(id(out))
        self.cells.append(cell)
        return out

    def const(self, value: int, width: int, name: str = "const") -> Wire:
        return self._cell(CellKind.CONST, {}, width, name, value=value)

    def add(self, a: Wire, b: Wire, name: str = "add") -> Wire:
        return self._cell(CellKind.ADD, {"a": a, "b": b}, max(a.width, b.width), name)

    def sub(self, a: Wire, b: Wire, name: str = "sub") -> Wire:
        return self._cell(CellKind.SUB, {"a": a, "b": b}, max(a.width, b.width), name)

    def mul(self, a: Wire, b: Wire, name: str = "mul") -> Wire:
        return self._cell(CellKind.MUL, {"a": a, "b": b}, max(a.width, b.width), name)

    def mux(self, sel: Wire, a: Wire, b: Wire, name: str = "mux") -> Wire:
        """``sel ? a : b``."""
        return self._cell(CellKind.MUX, {"sel": sel, "a": a, "b": b}, max(a.width, b.width), name)

    def eq(self, a: Wire, b: Wire, name: str = "eq") -> Wire:
        return self._cell(CellKind.EQ, {"a": a, "b": b}, 1, name)

    def neq(self, a: Wire, b: Wire, name: str = "neq") -> Wire:
        return self._cell(CellKind.NEQ, {"a": a, "b": b}, 1, name)

    def lt(self, a: Wire, b: Wire, name: str = "lt") -> Wire:
        return self._cell(CellKind.LT, {"a": a, "b": b}, 1, name)

    def and_(self, a: Wire, b: Wire, name: str = "and") -> Wire:
        return self._cell(CellKind.AND, {"a": a, "b": b}, 1, name)

    def or_(self, a: Wire, b: Wire, name: str = "or") -> Wire:
        return self._cell(CellKind.OR, {"a": a, "b": b}, 1, name)

    def not_(self, a: Wire, name: str = "not") -> Wire:
        return self._cell(CellKind.NOT, {"a": a}, 1, name)

    def reg(self, d: Wire, en: Wire | None = None, init: int = 0, name: str = "reg") -> Wire:
        pins = {"d": d}
        if en is not None:
            pins["en"] = en
        return self._cell(CellKind.REG, pins, d.width, name, init=init)

    def delay(self, d: Wire, cycles: int, en: Wire | None = None, name: str = "dly") -> Wire:
        """A chain of ``cycles`` registers (0 cycles returns ``d`` itself)."""
        if cycles < 0:
            raise ValueError("delay must be non-negative")
        w = d
        for i in range(cycles):
            w = self.reg(w, en=en, name=f"{name}{i}")
        return w

    def tie_zero(self, width: int, name: str = "zero") -> Wire:
        return self.const(0, width, name)

    # -- hierarchy ---------------------------------------------------------
    def instantiate(self, child: "Module", inst_name: str, **bindings: Wire) -> Instance:
        """Add a child instance; bindings map child port names to local wires."""
        missing = set(child.inputs) - set(bindings)
        if missing:
            raise ValueError(f"instance {inst_name}: unbound inputs {sorted(missing)}")
        unknown = set(bindings) - set(child.ports)
        if unknown:
            raise ValueError(f"instance {inst_name}: unknown ports {sorted(unknown)}")
        for port, wire in bindings.items():
            if wire.module is not self:
                raise ValueError(f"instance {inst_name}: binding {port} uses foreign wire")
            child_wire = child.ports[port]
            if wire.width != child_wire.width:
                raise ValueError(
                    f"instance {inst_name}: port {port} width {child_wire.width} "
                    f"!= wire {wire.name} width {wire.width}"
                )
            if port in child.outputs:
                if id(wire) in self._driven:
                    raise ValueError(f"instance {inst_name}: wire {wire.name!r} already driven")
                self._driven.add(id(wire))
        inst = Instance(child, self._unique(inst_name), dict(bindings))
        self.instances.append(inst)
        return inst

    # -- introspection -----------------------------------------------------
    def submodules(self) -> list["Module"]:
        """Unique child modules in instantiation order (recursive, depth-first)."""
        seen: dict[int, Module] = {}

        def visit(mod: Module) -> None:
            for inst in mod.instances:
                if id(inst.module) not in seen:
                    visit(inst.module)
                    seen[id(inst.module)] = inst.module

        visit(self)
        return list(seen.values())

    def cell_count(self, recursive: bool = True) -> dict[str, int]:
        """Histogram of primitive cells, optionally including all instances."""
        counts: dict[str, int] = {}

        def visit(mod: Module, multiplier: int) -> None:
            for cell in mod.cells:
                counts[cell.kind.value] = counts.get(cell.kind.value, 0) + multiplier
            for inst in mod.instances:
                visit(inst.module, multiplier)

        visit(self, 1)
        if not recursive:
            counts = {}
            for cell in self.cells:
                counts[cell.kind.value] = counts.get(cell.kind.value, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, {len(self.inputs)} in, {len(self.outputs)} out, "
            f"{len(self.cells)} cells, {len(self.instances)} instances)"
        )


# ---------------------------------------------------------------------------
# Flattening
# ---------------------------------------------------------------------------


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        root = x
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(x, x) != x:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


@dataclass
class FlatCell:
    kind: CellKind
    pins: dict[str, int]  # pin -> flat wire id
    out: int
    params: dict[str, int]
    width: int
    path: str


class FlatNetlist:
    """Fully elaborated netlist: cells over integer wire ids.

    ``n_wires`` counts canonical wires; ``inputs``/``outputs`` map top-level
    port names to wire ids.  Combinational cells are stored in topological
    order ready for the simulator.
    """

    def __init__(
        self,
        n_wires: int,
        cells: list[FlatCell],
        inputs: dict[str, int],
        outputs: dict[str, int],
        widths: list[int],
    ):
        self.n_wires = n_wires
        self.cells = cells
        self.inputs = inputs
        self.outputs = outputs
        self.widths = widths
        self.comb_cells: list[FlatCell] = []
        self.reg_cells: list[FlatCell] = []
        self._levelize()

    def _levelize(self) -> None:
        comb = [c for c in self.cells if not c.kind.is_sequential]
        self.reg_cells = [c for c in self.cells if c.kind.is_sequential]
        producers: dict[int, FlatCell] = {c.out: c for c in comb}
        order: list[FlatCell] = []
        state: dict[int, int] = {}  # cell id -> 0 visiting, 1 done

        def visit(cell: FlatCell, stack: list[FlatCell]) -> None:
            mark = state.get(id(cell))
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(c.path for c in stack[-6:])
                raise ValueError(f"combinational cycle through {cycle}")
            state[id(cell)] = 0
            stack.append(cell)
            for pin_wire in cell.pins.values():
                dep = producers.get(pin_wire)
                if dep is not None:
                    visit(dep, stack)
            stack.pop()
            state[id(cell)] = 1
            order.append(cell)

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000 + 4 * len(comb)))
        try:
            for cell in comb:
                visit(cell, [])
        finally:
            sys.setrecursionlimit(old_limit)
        self.comb_cells = order

    def stats(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.kind.value] = counts.get(cell.kind.value, 0) + 1
        counts["wires"] = self.n_wires
        return counts


def flatten(top: Module) -> FlatNetlist:
    """Elaborate a module hierarchy into a flat netlist.

    Port bindings merge parent and child wires via union-find; unconnected
    child outputs keep their own canonical wire.  Dangling inputs (never
    driven) read as 0 in simulation — array edges rely on this for boundary
    psum inputs.
    """
    uf = _UnionFind()
    wire_ids: dict[int, int] = {}
    widths: list[int] = []
    flat_cells: list[tuple[Cell, dict[int, int], str]] = []

    def wid(w: Wire) -> int:
        if id(w) not in wire_ids:
            wire_ids[id(w)] = len(widths)
            widths.append(w.width)
        return wire_ids[id(w)]

    def visit(mod: Module, path: str, port_map: dict[str, int]) -> None:
        local: dict[int, int] = {}

        def lid(w: Wire) -> int:
            if id(w) not in local:
                local[id(w)] = wid(w) if path == "" else _fresh(w.width)
            return local[id(w)]

        def _fresh(width: int) -> int:
            widths.append(width)
            return len(widths) - 1

        # Merge ports with parent bindings.
        for port_name, flat_id in port_map.items():
            w = mod.ports[port_name]
            uf.union(lid(w), flat_id)
        for cell in mod.cells:
            pin_ids = {pin: lid(w) for pin, w in cell.pins.items()}
            flat_cells.append(
                (cell, {**pin_ids, "__out__": lid(cell.out)}, f"{path}{cell.name}")
            )
        for inst in mod.instances:
            child_ports = {p: lid(w) for p, w in inst.bindings.items()}
            visit(inst.module, f"{path}{inst.name}.", child_ports)

    top_ports = {}
    for name, w in top.ports.items():
        top_ports[name] = wid(w)
    visit(top, "", top_ports)

    # Canonicalize wire ids through union-find.
    canon_map: dict[int, int] = {}

    def canon(x: int) -> int:
        root = uf.find(x)
        if root not in canon_map:
            canon_map[root] = len(canon_map)
        return canon_map[root]

    cells_out: list[FlatCell] = []
    final_widths: dict[int, int] = {}
    for cell, pin_ids, cpath in flat_cells:
        pins = {p: canon(i) for p, i in pin_ids.items() if p != "__out__"}
        out = canon(pin_ids["__out__"])
        width = widths[pin_ids["__out__"]]
        final_widths[out] = width
        for pin, cid in pins.items():
            final_widths.setdefault(cid, widths[pin_ids[pin]])
        cells_out.append(FlatCell(cell.kind, pins, out, dict(cell.params), width, cpath))

    inputs = {n: canon(i) for n, i in top_ports.items() if n in top.inputs}
    outputs = {n: canon(i) for n, i in top_ports.items() if n in top.outputs}
    for i in {*inputs.values(), *outputs.values()}:
        final_widths.setdefault(i, 32)
    n_wires = (max(final_widths) + 1) if final_widths else 0
    width_list = [final_widths.get(i, 1) for i in range(n_wires)]
    return FlatNetlist(n_wires, cells_out, inputs, outputs, width_list)
