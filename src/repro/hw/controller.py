"""Stage controller generation (paper §V: "the controller which provides
control signals for both PE and memory ports").

Execution proceeds in *stages*: one stage per spatial tile per combination of
sequential-loop values.  Every stage has the same phase schedule, so the
controller is a free-running cycle counter plus comparators:

====================  ====================================================
phase                 cycles (within a stage of length ``total``)
====================  ====================================================
load                  ``[0, load_len)`` — shift/broadcast stationary inputs
swap-in               ``load_len`` (1 cycle, only when loads exist)
execute               ``exec_len`` cycles; ``acc_clear`` pulses on the first
swap-out              1 cycle after execute (only for stationary outputs)
drain                 ``drain_len`` cycles shifting drain chains
====================  ====================================================

The controller is generated as a netlist like everything else, so it is
simulated and synthesized together with the array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.netlist import Module

__all__ = ["StageTiming", "build_controller"]


@dataclass(frozen=True)
class StageTiming:
    """Cycle-level schedule of one stage.

    Derived once per design; the controller netlist and the simulation
    harness both read phase boundaries from here so they cannot disagree.
    """

    load_len: int
    exec_len: int
    drain_len: int

    def __post_init__(self) -> None:
        if self.exec_len <= 0:
            raise ValueError("a stage needs at least one execute cycle")
        if self.load_len < 0 or self.drain_len < 0:
            raise ValueError("phase lengths must be non-negative")

    @property
    def has_load(self) -> bool:
        return self.load_len > 0

    @property
    def has_drain(self) -> bool:
        return self.drain_len > 0

    @property
    def swap_in_cycle(self) -> int | None:
        return self.load_len if self.has_load else None

    @property
    def exec_start(self) -> int:
        return self.load_len + (1 if self.has_load else 0)

    @property
    def exec_end(self) -> int:
        """First cycle after the execute phase."""
        return self.exec_start + self.exec_len

    @property
    def swap_out_cycle(self) -> int | None:
        return self.exec_end if self.has_drain else None

    @property
    def drain_start(self) -> int:
        return self.exec_end + (1 if self.has_drain else 0)

    @property
    def total(self) -> int:
        return self.drain_start + self.drain_len

    def phase_of(self, cycle: int) -> str:
        """Phase name of a cycle within the stage (reference semantics)."""
        c = cycle % self.total
        if c < self.load_len:
            return "load"
        if self.has_load and c == self.load_len:
            return "swap_in"
        if c < self.exec_end:
            return "execute"
        if self.has_drain and c == self.exec_end:
            return "swap_out"
        return "drain"


def build_controller(timing: StageTiming, name: str = "controller") -> Module:
    """Generate the stage controller netlist.

    Outputs: ``cycle`` (stage-local counter), ``load_en``, ``swap_in``,
    ``acc_clear``, ``swap_out``, ``drain_en`` and a ``stage_done`` pulse on
    the last cycle of each stage.  All outputs are combinational functions of
    the counter so they align exactly with :meth:`StageTiming.phase_of`.
    """
    ctrl = Module(name)
    # Width must hold `total` itself, not just total-1: the drain-phase upper
    # bound comparator uses the constant `total`, which would wrap to 0 at
    # power-of-two stage lengths otherwise.
    width = max(1, timing.total.bit_length())
    one = ctrl.const(1, width, "one")
    last = ctrl.const(timing.total - 1, width, "last")

    cnt_d = ctrl.wire("cnt_d", width)
    cnt = ctrl.reg(cnt_d, name="cnt")
    at_last = ctrl.eq(cnt, last, name="at_last")
    nxt = ctrl.add(cnt, one, name="nxt")
    zero = ctrl.const(0, width, "zero")
    wrapped = ctrl.mux(at_last, zero, nxt, name="wrapped")
    for cell in ctrl.cells:
        for pin, wire in cell.pins.items():
            if wire is cnt_d:
                cell.pins[pin] = wrapped

    ctrl.output("cycle", cnt)
    ctrl.output("stage_done", at_last)

    def at(value: int, label: str):
        return ctrl.eq(cnt, ctrl.const(value, width, f"{label}_c"), name=label)

    def in_range(lo: int, hi: int, label: str):
        """1 when lo <= cnt < hi (assumes 0 <= lo < hi <= total)."""
        if lo == 0:
            return ctrl.lt(cnt, ctrl.const(hi, width, f"{label}_hi"), name=label)
        ge_lo = ctrl.not_(
            ctrl.lt(cnt, ctrl.const(lo, width, f"{label}_lo"), name=f"{label}_blo"),
            name=f"{label}_ge",
        )
        lt_hi = ctrl.lt(cnt, ctrl.const(hi, width, f"{label}_hi"), name=f"{label}_lt")
        return ctrl.and_(ge_lo, lt_hi, name=label)

    false = ctrl.const(0, 1, "false")
    ctrl.output(
        "load_en",
        in_range(0, timing.load_len, "load_en_w") if timing.has_load else false,
    )
    ctrl.output(
        "swap_in",
        at(timing.swap_in_cycle, "swap_in_w") if timing.has_load else _false2(ctrl),
    )
    ctrl.output("acc_clear", at(timing.exec_start, "acc_clear_w"))
    ctrl.output(
        "swap_out",
        at(timing.swap_out_cycle, "swap_out_w") if timing.has_drain else _false2(ctrl),
    )
    ctrl.output(
        "drain_en",
        in_range(timing.drain_start, timing.total, "drain_en_w")
        if timing.has_drain
        else _false2(ctrl),
    )
    return ctrl


def _false2(ctrl: Module):
    return ctrl.const(0, 1, "false")
