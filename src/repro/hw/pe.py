"""Processing element generation — paper Fig. 3(1), modules (a)-(f).

A PE is assembled from one *internal module* per tensor plus the computation
cell.  The internal modules are independent (paper §V-A), so each tensor's
dataflow picks its template:

=====================  ====================================================
tensor dataflow        PE-internal template
=====================  ====================================================
systolic input         (a): input feeds the compute cell and a register
                       chained to the neighbour PE
systolic output        (b): compute cell adds the incoming partial sum; the
                       result is registered toward the neighbour
stationary input       (c): double buffer — a *shadow* register shift-chain
                       loads the next stage while the *active* register
                       feeds the compute cell
stationary output      (d): an accumulator register plus a shadow register
                       that drains the previous stage's result
multicast/unicast in   (e): wire straight into the compute cell
multicast/unicast out  (f): the product leaves the PE directly (a register
                       for unicast; combinational toward reduction trees)
=====================  ====================================================

2-D reuse dataflows decompose into these plus array-level structure: a
multicast+stationary input is a bus-loaded double buffer, a
systolic+multicast input reads a line bus driven by array-level line
registers, and so on (see :mod:`repro.hw.array`).

Control ports (``load_en``, ``swap_in``, ``acc_clear``, ``swap_out``,
``drain_en``) are created only when some tensor needs them; the controller
drives them once per stage phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataflow import DataflowSpec, DataflowType, TensorDataflow
from repro.hw.netlist import Module, Wire

__all__ = ["PEPorts", "build_pe", "DEFAULT_WIDTH"]

DEFAULT_WIDTH = 32

#: Input templates that hold a value in a double buffer across a stage.
_STATIONARY_LIKE_IN = (
    DataflowType.STATIONARY,
    DataflowType.MULTICAST_STATIONARY,
    DataflowType.FULL_REUSE,
)
#: Input templates that read a (per-PE, per-line or global) wire directly.
_DIRECT_IN = (
    DataflowType.MULTICAST,
    DataflowType.BROADCAST,
    DataflowType.UNICAST,
    DataflowType.SYSTOLIC_MULTICAST,
)
#: Output templates whose product leaves combinationally toward a tree.
_TREE_OUT = (
    DataflowType.MULTICAST,
    DataflowType.BROADCAST,
    DataflowType.MULTICAST_STATIONARY,
    DataflowType.FULL_REUSE,
    DataflowType.SYSTOLIC_MULTICAST,
)


@dataclass
class PEPorts:
    """Summary of the port interface a PE exposes, for the array builder."""

    controls: tuple[str, ...]

    def needs(self, name: str) -> bool:
        return name in self.controls


def _tname(flow: TensorDataflow) -> str:
    return flow.tensor_name.lower()


def build_pe(spec: DataflowSpec, width: int = DEFAULT_WIDTH, name: str = "pe") -> tuple[Module, PEPorts]:
    """Generate the PE module for a dataflow spec.

    Returns the module and a :class:`PEPorts` summary listing which control
    inputs exist.  Raises ``NotImplementedError`` for the degenerate corner
    where *every* input tensor is stage-held (no time-varying operand exists
    to zero out idle cycles — such dataflows need per-PE valid gating, which
    the paper's templates do not include either).
    """
    if all(fl.kind in _STATIONARY_LIKE_IN for fl in spec.input_flows):
        raise NotImplementedError(
            "all input tensors are stage-stationary; no template combination "
            "can gate idle cycles for this dataflow"
        )

    pe = Module(name)
    controls: list[str] = []

    def control(port: str) -> Wire:
        if port not in pe.inputs:
            controls.append(port)
            return pe.input(port, 1)
        return pe.inputs[port]

    # ---- input tensors: compute the operand wire for each -----------------
    operands: list[Wire] = []
    for flow in spec.input_flows:
        t = _tname(flow)
        kind = flow.kind
        if kind is DataflowType.SYSTOLIC:
            din = pe.input(f"{t}_in", width)
            pe.output(f"{t}_out", pe.reg(din, name=f"{t}_reg"))
            operands.append(din)
        elif kind is DataflowType.STATIONARY:
            load_in = pe.input(f"{t}_load_in", width)
            load_en = control("load_en")
            swap_in = control("swap_in")
            shadow = pe.reg(load_in, en=load_en, name=f"{t}_shadow")
            active = pe.reg(shadow, en=swap_in, name=f"{t}_active")
            pe.output(f"{t}_load_out", shadow)
            operands.append(active)
        elif kind in (DataflowType.MULTICAST_STATIONARY, DataflowType.FULL_REUSE):
            bus = pe.input(f"{t}_bus", width)
            load_en = control("load_en")
            swap_in = control("swap_in")
            shadow = pe.reg(bus, en=load_en, name=f"{t}_shadow")
            active = pe.reg(shadow, en=swap_in, name=f"{t}_active")
            operands.append(active)
        elif kind in _DIRECT_IN:
            operands.append(pe.input(f"{t}_in", width))
        else:  # pragma: no cover - exhaustive over DataflowType
            raise AssertionError(f"unhandled input dataflow {kind}")

    # ---- computation cell: product of all operands ------------------------
    product = operands[0]
    for idx, operand in enumerate(operands[1:], start=1):
        product = pe.mul(product, operand, name=f"prod{idx}")

    # ---- output tensor -----------------------------------------------------
    out_flow = spec.output_flow
    t = _tname(out_flow)
    kind = out_flow.kind
    if kind is DataflowType.SYSTOLIC:
        psum_in = pe.input(f"{t}_psum_in", width)
        summed = pe.add(psum_in, product, name=f"{t}_mac")
        pe.output(f"{t}_out", pe.reg(summed, name=f"{t}_psum_reg"))
    elif kind is DataflowType.STATIONARY:
        acc_clear = control("acc_clear")
        swap_out = control("swap_out")
        drain_en = control("drain_en")
        drain_in = pe.input(f"{t}_drain_in", width)
        acc_d = pe.wire(f"{t}_acc_d", width)
        # acc register with a mux feeding it; declare acc first via 2-step:
        acc_q = pe.reg(acc_d, name=f"{t}_acc")
        acc_sum = pe.add(acc_q, product, name=f"{t}_acc_sum")
        acc_mux = pe.mux(acc_clear, product, acc_sum, name=f"{t}_acc_mux")
        _alias(pe, acc_d, acc_mux)
        shadow_d = pe.mux(swap_out, acc_q, drain_in, name=f"{t}_drain_mux")
        shadow_en = pe.or_(swap_out, drain_en, name=f"{t}_drain_we")
        shadow_q = pe.reg(shadow_d, en=shadow_en, name=f"{t}_drain")
        pe.output(f"{t}_drain_out", shadow_q)
    elif kind is DataflowType.UNICAST:
        pe.output(f"{t}_out", pe.reg(product, name=f"{t}_out_reg"))
    elif kind in _TREE_OUT:
        pe.output(f"{t}_partial", product)
    else:  # pragma: no cover - exhaustive
        raise AssertionError(f"unhandled output dataflow {kind}")

    return pe, PEPorts(controls=tuple(controls))


def _alias(mod: Module, placeholder: Wire, real: Wire) -> None:
    """Connect a forward-declared wire to its actual driver.

    The netlist IR has no named assignment cell; a MUX with constant-1 select
    would be wasteful, so we retarget the register pin instead.  The
    placeholder wire must only be used as a cell pin (never as a driver).
    """
    for cell in mod.cells:
        for pin, wire in cell.pins.items():
            if wire is placeholder:
                cell.pins[pin] = real
