"""Balanced adder trees for multicast-output dataflows (paper Fig. 3(2)).

When an output tensor's reuse line runs across PEs at a single time step,
different PEs produce partial sums of the same element simultaneously; a
reduction tree combines them (paper Table I, §V-B and Fig. 4(d)).
"""

from __future__ import annotations

from typing import Sequence

from repro.hw.netlist import Module, Wire

__all__ = ["reduce_tree", "tree_depth", "adder_count"]


def reduce_tree(mod: Module, leaves: Sequence[Wire], name: str = "rtree") -> Wire:
    """Build a balanced binary adder tree over ``leaves`` inside ``mod``.

    Returns the root wire (combinational).  A single leaf returns itself; an
    empty leaf list is rejected.
    """
    if not leaves:
        raise ValueError("reduction tree needs at least one leaf")
    level = list(leaves)
    depth = 0
    while len(level) > 1:
        nxt: list[Wire] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(mod.add(level[i], level[i + 1], name=f"{name}_d{depth}_{i // 2}"))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        depth += 1
    return level[0]


def tree_depth(n_leaves: int) -> int:
    """Logic depth (in adders) of a balanced tree over ``n_leaves``."""
    if n_leaves <= 0:
        raise ValueError("need at least one leaf")
    depth = 0
    while n_leaves > 1:
        n_leaves = (n_leaves + 1) // 2
        depth += 1
    return depth


def adder_count(n_leaves: int) -> int:
    """Number of adders in a tree over ``n_leaves`` (always ``n - 1``)."""
    if n_leaves <= 0:
        raise ValueError("need at least one leaf")
    return n_leaves - 1
