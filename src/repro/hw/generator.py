"""Top-level accelerator generation (paper Fig. 2, right half).

``AcceleratorGenerator`` assembles the complete design for a dataflow spec:

1. the PE module (template selection per tensor — :mod:`repro.hw.pe`),
2. the PE array with interconnect (:mod:`repro.hw.array`),
3. the stage controller (:mod:`repro.hw.controller`) driven by the execution
   plan (:mod:`repro.hw.plan`),
4. the memory configuration (:mod:`repro.hw.memory`),
5. a ``top`` module wiring controller outputs to the array's control inputs
   and forwarding all data ports.

The result bundles every artifact (modules, geometry info, plan, memory) so
the simulator, the Verilog backend and the cost models all work from the same
object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataflow import DataflowSpec
from repro.hw.array import ArrayInfo, build_array
from repro.hw.controller import StageTiming, build_controller
from repro.hw.memory import MemoryConfig, plan_memory
from repro.hw.netlist import Module
from repro.hw.pe import DEFAULT_WIDTH
from repro.hw.plan import StagePlan

__all__ = ["AcceleratorDesign", "AcceleratorGenerator"]


@dataclass
class AcceleratorDesign:
    """A fully generated accelerator and its supporting metadata."""

    spec: DataflowSpec
    rows: int
    cols: int
    width: int
    array: Module
    controller: Module
    top: Module
    info: ArrayInfo
    plan: StagePlan
    memory: MemoryConfig

    @property
    def timing(self) -> StageTiming:
        return self.plan.timing

    @property
    def name(self) -> str:
        return self.top.name

    def verilog(self) -> str:
        """Emit the whole design as Verilog-2001 text."""
        from repro.hw.verilog import emit_design

        return emit_design(self.top)


class AcceleratorGenerator:
    """Generate a spatial accelerator for one dataflow spec.

    Parameters mirror the paper's experimental setup: array dimensions and
    datapath width.  ``tile`` overrides the automatic tiling (mostly for
    tests).
    """

    def __init__(
        self,
        spec: DataflowSpec,
        rows: int,
        cols: int,
        width: int = DEFAULT_WIDTH,
        tile: dict[str, int] | None = None,
    ):
        self.spec = spec
        self.rows = rows
        self.cols = cols
        self.width = width
        self.tile = tile

    def generate(self) -> AcceleratorDesign:
        spec = self.spec
        plan = StagePlan(spec, self.rows, self.cols, tile=self.tile)
        array, info = build_array(spec, self.rows, self.cols, width=self.width)
        controller = build_controller(plan.timing)
        memory = plan_memory(spec, info)

        top = Module(f"accel_{spec.statement.name}_{spec.name.lower().replace('-', '_')}")
        # Controller instance: outputs feed the array's control inputs.
        ctrl_wires = {
            name: top.wire(f"ctrl_{name}", controller.ports[name].width)
            for name in controller.outputs
        }
        top.instantiate(controller, "ctrl", **ctrl_wires)
        top.output("cycle", ctrl_wires["cycle"])
        top.output("stage_done", ctrl_wires["stage_done"])

        bindings: dict[str, object] = {}
        for port_name, wire in array.inputs.items():
            if port_name in info.controls:
                bindings[port_name] = ctrl_wires[port_name]
            else:
                bindings[port_name] = top.input(port_name, wire.width)
        for port_name, wire in array.outputs.items():
            w = top.wire(f"o_{port_name}", wire.width)
            bindings[port_name] = w
            top.output(port_name, w)
        top.instantiate(array, "array", **bindings)

        return AcceleratorDesign(
            spec=spec,
            rows=self.rows,
            cols=self.cols,
            width=self.width,
            array=array,
            controller=controller,
            top=top,
            info=info,
            plan=plan,
            memory=memory,
        )
