"""Command-line interface: generate, verify and evaluate accelerators.

Examples::

    python -m repro.cli generate gemm MNK-SST --rows 4 --cols 4 -o gemm.v
    python -m repro.cli verify conv2d KCX-SST --rows 4 --cols 4
    python -m repro.cli evaluate gemm MNK-MTM --rows 16 --cols 16
    python -m repro.cli enumerate depthwise_conv --one-d
    python -m repro.cli explore gemm depthwise_conv --workers 4 --cache dse.json
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.core import naming
from repro.cost.model import CostModel
from repro.hw.generator import AcceleratorGenerator
from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser, with_dataflow: bool = True) -> None:
    parser.add_argument("workload", choices=sorted(workloads.TABLE_II))
    if with_dataflow:
        parser.add_argument("dataflow", help="paper-style name, e.g. MNK-SST")
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--cols", type=int, default=4)
    parser.add_argument(
        "--extent",
        action="append",
        default=[],
        metavar="LOOP=N",
        help="override a loop extent (repeatable)",
    )


def _statement(args):
    extents = {}
    for item in args.extent:
        name, _, value = item.partition("=")
        extents[name] = int(value)
    return workloads.by_name(args.workload, **extents)


def cmd_generate(args) -> int:
    stmt = _statement(args)
    spec = naming.spec_from_name(stmt, args.dataflow)
    design = AcceleratorGenerator(spec, args.rows, args.cols, width=args.width).generate()
    text = design.verilog()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        cells = design.top.cell_count()
        print(
            f"wrote {args.output}: {text.count(chr(10))} lines, "
            f"{cells.get('mul', 0)} muls, {cells.get('reg', 0)} regs"
        )
    else:
        print(text)
    return 0


def cmd_verify(args) -> int:
    from repro.sim.harness import run_functional

    stmt = _statement(args)
    spec = naming.spec_from_name(stmt, args.dataflow)
    run_functional(spec, rows=args.rows, cols=args.cols)
    print(
        f"{spec.name} on {args.rows}x{args.cols}: netlist simulation matches "
        "the numpy reference"
    )
    return 0


def cmd_evaluate(args) -> int:
    stmt = _statement(args)
    model = PerfModel(ArrayConfig(rows=args.rows, cols=args.cols))
    spec = naming.best_spec_from_name(
        stmt, args.dataflow, lambda s: model.evaluate(s).normalized
    )
    perf = model.evaluate(spec)
    cost = CostModel(rows=args.rows, cols=args.cols).evaluate(spec)
    print(f"dataflow     {spec.name}  (STT {spec.stt.matrix})")
    print(f"performance  {perf.normalized:.1%} of peak ({perf.cycles:.3g} cycles)")
    print(f"utilization  {perf.utilization:.2f}   bandwidth stall {perf.bandwidth_stall:.2f}x")
    print(f"area         {cost.area_mm2:.3f} mm^2")
    print(f"power        {cost.power_mw:.1f} mW")
    return 0


def cmd_enumerate(args) -> int:
    from repro.core.enumerate import enumerate_designs
    from repro.explore.dse import ONE_D_TYPES

    stmt = _statement(args)
    space = enumerate_designs(
        stmt,
        realizable_only=True,
        canonical=True,
        allowed_types=ONE_D_TYPES if args.one_d else None,
    )
    print(f"{len(space)} distinct realizable designs for {stmt.name}")
    for letters, count in space.letter_histogram().items():
        print(f"  {letters}: {count}")
    return 0


def _workload_statement(name: str, extents: dict[str, int]):
    """Instantiate a Table II workload, applying only the extents it takes."""
    factory = workloads.TABLE_II[name]
    accepted = set(inspect.signature(factory).parameters) - {"name"}
    return factory(**{k: v for k, v in extents.items() if k in accepted})


def cmd_explore(args) -> int:
    from repro.explore.engine import EvaluationEngine
    from repro.perf.model import ArrayConfig

    extents = {}
    for item in args.extent:
        name, _, value = item.partition("=")
        extents[name] = int(value)
    accepted = set()
    for workload in args.workloads:
        accepted |= set(inspect.signature(workloads.TABLE_II[workload]).parameters)
    accepted -= {"name"}
    unknown = sorted(set(extents) - accepted)
    if unknown:
        print(
            f"error: extent(s) {', '.join(unknown)} not accepted by any of "
            f"{', '.join(args.workloads)} (valid: {', '.join(sorted(accepted))})",
            file=sys.stderr,
        )
        return 2
    engine = EvaluationEngine(
        ArrayConfig(rows=args.rows, cols=args.cols),
        width=args.width,
        workers=args.workers,
        cache=args.cache,
    )
    statements = [_workload_statement(name, extents) for name in args.workloads]
    results = engine.sweep(statements, one_d_only=args.one_d)
    for result in results:
        print(
            f"== {result.workload} on {result.array.rows}x{result.array.cols} "
            f"({result.stats.summary()}) =="
        )
        if result.failures:
            print(result.failure_report())
        ranked = result.best(args.top)
        print(f"{'dataflow':<14} {'perf':>6} {'cycles':>12} {'area mm2':>9} {'power mW':>9}")
        for pt in ranked:
            print(
                f"{pt.name:<14} {pt.normalized_perf:>5.1%} {pt.cycles:>12.3g} "
                f"{pt.area_mm2:>9.3f} {pt.power_mw:>9.1f}"
            )
        front = result.pareto()
        front.sort(key=lambda p: p.power_mw)
        names = ", ".join(pt.name for pt in front)
        print(f"pareto frontier (max perf, min power): {len(front)} designs: {names}")
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="TensorLib reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="emit Verilog for a dataflow")
    _add_common(p_gen)
    p_gen.add_argument("-o", "--output", help="write Verilog here (default stdout)")
    p_gen.add_argument("--width", type=int, default=32)
    p_gen.set_defaults(func=cmd_generate)

    p_ver = sub.add_parser("verify", help="simulate generated netlist vs numpy")
    _add_common(p_ver)
    p_ver.set_defaults(func=cmd_verify)

    p_eval = sub.add_parser("evaluate", help="performance/area/power models")
    _add_common(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_enum = sub.add_parser("enumerate", help="count the dataflow design space")
    _add_common(p_enum, with_dataflow=False)
    p_enum.add_argument("--one-d", action="store_true", help="1-D dataflow types only")
    p_enum.set_defaults(func=cmd_enumerate)

    p_exp = sub.add_parser(
        "explore", help="sweep + evaluate the design space (multi-workload)"
    )
    p_exp.add_argument(
        "workloads", nargs="+", choices=sorted(workloads.TABLE_II), metavar="workload"
    )
    p_exp.add_argument("--rows", type=int, default=16)
    p_exp.add_argument("--cols", type=int, default=16)
    p_exp.add_argument("--width", type=int, default=16)
    p_exp.add_argument(
        "--extent",
        action="append",
        default=[],
        metavar="LOOP=N",
        help="override a loop extent where the workload has it (repeatable)",
    )
    p_exp.add_argument("--one-d", action="store_true", help="1-D dataflow types only")
    p_exp.add_argument(
        "--workers", type=int, default=0, help="process-pool evaluation (0 = serial)"
    )
    p_exp.add_argument(
        "--cache", metavar="PATH", help="on-disk JSON memo cache for warm re-runs"
    )
    p_exp.add_argument(
        "--top", type=int, default=5, help="how many best-performing designs to print"
    )
    p_exp.set_defaults(func=cmd_explore)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
