"""Command-line interface: generate, verify, evaluate and serve accelerators.

All evaluation commands (``verify``, ``evaluate``, ``explore``) are written
against the transport-agnostic :class:`repro.api.SessionProtocol`: run them
directly and they build an in-process :class:`~repro.api.LocalSession`; run
them under ``repro client ... --url`` and the *same command functions* drive
a remote ``repro serve`` through
:class:`~repro.service.client.RemoteSession`.

Examples::

    python -m repro.cli generate gemm MNK-SST --rows 4 --cols 4 -o gemm.v
    python -m repro.cli verify conv2d KCX-SST --rows 4 --cols 4 --cache memo.json
    python -m repro.cli evaluate gemm MNK-MTM --rows 16 --cols 16
    python -m repro.cli explore gemm depthwise_conv --workers 4 --cache dse.json
    python -m repro.cli cache merge -o merged.json shard0.json shard1.json
    python -m repro.cli cache stats merged.json

    # the evaluation service
    python -m repro.cli serve --host 0.0.0.0 --port 8321 --workers 4 --cache memo.json
    python -m repro.cli client evaluate gemm MNK-MTM --url http://host:8321
    python -m repro.cli client explore gemm --rows 16 --cols 16 --url http://host:8321
    python -m repro.cli client stats --url http://host:8321
    python -m repro.cli client tail-job job-3 --url http://host:8321

    # a coordinated sweep over several servers (sharded + folded)
    python -m repro.cli sweep gemm mttkrp --rows 16 --cols 16 \\
        --url http://node-a:8321 --url http://node-b:8321 --cache warm.json \\
        --shard-size 2 --verbose
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core import naming
from repro.hw.generator import AcceleratorGenerator
from repro.ir import workloads
from repro.perf.model import ArrayConfig

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser, with_dataflow: bool = True) -> None:
    parser.add_argument("workload", choices=sorted(workloads.TABLE_II))
    if with_dataflow:
        parser.add_argument("dataflow", help="paper-style name, e.g. MNK-SST")
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--cols", type=int, default=4)
    parser.add_argument(
        "--extent",
        action="append",
        default=[],
        metavar="LOOP=N",
        help="override a loop extent (repeatable)",
    )


def _statement(args):
    extents = {}
    for item in args.extent:
        name, _, value = item.partition("=")
        extents[name] = int(value)
    return workloads.by_name(args.workload, **extents)


def cmd_generate(args) -> int:
    stmt = _statement(args)
    spec = naming.spec_from_name(stmt, args.dataflow)
    design = AcceleratorGenerator(spec, args.rows, args.cols, width=args.width).generate()
    text = design.verilog()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        cells = design.top.cell_count()
        print(
            f"wrote {args.output}: {text.count(chr(10))} lines, "
            f"{cells.get('mul', 0)} muls, {cells.get('reg', 0)} regs"
        )
    else:
        print(text)
    return 0


def _extents(args) -> dict[str, int]:
    extents = {}
    for item in args.extent:
        name, _, value = item.partition("=")
        extents[name] = int(value)
    return extents


def _session(args, **kwargs):
    """A :class:`SessionProtocol` for this invocation: local, or remote (--url)."""
    array = ArrayConfig(rows=args.rows, cols=args.cols)
    url = getattr(args, "url", None)
    if url:
        from repro.service import RemoteSession

        # pool size and cache are server-side concerns for a remote session
        kwargs.pop("workers", None)
        return RemoteSession(url, array=array, **kwargs)
    from repro.api import LocalSession

    return LocalSession(array, cache=getattr(args, "cache", None), **kwargs)


def cmd_verify(args) -> int:
    session = _session(args)
    result = session.evaluate(
        args.workload, args.dataflow, backend="sim", extents=_extents(args)
    )
    if not result.ok:
        print(
            f"error: [{result.failure_stage}] {result.failure_reason}",
            file=sys.stderr,
        )
        return 1
    cached = " (memoized)" if result.cached else ""
    print(
        f"{result.dataflow} on {args.rows}x{args.cols}: netlist simulation matches "
        f"the numpy reference over {result['cycles_run']:.0f} cycles{cached}"
    )
    return 0


def cmd_evaluate(args) -> int:
    session = _session(args)
    extents = _extents(args)
    perf = session.evaluate(
        args.workload,
        args.dataflow,
        backend="perf",
        extents=extents,
        options={"resolve": "best"},
    )
    if not perf.ok:
        print(f"error: [{perf.failure_stage}] {perf.failure_reason}", file=sys.stderr)
        return 1
    # reuse the already-resolved design: the best-by-perf STT walk is the
    # expensive part, and the cost backend must score the same spec anyway
    cost = session.evaluate(
        args.workload,
        backend="cost",
        extents=extents,
        selection=perf.details["selection"],
        stt=perf.details["stt"],
    )
    if not cost.ok:
        print(f"error: [{cost.failure_stage}] {cost.failure_reason}", file=sys.stderr)
        return 1
    stt = tuple(tuple(row) for row in perf.details["stt"])
    print(f"dataflow     {perf.dataflow}  (STT {stt})")
    print(
        f"performance  {perf['normalized_perf']:.1%} of peak "
        f"({perf['cycles']:.3g} cycles)"
    )
    print(
        f"utilization  {perf['utilization']:.2f}   "
        f"bandwidth stall {perf['bandwidth_stall']:.2f}x"
    )
    print(f"area         {cost['area_mm2']:.3f} mm^2")
    print(f"power        {cost['power_mw']:.1f} mW")
    return 0


def cmd_enumerate(args) -> int:
    from repro.core.enumerate import enumerate_designs
    from repro.explore.dse import ONE_D_TYPES

    stmt = _statement(args)
    space = enumerate_designs(
        stmt,
        realizable_only=True,
        canonical=True,
        allowed_types=ONE_D_TYPES if args.one_d else None,
    )
    print(f"{len(space)} distinct realizable designs for {stmt.name}")
    for letters, count in space.letter_histogram().items():
        print(f"  {letters}: {count}")
    return 0


def _workload_statement(name: str, extents: dict[str, int]):
    """Instantiate a Table II workload, applying only the extents it takes."""
    accepted = workloads.accepted_extents(name)
    return workloads.by_name(name, **{k: v for k, v in extents.items() if k in accepted})


def _sweep_statements(args):
    """Validate ``--extent`` against the workloads and instantiate statements.

    Returns ``(statements, error)``; exactly one is ``None``.
    """
    extents = _extents(args)
    accepted = set()
    for workload in args.workloads:
        accepted |= workloads.accepted_extents(workload)
    unknown = sorted(set(extents) - accepted)
    if unknown:
        return None, (
            f"extent(s) {', '.join(unknown)} not accepted by any of "
            f"{', '.join(args.workloads)} (valid: {', '.join(sorted(accepted))})"
        )
    return [_workload_statement(name, extents) for name in args.workloads], None


def _print_sweep_results(results, top: int) -> None:
    """The shared report behind ``repro explore`` and ``repro sweep``."""
    for result in results:
        print(
            f"== {result.workload} on {result.array.rows}x{result.array.cols} "
            f"({result.stats.summary()}) =="
        )
        if result.failures:
            print(result.failure_report())
        ranked = result.best(top)
        print(f"{'dataflow':<14} {'perf':>6} {'cycles':>12} {'area mm2':>9} {'power mW':>9}")
        for pt in ranked:
            print(
                f"{pt.name:<14} {pt.normalized_perf:>5.1%} {pt.cycles:>12.3g} "
                f"{pt.area_mm2:>9.3f} {pt.power_mw:>9.1f}"
            )
        front = result.pareto()
        front.sort(key=lambda p: p.power_mw)
        names = ", ".join(pt.name for pt in front)
        print(f"pareto frontier (max perf, min power): {len(front)} designs: {names}")
        print()


def cmd_explore(args) -> int:
    statements, error = _sweep_statements(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = _session(args, width=args.width, workers=getattr(args, "workers", 0))
    results = session.sweep(statements, one_d_only=args.one_d)
    _print_sweep_results(results, args.top)
    return 0


def _coordinator_event_printer():
    """Build the ``repro sweep --verbose`` stderr printer.

    Each event line carries a wall-clock timestamp plus two monotonic
    readings — ``+T`` since the printer was created and ``Δt`` since the
    previous event — so the overlap the pipelined dispatch loop buys
    (probes racing submits racing folds) is visible in the field, not
    just in benchmarks.
    """
    import time
    from datetime import datetime

    t0 = time.monotonic()
    last = t0

    def printer(evt: dict) -> None:
        nonlocal last
        now = time.monotonic()
        stamp = datetime.now().strftime("%H:%M:%S.%f")[:-3]
        kind = evt.get("event", "?")
        fields = " ".join(f"{k}={v}" for k, v in evt.items() if k != "event")
        print(
            f"[sweep:{kind}] {stamp} +{now - t0:.3f}s Δ{now - last:.3f}s "
            f"{fields}",
            file=sys.stderr,
        )
        last = now

    return printer


def cmd_sweep(args) -> int:
    """Coordinate one sweep across several ``repro serve`` instances."""
    from repro.service import CoordinatedSession

    statements, error = _sweep_statements(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = CoordinatedSession(
        args.urls,
        array=ArrayConfig(rows=args.rows, cols=args.cols),
        width=args.width,
        cache=args.cache,
        shard_size=args.shard_size,
        max_inflight=args.max_inflight,
        restart_grace=args.restart_grace,
        # surface per-shard retry/reassignment events instead of folding
        # them silently into the final counters
        on_event=_coordinator_event_printer() if args.verbose else None,
    )
    try:
        results = session.sweep(statements, one_d_only=args.one_d)
    except (ConnectionError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        session.close()
    _print_sweep_results(results, args.top)
    report = session.coordinator.last_report
    print(
        f"coordinated {report['items']} item(s) in {report['shards']} shard(s) "
        f"over {report['servers']} server(s): {report['jobs']} job(s), "
        f"{report['rows_streamed']} row(s) streamed, {report['fallbacks']} "
        f"evaluate_many fallback(s), {report['reassigned']} reassigned, "
        f"{report['servers_lost']} server(s) lost"
    )
    if report.get("resumed"):
        print(
            f"resumed {report['resumed']} job(s) across server restarts "
            f"({report['rows_replayed']} journaled row(s) replayed without "
            "re-evaluation)"
        )
    if args.cache:
        folded = report.get("cache_entries_folded", 0)
        print(f"folded {folded} remote memo-cache entries into {args.cache}")
    return 0


def _print_cache_stats(label: str, stats: dict[str, int]) -> None:
    from repro.explore.engine import MemoCache

    sections = ", ".join(f"{stats[s]} {s}" for s in MemoCache._SECTIONS)
    print(f"{label}: {sections}")


def _check_cache_file(path: str) -> str | None:
    """Return an error message when ``path`` is missing or not valid JSON.

    ``MemoCache.load`` deliberately degrades a corrupt file to an empty cache
    (a sweep must not die on its own cache), but the cache *tools* exist to
    audit and combine files — silently treating a truncated shard as empty
    would ship an incomplete merged cache with exit code 0.
    """
    import json

    if not os.path.exists(path):
        return f"no such cache file: {path}"
    try:
        with open(path) as fh:
            json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return f"corrupt cache file {path}: {exc}"
    return None


def cmd_cache(args) -> int:
    """Inspect, merge and compact on-disk JSON memo caches.

    ``merge`` is the sharded-sweep companion: run ``sweep()`` on different
    machines with per-shard cache files, then fold them into one warm cache.
    """
    from repro.explore.engine import MemoCache

    if args.cache_cmd == "stats":
        for path in args.paths:
            error = _check_cache_file(path)
            if error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            cache = MemoCache(path)
            _print_cache_stats(f"{path} ({os.path.getsize(path)} bytes)", cache.stats())
        return 0

    if args.cache_cmd == "merge":
        for path in args.paths:
            error = _check_cache_file(path)
            if error:
                print(f"error: {error}", file=sys.stderr)
                return 1
        out = MemoCache(args.output)
        total = 0
        for path in args.paths:
            added = MemoCache(path)
            counts = out.merge_from(added)
            new = sum(counts.values())
            total += new
            print(f"merged {path}: {new} new entries ({len(added)} total in shard)")
        out.flush(force=True)
        _print_cache_stats(f"wrote {args.output} (+{total})", out.stats())
        return 0

    if args.cache_cmd == "compact":
        error = _check_cache_file(args.path)
        if error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        before = os.path.getsize(args.path)
        cache = MemoCache(args.path)
        if args.output:
            cache.path = args.output
        cache.flush(force=True)
        after = os.path.getsize(cache.path)
        print(
            f"compacted {args.path} -> {cache.path}: "
            f"{before} -> {after} bytes ({len(cache)} entries)"
        )
        return 0

    raise AssertionError(args.cache_cmd)  # pragma: no cover


def _add_explore_args(parser: argparse.ArgumentParser) -> None:
    """The explore arguments shared by the local and `client` variants."""
    parser.add_argument(
        "workloads", nargs="+", choices=sorted(workloads.TABLE_II), metavar="workload"
    )
    parser.add_argument("--rows", type=int, default=16)
    parser.add_argument("--cols", type=int, default=16)
    parser.add_argument("--width", type=int, default=16)
    parser.add_argument(
        "--extent",
        action="append",
        default=[],
        metavar="LOOP=N",
        help="override a loop extent where the workload has it (repeatable)",
    )
    parser.add_argument("--one-d", action="store_true", help="1-D dataflow types only")
    parser.add_argument(
        "--top", type=int, default=5, help="how many best-performing designs to print"
    )


def cmd_serve(args) -> int:
    """Run the async evaluation service until SIGINT/SIGTERM (clean shutdown)."""
    import asyncio
    import signal

    from repro.api import SCHEMA_VERSION, LocalSession, available_backends
    from repro.service import EvaluationService

    session = LocalSession(
        ArrayConfig(rows=args.rows, cols=args.cols),
        width=args.width,
        workers=args.workers,
        cache=args.cache,
        # the service flushes on shutdown and on /v1/cache/flush; rewriting
        # the file after every request would throttle the whole server
        autoflush=False,
    )
    service = EvaluationService(
        session,
        max_queued_jobs=args.max_jobs,
        max_body_bytes=args.max_body_bytes,
        journal_dir=args.journal_dir,
    )

    async def run() -> None:
        server = await service.start(args.host, args.port)
        port = server.sockets[0].getsockname()[1]
        print(
            f"serving on http://{args.host}:{port} "
            f"(schema v{SCHEMA_VERSION}, backends: {', '.join(available_backends())})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        await service.close()

    asyncio.run(run())
    print("shutdown complete", flush=True)
    return 0


def cmd_client_tail_job(args) -> int:
    """Stream a job's row log as NDJSON (`repro client tail-job <id> --url`).

    Long-polls ``GET /v1/jobs/<id>/rows``: each design lands on stdout as one
    JSON line *while the job runs*, framed by ``start`` and ``end`` rows —
    pipe-friendly live telemetry for a queued sweep.  ``--since`` resumes
    from a row cursor (a previous line's ``seq``).
    """
    import json

    from repro.service import RemoteSession

    session = RemoteSession(args.url)
    status = "unknown"
    try:
        for row in session.iter_job_rows(args.job_id, since=args.since):
            print(json.dumps(row), flush=True)
            if row.get("row") == "end":
                status = row.get("status", status)
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        session.close()
    print(f"job {args.job_id}: {status}", file=sys.stderr)
    return 0


def cmd_client_stats(args) -> int:
    """Print the remote server's memo-cache stats (`repro client stats`)."""
    from repro.service import RemoteSession

    stats = RemoteSession(args.url).cache_stats()
    if not stats:
        print(f"{args.url}: no memo cache (server started without --cache)")
        return 0
    from repro.explore.engine import MemoCache

    sections = ", ".join(f"{stats[s]} {s}" for s in MemoCache._SECTIONS)
    print(f"{args.url}: {sections} ({stats['hits']} hits, {stats['misses']} misses)")
    return 0


#: Where ``--changed`` looks for lintable files — the same target set the
#: CI gate lints.  Tests (and especially ``tests/analysis/fixtures/``, which
#: contain seeded violations on purpose) are out of scope.
_LINT_ROOTS = ("src/", "scripts/", "benchmarks/")


class _GitUnavailable(Exception):
    """``--changed`` cannot compute a diff here — not an error, a note.

    Raised for every shape of git trouble the hook meets in the wild: a
    freshly ``git init``-ed repo with no commit yet, a missing/garbage REF,
    a checkout that is not a git repo at all, or no ``git`` on PATH.  The
    caller prints the note and exits 0 so pre-commit keeps working."""


def _changed_python_files(ref: str):
    """Lintable Python files touched vs ``ref`` (committed, staged, and
    untracked), restricted to the CI lint target set."""
    import subprocess
    from pathlib import Path

    from repro.analysis.runner import discover_repo_root

    root = discover_repo_root(Path.cwd()) or Path.cwd()
    names: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, cwd=root, capture_output=True, text=True, check=False
            )
        except OSError as exc:  # no git binary on PATH
            raise _GitUnavailable(f"cannot run git ({exc})") from exc
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            raise _GitUnavailable(
                f"`{' '.join(cmd)}` failed"
                + (f" ({detail[0]})" if detail else "")
            )
        names.update(line.strip() for line in proc.stdout.splitlines())
    return [
        root / name
        for name in sorted(names)
        if name.endswith(".py")
        and name.startswith(_LINT_ROOTS)
        and (root / name).exists()
    ]


def cmd_lint(args) -> int:
    """Run the repo's own static-analysis pass (`repro lint`).

    Nine AST checkers (RA001-RA009) prove the service layer's concurrency,
    wire, fold-determinism, taint, and resource-lifecycle contracts —
    RA001/RA005-RA009 over one project-wide call graph, with RA008/RA009
    running the dataflow engine on top of it; see docs/development.md for
    the catalog and the waiver/baseline syntax.  Exits 1 when any
    unsuppressed finding remains.
    """
    from pathlib import Path

    from repro.analysis import (
        LintOptions,
        format_text,
        result_to_json,
        result_to_sarif,
        run_lint,
    )
    from repro.analysis.runner import discover_repo_root, write_baseline

    paths = [Path(p) for p in args.paths]
    use_cache = not args.no_cache
    if args.changed is not None:
        try:
            changed = _changed_python_files(args.changed)
        except _GitUnavailable as exc:
            # a hook must not explode in a no-commit/detached/ref-less repo;
            # there is nothing to diff against, so there is nothing to lint
            print(f"repro lint: --changed skipped, {exc}")
            return 0
        if not changed:
            print(f"repro lint: no Python files changed vs {args.changed}")
            return 0
        # the v2 cache is scope-keyed, so a subset run gets its own entry
        # and can never clobber the whole-tree one
        paths = changed
    options = LintOptions(
        paths=paths,
        docs_path=Path(args.docs) if args.docs else None,
        baseline_path=Path(args.baseline) if args.baseline else None,
        select=set(args.select.split(",")) if args.select else None,
        cache_path=Path(args.cache) if args.cache else None,
        use_cache=use_cache,
    )
    result = run_lint(options)
    if args.write_baseline:
        target = Path(args.baseline) if args.baseline else None
        if target is None:
            root = discover_repo_root()
            target = (root or Path.cwd()) / "lint-baseline.json"
        write_baseline(result, target)
        pinned = len(result.findings) + len(result.baselined)
        print(f"wrote {pinned} finding(s) to {target}")
        return 0
    if args.format == "json":
        print(result_to_json(result))
    elif args.format == "sarif":
        print(result_to_sarif(result))
    else:
        print(format_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="TensorLib reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="emit Verilog for a dataflow")
    _add_common(p_gen)
    p_gen.add_argument("-o", "--output", help="write Verilog here (default stdout)")
    p_gen.add_argument("--width", type=int, default=32)
    p_gen.set_defaults(func=cmd_generate)

    p_ver = sub.add_parser("verify", help="simulate generated netlist vs numpy")
    _add_common(p_ver)
    p_ver.add_argument(
        "--cache", metavar="PATH", help="memoize verification runs in a JSON cache"
    )
    p_ver.set_defaults(func=cmd_verify)

    p_eval = sub.add_parser("evaluate", help="performance/area/power models")
    _add_common(p_eval)
    p_eval.add_argument(
        "--cache", metavar="PATH", help="memoize model evaluations in a JSON cache"
    )
    p_eval.set_defaults(func=cmd_evaluate)

    p_enum = sub.add_parser("enumerate", help="count the dataflow design space")
    _add_common(p_enum, with_dataflow=False)
    p_enum.add_argument("--one-d", action="store_true", help="1-D dataflow types only")
    p_enum.set_defaults(func=cmd_enumerate)

    p_exp = sub.add_parser(
        "explore", help="sweep + evaluate the design space (multi-workload)"
    )
    _add_explore_args(p_exp)
    p_exp.add_argument(
        "--workers", type=int, default=0, help="process-pool evaluation (0 = serial)"
    )
    p_exp.add_argument(
        "--cache", metavar="PATH", help="on-disk JSON memo cache for warm re-runs"
    )
    p_exp.set_defaults(func=cmd_explore)

    p_sweep = sub.add_parser(
        "sweep",
        help="coordinate one sweep across several `repro serve` instances",
    )
    _add_explore_args(p_sweep)
    p_sweep.add_argument(
        "--url",
        action="append",
        required=True,
        dest="urls",
        metavar="URL",
        help="a running `repro serve` (repeat for every server in the fleet)",
    )
    p_sweep.add_argument(
        "--cache",
        metavar="PATH",
        help="fold the servers' memo caches into this local JSON cache",
    )
    p_sweep.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        help="baseline shard jobs in flight per server (default 2; servers "
        "advertising --workers via healthz are weighted up to that many)",
    )
    p_sweep.add_argument(
        "--shard-size",
        type=int,
        default=1,
        help="sweep items grouped into one job (default 1); larger shards "
        "amortize queue overhead on fleets with many small workloads",
    )
    p_sweep.add_argument(
        "--restart-grace",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wait this long for a crashed server to restart and resume its "
        "jobs in place (needs servers running with --journal-dir) before "
        "falling back to reassigning the shard (default 0: reassign "
        "immediately)",
    )
    p_sweep.add_argument(
        "--verbose",
        action="store_true",
        help="print per-shard dispatch/retry/reassignment events to stderr",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_cache = sub.add_parser(
        "cache", help="inspect, merge and compact JSON memo caches"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_cmd", required=True)
    p_stats = cache_sub.add_parser("stats", help="per-section entry counts")
    p_stats.add_argument("paths", nargs="+", metavar="CACHE")
    p_stats.set_defaults(func=cmd_cache)
    p_merge = cache_sub.add_parser(
        "merge", help="fold shard caches into one (for distributed sweeps)"
    )
    p_merge.add_argument("-o", "--output", required=True, metavar="OUT")
    p_merge.add_argument("paths", nargs="+", metavar="CACHE")
    p_merge.set_defaults(func=cmd_cache)
    p_compact = cache_sub.add_parser(
        "compact", help="re-serialize a cache compactly (drops foreign junk)"
    )
    p_compact.add_argument("path", metavar="CACHE")
    p_compact.add_argument("-o", "--output", metavar="OUT", help="write here instead of in place")
    p_compact.set_defaults(func=cmd_cache)

    p_serve = sub.add_parser(
        "serve", help="run the async HTTP/JSON evaluation service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8321, help="0 picks an ephemeral port"
    )
    p_serve.add_argument("--rows", type=int, default=16)
    p_serve.add_argument("--cols", type=int, default=16)
    p_serve.add_argument("--width", type=int, default=16)
    p_serve.add_argument(
        "--workers", type=int, default=0,
        help="process-pool size for batch/design-space evaluation (0 = serial)",
    )
    p_serve.add_argument(
        "--cache", metavar="PATH", help="server-side JSON memo cache (shared by all clients)"
    )
    p_serve.add_argument(
        "--max-jobs", type=int, default=16, help="bound on the queued-sweep job queue"
    )
    p_serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=None,
        help="request-body size ceiling; larger bodies get 413 before any "
        "byte is buffered (default 8 MiB)",
    )
    p_serve.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help="append-only NDJSON job journal directory: jobs (rows, results, "
        "status, submit_key dedup) survive a hard crash + restart; "
        "interrupted jobs resume without re-evaluating journaled designs",
    )
    p_serve.set_defaults(func=cmd_serve)

    url_parent = argparse.ArgumentParser(add_help=False)
    url_parent.add_argument(
        "--url", required=True, metavar="URL", help="base URL of a running `repro serve`"
    )
    p_client = sub.add_parser(
        "client", help="run evaluation commands against a remote `repro serve`"
    )
    client_sub = p_client.add_subparsers(dest="client_cmd", required=True)
    c_ver = client_sub.add_parser(
        "verify", parents=[url_parent], help="remote netlist-vs-numpy verification"
    )
    _add_common(c_ver)
    c_ver.set_defaults(func=cmd_verify)
    c_eval = client_sub.add_parser(
        "evaluate", parents=[url_parent], help="remote performance/area/power models"
    )
    _add_common(c_eval)
    c_eval.set_defaults(func=cmd_evaluate)
    c_exp = client_sub.add_parser(
        "explore", parents=[url_parent], help="remote design-space sweep (NDJSON-streamed)"
    )
    _add_explore_args(c_exp)
    c_exp.set_defaults(func=cmd_explore)
    c_stats = client_sub.add_parser(
        "stats", parents=[url_parent], help="remote memo-cache stats"
    )
    c_stats.set_defaults(func=cmd_client_stats)
    c_tail = client_sub.add_parser(
        "tail-job",
        parents=[url_parent],
        help="stream a job's rows live as NDJSON (long-poll until terminal)",
    )
    c_tail.add_argument("job_id", metavar="JOB_ID", help="a /v1/jobs id, e.g. job-3")
    c_tail.add_argument(
        "--since",
        type=int,
        default=0,
        help="resume from this row cursor (a previous row's seq; default 0)",
    )
    c_tail.set_defaults(func=cmd_client_tail_job)

    p_lint = sub.add_parser(
        "lint", help="run the repo's static-analysis pass (checkers RA001-RA009)"
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    p_lint.add_argument(
        "--docs",
        metavar="MD",
        help="service API doc for the wire-contract checker "
        "(default: docs/service-api.md at the repo root, if present)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (sarif suits GitHub code scanning uploads)",
    )
    p_lint.add_argument(
        "--changed",
        nargs="?",
        metavar="REF",
        const="HEAD",
        default=None,
        help="lint only Python files changed vs REF (default HEAD) plus "
        "untracked ones — the fast pre-commit mode",
    )
    p_lint.add_argument(
        "--cache",
        "--cache-path",
        dest="cache",
        metavar="JSON",
        help="result-cache file (default: $REPRO_LINT_CACHE, else "
        ".repro-lint-cache.json at the repo root)",
    )
    p_lint.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the result cache",
    )
    p_lint.add_argument(
        "--baseline",
        metavar="JSON",
        help="baseline file of known findings (default: lint-baseline.json "
        "at the repo root, if present)",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="pin every current finding into the baseline file and exit 0",
    )
    p_lint.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated checker ids to run (e.g. RA001,RA003)",
    )
    p_lint.add_argument(
        "--verbose", action="store_true", help="also list waived/baselined findings"
    )
    p_lint.set_defaults(func=cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
