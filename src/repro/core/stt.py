"""Space-Time Transformation matrices (paper §II).

An STT maps a point of the (selected, 3-D) iteration space to *where* and
*when* it executes::

    [p1, p2, t]^T  =  T @ [x1, x2, x3]^T

where ``(p1, p2)`` is the PE coordinate and ``t`` the cycle.  ``T`` must be
full rank so the mapping is a bijection — a PE performs at most one operation
per cycle (paper §II).

Paper Fig. 1(b) example for GEMM with ``T = [[1,0,0],[0,1,0],[1,1,1]]``:
iteration ``(i,j,k) = (1,2,3)`` executes at PE (1,2) on cycle 6.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.core import linalg
from repro.core.linalg import IntMatrix, IntVector

__all__ = ["STT", "SPACE_DIMS"]

#: The paper targets 2-D PE arrays: two space rows plus one time row.
SPACE_DIMS = 2


class STT:
    """A full-rank integer space-time transformation matrix.

    The first :data:`SPACE_DIMS` rows map iterations to PE coordinates; the
    last row maps them to the execution time step.
    """

    def __init__(self, matrix: Sequence[Sequence[int]]):
        mat = linalg.as_matrix(matrix)
        if len(mat) != len(mat[0]):
            raise ValueError(f"STT matrix must be square, got {len(mat)}x{len(mat[0])}")
        if len(mat) != SPACE_DIMS + 1:
            raise ValueError(
                f"STT for a {SPACE_DIMS}-D PE array must be {SPACE_DIMS + 1}x"
                f"{SPACE_DIMS + 1}, got {len(mat)}"
            )
        det = linalg.determinant(mat)
        if det == 0:
            raise ValueError(f"STT matrix must be full rank (paper §II): {matrix}")
        self.matrix: IntMatrix = mat
        self._det: int | None = det
        self._inverse_cache: tuple[tuple[Fraction, ...], ...] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, space1: Sequence[int], space2: Sequence[int], time: Sequence[int]) -> "STT":
        return cls([tuple(space1), tuple(space2), tuple(time)])

    @classmethod
    def trusted(cls, matrix: Sequence[Sequence[int]]) -> "STT":
        """Adopt a matrix that already passed ``__init__`` once.

        The wire decoders use this for rows echoed back by a server: the
        emitting side validated shape and rank when the design was built,
        so re-proving both per streamed row is pure fold-path overhead.
        ``det`` is derived on demand.
        """
        self = cls.__new__(cls)
        self.matrix = tuple(tuple(int(v) for v in row) for row in matrix)
        self._det = None
        self._inverse_cache = None
        return self

    @property
    def det(self) -> int:
        """Determinant; non-zero by construction (validated or trusted)."""
        det = self._det
        if det is None:
            det = self._det = linalg.determinant(self.matrix)
        return det

    @property
    def n(self) -> int:
        return len(self.matrix)

    @property
    def space_rows(self) -> IntMatrix:
        return self.matrix[:SPACE_DIMS]

    @property
    def time_row(self) -> IntVector:
        return self.matrix[SPACE_DIMS]

    @property
    def inverse(self) -> tuple[tuple[Fraction, ...], ...]:
        """Exact rational inverse ``T^{-1}`` (used in paper Eq. 2).

        Computed lazily: design-space sweeps construct thousands of STTs and
        only ever classify with the forward map.
        """
        if self._inverse_cache is None:
            self._inverse_cache = linalg.inverse(self.matrix)
        return self._inverse_cache

    # ------------------------------------------------------------------
    def apply(self, point: Sequence[int]) -> tuple[IntVector, int]:
        """Map an iteration point to ``((p1, p2), t)``."""
        vec = linalg.mat_vec(self.matrix, tuple(point))
        return tuple(vec[:SPACE_DIMS]), int(vec[SPACE_DIMS])

    def space_of(self, point: Sequence[int]) -> IntVector:
        return self.apply(point)[0]

    def time_of(self, point: Sequence[int]) -> int:
        return self.apply(point)[1]

    def unapply(self, space: Sequence[int], time: int) -> tuple[Fraction, ...]:
        """Inverse map from a space-time vector to the iteration point.

        The result is rational; a space-time point corresponds to an actual
        loop iteration only when every coordinate is integral.
        """
        return linalg.mat_vec(self.inverse, (*space, time))

    def iterates(self, space: Sequence[int], time: int) -> bool:
        """True when (space, time) is the image of an integer loop point."""
        return all(coord.denominator == 1 for coord in self.unapply(space, time))

    def to_spacetime_direction(self, direction: Sequence[int]) -> IntVector:
        """Image of an iteration-space direction, as a primitive vector."""
        return linalg.primitive(linalg.mat_vec(self.matrix, tuple(direction)))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, STT):
            return NotImplemented
        return self.matrix == other.matrix

    def __hash__(self) -> int:
        return hash(self.matrix)

    def __repr__(self) -> str:
        rows = ", ".join(str(list(row)) for row in self.matrix)
        return f"STT([{rows}])"
