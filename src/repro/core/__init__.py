"""The paper's primary contribution: STT-based dataflow generation.

Modules:

- :mod:`repro.core.linalg` — exact integer/fraction linear algebra,
- :mod:`repro.core.stt` — Space-Time Transformation matrices (paper §II),
- :mod:`repro.core.reuse` — reuse subspace computation (paper Eq. 2-3),
- :mod:`repro.core.dataflow` — the Table I taxonomy and :class:`DataflowSpec`,
- :mod:`repro.core.naming` — the ``MNK-SST`` naming scheme,
- :mod:`repro.core.enumerate` — design-space enumeration.
"""

from repro.core.stt import STT
from repro.core.dataflow import (
    DataflowSpec,
    DataflowType,
    TensorDataflow,
    analyze,
)

__all__ = ["STT", "DataflowSpec", "DataflowType", "TensorDataflow", "analyze"]
