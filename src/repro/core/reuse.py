"""Reuse subspace analysis (paper §IV, Eq. 2-3).

For a tensor with access matrix ``A`` (restricted to the three selected
loops), two iterations ``x`` and ``x'`` touch the same element iff
``A (x - x') = 0`` — the reuse directions form the nullspace of ``A``.  Under
the STT those directions map to space-time vectors ``(dp1, dp2, dt)`` whose
span is the *reuse subspace*: all space-time points that see the same tensor
element.  Its rank (0, 1 or 2) and its orientation relative to the time axis
determine the dataflow (paper Table I).

The paper computes this via the pseudo-inverse projector
``E - (A T^-1)^- (A T^-1)`` (Eq. 3); mapping the integer nullspace basis of
``A`` through ``T`` is algebraically identical (``null(A T^{-1}) = T null(A)``)
and stays in exact integer arithmetic.

A scale subtlety: reuse happens only at space-time points that are images of
*integer* loop points, so the hardware step along a reuse line is the exact
lattice vector ``T @ d`` for the primitive iteration direction ``d`` — e.g.
``(0, 2, 2)`` means "2 PEs away after 2 cycles" and must *not* be reduced to
``(0, 1, 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core import linalg
from repro.core.linalg import IntVector
from repro.core.stt import STT

__all__ = ["ReuseSpace", "reuse_space", "orient", "TIME_AXIS"]

#: The time axis direction in space-time coordinates.
TIME_AXIS: IntVector = (0, 0, 1)


def orient(vec: Sequence[int]) -> IntVector:
    """Canonical sign for a reuse direction (no magnitude change).

    Reuse lines are undirected; hardware needs a direction.  We choose the
    representative with ``dt > 0`` (data flows forward in time), falling back
    to a positive first nonzero space component for ``dt = 0`` vectors.
    """
    v = tuple(int(x) for x in vec)
    if all(x == 0 for x in v):
        return v
    dt = v[-1]
    if dt < 0:
        return tuple(-x for x in v)
    if dt > 0:
        return v
    first = next(x for x in v if x != 0)
    if first < 0:
        return tuple(-x for x in v)
    return v


@dataclass(frozen=True)
class ReuseSpace:
    """A tensor's reuse subspace in space-time coordinates.

    ``basis`` holds the exact lattice steps ``T @ d`` (canonically oriented)
    for each primitive iteration-space reuse direction ``d``; ``iter_basis``
    holds the matching ``d`` themselves, sign-flipped so that one +1 step
    along ``iter_basis[i]`` moves by exactly ``basis[i]`` in space-time.
    """

    basis: tuple[IntVector, ...]
    iter_basis: tuple[IntVector, ...]

    @property
    def dim(self) -> int:
        return len(self.basis)

    def __post_init__(self) -> None:
        if len(self.basis) != len(self.iter_basis):
            raise ValueError("space-time and iteration bases must pair up")
        if self.dim > 3:
            raise ValueError(f"reuse subspace of dim {self.dim} is impossible in 3-D space-time")

    # Convenience splits used by classification -------------------------
    def space_part(self, idx: int) -> IntVector:
        return self.basis[idx][:-1]

    def time_part(self, idx: int) -> int:
        return self.basis[idx][-1]

    def contains_time_axis(self) -> bool:
        """True when the time axis lies inside the reuse subspace.

        For dim 2 this distinguishes the *parallel to t-axis* case of paper
        Table I (multicast + stationary).
        """
        if self.dim == 0:
            return False
        if self.dim == 1:
            return linalg.primitive(self.basis[0]) == TIME_AXIS
        if self.dim == 3:
            return True
        # dim 2: t-axis in span(b1, b2)  <=>  rank([b1; b2; t]) == 2
        stacked = (*self.basis, TIME_AXIS)
        return linalg.rank(stacked) == 2

    def is_time_invariant(self) -> bool:
        """True when every reuse direction has ``dt = 0`` (vertical case)."""
        return all(vec[-1] == 0 for vec in self.basis)


def reuse_space(access_sub: Sequence[Sequence[int]], stt: STT) -> ReuseSpace:
    """Compute a tensor's reuse subspace under an STT.

    ``access_sub`` is the access matrix restricted to the three selected
    loops (rows for tensor dimensions, columns for selected iterators); rows
    that involve only non-selected loops are all-zero and simply do not
    constrain reuse.  A tensor indexed purely by non-selected loops (e.g. the
    Conv2D output under a ``CPQ`` selection) has an all-zero restricted access
    and therefore full 3-D reuse: one element is shared by the entire
    stage — an array-wide reduction for outputs, an array-wide broadcast of a
    held value for inputs.
    """
    if not access_sub or len(access_sub[0]) != stt.n:
        raise ValueError(
            f"restricted access matrix must have {stt.n} columns, got {access_sub}"
        )
    basis: list[IntVector] = []
    iter_basis: list[IntVector] = []
    for it_dir in linalg.nullspace(access_sub):
        mapped = linalg.mat_vec(stt.matrix, it_dir)
        oriented = orient(mapped)
        basis.append(oriented)
        iter_basis.append(it_dir if oriented == tuple(mapped) else tuple(-v for v in it_dir))
    return ReuseSpace(basis=tuple(basis), iter_basis=tuple(iter_basis))
