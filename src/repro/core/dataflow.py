"""Dataflow classification — the paper's Table I taxonomy.

Given a tensor's reuse subspace the dataflow follows from rank + orientation:

====  ==============================  ==========================
dim   shape                           tensor dataflow
====  ==============================  ==========================
0     point                           Unicast
1     ``dp = 0, dt != 0``             Stationary
1     ``dp != 0, dt != 0``            Systolic
1     ``dp != 0, dt = 0``             Multicast (reduction tree
                                      when the tensor is output)
2     plane vertical to t-axis        Broadcast
2     plane parallel to t-axis        Multicast & Stationary
2     plane intersecting t-axis       Systolic & Multicast
====  ==============================  ==========================

:func:`analyze` classifies every tensor of a statement under one STT and
returns a :class:`DataflowSpec` — the input to hardware generation, the
performance model and the cost model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from math import gcd
from typing import Sequence

from repro.core.linalg import IntVector
from repro.core.reuse import ReuseSpace, orient, reuse_space
from repro.core.stt import STT
from repro.ir.einsum import Statement
from repro.ir.tensor import TensorAccess

__all__ = ["DataflowType", "TensorDataflow", "DataflowSpec", "analyze"]


class DataflowType(enum.Enum):
    """Per-tensor dataflow categories of paper Table I.

    ``FULL_REUSE`` extends the table for tensors indexed purely by
    non-selected loops (all-zero restricted access matrix, reuse subspace =
    all of space-time): one element is shared by the whole stage.  The paper's
    Conv2D ``CPQ-UUB`` dataflow needs it for the output tensor.
    """

    UNICAST = "unicast"
    STATIONARY = "stationary"
    SYSTOLIC = "systolic"
    MULTICAST = "multicast"
    BROADCAST = "broadcast"
    MULTICAST_STATIONARY = "multicast_stationary"
    SYSTOLIC_MULTICAST = "systolic_multicast"
    FULL_REUSE = "full_reuse"

    @property
    def letter(self) -> str:
        """The paper's single-letter code (§VI): S/T/M/U, B for >=2-D reuse."""
        return _LETTERS[self]

    @property
    def reuse_dim(self) -> int:
        return _DIMS[self]

    @property
    def has_stationary_component(self) -> bool:
        return self in (
            DataflowType.STATIONARY,
            DataflowType.MULTICAST_STATIONARY,
            DataflowType.FULL_REUSE,
        )

    @property
    def has_systolic_component(self) -> bool:
        return self in (DataflowType.SYSTOLIC, DataflowType.SYSTOLIC_MULTICAST)

    @property
    def has_multicast_component(self) -> bool:
        return self in (
            DataflowType.MULTICAST,
            DataflowType.BROADCAST,
            DataflowType.MULTICAST_STATIONARY,
            DataflowType.SYSTOLIC_MULTICAST,
            DataflowType.FULL_REUSE,
        )


_LETTERS = {
    DataflowType.UNICAST: "U",
    DataflowType.STATIONARY: "T",
    DataflowType.SYSTOLIC: "S",
    DataflowType.MULTICAST: "M",
    DataflowType.BROADCAST: "B",
    DataflowType.MULTICAST_STATIONARY: "B",
    DataflowType.SYSTOLIC_MULTICAST: "B",
    DataflowType.FULL_REUSE: "B",
}

_DIMS = {
    DataflowType.UNICAST: 0,
    DataflowType.STATIONARY: 1,
    DataflowType.SYSTOLIC: 1,
    DataflowType.MULTICAST: 1,
    DataflowType.BROADCAST: 2,
    DataflowType.MULTICAST_STATIONARY: 2,
    DataflowType.SYSTOLIC_MULTICAST: 2,
    DataflowType.FULL_REUSE: 3,
}


def classify(reuse: ReuseSpace) -> DataflowType:
    """Apply the Table I decision rules to a reuse subspace."""
    if reuse.dim == 0:
        return DataflowType.UNICAST
    if reuse.dim == 1:
        dp = reuse.space_part(0)
        dt = reuse.time_part(0)
        if all(v == 0 for v in dp):
            return DataflowType.STATIONARY
        if dt == 0:
            return DataflowType.MULTICAST
        return DataflowType.SYSTOLIC
    if reuse.dim == 3:
        return DataflowType.FULL_REUSE
    # dim == 2
    if reuse.is_time_invariant():
        return DataflowType.BROADCAST
    if reuse.contains_time_axis():
        return DataflowType.MULTICAST_STATIONARY
    return DataflowType.SYSTOLIC_MULTICAST


def _time_free_direction(reuse: ReuseSpace) -> IntVector:
    """The ``dt = 0`` lattice direction inside a dim-2 reuse subspace.

    Every 2-D plane in space-time meets the ``dt = 0`` hyperplane in at least
    a line; this is the multicast component of the 2-D dataflows.
    """
    (b1, b2) = reuse.basis
    dt1, dt2 = b1[-1], b2[-1]
    if dt1 == 0:
        return orient(b1)
    if dt2 == 0:
        return orient(b2)
    g = gcd(abs(dt1), abs(dt2))
    alpha, beta = dt2 // g, -dt1 // g
    combo = tuple(alpha * u + beta * v for u, v in zip(b1, b2))
    return orient(combo)


def _time_axis_step(reuse: ReuseSpace) -> IntVector:
    """The smallest lattice step along the time axis for the parallel case."""
    (b1, b2) = reuse.basis
    sp1, sp2 = b1[:-1], b2[:-1]
    # Find integer (alpha, beta) with alpha*sp1 + beta*sp2 = 0, not both 0.
    if all(v == 0 for v in sp1):
        return orient(b1)
    if all(v == 0 for v in sp2):
        return orient(b2)
    # sp1, sp2 are 2-D and linearly dependent here (the plane contains the
    # time axis, so its space projection is 1-D): use cross-ratio.
    cross = sp1[0] * sp2[1] - sp1[1] * sp2[0]
    if cross != 0:
        raise ValueError("reuse plane does not contain the time axis")
    pivot = next(i for i, v in enumerate(sp1) if v != 0)
    alpha, beta = sp2[pivot], -sp1[pivot]
    g = gcd(abs(alpha), abs(beta))
    alpha, beta = alpha // g, beta // g
    combo = tuple(alpha * u + beta * v for u, v in zip(b1, b2))
    return orient(combo)


@dataclass(frozen=True)
class TensorDataflow:
    """Dataflow classification of one tensor under one STT."""

    access: TensorAccess
    reuse: ReuseSpace
    kind: DataflowType

    @property
    def tensor_name(self) -> str:
        return self.access.tensor.name

    @property
    def is_output(self) -> bool:
        return self.access.tensor.is_output

    @property
    def is_reduction_tree(self) -> bool:
        """Output tensors with a multicast component need a reduction tree."""
        return self.is_output and self.kind.has_multicast_component

    # -- 1-D components ------------------------------------------------
    @property
    def direction(self) -> IntVector | None:
        """The single reuse step for dim-1 dataflows, ``None`` otherwise."""
        return self.reuse.basis[0] if self.reuse.dim == 1 else None

    @property
    def systolic_direction(self) -> IntVector | None:
        """Space-time step of the systolic component, if any.

        ``(dp1, dp2, dt)``: data moves from PE ``p`` to ``p + dp`` delayed by
        ``dt`` cycles (paper §V-B).
        """
        if self.kind is DataflowType.SYSTOLIC:
            return self.reuse.basis[0]
        if self.kind is DataflowType.SYSTOLIC_MULTICAST:
            b1, b2 = self.reuse.basis
            return b1 if b1[-1] != 0 else b2
        return None

    @property
    def multicast_direction(self) -> IntVector | None:
        """The ``dt = 0`` space direction of the multicast component.

        For broadcast/full-reuse tensors (2-D spatial sharing) this returns
        one of the two independent spatial directions; use
        :meth:`multicast_directions` for both.
        """
        dirs = self.multicast_directions
        return dirs[0] if dirs else None

    @property
    def multicast_directions(self) -> tuple[IntVector, ...]:
        """All independent ``dt = 0`` sharing directions (0, 1 or 2 of them)."""
        if self.kind is DataflowType.MULTICAST:
            return (self.reuse.basis[0],)
        if self.kind in (
            DataflowType.SYSTOLIC_MULTICAST,
            DataflowType.MULTICAST_STATIONARY,
        ):
            return (_time_free_direction(self.reuse),)
        if self.kind is DataflowType.BROADCAST:
            return self.reuse.basis
        if self.kind is DataflowType.FULL_REUSE:
            return ((1, 0, 0), (0, 1, 0))
        return ()

    @property
    def stationary_step(self) -> IntVector | None:
        """Time-axis lattice step for stationary(-containing) dataflows."""
        if self.kind is DataflowType.STATIONARY:
            return self.reuse.basis[0]
        if self.kind is DataflowType.MULTICAST_STATIONARY:
            return _time_axis_step(self.reuse)
        if self.kind is DataflowType.FULL_REUSE:
            return (0, 0, 1)
        return None

    @property
    def letter(self) -> str:
        return self.kind.letter

    def signature(self) -> tuple:
        """Hashable identity of the *hardware* this dataflow implies.

        Two STT matrices that give every tensor the same dataflow type and the
        same reuse directions generate identical accelerators; the signature
        is what the design-space enumeration dedupes on.
        """
        return (self.tensor_name, self.kind.value, self.reuse.basis)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dirs = ", ".join(str(b) for b in self.reuse.basis)
        return f"{self.tensor_name}:{self.kind.value}[{dirs}]"


class DataflowSpec:
    """A complete dataflow choice: statement + loop selection + STT.

    This is the central object of the framework — everything downstream
    (hardware generation, simulation schedules, performance/area/power
    models) consumes a ``DataflowSpec``.
    """

    def __init__(self, statement: Statement, selected: Sequence[str], stt: STT):
        if len(selected) != stt.n:
            raise ValueError(f"need exactly {stt.n} selected loops, got {selected}")
        for name in selected:
            if name not in statement.space:
                raise ValueError(f"selected loop {name!r} not in {statement.space.names}")
        if len(set(selected)) != len(selected):
            raise ValueError(f"selected loops must be distinct: {selected}")
        self.statement = statement
        self.selected = tuple(selected)
        self.stt = stt
        self._flows: tuple[TensorDataflow, ...] | None = None

    @property
    def flows(self) -> tuple[TensorDataflow, ...]:
        """Per-tensor dataflows (type + reuse directions), derived lazily.

        The reuse-space solve is the expensive part of a spec and nothing a
        consumer folding streamed rows by their scalar metrics ever touches —
        deferring it keeps wire reconstruction O(parse).  Local evaluation
        reads ``flows`` immediately, so it pays the same cost as before.
        The benign race under pooled evaluation recomputes an identical
        tuple; no lock needed.
        """
        flows = self._flows
        if flows is None:
            flows = self._flows = tuple(
                TensorDataflow(
                    access=acc,
                    reuse=(r := reuse_space(acc.restrict(self.selected), self.stt)),
                    kind=classify(r),
                )
                for acc in self.statement.accesses
            )
        return flows

    # ------------------------------------------------------------------
    @property
    def selected_space(self):
        """Iteration sub-space of the three selected loops (STT domain)."""
        return self.statement.space.select(self.selected)

    @property
    def sequential_space(self):
        """The remaining loops, executed sequentially outside the array."""
        return self.statement.space.complement(self.selected)

    @property
    def output_flow(self) -> TensorDataflow:
        return self.flows[-1]

    @property
    def input_flows(self) -> tuple[TensorDataflow, ...]:
        return self.flows[:-1]

    def flow(self, tensor_name: str) -> TensorDataflow:
        for fl in self.flows:
            if fl.tensor_name == tensor_name:
                return fl
        raise KeyError(f"no tensor {tensor_name!r} in spec")

    @property
    def letters(self) -> str:
        """Per-tensor letters, inputs in formula order then output."""
        return "".join(fl.letter for fl in self.flows)

    @property
    def name(self) -> str:
        """The paper's dataflow name, e.g. ``MNK-SST``."""
        return "".join(n.upper() for n in self.selected) + "-" + self.letters

    def signature(self) -> tuple:
        """Hardware-identity key used for design-space deduplication."""
        return (self.selected, tuple(fl.signature() for fl in self.flows))

    def __repr__(self) -> str:
        return f"DataflowSpec({self.name}, stt={self.stt!r})"


def analyze(statement: Statement, selected: Sequence[str], stt: STT) -> DataflowSpec:
    """Classify every tensor of ``statement`` under ``stt``.

    This is step 1 of the paper's workflow (Fig. 2, "dataflow generation").
    """
    return DataflowSpec(statement, selected, stt)
