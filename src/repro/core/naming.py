"""The paper's dataflow naming scheme (``MNK-SST``) and name-driven search.

A name has two parts separated by ``-``:

- the three *selected loops* (uppercased iterator names) mapped to space-time,
- one letter per tensor, **inputs in formula order, then the output**:
  ``S`` systolic, ``T`` stationary, ``M`` multicast (a reduction tree when the
  tensor is an output), ``U`` unicast, ``B`` 2-D reuse.

Examples from the paper (§VI):

- GEMM ``MNK-SST`` — A, B systolic; C stationary: the classic output-
  stationary systolic array.
- GEMM ``MNK-STS`` — B stationary: weight stationary (TPU-style).
- Conv2D ``XPQ-MMT`` — multicast A and B, stationary C.
- TTMc ``IJK-BBBU`` — all inputs 2-D reuse, output unicast.

Names do not pin down a unique STT matrix; :func:`spec_from_name` searches a
complexity-ordered stream of full-rank matrices and returns the simplest one
whose classification matches the letters.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterable, Iterator

from repro.core import linalg
from repro.core.dataflow import DataflowSpec
from repro.core.stt import STT
from repro.ir.einsum import Statement

__all__ = [
    "parse_name",
    "spec_from_name",
    "matching_specs",
    "best_spec_from_name",
    "stt_candidates",
    "letters_match",
    "KNOWN_GEMM_DATAFLOWS",
]

_VALID_LETTERS = frozenset("STMUB")

#: Lenient letter acceptance.  The paper's figure labels name compound (2-D)
#: reuse sometimes by the strict code ``B`` (e.g. TTMc ``IJK-BBBU``) and
#: sometimes by the dominant 1-D component (e.g. Conv2D ``XYP-STM``, whose
#: weight tensor is multicast+stationary yet labelled ``T``).  Name search
#: therefore accepts, for each requested letter, the dataflow types listed
#: here; :attr:`DataflowSpec.letters` always emits the strict code.
_LETTER_ACCEPTS: dict[str, frozenset] = {
    "U": frozenset({"unicast"}),
    "S": frozenset({"systolic", "systolic_multicast"}),
    "T": frozenset({"stationary", "multicast_stationary"}),
    "M": frozenset({"multicast", "broadcast"}),
    "B": frozenset(
        {
            "broadcast",
            "multicast_stationary",
            "systolic_multicast",
            "full_reuse",
        }
    ),
}


def letters_match(requested: str, spec: DataflowSpec) -> bool:
    """True when every tensor's dataflow is acceptable for its letter."""
    return all(
        fl.kind.value in _LETTER_ACCEPTS[letter]
        for letter, fl in zip(requested, spec.flows)
    )


def parse_name(name: str) -> tuple[tuple[str, ...], str]:
    """Split ``"MNK-SST"`` into selected loops ``("m","n","k")`` and letters.

    Loop names are single characters in this notation (all Table II iterators
    are single letters).
    """
    if "-" not in name:
        raise ValueError(f"dataflow name needs a '-': {name!r}")
    loops_part, letters = name.split("-", maxsplit=1)
    letters = letters.upper()
    selected = tuple(ch.lower() for ch in loops_part)
    if len(selected) != 3:
        raise ValueError(f"expected 3 selected loops in {name!r}, got {selected}")
    bad = set(letters) - _VALID_LETTERS
    if bad:
        raise ValueError(f"unknown dataflow letters {sorted(bad)} in {name!r}")
    return selected, letters


def _matrix_complexity(matrix: tuple[tuple[int, ...], ...]) -> tuple:
    """Sort key preferring simple, hardware-friendly STT matrices.

    Permutation matrices come first, then single-skew variants like the
    paper's ``[[1,0,0],[0,1,0],[1,1,1]]``, then denser matrices.  Non-negative
    entries are preferred (negative steps mean reversed interconnect).
    """
    flat = [v for row in matrix for v in row]
    abs_sum = sum(abs(v) for v in flat)
    negatives = sum(1 for v in flat if v < 0)
    space_weight = sum(abs(v) for row in matrix[:2] for v in row)
    return (space_weight, abs_sum, negatives, flat)


@lru_cache(maxsize=None)
def _candidate_matrices(bound: int) -> tuple[tuple[tuple[int, ...], ...], ...]:
    """All full-rank 3x3 matrices with entries in ``[-bound, bound]``,
    complexity-ordered.  Cached: the bound-1 set (17k matrices) is reused by
    every name lookup and by design-space enumeration."""
    values = range(-bound, bound + 1)
    out = []
    for flat in itertools.product(values, repeat=9):
        matrix = (tuple(flat[0:3]), tuple(flat[3:6]), tuple(flat[6:9]))
        if linalg.determinant(matrix) != 0:
            out.append(matrix)
    out.sort(key=_matrix_complexity)
    return tuple(out)


def stt_candidates(bound: int = 1) -> Iterator[STT]:
    """Complexity-ordered stream of valid STT matrices."""
    for matrix in _candidate_matrices(bound):
        yield STT(matrix)


def spec_from_name(
    statement: Statement,
    name: str,
    *,
    bound: int = 1,
    candidates: Iterable[STT] | None = None,
) -> DataflowSpec:
    """Find the simplest STT realizing a named dataflow.

    Raises ``LookupError`` when no matrix within the search bound produces the
    requested letters — e.g. asking for a stationary ``A`` in Batched-GEMV,
    which the paper proves impossible.
    """
    selected, letters = parse_name(name)
    if len(letters) != len(statement.accesses):
        raise ValueError(
            f"{name!r} has {len(letters)} letters but {statement.name} has "
            f"{len(statement.accesses)} tensors {statement.tensor_names}"
        )
    stream = candidates if candidates is not None else stt_candidates(bound)
    fallback: DataflowSpec | None = None
    for stt in stream:
        try:
            spec = DataflowSpec(statement, selected, stt)
        except ValueError:
            continue
        if spec.letters == letters:
            return spec
        if fallback is None and letters_match(letters, spec):
            fallback = spec
    if fallback is not None:
        return fallback
    raise LookupError(
        f"no STT with |entries| <= {bound} realizes {name!r} for {statement.name}; "
        "the dataflow may be infeasible for this workload (cf. Batched-GEMV "
        "supporting only unicast A)"
    )


def matching_specs(
    statement: Statement,
    name: str,
    *,
    bound: int = 1,
    limit: int | None = None,
) -> Iterator[DataflowSpec]:
    """All distinct designs realizing a named dataflow, simplest STT first.

    A name rarely pins down a unique STT (e.g. ``MNK-MSM`` leaves open which
    loop becomes time), and the candidates can differ hugely in performance;
    benchmarks pick the best by model.  Deduplicates by hardware signature.
    """
    selected, letters = parse_name(name)
    if len(letters) != len(statement.accesses):
        raise ValueError(
            f"{name!r} has {len(letters)} letters but {statement.name} has "
            f"{len(statement.accesses)} tensors"
        )
    seen: set[tuple] = set()
    count = 0
    for stt in stt_candidates(bound):
        try:
            spec = DataflowSpec(statement, selected, stt)
        except ValueError:
            continue
        if spec.letters != letters and not letters_match(letters, spec):
            continue
        sig = spec.signature()
        if sig in seen:
            continue
        seen.add(sig)
        yield spec
        count += 1
        if limit is not None and count >= limit:
            return


def best_spec_from_name(statement: Statement, name: str, score, *, bound: int = 1, limit: int = 24) -> DataflowSpec:
    """The highest-``score(spec)`` design among the first ``limit`` matches."""
    best = None
    best_score = None
    for spec in matching_specs(statement, name, bound=bound, limit=limit):
        s = score(spec)
        if best_score is None or s > best_score:
            best, best_score = spec, s
    if best is None:
        raise LookupError(f"no STT with |entries| <= {bound} realizes {name!r}")
    return best


#: Well-known GEMM dataflows discussed in the paper, for convenience/tests.
KNOWN_GEMM_DATAFLOWS = {
    "output_stationary": "MNK-SST",
    "weight_stationary": "MNK-STS",
    "input_stationary": "MNK-TSS",
    "multicast_stationary": "MNK-MMT",
    "multicast_reduction_tree": "MNK-MTM",
}
