"""Exact integer / rational linear algebra for STT analysis.

Dataflow classification hinges on *exact* rank and nullspace computations
(paper Eq. 2-3): a tensor whose reuse subspace has rank 1 versus rank 0 maps
to completely different hardware.  Floating-point SVD rank decisions are not
acceptable here, so everything below uses Python integers and
:class:`fractions.Fraction`.

Matrices are tuples-of-tuples of ints (or Fractions where noted); vectors are
tuples of ints.  All functions are pure.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import gcd
from typing import Sequence

IntMatrix = tuple[tuple[int, ...], ...]
IntVector = tuple[int, ...]
FracMatrix = tuple[tuple[Fraction, ...], ...]

__all__ = [
    "IntMatrix",
    "IntVector",
    "as_matrix",
    "identity",
    "mat_mul",
    "mat_vec",
    "transpose",
    "determinant",
    "rank",
    "inverse",
    "nullspace",
    "primitive",
    "is_full_rank",
    "solve",
]


def as_matrix(rows: Sequence[Sequence[int]]) -> IntMatrix:
    """Normalize nested sequences into an immutable integer matrix."""
    mat = tuple(tuple(int(v) for v in row) for row in rows)
    if not mat:
        raise ValueError("empty matrix")
    width = len(mat[0])
    if width == 0 or any(len(row) != width for row in mat):
        raise ValueError(f"ragged or zero-width matrix: {rows}")
    return mat


def identity(n: int) -> IntMatrix:
    return tuple(tuple(1 if r == c else 0 for c in range(n)) for r in range(n))


def transpose(mat: Sequence[Sequence[int]]) -> IntMatrix:
    return tuple(zip(*(tuple(row) for row in mat)))


def mat_mul(a: Sequence[Sequence], b: Sequence[Sequence]) -> tuple[tuple, ...]:
    """Matrix product; works for int and Fraction entries."""
    if len(a[0]) != len(b):
        raise ValueError(f"dimension mismatch: {len(a[0])} vs {len(b)}")
    bt = list(zip(*b))
    return tuple(
        tuple(sum(x * y for x, y in zip(row, col)) for col in bt) for row in a
    )


def mat_vec(mat: Sequence[Sequence], vec: Sequence) -> tuple:
    if len(mat[0]) != len(vec):
        raise ValueError(f"dimension mismatch: {len(mat[0])} vs {len(vec)}")
    return tuple(sum(c * v for c, v in zip(row, vec)) for row in mat)


def determinant(mat: Sequence[Sequence[int]]) -> int:
    """Exact determinant by fraction-free (Bareiss) elimination."""
    m = [list(row) for row in mat]
    n = len(m)
    if any(len(row) != n for row in m):
        raise ValueError("determinant needs a square matrix")
    sign = 1
    prev = 1
    for k in range(n - 1):
        if m[k][k] == 0:
            pivot_row = next((r for r in range(k + 1, n) if m[r][k] != 0), None)
            if pivot_row is None:
                return 0
            m[k], m[pivot_row] = m[pivot_row], m[k]
            sign = -sign
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) // prev
            m[i][k] = 0
        prev = m[k][k]
    return sign * m[-1][-1]


def _row_echelon(mat: Sequence[Sequence[int]]) -> tuple[list[list[Fraction]], list[int]]:
    """Reduced row echelon form over Q; returns (rref, pivot column list)."""
    m = [[Fraction(v) for v in row] for row in mat]
    n_rows, n_cols = len(m), len(m[0])
    pivots: list[int] = []
    row = 0
    for col in range(n_cols):
        pivot_row = next((r for r in range(row, n_rows) if m[r][col] != 0), None)
        if pivot_row is None:
            continue
        m[row], m[pivot_row] = m[pivot_row], m[row]
        inv = 1 / m[row][col]
        m[row] = [v * inv for v in m[row]]
        for r in range(n_rows):
            if r != row and m[r][col] != 0:
                factor = m[r][col]
                m[r] = [a - factor * b for a, b in zip(m[r], m[row])]
        pivots.append(col)
        row += 1
        if row == n_rows:
            break
    return m, pivots


def rank(mat: Sequence[Sequence[int]]) -> int:
    """Exact rank over the rationals."""
    return _rank_cached(as_matrix(mat))


@lru_cache(maxsize=65536)
def _rank_cached(mat: IntMatrix) -> int:
    _, pivots = _row_echelon(mat)
    return len(pivots)


def is_full_rank(mat: Sequence[Sequence[int]]) -> bool:
    square = len(mat) == len(mat[0])
    return square and determinant(mat) != 0


def inverse(mat: Sequence[Sequence[int]]) -> FracMatrix:
    """Exact inverse over Q (raises for singular matrices)."""
    m = as_matrix(mat)
    n = len(m)
    if any(len(row) != n for row in m):
        raise ValueError("inverse needs a square matrix")
    aug = [list(row) + [1 if r == c else 0 for c in range(n)] for r, row in enumerate(m)]
    rref, pivots = _row_echelon(aug)
    if pivots[:n] != list(range(n)):
        raise ValueError(f"matrix is singular: {mat}")
    return tuple(tuple(row[n:]) for row in rref[:n])


def primitive(vec: Sequence) -> IntVector:
    """Scale a rational vector to the canonical primitive integer vector.

    The result has coprime integer entries and its first nonzero entry is
    positive, so reuse directions compare canonically.  The zero vector maps
    to itself.
    """
    fracs = [Fraction(v) for v in vec]
    if all(f == 0 for f in fracs):
        return tuple(0 for _ in fracs)
    denom_lcm = 1
    for f in fracs:
        denom_lcm = denom_lcm * f.denominator // gcd(denom_lcm, f.denominator)
    ints = [int(f * denom_lcm) for f in fracs]
    g = 0
    for v in ints:
        g = gcd(g, abs(v))
    ints = [v // g for v in ints]
    first = next(v for v in ints if v != 0)
    if first < 0:
        ints = [-v for v in ints]
    return tuple(ints)


def nullspace(mat: Sequence[Sequence[int]]) -> tuple[IntVector, ...]:
    """Primitive integer basis of the right nullspace ``{x : mat @ x = 0}``.

    This is the *reuse subspace* of an access matrix (paper Eq. 2): loop
    directions along which the tensor index does not change.
    """
    return _nullspace_cached(as_matrix(mat))


@lru_cache(maxsize=65536)
def _nullspace_cached(m: IntMatrix) -> tuple[IntVector, ...]:
    n_cols = len(m[0])
    rref, pivots = _row_echelon(m)
    free_cols = [c for c in range(n_cols) if c not in pivots]
    basis: list[IntVector] = []
    for free in free_cols:
        vec = [Fraction(0)] * n_cols
        vec[free] = Fraction(1)
        for row_idx, pivot_col in enumerate(pivots):
            vec[pivot_col] = -rref[row_idx][free]
        basis.append(primitive(vec))
    return tuple(basis)


def solve(mat: Sequence[Sequence[int]], rhs: Sequence[int]) -> tuple[Fraction, ...]:
    """Solve ``mat @ x = rhs`` exactly for square nonsingular ``mat``."""
    inv = inverse(mat)
    return mat_vec(inv, tuple(Fraction(v) for v in rhs))
