"""Design-space enumeration (paper §VI-B).

The paper sweeps the STT space and reports 148 distinct GEMM designs and 33
distinct Depthwise-Conv2D designs for a 16x16 array.  Distinctness is by
*hardware identity*: two STT matrices that classify every tensor identically
(same dataflow type, same reuse directions) generate the same accelerator.

Enumeration is *streaming*: :func:`iter_specs` and :func:`iter_designs` are
lazy generators that walk complexity-ordered full-rank matrices and yield each
surviving design as soon as it is found, so the space is never materialized
and downstream consumers (:class:`repro.explore.engine.EvaluationEngine`) can
evaluate, batch, or abort mid-stream.  Pruning is composable: the built-in
predicates (dataflow-type filter, nearest-neighbour realizability,
canonical-dedup via a shared signature cache) and arbitrary user predicates
all plug into the same stream, and an :class:`EnumerationStats` counter
records *why* candidates were dropped instead of silently discarding them.

:func:`enumerate_specs` / :func:`enumerate_designs` remain as thin eager
wrappers producing the same designs in the same order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.dataflow import DataflowSpec, DataflowType
from repro.core.naming import stt_candidates
from repro.ir.einsum import Statement

__all__ = [
    "iter_specs",
    "iter_designs",
    "enumerate_specs",
    "enumerate_designs",
    "loop_selections",
    "DesignSpace",
    "EnumerationStats",
    "is_realizable",
    "canonical_signature",
]

#: A composable pruning predicate: keep the spec when it returns True.
Predicate = Callable[[DataflowSpec], bool]

#: The 8 symmetries of a square PE array (dihedral group): relabelling PE
#: coordinates produces electrically identical hardware, so the design-space
#: sweep dedupes modulo these.
_ARRAY_SYMMETRIES = (
    lambda p1, p2: (p1, p2),
    lambda p1, p2: (p2, p1),
    lambda p1, p2: (-p1, p2),
    lambda p1, p2: (p1, -p2),
    lambda p1, p2: (-p1, -p2),
    lambda p1, p2: (-p2, p1),
    lambda p1, p2: (p2, -p1),
    lambda p1, p2: (-p2, -p1),
)


def is_realizable(spec: DataflowSpec, *, max_step: int = 1, max_delay: int = 1) -> bool:
    """Hardware realizability filter used for the paper's design-space sweeps.

    Keeps designs whose every reuse direction is a *neighbour* step: space
    components in ``[-max_step, max_step]`` and systolic delay at most
    ``max_delay`` cycles.  Longer jumps are expressible in the netlist (extra
    delay registers, long wires) but the paper's synthesized space uses
    nearest-neighbour interconnect.
    """
    for fl in spec.flows:
        for vec in fl.reuse.basis:
            *space, dt = vec
            if any(abs(v) > max_step for v in space):
                return False
            if abs(dt) > max_delay:
                return False
    return True


def canonical_signature(spec: DataflowSpec) -> tuple:
    """Design identity modulo PE-array relabelling symmetries.

    Applies each of the 8 square-array symmetries to the space components of
    every reuse vector, re-orients, sorts each tensor's basis, and returns the
    lexicographically smallest variant.  Two specs with equal canonical
    signatures generate identical hardware up to mirroring/rotating the array.
    """
    from repro.core.reuse import orient

    variants = []
    for sym in _ARRAY_SYMMETRIES:
        per_tensor = []
        for fl in spec.flows:
            basis = sorted(
                orient((*sym(vec[0], vec[1]), vec[2])) for vec in fl.reuse.basis
            )
            per_tensor.append((fl.tensor_name, fl.kind.value, tuple(basis)))
        variants.append(tuple(per_tensor))
    return min(variants)


def loop_selections(statement: Statement) -> Iterator[tuple[str, ...]]:
    """All ordered selections of three loops that cover every tensor.

    A selection is valid when every tensor of the statement reads at least one
    selected iterator — otherwise its restricted access matrix is all-zero and
    no dataflow exists for it (cf. :func:`repro.core.reuse.reuse_space`).
    """
    names = statement.space.names
    for combo in itertools.permutations(names, 3):
        cols = [statement.space.position(n) for n in combo]
        ok = all(
            any(row[c] != 0 for row in acc.matrix for c in cols)
            for acc in statement.accesses
        )
        if ok:
            yield combo


@dataclass
class EnumerationStats:
    """Mutable tally of what the enumeration stream did with each candidate.

    ``candidates`` counts STT matrices tried; the remaining fields partition
    the rejected ones by reason, so nothing is dropped silently.
    """

    candidates: int = 0
    invalid: int = 0  # no dataflow exists (DataflowSpec raised ValueError)
    type_filtered: int = 0  # outside ``allowed_types``
    unrealizable: int = 0  # fails the nearest-neighbour interconnect filter
    predicate_filtered: int = 0  # dropped by a user predicate
    duplicates: int = 0  # hardware-identical to an earlier design
    yielded: int = 0

    def merge(self, other: "EnumerationStats") -> None:
        for name in (
            "candidates",
            "invalid",
            "type_filtered",
            "unrealizable",
            "predicate_filtered",
            "duplicates",
            "yielded",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def summary(self) -> str:
        return (
            f"{self.yielded} designs from {self.candidates} candidates "
            f"(invalid {self.invalid}, type-filtered {self.type_filtered}, "
            f"unrealizable {self.unrealizable}, predicate-filtered "
            f"{self.predicate_filtered}, duplicates {self.duplicates})"
        )


def iter_specs(
    statement: Statement,
    selected: Sequence[str],
    *,
    bound: int = 1,
    limit: int | None = None,
    allowed_types: frozenset[DataflowType] | None = None,
    realizable_only: bool = False,
    canonical: bool = False,
    predicates: Sequence[Predicate] = (),
    seen: set | None = None,
    stats: EnumerationStats | None = None,
) -> Iterator[DataflowSpec]:
    """Stream distinct dataflow designs for one loop selection.

    Deduplicates on :meth:`DataflowSpec.signature` (or
    :func:`canonical_signature` with ``canonical=True``) and keeps the
    simplest STT representative of each design (the candidate stream is
    complexity-ordered).  ``realizable_only`` restricts to nearest-neighbour
    interconnect, matching the paper's synthesized sweeps.  ``predicates``
    are extra user filters applied after the built-in ones; ``seen`` lets a
    caller share one signature cache across selections; ``stats`` tallies
    every rejection reason.
    """
    seen = seen if seen is not None else set()
    stats = stats if stats is not None else EnumerationStats()
    count = 0
    for stt in stt_candidates(bound):
        stats.candidates += 1
        try:
            spec = DataflowSpec(statement, selected, stt)
        except ValueError:
            stats.invalid += 1
            continue
        if allowed_types is not None and any(
            fl.kind not in allowed_types for fl in spec.flows
        ):
            stats.type_filtered += 1
            continue
        if realizable_only and not is_realizable(spec):
            stats.unrealizable += 1
            continue
        if predicates and not all(pred(spec) for pred in predicates):
            stats.predicate_filtered += 1
            continue
        sig = canonical_signature(spec) if canonical else spec.signature()
        if sig in seen:
            stats.duplicates += 1
            continue
        seen.add(sig)
        stats.yielded += 1
        yield spec
        count += 1
        if limit is not None and count >= limit:
            return


def enumerate_specs(
    statement: Statement,
    selected: Sequence[str],
    *,
    bound: int = 1,
    limit: int | None = None,
    allowed_types: frozenset[DataflowType] | None = None,
    realizable_only: bool = False,
    canonical: bool = False,
) -> list[DataflowSpec]:
    """Eager wrapper around :func:`iter_specs` (same designs, same order)."""
    return list(
        iter_specs(
            statement,
            selected,
            bound=bound,
            limit=limit,
            allowed_types=allowed_types,
            realizable_only=realizable_only,
            canonical=canonical,
        )
    )


@dataclass
class DesignSpace:
    """Result of a full design-space sweep for one workload."""

    statement: Statement
    specs: list[DataflowSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[DataflowSpec]:
        return iter(self.specs)

    def by_letters(self, letters: str) -> list[DataflowSpec]:
        return [s for s in self.specs if s.letters == letters.upper()]

    def letter_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for spec in self.specs:
            hist[spec.letters] = hist.get(spec.letters, 0) + 1
        return dict(sorted(hist.items()))


def iter_designs(
    statement: Statement,
    *,
    selections: Iterable[Sequence[str]] | None = None,
    bound: int = 1,
    per_selection_limit: int | None = None,
    allowed_types: frozenset[DataflowType] | None = None,
    realizable_only: bool = False,
    canonical: bool = False,
    predicates: Sequence[Predicate] = (),
    stats: EnumerationStats | None = None,
) -> Iterator[DataflowSpec]:
    """Stream loop selections x STT matrices into a deduplicated design space.

    Designs are yielded as soon as they survive pruning — the full space is
    never held in memory, so a consumer can evaluate, batch or stop early.
    With ``canonical=True``, unordered loop selections are also deduplicated:
    ``(m, n, k)`` and ``(n, m, k)`` relabel the same hardware, so only sorted
    selections are swept.
    """
    stats = stats if stats is not None else EnumerationStats()
    seen: set[tuple] = set()
    chosen = selections if selections is not None else loop_selections(statement)
    if canonical and selections is None:
        chosen = sorted({tuple(sorted(sel)) for sel in chosen})
    for sel in chosen:
        per_sel_seen: set[tuple] = set()
        for spec in iter_specs(
            statement,
            tuple(sel),
            bound=bound,
            limit=per_selection_limit,
            allowed_types=allowed_types,
            realizable_only=realizable_only,
            canonical=canonical,
            predicates=predicates,
            seen=per_sel_seen,
            stats=stats,
        ):
            sig = (
                (tuple(sorted(sel)), canonical_signature(spec))
                if canonical
                else spec.signature()
            )
            if sig in seen:
                stats.yielded -= 1
                stats.duplicates += 1
                continue
            seen.add(sig)
            yield spec


def enumerate_designs(
    statement: Statement,
    *,
    selections: Iterable[Sequence[str]] | None = None,
    bound: int = 1,
    per_selection_limit: int | None = None,
    allowed_types: frozenset[DataflowType] | None = None,
    realizable_only: bool = False,
    canonical: bool = False,
) -> DesignSpace:
    """Eager wrapper around :func:`iter_designs` returning a :class:`DesignSpace`."""
    space = DesignSpace(statement)
    space.specs.extend(
        iter_designs(
            statement,
            selections=selections,
            bound=bound,
            per_selection_limit=per_selection_limit,
            allowed_types=allowed_types,
            realizable_only=realizable_only,
            canonical=canonical,
        )
    )
    return space
