"""Design-space enumeration (paper §VI-B).

The paper sweeps the STT space and reports 148 distinct GEMM designs and 33
distinct Depthwise-Conv2D designs for a 16x16 array.  Distinctness is by
*hardware identity*: two STT matrices that classify every tensor identically
(same dataflow type, same reuse directions) generate the same accelerator.

:func:`enumerate_specs` walks complexity-ordered full-rank matrices for one
loop selection; :func:`enumerate_designs` additionally sweeps loop selections.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.dataflow import DataflowSpec, DataflowType
from repro.core.naming import stt_candidates
from repro.ir.einsum import Statement

__all__ = [
    "enumerate_specs",
    "enumerate_designs",
    "loop_selections",
    "DesignSpace",
    "is_realizable",
    "canonical_signature",
]

#: The 8 symmetries of a square PE array (dihedral group): relabelling PE
#: coordinates produces electrically identical hardware, so the design-space
#: sweep dedupes modulo these.
_ARRAY_SYMMETRIES = (
    lambda p1, p2: (p1, p2),
    lambda p1, p2: (p2, p1),
    lambda p1, p2: (-p1, p2),
    lambda p1, p2: (p1, -p2),
    lambda p1, p2: (-p1, -p2),
    lambda p1, p2: (-p2, p1),
    lambda p1, p2: (p2, -p1),
    lambda p1, p2: (-p2, -p1),
)


def is_realizable(spec: DataflowSpec, *, max_step: int = 1, max_delay: int = 1) -> bool:
    """Hardware realizability filter used for the paper's design-space sweeps.

    Keeps designs whose every reuse direction is a *neighbour* step: space
    components in ``[-max_step, max_step]`` and systolic delay at most
    ``max_delay`` cycles.  Longer jumps are expressible in the netlist (extra
    delay registers, long wires) but the paper's synthesized space uses
    nearest-neighbour interconnect.
    """
    for fl in spec.flows:
        for vec in fl.reuse.basis:
            *space, dt = vec
            if any(abs(v) > max_step for v in space):
                return False
            if abs(dt) > max_delay:
                return False
    return True


def canonical_signature(spec: DataflowSpec) -> tuple:
    """Design identity modulo PE-array relabelling symmetries.

    Applies each of the 8 square-array symmetries to the space components of
    every reuse vector, re-orients, sorts each tensor's basis, and returns the
    lexicographically smallest variant.  Two specs with equal canonical
    signatures generate identical hardware up to mirroring/rotating the array.
    """
    from repro.core.reuse import orient

    variants = []
    for sym in _ARRAY_SYMMETRIES:
        per_tensor = []
        for fl in spec.flows:
            basis = sorted(
                orient((*sym(vec[0], vec[1]), vec[2])) for vec in fl.reuse.basis
            )
            per_tensor.append((fl.tensor_name, fl.kind.value, tuple(basis)))
        variants.append(tuple(per_tensor))
    return min(variants)


def loop_selections(statement: Statement) -> Iterator[tuple[str, ...]]:
    """All ordered selections of three loops that cover every tensor.

    A selection is valid when every tensor of the statement reads at least one
    selected iterator — otherwise its restricted access matrix is all-zero and
    no dataflow exists for it (cf. :func:`repro.core.reuse.reuse_space`).
    """
    names = statement.space.names
    for combo in itertools.permutations(names, 3):
        cols = [statement.space.position(n) for n in combo]
        ok = all(
            any(row[c] != 0 for row in acc.matrix for c in cols)
            for acc in statement.accesses
        )
        if ok:
            yield combo


def enumerate_specs(
    statement: Statement,
    selected: Sequence[str],
    *,
    bound: int = 1,
    limit: int | None = None,
    allowed_types: frozenset[DataflowType] | None = None,
    realizable_only: bool = False,
    canonical: bool = False,
) -> list[DataflowSpec]:
    """Distinct dataflow designs for one loop selection.

    Deduplicates on :meth:`DataflowSpec.signature` (or
    :func:`canonical_signature` with ``canonical=True``) and keeps the
    simplest STT representative of each design (the candidate stream is
    complexity-ordered).  ``realizable_only`` restricts to nearest-neighbour
    interconnect, matching the paper's synthesized sweeps.
    """
    seen: set[tuple] = set()
    out: list[DataflowSpec] = []
    for stt in stt_candidates(bound):
        try:
            spec = DataflowSpec(statement, selected, stt)
        except ValueError:
            continue
        if allowed_types is not None and any(
            fl.kind not in allowed_types for fl in spec.flows
        ):
            continue
        if realizable_only and not is_realizable(spec):
            continue
        sig = canonical_signature(spec) if canonical else spec.signature()
        if sig in seen:
            continue
        seen.add(sig)
        out.append(spec)
        if limit is not None and len(out) >= limit:
            break
    return out


@dataclass
class DesignSpace:
    """Result of a full design-space sweep for one workload."""

    statement: Statement
    specs: list[DataflowSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.specs)

    def by_letters(self, letters: str) -> list[DataflowSpec]:
        return [s for s in self.specs if s.letters == letters.upper()]

    def letter_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for spec in self.specs:
            hist[spec.letters] = hist.get(spec.letters, 0) + 1
        return dict(sorted(hist.items()))


def enumerate_designs(
    statement: Statement,
    *,
    selections: Iterable[Sequence[str]] | None = None,
    bound: int = 1,
    per_selection_limit: int | None = None,
    allowed_types: frozenset[DataflowType] | None = None,
    realizable_only: bool = False,
    canonical: bool = False,
) -> DesignSpace:
    """Sweep loop selections x STT matrices into a deduplicated design space.

    With ``canonical=True``, unordered loop selections are also deduplicated:
    ``(m, n, k)`` and ``(n, m, k)`` relabel the same hardware, so only sorted
    selections are swept.
    """
    space = DesignSpace(statement)
    seen: set[tuple] = set()
    chosen = selections if selections is not None else loop_selections(statement)
    if canonical and selections is None:
        chosen = sorted({tuple(sorted(sel)) for sel in chosen})
    for sel in chosen:
        for spec in enumerate_specs(
            statement,
            tuple(sel),
            bound=bound,
            limit=per_selection_limit,
            allowed_types=allowed_types,
            realizable_only=realizable_only,
            canonical=canonical,
        ):
            sig = (tuple(sorted(sel)), canonical_signature(spec)) if canonical else spec.signature()
            if sig not in seen:
                seen.add(sig)
                space.specs.append(spec)
    return space
