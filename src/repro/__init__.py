"""TensorLib reproduction — spatial accelerator generation for tensor algebra.

This package reproduces *TensorLib: A Spatial Accelerator Generation Framework
for Tensor Algebra* (DAC 2021).  The pipeline mirrors the paper:

1. Describe a tensor algebra kernel as a perfect loop nest (:mod:`repro.ir`).
2. Pick three loops and a Space-Time Transformation matrix; classify the
   dataflow of every tensor from its reuse subspace (:mod:`repro.core`).
3. Generate the accelerator — PE templates, interconnect, reduction trees,
   controller, memory configuration — as a structural netlist and emit
   Verilog (:mod:`repro.hw`).
4. Evaluate through the unified :mod:`repro.api` facade: one
   :class:`~repro.api.Session` routes every backend — analytic performance
   (:mod:`repro.perf`), ASIC area/power (:mod:`repro.cost`), FPGA resources
   (:mod:`repro.fpga`), and cycle-accurate netlist simulation against numpy
   (:mod:`repro.sim`) — through a single ``evaluate(request)`` convention
   with a shared, mergeable memo cache, and owns the design-space pipeline
   (``explore()`` / ``sweep()``, :mod:`repro.explore`).

Quickstart::

    from repro import Session, workloads, naming
    from repro.hw.generator import AcceleratorGenerator

    gemm = workloads.gemm(64, 64, 64)
    spec = naming.spec_from_name(gemm, "MNK-SST")      # output stationary
    design = AcceleratorGenerator(spec, rows=4, cols=4).generate()

    session = Session(cache="memo.json")
    session.evaluate("gemm", "MNK-SST")                  # perf backend
    session.evaluate("gemm", "MNK-SST", backend="cost")  # same front door
    session.explore("gemm").pareto()                     # full design space
"""

from repro.ir import workloads
from repro.core import naming
from repro.core.dataflow import DataflowSpec, DataflowType, TensorDataflow
from repro.core.stt import STT

__all__ = [
    "workloads",
    "naming",
    "DataflowSpec",
    "DataflowType",
    "TensorDataflow",
    "STT",
    "Session",
    "LocalSession",
    "SessionProtocol",
    "DesignRequest",
    "EvalResult",
]

__version__ = "1.3.0"

#: Top-level API surface re-exported lazily so ``import repro`` stays light.
_API_EXPORTS = (
    "Session",
    "LocalSession",
    "SessionProtocol",
    "DesignRequest",
    "EvalResult",
)


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_API_EXPORTS))
