"""TensorLib reproduction — spatial accelerator generation for tensor algebra.

This package reproduces *TensorLib: A Spatial Accelerator Generation Framework
for Tensor Algebra* (DAC 2021).  The pipeline mirrors the paper:

1. Describe a tensor algebra kernel as a perfect loop nest (:mod:`repro.ir`).
2. Pick three loops and a Space-Time Transformation matrix; classify the
   dataflow of every tensor from its reuse subspace (:mod:`repro.core`).
3. Generate the accelerator — PE templates, interconnect, reduction trees,
   controller, memory configuration — as a structural netlist and emit
   Verilog (:mod:`repro.hw`).
4. Simulate the generated netlist cycle-by-cycle and validate against numpy
   (:mod:`repro.sim`), or evaluate analytically for paper-scale workloads
   (:mod:`repro.perf`, :mod:`repro.cost`, :mod:`repro.fpga`).

Quickstart::

    from repro import workloads, naming
    from repro.hw.generator import AcceleratorGenerator

    gemm = workloads.gemm(64, 64, 64)
    spec = naming.spec_from_name(gemm, "MNK-SST")      # output stationary
    design = AcceleratorGenerator(spec, rows=4, cols=4).generate()
"""

from repro.ir import workloads
from repro.core import naming
from repro.core.dataflow import DataflowSpec, DataflowType, TensorDataflow
from repro.core.stt import STT

__all__ = [
    "workloads",
    "naming",
    "DataflowSpec",
    "DataflowType",
    "TensorDataflow",
    "STT",
]

__version__ = "1.0.0"
