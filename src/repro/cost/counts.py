"""Analytic primitive-resource counting for generated accelerators.

Mirrors the construction in :mod:`repro.hw.pe` and :mod:`repro.hw.array`
exactly — ``tests/cost/test_counts.py`` asserts equality against real netlist
cell counts — but runs in microseconds, so design-space sweeps over hundreds
of 16x16 designs stay fast.

Beyond raw cell counts, it records the *interconnect profile* the power model
needs: multicast bus lengths (wire capacitance), boundary port counts (SRAM
traffic), and control-signal fanout (the paper attributes stationary
dataflows' energy premium to exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataflow import DataflowSpec, DataflowType
from repro.hw.geometry import Grid

__all__ = ["ResourceCounts", "count_resources"]

_TREE_OUT = (
    DataflowType.MULTICAST,
    DataflowType.BROADCAST,
    DataflowType.MULTICAST_STATIONARY,
    DataflowType.FULL_REUSE,
    DataflowType.SYSTOLIC_MULTICAST,
)


@dataclass
class ResourceCounts:
    """Primitive cells plus interconnect/activity metadata."""

    regs: int = 0
    adds: int = 0
    muls: int = 0
    muxes: int = 0
    logic: int = 0  # 1-bit gates (and/or/not/eq/lt)
    #: total multicast/broadcast bus length in PE hops (wire capacitance).
    bus_wire_hops: int = 0
    #: PEs reading/writing the scratchpad every execute cycle.
    sram_ports_per_cycle: int = 0
    #: PEs fanned out to by stage-control signals (load/swap/clear/drain).
    control_fanout: int = 0
    #: data bit width everything above is counted at.
    width: int = 32

    def merge(self, other: "ResourceCounts") -> None:
        self.regs += other.regs
        self.adds += other.adds
        self.muls += other.muls
        self.muxes += other.muxes
        self.logic += other.logic
        self.bus_wire_hops += other.bus_wire_hops
        self.sram_ports_per_cycle += other.sram_ports_per_cycle
        self.control_fanout += other.control_fanout


def _pe_counts(spec: DataflowSpec) -> tuple[ResourceCounts, set[str]]:
    """Per-PE primitive counts and the set of control signals required."""
    c = ResourceCounts()
    controls: set[str] = set()
    for flow in spec.input_flows:
        kind = flow.kind
        if kind is DataflowType.SYSTOLIC:
            c.regs += 1
        elif kind is DataflowType.STATIONARY:
            c.regs += 2
            controls.update(("load_en", "swap_in"))
        elif kind in (DataflowType.MULTICAST_STATIONARY, DataflowType.FULL_REUSE):
            c.regs += 2
            controls.update(("load_en", "swap_in"))
        # direct inputs (multicast/broadcast/unicast/systolic_multicast): none
    c.muls += len(spec.input_flows) - 1 if len(spec.input_flows) > 1 else 1
    if len(spec.input_flows) == 1:
        c.muls = 0  # single input: the operand is the product
    out = spec.output_flow.kind
    if out is DataflowType.SYSTOLIC:
        c.adds += 1
        c.regs += 1
    elif out is DataflowType.STATIONARY:
        c.regs += 2
        c.adds += 1
        c.muxes += 2
        c.logic += 1
        controls.update(("acc_clear", "swap_out", "drain_en"))
    elif out is DataflowType.UNICAST:
        c.regs += 1
    # tree outputs: product leaves combinationally
    return c, controls


def count_resources(spec: DataflowSpec, rows: int, cols: int, width: int = 16) -> ResourceCounts:
    """Resource counts for the full array (PEs + interconnect + controller)."""
    grid = Grid(rows, cols)
    total = ResourceCounts(width=width)
    pe, controls = _pe_counts(spec)
    for f in ("regs", "adds", "muls", "muxes", "logic"):
        setattr(total, f, getattr(pe, f) * grid.size)

    # ---- interconnect ------------------------------------------------------
    for flow in spec.flows:
        kind = flow.kind
        if kind is DataflowType.SYSTOLIC:
            s1, s2, dt = flow.systolic_direction
            entries = sum(1 for p in grid.points() if grid.is_entry(p, (s1, s2)))
            total.regs += (grid.size - entries) * (dt - 1)
            if not flow.is_output:
                total.sram_ports_per_cycle += entries
            else:
                exits = sum(1 for p in grid.points() if grid.is_exit(p, (s1, s2)))
                total.sram_ports_per_cycle += exits
        elif kind is DataflowType.UNICAST:
            total.sram_ports_per_cycle += grid.size
        elif kind is DataflowType.MULTICAST:
            mc = (flow.multicast_direction[0], flow.multicast_direction[1])
            lines = grid.lines(mc)
            total.sram_ports_per_cycle += len(lines)
            if flow.is_output:
                # Reduction trees are local adder wiring, not long broadcast
                # tracks — the paper notes tree outputs stay cheap.
                total.adds += grid.size - len(lines)
                total.regs += len(lines)  # root registers
            else:
                total.bus_wire_hops += sum(len(line.points) for line in lines)
        elif kind is DataflowType.BROADCAST:
            total.sram_ports_per_cycle += 1
            if flow.is_output:
                total.adds += grid.size - 1
                total.regs += 1
            else:
                total.bus_wire_hops += grid.size
        elif kind is DataflowType.FULL_REUSE:
            if flow.is_output:
                total.adds += grid.size - 1 + 1  # tree + accumulator add
                total.regs += 1
                total.muxes += 1
            else:
                total.bus_wire_hops += grid.size  # scalar broadcast to all PEs
        elif kind is DataflowType.MULTICAST_STATIONARY:
            mc = (flow.multicast_direction[0], flow.multicast_direction[1])
            lines = grid.lines(mc)
            if not flow.is_output:
                total.bus_wire_hops += sum(len(line.points) for line in lines)
            if flow.is_output:
                total.adds += (grid.size - len(lines)) + len(lines)
                total.regs += len(lines)
                total.muxes += len(lines)
        elif kind is DataflowType.SYSTOLIC_MULTICAST:
            mc = (flow.multicast_direction[0], flow.multicast_direction[1])
            sy = flow.systolic_direction
            lines = grid.lines(mc)
            chains = grid.line_chain(mc, (sy[0], sy[1]))
            if not flow.is_output:
                total.bus_wire_hops += sum(len(line.points) for line in lines)
            total.sram_ports_per_cycle += len(chains)
            hops = len(lines) - len(chains)
            if flow.is_output:
                total.adds += (grid.size - len(lines)) + hops
                total.regs += hops * sy[2]
            else:
                total.regs += hops * sy[2]
        elif kind is DataflowType.STATIONARY:
            # column load chains reuse the shadow regs; amortized SRAM traffic
            total.sram_ports_per_cycle += 0
        else:  # pragma: no cover
            raise AssertionError(kind)

    # ---- control fanout ----------------------------------------------------
    total.control_fanout = len(controls) * grid.size

    # ---- controller --------------------------------------------------------
    total.regs += 10  # stage counter
    total.adds += 1
    total.muxes += 1
    total.logic += 10  # comparators and gates

    return total
