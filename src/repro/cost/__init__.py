"""ASIC area/power models reproducing paper Fig. 6.

The paper synthesizes each generated design with Synopsys DC at 55 nm and
reports a power-vs-area scatter over the dataflow design space.  We replace
the proprietary flow with an analytic per-primitive model:

- :mod:`repro.cost.counts` — exact primitive-resource counting that mirrors
  the hardware templates (cross-checked against real netlist cell counts in
  ``tests/cost/test_counts.py``),
- :mod:`repro.cost.model` — calibrated 55 nm area/energy coefficients and the
  activity-based power evaluation.

The calibration targets the paper's reported aggregates for a 16x16 INT16
array at 320 MHz: GEMM power spanning ~35-63 mW (1.8x) while area spans only
~1.16x, multicast-input dataflows costing the most energy, reduction-tree
outputs costing little, and stationary dataflows paying area/energy for
control (paper §VI-B).
"""

from repro.cost.counts import ResourceCounts, count_resources
from repro.cost.model import CostModel, CostParams, CostResult

__all__ = [
    "ResourceCounts",
    "count_resources",
    "CostModel",
    "CostParams",
    "CostResult",
]
