"""Calibrated 55 nm area/power model (paper Fig. 6 substitute).

Area is a static function of the primitive counts plus the on-chip SRAM;
power is activity-based dynamic energy at the operating frequency plus
area-proportional leakage.  Coefficients are calibrated so a 16x16 INT16
array at 320 MHz lands in the paper's reported ranges (GEMM: 35-63 mW,
0.75-0.875 mm^2) and reproduces the paper's qualitative findings:

- dataflow choice moves *power* (~1.8x) far more than *area* (~1.16x),
- two multicast inputs (MM?) cost the most energy (bus capacitance),
- reduction-tree outputs are cheap despite similar STT-level structure,
- stationary tensors pay area and energy for double buffers and the
  stage-control fanout,
- unicast dataflows pay heavily for per-PE SRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataflow import DataflowSpec
from repro.cost.counts import ResourceCounts, count_resources

__all__ = ["CostParams", "CostResult", "CostModel"]


@dataclass(frozen=True)
class CostParams:
    """Technology coefficients (55 nm class, INT16-normalized).

    Areas in um^2 *per bit* unless noted; energies in pJ *per access per
    16-bit word* (scaled by ``width/16`` on evaluation).
    """

    # --- area (um^2) -----------------------------------------------------
    area_mul_per_bit2: float = 5.5  # multiplier grows ~quadratically: coef * W^2
    area_add_per_bit: float = 11.0
    area_reg_per_bit: float = 7.5
    area_mux_per_bit: float = 4.5
    area_logic_gate: float = 6.0
    area_sram_per_word: float = 4.2  # per 16-bit word equivalent
    area_wire_per_hop: float = 16.0  # routed multicast track per PE hop
    area_control_per_pe: float = 20.0  # control distribution per fanout point
    area_fixed_mm2: float = 0.155  # clock tree, host interface, pads

    # --- dynamic energy (pJ per access, 16-bit) ---------------------------
    e_mul: float = 0.26
    e_add: float = 0.035
    e_reg: float = 0.03
    e_mux: float = 0.008
    e_bus_per_hop: float = 0.085  # driving one PE hop of multicast wire
    e_sram_access: float = 0.38
    e_control_per_pe: float = 0.016

    # --- static ----------------------------------------------------------
    leakage_mw_per_mm2: float = 2.2


@dataclass
class CostResult:
    """Area/power evaluation of one design point."""

    spec_name: str
    area_mm2: float
    power_mw: float
    area_breakdown: dict[str, float]
    power_breakdown: dict[str, float]
    counts: ResourceCounts


class CostModel:
    """Evaluate ASIC area and power for dataflow specs.

    ``sram_words`` sets the scratchpad provisioning (the paper's designs
    share a fixed on-chip buffer, so it contributes constant area).
    """

    def __init__(
        self,
        rows: int = 16,
        cols: int = 16,
        width: int = 16,
        freq_mhz: float = 320.0,
        params: CostParams | None = None,
        sram_words: int = 32768,
    ):
        self.rows = rows
        self.cols = cols
        self.width = width
        self.freq_mhz = freq_mhz
        self.params = params or CostParams()
        self.sram_words = sram_words

    @classmethod
    def for_array(
        cls,
        array,
        *,
        width: int = 16,
        params: CostParams | None = None,
        sram_words: int = 32768,
    ) -> "CostModel":
        """Build a cost model matching an :class:`~repro.perf.model.ArrayConfig`.

        The single construction path used by the evaluation engine and the
        ``cost`` API backend, so geometry/frequency can never drift between
        the perf and cost sides of one evaluation.
        """
        return cls(
            rows=array.rows,
            cols=array.cols,
            width=width,
            freq_mhz=array.freq_mhz,
            params=params,
            sram_words=sram_words,
        )

    # ------------------------------------------------------------------
    def evaluate(self, spec: DataflowSpec) -> CostResult:
        p = self.params
        w = self.width
        scale = w / 16.0
        counts = count_resources(spec, self.rows, self.cols, width=w)

        # ---- area ----------------------------------------------------------
        area = {
            "mul": counts.muls * p.area_mul_per_bit2 * w * w,
            "add": counts.adds * p.area_add_per_bit * w,
            "reg": counts.regs * p.area_reg_per_bit * w,
            "mux": counts.muxes * p.area_mux_per_bit * w,
            "logic": counts.logic * p.area_logic_gate,
            "sram": self.sram_words * p.area_sram_per_word * scale,
            "wire": counts.bus_wire_hops * p.area_wire_per_hop * scale,
            "control": counts.control_fanout * p.area_control_per_pe,
        }
        area["fixed"] = p.area_fixed_mm2 * 1e6
        area_mm2 = sum(area.values()) / 1e6

        # ---- power ---------------------------------------------------------
        cycles_per_sec = self.freq_mhz * 1e6
        pj = {
            "mac": (counts.muls * p.e_mul + counts.adds * p.e_add) * scale,
            "reg": counts.regs * p.e_reg * scale,
            "mux": counts.muxes * p.e_mux * scale,
            "bus": counts.bus_wire_hops * p.e_bus_per_hop * scale,
            "sram": counts.sram_ports_per_cycle * p.e_sram_access * scale,
            "control": counts.control_fanout * p.e_control_per_pe,
        }
        power = {k: v * cycles_per_sec / 1e9 for k, v in pj.items()}  # pJ*Hz -> mW
        power["leakage"] = area_mm2 * p.leakage_mw_per_mm2
        power_mw = sum(power.values())

        return CostResult(
            spec_name=spec.name,
            area_mm2=area_mm2,
            power_mw=power_mw,
            area_breakdown={k: v / 1e6 for k, v in area.items()},
            power_breakdown=power,
            counts=counts,
        )
