"""Design-space exploration: enumerate -> prune -> evaluate -> Pareto.

The productivity claim of the paper is that generation is cheap enough to
sweep the whole dataflow space; this package packages that loop as a
streaming pipeline.  :class:`repro.explore.engine.EvaluationEngine` owns the
full flow — lazy enumeration (:mod:`repro.core.enumerate`), composable
pruning, serial or process-pool evaluation through the performance and cost
models with a two-level memo cache, structured failure reporting, and
multi-workload sweeps — while :func:`repro.explore.dse.explore` remains the
simple one-call facade and :func:`repro.explore.pareto.pareto_front`
extracts the interesting frontier.
"""

from repro.explore.dse import DesignPoint, explore
from repro.explore.engine import (
    DesignFailure,
    EvaluationEngine,
    EvaluationResult,
    EvaluationStats,
    MemoCache,
)
from repro.explore.pareto import pareto_front

__all__ = [
    "DesignPoint",
    "DesignFailure",
    "EvaluationEngine",
    "EvaluationResult",
    "EvaluationStats",
    "MemoCache",
    "explore",
    "pareto_front",
]
