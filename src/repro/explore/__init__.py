"""Design-space exploration: enumerate -> evaluate -> Pareto.

The productivity claim of the paper is that generation is cheap enough to
sweep the whole dataflow space; this package packages that loop:
:func:`repro.explore.dse.explore` runs the enumeration of
:mod:`repro.core.enumerate` through the performance and cost models and
:func:`repro.explore.pareto.pareto_front` extracts the interesting frontier.
"""

from repro.explore.dse import DesignPoint, explore
from repro.explore.pareto import pareto_front

__all__ = ["DesignPoint", "explore", "pareto_front"]
