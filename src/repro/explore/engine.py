"""Unified streaming evaluation engine for design-space exploration.

This module owns the full **enumerate -> prune -> evaluate -> Pareto**
pipeline that every consumer (the legacy :func:`repro.explore.dse.explore`
wrapper, the ``repro.cli explore`` subcommand, the examples and the paper
benchmarks) runs through:

1. **Enumerate** — :func:`repro.core.enumerate.iter_designs` streams the STT
   space lazily; the space is never materialized up front.
2. **Prune** — composable predicates (nearest-neighbour realizability,
   dataflow-type filters, canonical-dedup signature cache, user filters) drop
   candidates in-stream, with every rejection reason tallied.
3. **Evaluate** — each surviving design runs through the performance and cost
   models, either serially or on a process pool (``workers=N``) in
   deterministically-ordered chunks; results are bit-identical either way.
   A two-level memo cache (in-memory dict + optional on-disk JSON) keyed by
   ``(canonical_signature, array_config, cost_params)`` skips re-evaluation
   across repeated sweeps, and a *space* cache skips re-enumeration entirely.
4. **Report** — designs that fail a model are not swallowed: each becomes a
   :class:`DesignPoint` carrying a structured :class:`DesignFailure`, counted
   in :class:`EvaluationStats` and returned alongside the successes.

:meth:`EvaluationEngine.sweep` runs the pipeline across many workloads and
array configurations in one call — the substrate for multi-workload DSE.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.dataflow import DataflowSpec, DataflowType
from repro.core.enumerate import (
    EnumerationStats,
    Predicate,
    canonical_signature,
    iter_designs,
)
from repro.core.naming import best_spec_from_name
from repro.core.stt import STT
from repro.cost.model import CostModel, CostParams
from repro.ir import workloads as workload_lib
from repro.ir.einsum import Statement
from repro.perf.model import ArrayConfig, PerfModel, PerfResult

__all__ = [
    "ONE_D_TYPES",
    "DesignFailure",
    "DesignPoint",
    "EvaluationStats",
    "EvaluationResult",
    "MemoCache",
    "EvaluationEngine",
]

#: The 1-D dataflow types (the synthesized sweeps of paper Fig. 6 stay in
#: this subset; 2-D reuse designs add line registers the paper's Chisel
#: templates realize the same way but the scatter plots do not include).
ONE_D_TYPES = frozenset(
    {
        DataflowType.UNICAST,
        DataflowType.STATIONARY,
        DataflowType.SYSTOLIC,
        DataflowType.MULTICAST,
    }
)


@dataclass(frozen=True)
class DesignFailure:
    """Structured record of why a design could not be evaluated."""

    spec_name: str
    letters: str
    stage: str  # "perf" or "cost"
    reason: str  # "ExceptionType: message"

    def __str__(self) -> str:
        return f"{self.spec_name} [{self.stage}] {self.reason}"


@dataclass
class DesignPoint:
    """One evaluated dataflow design.

    A point either carries metrics (``failure is None``) or a structured
    :class:`DesignFailure` explaining which model stage rejected it — skipped
    designs are first-class results, not silently dropped.

    ``seq`` is the point's 1-based position in the run's emission order
    (enumeration order, identical for serial and pooled evaluation).  It is
    the engine-level identity behind the service's incremental row cursors:
    a consumer that saw rows up to ``seq=N`` can resume at ``N`` and miss
    nothing.  ``None`` only for points built outside a pipeline run.
    """

    spec: DataflowSpec
    normalized_perf: float = float("nan")
    cycles: float = float("nan")
    area_mm2: float = float("nan")
    power_mw: float = float("nan")
    failure: DesignFailure | None = None
    seq: int | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def letters(self) -> str:
        return self.spec.letters

    def metrics(self) -> tuple[float, float, float, float]:
        """The evaluated metrics as a tuple (for equality/regression checks)."""
        return (self.normalized_perf, self.cycles, self.area_mm2, self.power_mw)

    def __repr__(self) -> str:
        if self.failure is not None:
            return f"DesignPoint({self.name}, failed: {self.failure.reason})"
        return (
            f"DesignPoint({self.name}, perf={self.normalized_perf:.3f}, "
            f"area={self.area_mm2:.3f}mm2, power={self.power_mw:.1f}mW)"
        )


@dataclass
class EvaluationStats:
    """Counters for one pipeline run: nothing disappears without a tally."""

    enumerated: int = 0
    evaluated: int = 0  # ran through the models this run (cache misses)
    skipped: int = 0  # designs with a structured failure
    cache_hits: int = 0
    cache_misses: int = 0
    space_cache_hit: bool = False
    enum: EnumerationStats = field(default_factory=EnumerationStats)

    def summary(self) -> str:
        parts = [
            f"{self.enumerated} designs",
            f"{self.evaluated} evaluated",
            f"{self.cache_hits} cache hits",
        ]
        if self.skipped:
            parts.append(f"{self.skipped} skipped")
        if self.space_cache_hit:
            parts.append("space cache hit")
        return ", ".join(parts)


@dataclass
class EvaluationResult:
    """Outcome of one workload x array-config pipeline run."""

    workload: str
    array: ArrayConfig
    points: list[DesignPoint]  # successfully evaluated, enumeration order
    failures: list[DesignPoint]  # points carrying a DesignFailure
    stats: EvaluationStats

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[DesignPoint]:
        return iter(self.points)

    def best(self, n: int = 1) -> list[DesignPoint]:
        """The ``n`` highest-performance points."""
        return sorted(self.points, key=lambda p: -p.normalized_perf)[:n]

    def pareto(
        self,
        objectives: Sequence[Callable[[DesignPoint], float]] | None = None,
        minimize: Sequence[bool] | None = None,
    ) -> list[DesignPoint]:
        """Pareto frontier of the evaluated points.

        Defaults to the paper's Fig. 6 trade-off: maximize normalized
        performance, minimize power.
        """
        from repro.explore.pareto import pareto_front

        if objectives is None:
            objectives = [lambda p: -p.normalized_perf, lambda p: p.power_mw]
        return pareto_front(self.points, objectives, minimize)

    def failure_report(self) -> str:
        """Human-readable summary of skipped designs, grouped by reason."""
        if not self.failures:
            return "no designs skipped"
        by_reason: dict[str, int] = {}
        for pt in self.failures:
            assert pt.failure is not None
            key = f"[{pt.failure.stage}] {pt.failure.reason}"
            by_reason[key] = by_reason.get(key, 0) + 1
        lines = [f"{len(self.failures)} designs skipped:"]
        for reason, count in sorted(by_reason.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {count}x {reason}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Memoization
# ----------------------------------------------------------------------
class MemoCache:
    """Two-level memo cache: in-memory dict plus optional on-disk JSON.

    Three sections, all keyed by strings stable across processes and runs:

    - ``points`` — evaluated metrics (or structured failures) keyed by
      ``(statement, selection, canonical_signature, array_config,
      cost_params)``.
    - ``spaces`` — enumerated design spaces as ``(selection, STT matrix)``
      pairs keyed by the statement and enumeration options; a hit skips the
      full STT-candidate walk (the dominant cost of a cold sweep).
    - ``names`` — resolved paper dataflow names (``MNK-SST`` -> simplest best
      STT) keyed by statement, name and scoring configuration.
    - ``api`` — whole :class:`repro.api.EvalResult` payloads keyed by the
      canonical :meth:`repro.api.DesignRequest.cache_key`, which is how the
      FPGA resource model and the functional simulator memoize too.

    ``flush()`` persists atomically (write-temp + rename); a corrupt or
    missing file degrades to an empty cache rather than failing the sweep.
    Caches are mergeable (:meth:`merge_from`), the substrate for combining
    shards of a ``sweep()`` distributed across machines — see the
    ``repro cache`` CLI subcommand.

    All accessors are guarded by one re-entrant lock, so a cache shared by
    the evaluation service's concurrent request handlers (threads) stays
    consistent; the engine's *process* pools never share a cache object, so
    the lock is uncontended in classic sweeps.
    """

    _SECTIONS = ("points", "spaces", "names", "api")

    def __init__(self, path: str | os.PathLike | None = None):
        self.path = os.fspath(path) if path is not None else None
        self._data: dict[str, dict[str, object]] = {s: {} for s in self._SECTIONS}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._lock = threading.RLock()
        if self.path is not None:
            self.load()

    # -- persistence ---------------------------------------------------
    def load(self) -> None:
        if self.path is None or not os.path.exists(self.path):
            return
        try:
            with open(self.path) as fh:
                raw = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(raw, dict):
            # a torn or foreign write can be valid JSON of the wrong shape;
            # treat it exactly like a corrupt file (empty, not fatal)
            return
        with self._lock:
            for section in self._SECTIONS:
                stored = raw.get(section)
                if isinstance(stored, dict):
                    self._data[section].update(stored)

    def flush(self, force: bool = False) -> None:
        """Persist to disk (no-op for purely in-memory or clean caches).

        ``force=True`` rewrites even when nothing changed — the compaction
        path, which re-serializes with minimal separators and drops whatever
        junk an interrupted or foreign writer left in the file.
        """
        with self._lock:
            if self.path is None or not (self._dirty or force):
                return
            tmp = f"{self.path}.tmp.{os.getpid()}"
            with open(tmp, "w") as fh:
                json.dump(self._data, fh, separators=(",", ":"))
            os.replace(tmp, self.path)
            self._dirty = False

    def __len__(self) -> int:
        with self._lock:
            return sum(len(self._data[s]) for s in self._SECTIONS)

    # -- sharding support ----------------------------------------------
    def dump(self) -> dict[str, dict]:
        """A detached snapshot of every section (the ``/v1/cache`` payload).

        The returned dict is JSON-serializable and round-trips through
        :meth:`from_payload`, which is how a sweep coordinator pulls a remote
        server's warm entries over the wire instead of shipping cache files.
        """
        with self._lock:
            return {s: dict(self._data[s]) for s in self._SECTIONS}

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "MemoCache":
        """An in-memory cache rebuilt from a :meth:`dump` payload.

        Wrong-shape sections degrade to empty — the same tolerance as
        :meth:`load`, since the payload may come from an untrusted or
        mid-upgrade server.
        """
        cache = cls()
        if isinstance(payload, Mapping):
            for section in cls._SECTIONS:
                stored = payload.get(section)
                if isinstance(stored, dict):
                    cache._data[section].update(stored)
        return cache

    def merge_from(self, other: "MemoCache | str | os.PathLike") -> dict[str, int]:
        """Fold another cache (object or JSON file) into this one.

        Entries already present locally win — shards of the same design space
        hold identical values for identical keys, so first-wins keeps merging
        deterministic regardless of file order.  Returns the count of newly
        added entries per section.

        A shard *file* that cannot be read — appearing mid-write, truncated,
        or holding valid JSON of the wrong shape — contributes zero entries
        rather than raising, the same degrade-to-empty contract as
        :meth:`load` (the ``repro cache`` CLI validates files up front when a
        loud failure is wanted).
        """
        if not isinstance(other, MemoCache):
            other = MemoCache(other)
        # snapshot under the source lock first, then fold under ours — never
        # holding both locks at once (two caches merging into each other from
        # two threads must not deadlock)
        with other._lock:
            theirs = {s: dict(other._data[s]) for s in self._SECTIONS}
        added = {}
        with self._lock:
            for section in self._SECTIONS:
                ours = self._data[section]
                new = {k: v for k, v in theirs[section].items() if k not in ours}
                if new:
                    ours.update(new)
                    self._dirty = True
                added[section] = len(new)
        return added

    def stats(self) -> dict[str, int]:
        """Entry count per section (plus hit/miss counters for this run)."""
        with self._lock:
            out = {section: len(self._data[section]) for section in self._SECTIONS}
            out["hits"] = self.hits
            out["misses"] = self.misses
            return out

    # -- typed accessors -----------------------------------------------
    def get(self, section: str, key: str):
        with self._lock:
            value = self._data[section].get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put(self, section: str, key: str, value) -> None:
        with self._lock:
            self._data[section][key] = value
            self._dirty = True


# ----------------------------------------------------------------------
# Worker functions (module-level so the process pool can pickle them)
# ----------------------------------------------------------------------
def _evaluate_one(spec: DataflowSpec, perf: PerfModel, cost: CostModel) -> tuple:
    """Evaluate one design, returning a transport-friendly outcome tuple.

    ``("ok", perf, cycles, area, power)`` on success or
    ``("fail", stage, reason)`` when a model rejects the design.  Floats
    travel through pickle unchanged, so pooled results are bit-identical to
    serial ones.
    """
    try:
        pr = perf.evaluate(spec)
    except (ValueError, NotImplementedError) as exc:
        return ("fail", "perf", f"{type(exc).__name__}: {exc}")
    try:
        cr = cost.evaluate(spec)
    except (ValueError, NotImplementedError) as exc:
        return ("fail", "cost", f"{type(exc).__name__}: {exc}")
    return ("ok", pr.normalized, pr.cycles, cr.area_mm2, cr.power_mw)


def _evaluate_chunk(payload: tuple) -> list[tuple]:
    specs, perf, cost = payload
    return [_evaluate_one(spec, perf, cost) for spec in specs]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class EvaluationEngine:
    """Owns the enumerate -> prune -> evaluate -> Pareto pipeline.

    Parameters
    ----------
    array:
        Hardware configuration (defaults to the paper's 16x16 / 320 MHz).
    width:
        Datapath bit width for the cost model.
    cost_params / sram_words:
        Cost-model calibration knobs.
    perf / cost:
        Pre-built models (override ``array``/``width`` when given).
    workers:
        ``0``/``1`` evaluates serially; ``N > 1`` uses a process pool with
        deterministically-ordered chunks.  Results are bit-identical.
    chunk_size:
        Designs per pool task (amortizes pickling overhead).
    cache:
        A :class:`MemoCache`, a filesystem path for an on-disk JSON cache, or
        ``None`` to disable memoization.
    autoflush:
        Persist the cache after each pipeline run (default).  A server
        session sharing one big cache across many requests passes ``False``
        and flushes explicitly (shutdown, ``/v1/cache/flush``) instead of
        rewriting the file per request.
    """

    def __init__(
        self,
        array: ArrayConfig | None = None,
        *,
        width: int = 16,
        cost_params: CostParams | None = None,
        sram_words: int = 32768,
        perf: PerfModel | None = None,
        cost: CostModel | None = None,
        workers: int = 0,
        chunk_size: int = 32,
        cache: MemoCache | str | os.PathLike | None = None,
        autoflush: bool = True,
    ):
        if perf is not None and array is None:
            array = perf.config
        self.array = array or ArrayConfig()
        self._custom_models = perf is not None or cost is not None
        self.perf = perf or PerfModel(self.array)
        self.cost = cost or CostModel.for_array(
            self.array, width=width, params=cost_params, sram_words=sram_words
        )
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        if isinstance(cache, (str, os.PathLike)):
            cache = MemoCache(cache)
        self.cache = cache
        self.autoflush = autoflush

    def _flush(self) -> None:
        if self.cache is not None and self.autoflush:
            self.cache.flush()

    # -- cache keys ----------------------------------------------------
    @staticmethod
    def _statement_key(statement: Statement) -> tuple:
        # Access matrices must be part of the identity: two statements with
        # equal names/extents but different index expressions classify
        # dataflows differently and must not alias in a persistent cache.
        return (
            statement.name,
            statement.space.names,
            statement.space.extents,
            tuple(
                (acc.tensor.name, acc.tensor.is_output, tuple(acc.matrix))
                for acc in statement.accesses
            ),
        )

    def _config_key(self) -> tuple:
        return (
            dataclasses.astuple(self.array),
            self.cost.rows,
            self.cost.cols,
            self.cost.width,
            self.cost.freq_mhz,
            self.cost.sram_words,
            dataclasses.astuple(self.cost.params),
        )

    def _design_key(self, statement: Statement, spec: DataflowSpec) -> str:
        # Canonical signatures identify hardware up to mirroring/rotating the
        # array, which only preserves the models' outputs when the array is
        # square; rectangular arrays fall back to the exact signature.
        if self.array.rows == self.array.cols:
            sig = canonical_signature(spec)
        else:
            sig = spec.signature()
        return repr(
            (self._statement_key(statement), spec.selected, sig, self._config_key())
        )

    # -- stage 1+2: streaming enumeration with pruning ------------------
    def iter_space(
        self,
        statement: Statement,
        *,
        one_d_only: bool = False,
        selections: Iterable[Sequence[str]] | None = None,
        predicates: Sequence[Predicate] = (),
        bound: int = 1,
        per_selection_limit: int | None = None,
        realizable_only: bool = True,
        canonical: bool = True,
        stats: EvaluationStats | None = None,
    ) -> Iterator[DataflowSpec]:
        """Stream the pruned design space, through the space cache when warm.

        A cache hit replays the stored ``(selection, STT matrix)`` pairs —
        reconstructing a spec is ~100x cheaper than discovering it — and a
        miss records the pairs as they stream past for the next run.
        """
        allowed_types = ONE_D_TYPES if one_d_only else None
        stats = stats or EvaluationStats()
        if selections is not None:
            # materialize up front: generators would be consumed by key
            # construction below and arrive empty at iter_designs
            selections = [tuple(sel) for sel in selections]
        cacheable = self.cache is not None and not predicates
        space_key = None
        if cacheable:
            space_key = repr(
                (
                    self._statement_key(statement),
                    bound,
                    sorted(t.value for t in allowed_types) if allowed_types else None,
                    realizable_only,
                    canonical,
                    tuple(selections) if selections is not None else None,
                    per_selection_limit,
                )
            )
            stored = self.cache.get("spaces", space_key)
            if stored is not None:
                stats.space_cache_hit = True
                for sel, matrix in stored:
                    yield DataflowSpec(
                        statement,
                        tuple(sel),
                        STT(tuple(tuple(row) for row in matrix)),
                    )
                return
        recorded: list[list] = []
        for spec in iter_designs(
            statement,
            selections=selections,
            bound=bound,
            per_selection_limit=per_selection_limit,
            allowed_types=allowed_types,
            realizable_only=realizable_only,
            canonical=canonical,
            predicates=predicates,
            stats=stats.enum,
        ):
            if cacheable:
                recorded.append(
                    [list(spec.selected), [list(row) for row in spec.stt.matrix]]
                )
            yield spec
        if cacheable:
            self.cache.put("spaces", space_key, recorded)

    # -- stage 3: evaluation --------------------------------------------
    @staticmethod
    def _point_from_outcome(spec: DataflowSpec, outcome: tuple) -> DesignPoint:
        """Build the :class:`DesignPoint` for one worker-outcome tuple."""
        if outcome[0] == "ok":
            _, perf_n, cycles, area, power = outcome
            return DesignPoint(
                spec=spec,
                normalized_perf=perf_n,
                cycles=cycles,
                area_mm2=area,
                power_mw=power,
            )
        _, stage, reason = outcome
        return DesignPoint(
            spec=spec,
            failure=DesignFailure(
                spec_name=spec.name,
                letters=spec.letters,
                stage=stage,
                reason=reason,
            ),
        )

    def _lookup(
        self, statement: Statement, spec: DataflowSpec, stats: EvaluationStats
    ) -> tuple[tuple | None, str | None]:
        """Memo-cache probe: ``(cached outcome, None)`` or ``(None, put-key)``."""
        stats.enumerated += 1
        if self.cache is None:
            return None, None
        key = self._design_key(statement, spec)
        cached = self.cache.get("points", key)
        if cached is not None:
            stats.cache_hits += 1
            return tuple(cached), None
        stats.cache_misses += 1
        return None, key

    def stream(
        self,
        statement: Statement,
        *,
        specs: Iterable[DataflowSpec] | None = None,
        stats: EvaluationStats | None = None,
        workers: int | None = None,
        pool: ProcessPoolExecutor | None = None,
        seq_start: int = 0,
        **space_kwargs,
    ) -> Iterator[DesignPoint]:
        """Yield evaluated :class:`DesignPoint` rows one at a time.

        This is the incremental face of :meth:`evaluate`: each design is
        resolved from the memo cache or run through the models the moment it
        comes off the enumeration stream, so a consumer — the evaluation
        service's NDJSON ``/v1/explore`` endpoint and the job runner's row
        log in particular — sees results as they are produced instead of
        after the whole space finishes.  Failures are yielded inline as
        points carrying a :class:`DesignFailure`.

        ``workers > 1`` evaluates cache misses on a process pool in chunked,
        deterministically-ordered batches (``pool`` lends an existing
        executor); the yielded sequence is bit-identical to the serial one,
        arriving in chunk-sized bursts instead of point by point.  Every
        yielded point carries ``seq`` — its 1-based emission index offset by
        ``seq_start`` — which is what the service's incremental job-row
        cursors are built on.  Pass a shared ``stats`` to observe the run's
        counters; the cache is flushed when the generator is exhausted or
        closed.
        """
        stats = stats if stats is not None else EvaluationStats()
        workers = self.workers if workers is None else workers
        source: Iterable[DataflowSpec]
        if specs is not None:
            source = specs
        else:
            source = self.iter_space(statement, stats=stats, **space_kwargs)
        seq = seq_start
        try:
            if workers <= 1:
                for spec in source:
                    outcome, key = self._lookup(statement, spec, stats)
                    if outcome is None:
                        outcome = _evaluate_one(spec, self.perf, self.cost)
                        stats.evaluated += 1
                    if key is not None:
                        self.cache.put("points", key, list(outcome))
                    point = self._point_from_outcome(spec, outcome)
                    if not point.ok:
                        stats.skipped += 1
                    seq += 1
                    point.seq = seq
                    yield point
            else:
                def lookup(spec: DataflowSpec):
                    return self._lookup(statement, spec, stats)

                for spec, outcome, key in self._iter_parallel(
                    source, workers, lookup, stats, pool=pool
                ):
                    if key is not None:
                        self.cache.put("points", key, list(outcome))
                    point = self._point_from_outcome(spec, outcome)
                    if not point.ok:
                        stats.skipped += 1
                    seq += 1
                    point.seq = seq
                    yield point
        finally:
            self._flush()

    def evaluate(
        self,
        statement: Statement,
        *,
        specs: Iterable[DataflowSpec] | None = None,
        one_d_only: bool = False,
        selections: Iterable[Sequence[str]] | None = None,
        predicates: Sequence[Predicate] = (),
        bound: int = 1,
        per_selection_limit: int | None = None,
        realizable_only: bool = True,
        canonical: bool = True,
        workers: int | None = None,
        pool: ProcessPoolExecutor | None = None,
    ) -> EvaluationResult:
        """Run the full pipeline for one workload.

        ``specs`` bypasses enumeration (evaluate an explicit design list).
        Points come back in enumeration order regardless of ``workers``.
        ``pool`` lends an existing executor for the parallel path — the
        caller keeps ownership (``sweep()`` shares one pool across all of its
        runs instead of forking a fresh pool per workload).
        """
        workers = self.workers if workers is None else workers
        stats = EvaluationStats()

        # Stream through the memo cache and the models: a design is evaluated
        # (or resolved from cache) as it comes off the enumeration stream —
        # only the result points are retained, never the un-evaluated space.
        points: list[DesignPoint] = []
        failures: list[DesignPoint] = []

        def emit(spec: DataflowSpec, outcome: tuple, key: str | None) -> None:
            if key is not None:
                self.cache.put("points", key, list(outcome))
            point = self._point_from_outcome(spec, outcome)
            # same seq a serial stream() would assign: emission order
            point.seq = len(points) + len(failures) + 1
            (points if point.ok else failures).append(point)

        space_kwargs = dict(
            one_d_only=one_d_only,
            selections=selections,
            predicates=predicates,
            bound=bound,
            per_selection_limit=per_selection_limit,
            realizable_only=realizable_only,
            canonical=canonical,
        )
        if workers <= 1:
            # explicit workers=0: stream() defaults to self.workers, but this
            # call's (possibly overridden) worker count must govern
            for point in self.stream(
                statement, specs=specs, stats=stats, workers=0, **space_kwargs
            ):
                (points if point.ok else failures).append(point)
        else:
            stream: Iterable[DataflowSpec]
            if specs is not None:
                stream = specs
            else:
                stream = self.iter_space(statement, stats=stats, **space_kwargs)

            def lookup(spec: DataflowSpec):
                return self._lookup(statement, spec, stats)

            self._evaluate_parallel(stream, workers, lookup, emit, stats, pool=pool)

        stats.skipped = len(failures)
        self._flush()
        return EvaluationResult(
            workload=statement.name,
            array=self.array,
            points=points,
            failures=failures,
            stats=stats,
        )

    def _evaluate_parallel(
        self, stream, workers, lookup, emit, stats, pool: ProcessPoolExecutor | None = None
    ) -> None:
        """Callback face of :meth:`_iter_parallel` (the ``evaluate()`` path)."""
        for spec, outcome, key in self._iter_parallel(
            stream, workers, lookup, stats, pool=pool
        ):
            emit(spec, outcome, key)

    def _iter_parallel(
        self, stream, workers, lookup, stats, pool: ProcessPoolExecutor | None = None
    ) -> Iterator[tuple]:
        """Pool evaluation with bounded in-flight chunks, enumeration order.

        Yields ``(spec, outcome, cache-put-key-or-None)`` triples.  Cache
        misses batch into ``chunk_size`` pool tasks as the stream is
        consumed; at most ``2 * workers`` chunks are in flight, and chunks
        drain FIFO, so memory stays bounded and emission order (hence the
        result lists) is bit-identical to the serial path.  A borrowed
        ``pool`` is used as-is and left running; otherwise a fresh pool is
        created and torn down here.
        """
        max_inflight = 2 * workers
        queue: deque = deque()  # (records, future-or-None)
        buffer: list = []  # (spec, cached-outcome-or-None, cache-key)
        misses: list[DataflowSpec] = []

        def drain_one() -> Iterator[tuple]:
            records, future = queue.popleft()
            outcomes = iter(future.result()) if future is not None else iter(())
            for spec, cached, key in records:
                if cached is not None:
                    yield spec, cached, None
                else:
                    stats.evaluated += 1
                    yield spec, next(outcomes), key

        owns_pool = pool is None
        if owns_pool:
            pool = ProcessPoolExecutor(max_workers=workers)
        try:

            def flush_chunk() -> None:
                nonlocal buffer, misses
                future = (
                    pool.submit(_evaluate_chunk, (misses, self.perf, self.cost))
                    if misses
                    else None
                )
                queue.append((buffer, future))
                buffer, misses = [], []

            for spec in stream:
                outcome, key = lookup(spec)
                buffer.append((spec, outcome, key))
                if outcome is None:
                    misses.append(spec)
                    if len(misses) >= self.chunk_size:
                        flush_chunk()
                while len(queue) > max_inflight:
                    yield from drain_one()
            if buffer:
                flush_chunk()
            while queue:
                yield from drain_one()
        finally:
            if owns_pool:
                pool.shutdown()

    # -- named-dataflow evaluation (paper Fig. 5 benchmarks) -------------
    def resolve_name(
        self, statement: Statement, name: str, *, bound: int = 1, limit: int = 24
    ) -> DataflowSpec:
        """The best-performing STT realization of a paper dataflow name.

        Name resolution walks the full STT candidate stream (the expensive
        part); the resolved ``(selection, matrix)`` pair is memoized in the
        ``names`` cache section so warm runs skip straight to the model.
        """
        key = None
        if self.cache is not None:
            # name resolution scores specs with the perf model only, so
            # the key must not embed cost-model knobs (spurious misses)
            key = repr(
                (
                    self._statement_key(statement),
                    name,
                    bound,
                    limit,
                    dataclasses.astuple(self.array),
                )
            )
            stored = self.cache.get("names", key)
            if stored is not None:
                sel, matrix = stored
                return DataflowSpec(
                    statement,
                    tuple(sel),
                    STT(tuple(tuple(row) for row in matrix)),
                )
        spec = best_spec_from_name(
            statement,
            name,
            lambda s: self.perf.evaluate(s).normalized,
            bound=bound,
            limit=limit,
        )
        if self.cache is not None:
            self.cache.put(
                "names",
                key,
                [list(spec.selected), [list(row) for row in spec.stt.matrix]],
            )
        return spec

    def evaluate_names(
        self,
        statement: Statement,
        names: Sequence[str],
        *,
        bound: int = 1,
        limit: int = 24,
    ) -> list[tuple[str, PerfResult]]:
        """Evaluate paper dataflow names, best-scoring STT per name."""
        rows = [
            (name, self.perf.evaluate(self.resolve_name(statement, name, bound=bound, limit=limit)))
            for name in names
        ]
        self._flush()
        return rows

    # -- stage 4: multi-workload sweeps ----------------------------------
    def sweep(
        self,
        workloads: Sequence[Statement | str],
        configs: Sequence[ArrayConfig] | None = None,
        **evaluate_kwargs,
    ) -> list[EvaluationResult]:
        """Run the pipeline over ``workloads`` x ``configs``.

        Workloads may be :class:`Statement` objects or Table II names
        (resolved via :func:`repro.ir.workloads.by_name`).  All runs share
        this engine's memo cache, so overlapping sweeps get warmer as they
        go.  Results arrive in ``configs``-major order.

        When ``workers > 1`` the whole sweep shares **one** process pool:
        every per-workload run dispatches its miss chunks to the same
        executor instead of forking (and tearing down) a fresh pool per
        workload x config item — the same chunked-dispatch economics as
        ``evaluate_many``, with results bit-identical to per-item
        ``evaluate()`` calls.
        """
        configs = list(configs) if configs is not None else [self.array]
        statements = [
            workload_lib.by_name(w) if isinstance(w, str) else w for w in workloads
        ]
        workers = evaluate_kwargs.get("workers")
        workers = self.workers if workers is None else workers
        pool: ProcessPoolExecutor | None = None
        if workers > 1 and len(configs) * len(statements) > 1:
            pool = ProcessPoolExecutor(max_workers=workers)
        try:
            results: list[EvaluationResult] = []
            for config in configs:
                engine = self if config == self.array else self._sibling(config)
                for statement in statements:
                    results.append(
                        engine.evaluate(statement, pool=pool, **evaluate_kwargs)
                    )
        finally:
            if pool is not None:
                pool.shutdown()
        return results

    def _sibling(self, config: ArrayConfig) -> "EvaluationEngine":
        """An engine for another array config sharing this one's cache."""
        if self._custom_models:
            # Custom models are bound to this engine's config; silently
            # rebuilding defaults for other configs would mix models within
            # one sweep and invalidate cross-config comparisons.
            raise ValueError(
                "sweep() across array configs is not supported on an engine "
                "built with custom perf/cost models; construct one engine "
                "per config instead"
            )
        return EvaluationEngine(
            config,
            width=self.cost.width,
            cost_params=self.cost.params,
            sram_words=self.cost.sram_words,
            workers=self.workers,
            chunk_size=self.chunk_size,
            cache=self.cache,
            autoflush=self.autoflush,
        )


def explore_warning(result: EvaluationResult, *, stacklevel: int = 3) -> None:
    """Emit the legacy-wrapper warning for skipped designs (if any)."""
    if result.failures:
        warnings.warn(
            f"explore({result.workload}): {result.failure_report()}",
            RuntimeWarning,
            stacklevel=stacklevel,
        )
