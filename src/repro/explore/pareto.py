"""Pareto-frontier extraction over evaluated design points."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["pareto_front"]


def pareto_front(
    points: Sequence[T],
    objectives: Sequence[Callable[[T], float]],
    minimize: Sequence[bool] | None = None,
) -> list[T]:
    """Non-dominated subset of ``points`` under the given objectives.

    ``minimize[i]`` selects the direction of objective ``i`` (default: all
    minimized).  A point is dominated when another point is no worse in every
    objective and strictly better in at least one.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    mins = list(minimize) if minimize is not None else [True] * len(objectives)
    if len(mins) != len(objectives):
        raise ValueError("minimize flags must match objectives")

    def key(pt: T) -> tuple[float, ...]:
        return tuple(
            obj(pt) if mn else -obj(pt) for obj, mn in zip(objectives, mins)
        )

    keyed = [(key(pt), pt) for pt in points]
    front: list[T] = []
    for k, pt in keyed:
        dominated = False
        for k2, _ in keyed:
            if k2 is k:
                continue
            if all(a <= b for a, b in zip(k2, k)) and any(
                a < b for a, b in zip(k2, k)
            ):
                dominated = True
                break
        if not dominated:
            front.append(pt)
    return front
