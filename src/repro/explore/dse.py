"""Design-space exploration driver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.dataflow import DataflowSpec, DataflowType
from repro.core.enumerate import enumerate_designs
from repro.cost.model import CostModel
from repro.ir.einsum import Statement
from repro.perf.model import ArrayConfig, PerfModel

__all__ = ["DesignPoint", "explore"]

#: The 1-D dataflow types (the synthesized sweeps of paper Fig. 6 stay in
#: this subset; 2-D reuse designs add line registers the paper's Chisel
#: templates realize the same way but the scatter plots do not include).
ONE_D_TYPES = frozenset(
    {
        DataflowType.UNICAST,
        DataflowType.STATIONARY,
        DataflowType.SYSTOLIC,
        DataflowType.MULTICAST,
    }
)


@dataclass
class DesignPoint:
    """One evaluated dataflow design."""

    spec: DataflowSpec
    normalized_perf: float
    cycles: float
    area_mm2: float
    power_mw: float

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def letters(self) -> str:
        return self.spec.letters

    def __repr__(self) -> str:
        return (
            f"DesignPoint({self.name}, perf={self.normalized_perf:.3f}, "
            f"area={self.area_mm2:.3f}mm2, power={self.power_mw:.1f}mW)"
        )


def explore(
    statement: Statement,
    *,
    rows: int = 16,
    cols: int = 16,
    width: int = 16,
    one_d_only: bool = False,
    specs: Iterable[DataflowSpec] | None = None,
    selections: Sequence[Sequence[str]] | None = None,
    perf: PerfModel | None = None,
    cost: CostModel | None = None,
) -> list[DesignPoint]:
    """Enumerate (or take) designs and evaluate perf + area + power.

    Designs whose tile cannot fit the array (degenerate skews) are skipped.
    """
    perf = perf or PerfModel(ArrayConfig(rows=rows, cols=cols))
    cost = cost or CostModel(rows=rows, cols=cols, width=width)
    if specs is None:
        space = enumerate_designs(
            statement,
            realizable_only=True,
            canonical=True,
            selections=selections,
            allowed_types=ONE_D_TYPES if one_d_only else None,
        )
        specs = space.specs
    points = []
    for spec in specs:
        try:
            pr = perf.evaluate(spec)
            cr = cost.evaluate(spec)
        except (ValueError, NotImplementedError):
            continue
        points.append(
            DesignPoint(
                spec=spec,
                normalized_perf=pr.normalized,
                cycles=pr.cycles,
                area_mm2=cr.area_mm2,
                power_mw=cr.power_mw,
            )
        )
    return points
