"""Design-space exploration driver (legacy wrapper).

:func:`explore` predates the streaming engine and is kept as a thin facade:
it builds a serial :class:`repro.explore.engine.EvaluationEngine`, runs the
enumerate -> prune -> evaluate pipeline, and returns the successful
:class:`DesignPoint` list.  Unlike the original implementation it no longer
swallows designs the models reject — skipped designs are surfaced as a
:class:`RuntimeWarning` with a per-reason count (use the engine directly to
get the structured failure channel).
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.core.dataflow import DataflowSpec
from repro.cost.model import CostModel
from repro.explore.engine import (
    ONE_D_TYPES,
    DesignFailure,
    DesignPoint,
    EvaluationEngine,
    MemoCache,
    explore_warning,
)
from repro.ir.einsum import Statement
from repro.perf.model import ArrayConfig, PerfModel

__all__ = ["DesignPoint", "DesignFailure", "ONE_D_TYPES", "explore"]


def explore(
    statement: Statement,
    *,
    rows: int = 16,
    cols: int = 16,
    width: int = 16,
    one_d_only: bool = False,
    specs: Iterable[DataflowSpec] | None = None,
    selections: Sequence[Sequence[str]] | None = None,
    perf: PerfModel | None = None,
    cost: CostModel | None = None,
    workers: int = 0,
    cache: MemoCache | str | os.PathLike | None = None,
) -> list[DesignPoint]:
    """Enumerate (or take) designs and evaluate perf + area + power.

    Designs the models reject (degenerate skews, unsupported dataflows) are
    reported via a ``RuntimeWarning`` naming the count and reasons; the
    returned list holds only the successfully evaluated points, in
    enumeration order.  ``workers``/``cache`` pass through to the engine for
    parallel evaluation and cross-run memoization.
    """
    engine = EvaluationEngine(
        array=perf.config if perf is not None else ArrayConfig(rows=rows, cols=cols),
        width=width,
        perf=perf,
        cost=cost,
        workers=workers,
        cache=cache,
    )
    result = engine.evaluate(
        statement,
        specs=specs,
        one_d_only=one_d_only,
        selections=selections,
    )
    explore_warning(result)
    return result.points
