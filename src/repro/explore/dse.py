"""Design-space exploration driver (deprecated shim).

:func:`explore` predates both the streaming engine and the unified
:class:`repro.api.Session` facade.  It is kept as a thin deprecation shim:
it builds a :class:`Session`, runs the enumerate -> prune -> evaluate
pipeline through it, and returns the successful :class:`DesignPoint` list.
Designs the models reject are surfaced as a :class:`RuntimeWarning` with a
per-reason count (use ``Session.explore()`` to get the structured failure
channel, stats, and Pareto helpers).

Migration::

    explore(stmt, rows=16, cols=16, workers=4, cache="memo.json")
    # becomes
    Session(ArrayConfig(rows=16, cols=16), workers=4, cache="memo.json") \\
        .explore(stmt).points
"""

from __future__ import annotations

import os
import warnings
from typing import Iterable, Sequence

from repro.core.dataflow import DataflowSpec
from repro.cost.model import CostModel
from repro.explore.engine import (
    ONE_D_TYPES,
    DesignFailure,
    DesignPoint,
    MemoCache,
    explore_warning,
)
from repro.ir.einsum import Statement
from repro.perf.model import ArrayConfig, PerfModel

__all__ = ["DesignPoint", "DesignFailure", "ONE_D_TYPES", "explore"]


def explore(
    statement: Statement,
    *,
    rows: int = 16,
    cols: int = 16,
    width: int = 16,
    one_d_only: bool = False,
    specs: Iterable[DataflowSpec] | None = None,
    selections: Sequence[Sequence[str]] | None = None,
    perf: PerfModel | None = None,
    cost: CostModel | None = None,
    workers: int = 0,
    cache: MemoCache | str | os.PathLike | None = None,
) -> list[DesignPoint]:
    """Deprecated: use :meth:`repro.api.Session.explore` instead.

    Enumerates (or takes) designs and evaluates perf + area + power.  Designs
    the models reject are reported via a ``RuntimeWarning``; the returned
    list holds only the successfully evaluated points, in enumeration order.
    """
    from repro.api import Session

    warnings.warn(
        "repro.explore.dse.explore() is deprecated; use "
        "repro.api.Session(...).explore(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    session = Session(
        array=perf.config if perf is not None else ArrayConfig(rows=rows, cols=cols),
        width=width,
        perf=perf,
        cost=cost,
        workers=workers,
        cache=cache,
    )
    result = session.explore(
        statement,
        specs=specs,
        one_d_only=one_d_only,
        selections=selections,
    )
    explore_warning(result)
    return result.points
