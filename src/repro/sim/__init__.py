"""Cycle-accurate simulation of generated accelerators.

- :mod:`repro.sim.engine` — a two-phase (combinational settle + clock edge)
  simulator over the flattened netlist IR; the same netlist the Verilog
  backend emits.
- :mod:`repro.sim.schedule` — derives per-port injection/collection schedules
  from the STT mapping, so one harness validates every dataflow class.
- :mod:`repro.sim.harness` — runs a generated accelerator on concrete tensors
  and reconstructs the output for comparison against numpy.
"""

from repro.sim.engine import Simulator
from repro.sim.harness import FunctionalHarness, run_functional, verify_functional

__all__ = ["Simulator", "FunctionalHarness", "run_functional", "verify_functional"]
