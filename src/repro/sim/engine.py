"""Two-phase cycle simulator for flattened netlists.

Semantics match the emitted Verilog:

1. *Settle phase* — combinational cells evaluate in topological order
   (levelized once at construction).
2. *Clock edge* — every register samples its ``d`` pin (if its enable is
   high) simultaneously; outputs change after the edge.

Values are Python ints wrapped to each wire's width in two's complement, so
arithmetic overflow behaves bit-exactly like hardware.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.hw.netlist import CellKind, FlatCell, FlatNetlist, Module, flatten

__all__ = ["Simulator"]


def _signed(value: int, width: int) -> int:
    """Interpret a width-bit pattern as signed two's complement."""
    value &= (1 << width) - 1
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


class Simulator:
    """Cycle simulator over a :class:`FlatNetlist` (or a module to flatten).

    Usage::

        sim = Simulator(top_module)
        sim.poke("a", 3)
        sim.step()              # settle + clock edge
        value = sim.peek("out")
    """

    def __init__(self, design: Module | FlatNetlist):
        self.netlist = design if isinstance(design, FlatNetlist) else flatten(design)
        self.values: list[int] = [0] * self.netlist.n_wires
        self.cycle = 0
        self._comb_ops = [self._compile(c) for c in self.netlist.comb_cells]
        self._regs = self.netlist.reg_cells
        for reg in self._regs:
            self.values[reg.out] = reg.params.get("init", 0) & ((1 << reg.width) - 1)
        self.settle()

    # -- value access -----------------------------------------------------
    def poke(self, port: str, value: int) -> None:
        """Drive a top-level input (takes effect at the next settle)."""
        try:
            wire = self.netlist.inputs[port]
        except KeyError:
            raise KeyError(f"no input port {port!r}; has {sorted(self.netlist.inputs)}") from None
        width = self.netlist.widths[wire]
        self.values[wire] = value & ((1 << width) - 1)

    def peek(self, port: str, signed: bool = True) -> int:
        """Read a top-level output after the last settle."""
        try:
            wire = self.netlist.outputs[port]
        except KeyError:
            raise KeyError(f"no output port {port!r}; has {sorted(self.netlist.outputs)}") from None
        raw = self.values[wire]
        return _signed(raw, self.netlist.widths[wire]) if signed else raw

    # -- execution ----------------------------------------------------------
    def settle(self) -> None:
        """Propagate combinational logic (no clock edge)."""
        values = self.values
        for op in self._comb_ops:
            op(values)

    def clock_edge(self) -> None:
        """Sample all registers simultaneously, then advance the cycle."""
        values = self.values
        updates: list[tuple[int, int]] = []
        for reg in self._regs:
            en = reg.pins.get("en")
            if en is not None and values[en] == 0:
                continue
            mask = (1 << reg.width) - 1
            updates.append((reg.out, values[reg.pins["d"]] & mask))
        for out, val in updates:
            values[out] = val
        self.cycle += 1

    def step(self, n: int = 1) -> None:
        """``n`` full cycles: settle, clock, and settle the new state."""
        for _ in range(n):
            self.settle()
            self.clock_edge()
        self.settle()

    def run(self, stimulus: Mapping[int, Mapping[str, int]], cycles: int) -> dict[str, list[int]]:
        """Drive per-cycle pokes and record every output each cycle.

        ``stimulus[t]`` maps port names to values driven *during* cycle ``t``.
        Returns per-port traces of the settled value at each cycle (before the
        clock edge).
        """
        traces: dict[str, list[int]] = {name: [] for name in self.netlist.outputs}
        for t in range(cycles):
            for port, value in stimulus.get(t, {}).items():
                self.poke(port, value)
            self.settle()
            for name in traces:
                traces[name].append(self.peek(name))
            self.clock_edge()
        self.settle()
        return traces

    # -- compilation ----------------------------------------------------------
    def _compile(self, cell: FlatCell) -> Callable[[list[int]], None]:
        """Build a closure evaluating one combinational cell."""
        kind = cell.kind
        out = cell.out
        mask = (1 << cell.width) - 1
        width = cell.width
        if kind is CellKind.CONST:
            value = cell.params["value"] & mask

            def op(values: list[int], out=out, value=value) -> None:
                values[out] = value

            return op
        pins = cell.pins
        if kind in (CellKind.ADD, CellKind.SUB, CellKind.MUL):
            a, b = pins["a"], pins["b"]
            wa = width  # operands normalized to out width for signed math

            if kind is CellKind.ADD:
                def op(values, out=out, a=a, b=b, mask=mask) -> None:
                    values[out] = (values[a] + values[b]) & mask
            elif kind is CellKind.SUB:
                def op(values, out=out, a=a, b=b, mask=mask) -> None:
                    values[out] = (values[a] - values[b]) & mask
            else:
                def op(values, out=out, a=a, b=b, mask=mask, w=wa) -> None:
                    values[out] = (_signed(values[a], w) * _signed(values[b], w)) & mask

            return op
        if kind is CellKind.MUX:
            sel, a, b = pins["sel"], pins["a"], pins["b"]

            def op(values, out=out, sel=sel, a=a, b=b) -> None:
                values[out] = values[a] if values[sel] else values[b]

            return op
        if kind in (CellKind.EQ, CellKind.NEQ, CellKind.LT):
            a, b = pins["a"], pins["b"]
            if kind is CellKind.EQ:
                def op(values, out=out, a=a, b=b) -> None:
                    values[out] = 1 if values[a] == values[b] else 0
            elif kind is CellKind.NEQ:
                def op(values, out=out, a=a, b=b) -> None:
                    values[out] = 1 if values[a] != values[b] else 0
            else:
                wa = width

                def op(values, out=out, a=a, b=b) -> None:
                    values[out] = 1 if values[a] < values[b] else 0

            return op
        if kind is CellKind.AND:
            a, b = pins["a"], pins["b"]

            def op(values, out=out, a=a, b=b) -> None:
                values[out] = 1 if (values[a] and values[b]) else 0

            return op
        if kind is CellKind.OR:
            a, b = pins["a"], pins["b"]

            def op(values, out=out, a=a, b=b) -> None:
                values[out] = 1 if (values[a] or values[b]) else 0

            return op
        if kind is CellKind.NOT:
            a = pins["a"]

            def op(values, out=out, a=a) -> None:
                values[out] = 0 if values[a] else 1

            return op
        raise NotImplementedError(f"no simulation semantics for {kind}")
