"""End-to-end functional execution of generated accelerators.

The harness closes the loop the paper validates with VCS simulation: generate
the hardware, derive the stage schedules from the STT, drive the netlist
cycle by cycle, and reconstruct the output tensor — which must match the
loop-nest reference exactly.

Because the schedules come from the same reuse analysis as the hardware,
a passing run certifies the *entire* pipeline: classification, template
selection, interconnect wiring, controller phasing and the simulator.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.dataflow import DataflowSpec
from repro.hw.generator import AcceleratorDesign, AcceleratorGenerator
from repro.hw.memory import Scratchpad
from repro.sim.engine import Simulator
from repro.sim.schedule import build_stage_schedule

__all__ = ["FunctionalHarness", "run_functional", "verify_functional"]


class FunctionalHarness:
    """Run a generated accelerator on concrete tensors.

    Usage::

        harness = FunctionalHarness(spec, rows=4, cols=4)
        out = harness.run(inputs)              # numpy array
        np.testing.assert_array_equal(out, spec.statement.reference(inputs))
    """

    def __init__(
        self,
        spec: DataflowSpec,
        rows: int,
        cols: int,
        width: int = 32,
        tile: dict[str, int] | None = None,
        design: AcceleratorDesign | None = None,
    ):
        self.spec = spec
        self.design = design or AcceleratorGenerator(
            spec, rows, cols, width=width, tile=tile
        ).generate()
        self.cycles_run = 0

    def run(self, inputs: Mapping[str, np.ndarray]) -> np.ndarray:
        """Execute every stage and return the reconstructed output tensor."""
        design = self.design
        plan = design.plan
        timing = plan.timing
        scratchpad = Scratchpad(self.spec, inputs)
        sim = Simulator(design.top)
        self.cycles_run = 0

        for stage in plan.stages():
            sched = build_stage_schedule(plan, design.info, scratchpad, stage)
            per_cycle_collect: dict[int, list[tuple[str, tuple[int, ...]]]] = {}
            for cyc, port, index in sched.collections:
                per_cycle_collect.setdefault(cyc, []).append((port, index))
            for cyc in range(timing.total):
                injections = sched.injections.get(cyc, {})
                for port in sched.data_ports:
                    sim.poke(port, injections.get(port, 0))
                sim.settle()
                assert sim.peek("cycle", signed=False) == cyc, (
                    "controller out of sync with the stage plan"
                )
                for port, index in per_cycle_collect.get(cyc, ()):
                    scratchpad.accumulate(index, sim.peek(port))
                sim.clock_edge()
                self.cycles_run += 1
        return scratchpad.output

    def check(self, inputs: Mapping[str, np.ndarray] | None = None, seed: int = 0) -> np.ndarray:
        """Run on (random) inputs and assert equality with the reference.

        Returns the output tensor for further inspection.
        """
        stmt = self.spec.statement
        if inputs is None:
            inputs = stmt.random_inputs(np.random.default_rng(seed))
        got = self.run(inputs)
        expected = stmt.reference(inputs)
        np.testing.assert_array_equal(
            got,
            expected,
            err_msg=f"functional mismatch for dataflow {self.spec.name}",
        )
        return got


def run_functional(
    spec: DataflowSpec,
    rows: int,
    cols: int,
    inputs: Mapping[str, np.ndarray] | None = None,
    width: int = 32,
    tile: dict[str, int] | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Convenience wrapper: generate, simulate, verify against the reference."""
    return FunctionalHarness(spec, rows, cols, width=width, tile=tile).check(
        inputs, seed=seed
    )


def verify_functional(
    spec: DataflowSpec,
    rows: int,
    cols: int,
    *,
    width: int = 32,
    tile: dict[str, int] | None = None,
    seed: int = 0,
) -> dict[str, int]:
    """Run a functional verification and return a JSON-safe summary.

    This is the transport-friendly face of :func:`run_functional` used by the
    ``sim`` evaluator backend: instead of the raw output tensor it returns
    ``{"cycles_run", "elements", "output_checksum"}``, which is what the memo
    cache persists so repeated ``verify`` runs are skipped entirely.
    """
    harness = FunctionalHarness(spec, rows, cols, width=width, tile=tile)
    out = harness.check(seed=seed)
    return {
        "cycles_run": int(harness.cycles_run),
        "elements": int(out.size),
        "output_checksum": int(out.sum()),
    }
