"""Injection/collection schedules derived from the STT mapping.

For every tile-local iteration point the stage plan gives the PE coordinate
and compute cycle; from the tensor dataflows we derive

- *injections*: which array input port must carry which tensor element at
  which cycle (walking systolic reuse lines back to their boundary entry,
  grouping multicast lines, staging stationary loads), and
- *collections*: which output port holds which output element at which cycle
  (systolic exits, reduction-tree roots, accumulators, drain chains).

Reuse consistency is checked on the fly: if two iteration points demand
different values on the same (port, cycle), the dataflow analysis and the
hardware wiring disagree — that assertion firing means a genuine bug, so it
is a ``ScheduleConflict`` rather than a silent overwrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataflow import DataflowSpec, DataflowType
from repro.hw import array as hwports
from repro.hw.array import ArrayInfo
from repro.hw.geometry import cross
from repro.hw.memory import Scratchpad
from repro.hw.plan import Stage, StagePlan

__all__ = ["StageSchedule", "ScheduleConflict", "build_stage_schedule"]


class ScheduleConflict(ValueError):
    """Two iteration points demanded different values on one (port, cycle)."""


@dataclass
class StageSchedule:
    """Everything the simulator needs to run one stage."""

    stage: Stage
    #: cycle (stage-local) -> port -> value.
    injections: dict[int, dict[str, int]] = field(default_factory=dict)
    #: (cycle, port, output tensor index) triples, deduplicated.
    collections: list[tuple[int, str, tuple[int, ...]]] = field(default_factory=list)
    #: every data input port this design has (driven to 0 when unscheduled).
    data_ports: tuple[str, ...] = ()

    def inject(self, cycle: int, port: str, value: int) -> None:
        if cycle < 0:
            raise ScheduleConflict(f"injection on {port} at negative cycle {cycle}")
        row = self.injections.setdefault(cycle, {})
        if port in row and row[port] != value:
            raise ScheduleConflict(
                f"port {port} cycle {cycle}: {row[port]} vs {value} — reuse "
                "analysis and wiring disagree"
            )
        row[port] = value


def _data_input_ports(info: ArrayInfo, spec: DataflowSpec) -> tuple[str, ...]:
    """All non-control input ports of the array (= of the top module)."""
    grid = info.grid
    ports: list[str] = []
    for flow in spec.input_flows:
        t = flow.tensor_name
        w = info.tensor(t)
        kind = flow.kind
        if kind is DataflowType.UNICAST:
            ports += [hwports.in_port(t, *p) for p in grid.points()]
        elif kind is DataflowType.SYSTOLIC:
            s = w.sy_space
            ports += [
                hwports.in_port(t, *p) for p in grid.points() if grid.is_entry(p, s)
            ]
        elif kind is DataflowType.MULTICAST:
            ports += [hwports.bus_port(t, i) for i in w.line_map.values()]
        elif kind in (DataflowType.BROADCAST, DataflowType.FULL_REUSE):
            ports.append(hwports.bus_port(t))
        elif kind is DataflowType.MULTICAST_STATIONARY:
            ports += [hwports.bus_port(t, i) for i in w.line_map.values()]
        elif kind is DataflowType.STATIONARY:
            ports += [hwports.load_port(t, c) for c in range(grid.cols)]
        elif kind is DataflowType.SYSTOLIC_MULTICAST:
            for chain in grid.line_chain(w.line_dir, w.sy_space):
                ports.append(hwports.line_in_port(t, w.line_map[chain[0]]))
        else:  # pragma: no cover
            raise AssertionError(kind)
    return tuple(ports)


def build_stage_schedule(
    plan: StagePlan,
    info: ArrayInfo,
    scratchpad: Scratchpad,
    stage: Stage,
) -> StageSchedule:
    """Compute the full injection/collection schedule of one stage."""
    spec = plan.spec
    grid = plan.grid
    timing = plan.timing
    sel_extents = {n: spec.selected_space[n].extent for n in spec.selected}
    sched = StageSchedule(stage=stage, data_ports=_data_input_ports(info, spec))

    # Stage-held values (stationary-like tensors) are gathered first, then
    # turned into load-phase injections.
    held_per_pe: dict[str, dict[tuple[int, int], int]] = {}
    held_per_line: dict[str, dict[int, int]] = {}
    held_scalar: dict[str, int] = {}
    stationary_out: dict[tuple[int, int], tuple[int, ...]] = {}

    # Precompute chain positions for systolic+multicast tensors.
    chain_pos: dict[str, dict[int, tuple[int, int]]] = {}
    for flow in spec.flows:
        if flow.kind is DataflowType.SYSTOLIC_MULTICAST:
            w = info.tensor(flow.tensor_name)
            positions: dict[int, tuple[int, int]] = {}
            for chain in grid.line_chain(w.line_dir, w.sy_space):
                for pos, raw in enumerate(chain):
                    positions[raw] = (pos, chain[0])  # (hops from entry, entry raw)
            chain_pos[flow.tensor_name] = positions

    seen_collections: dict[tuple[int, str], tuple[int, ...]] = {}

    def collect(cycle: int, port: str, index: tuple[int, ...]) -> None:
        key = (cycle, port)
        if key in seen_collections:
            if seen_collections[key] != index:
                raise ScheduleConflict(
                    f"collection {port}@{cycle}: elements {seen_collections[key]} "
                    f"vs {index}"
                )
            return
        seen_collections[key] = index
        sched.collections.append((cycle, port, index))

    for local in plan.local_points():
        # Skip padding points of partial boundary tiles.
        in_range = all(
            stage.tile_origin[name] + off < sel_extents[name]
            for name, off in zip(spec.selected, local)
        )
        if not in_range:
            continue
        p, cycle = plan.place(local)
        full_point = stage.global_point(spec, local)

        for flow in spec.input_flows:
            t = flow.tensor_name
            value = scratchpad.read(t, flow.access.index_of(full_point))
            kind = flow.kind
            w = info.tensor(t)
            if kind is DataflowType.UNICAST:
                sched.inject(cycle, hwports.in_port(t, *p), value)
            elif kind is DataflowType.SYSTOLIC:
                entry, steps = grid.entry_point(p, w.sy_space)
                sched.inject(cycle - steps * w.sy_delay, hwports.in_port(t, *entry), value)
            elif kind is DataflowType.MULTICAST:
                line = w.line_map[cross(p, w.line_dir)]
                sched.inject(cycle, hwports.bus_port(t, line), value)
            elif kind is DataflowType.BROADCAST:
                sched.inject(cycle, hwports.bus_port(t), value)
            elif kind is DataflowType.STATIONARY:
                _hold(held_per_pe.setdefault(t, {}), p, value, t)
            elif kind is DataflowType.MULTICAST_STATIONARY:
                line = w.line_map[cross(p, w.line_dir)]
                _hold(held_per_line.setdefault(t, {}), line, value, t)
            elif kind is DataflowType.FULL_REUSE:
                if t in held_scalar and held_scalar[t] != value:
                    raise ScheduleConflict(f"full-reuse tensor {t} value conflict")
                held_scalar[t] = value
            elif kind is DataflowType.SYSTOLIC_MULTICAST:
                raw = cross(p, w.line_dir)
                pos, entry_raw = chain_pos[t][raw]
                sched.inject(
                    cycle - pos * w.sy_delay,
                    hwports.line_in_port(t, w.line_map[entry_raw]),
                    value,
                )
            else:  # pragma: no cover
                raise AssertionError(kind)

        out_flow = spec.output_flow
        t = out_flow.tensor_name
        w = info.tensor(t)
        out_index = out_flow.access.index_of(full_point)
        kind = out_flow.kind
        if kind is DataflowType.UNICAST:
            collect(cycle + 1, hwports.out_port(t, *p), out_index)
        elif kind is DataflowType.SYSTOLIC:
            exit_pe, steps = grid.exit_point(p, w.sy_space)
            collect(cycle + steps * w.sy_delay + 1, hwports.out_port(t, *exit_pe), out_index)
        elif kind is DataflowType.MULTICAST:
            line = w.line_map[cross(p, w.line_dir)]
            collect(cycle + 1, hwports.sum_port(t, line), out_index)
        elif kind is DataflowType.BROADCAST:
            collect(cycle + 1, hwports.sum_port(t), out_index)
        elif kind is DataflowType.STATIONARY:
            _hold(stationary_out, p, out_index, t)
        elif kind is DataflowType.MULTICAST_STATIONARY:
            line = w.line_map[cross(p, w.line_dir)]
            collect(timing.exec_end - 1, hwports.acc_port(t, line), out_index)
        elif kind is DataflowType.FULL_REUSE:
            collect(timing.exec_end - 1, hwports.acc_port(t), out_index)
        elif kind is DataflowType.SYSTOLIC_MULTICAST:
            raw = cross(p, w.line_dir)
            pos, entry_raw = chain_pos[t][raw]
            chain = next(
                c
                for c in grid.line_chain(w.line_dir, w.sy_space)
                if c[0] == entry_raw
            )
            exit_raw = chain[-1]
            exit_pos = len(chain) - 1
            collect(
                cycle + (exit_pos - pos) * w.sy_delay,
                hwports.chain_port(t, w.line_map[exit_raw]),
                out_index,
            )
        else:  # pragma: no cover
            raise AssertionError(kind)

    # ---- load-phase injections for stage-held tensors ----------------------
    for flow in spec.input_flows:
        t = flow.tensor_name
        if flow.kind is DataflowType.STATIONARY:
            values = held_per_pe.get(t, {})
            for c in range(grid.cols):
                for load_cycle in range(grid.rows):
                    target_row = grid.rows - 1 - load_cycle
                    sched.inject(
                        load_cycle, hwports.load_port(t, c), values.get((target_row, c), 0)
                    )
        elif flow.kind is DataflowType.MULTICAST_STATIONARY:
            w = info.tensor(t)
            values = held_per_line.get(t, {})
            for line in set(w.line_map.values()):
                for load_cycle in range(timing.load_len):
                    sched.inject(
                        load_cycle, hwports.bus_port(t, line), values.get(line, 0)
                    )
        elif flow.kind is DataflowType.FULL_REUSE:
            for load_cycle in range(timing.load_len):
                sched.inject(load_cycle, hwports.bus_port(t), held_scalar.get(t, 0))

    # ---- drain-phase collections for stationary outputs --------------------
    if spec.output_flow.kind is DataflowType.STATIONARY:
        t = spec.output_flow.tensor_name
        for (r, c), index in stationary_out.items():
            collect(timing.drain_start + (grid.rows - 1 - r), hwports.drain_port(t, c), index)

    sched.collections.sort()
    return sched


def _hold(store: dict, key, value, tensor: str) -> None:
    if key in store and store[key] != value:
        raise ScheduleConflict(f"stationary tensor {tensor} conflict at {key}")
    store[key] = value
