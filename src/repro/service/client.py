"""The HTTP :class:`SessionProtocol` implementation.

:class:`RemoteSession` points the whole session surface at a running
``repro serve`` process: requests are built client-side by the shared
:class:`~repro.api.protocol.SessionBase` machinery (so they are bit-identical
to what a :class:`~repro.api.session.LocalSession` would evaluate), travel as
the versioned ``DesignRequest`` JSON, and come back as ``EvalResult`` —
including memoization metadata (``cached=True`` hits are the *server's* memo
hits; location transparency includes the cache).

Error behavior mirrors the local session: unknown backends raise
``LookupError``, bad arguments ``ValueError``/``TypeError``, and a
wire-format mismatch :class:`~repro.api.types.SchemaVersionError` — the
version is negotiated once against ``GET /v1/healthz`` and asserted on every
request via the ``X-Repro-Schema`` header.

Usage::

    from repro.service import RemoteSession

    with RemoteSession("http://127.0.0.1:8321") as session:
        session.evaluate("gemm", "MNK-SST")           # same calls as local
        session.evaluate_many([...])
        session.explore("gemm").pareto()              # NDJSON-streamed
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Mapping, Sequence
from urllib.parse import urlsplit

from repro.api.protocol import SessionBase
from repro.api.types import SCHEMA_VERSION, DesignRequest, EvalResult, SchemaVersionError
from repro.cost.model import CostParams
from repro.explore.engine import DesignPoint, EvaluationResult, EvaluationStats
from repro.ir.einsum import Statement
from repro.perf.model import ArrayConfig, PerfResult
from repro.service import wire

__all__ = ["RemoteSession"]


class RemoteSession(SessionBase):
    """Evaluate against a remote ``repro serve`` — same protocol, other machine.

    ``array``/``width``/``cost_params``/``sram_words`` are the *client-side*
    request-building defaults (every request is self-contained, so the
    server's own platform defaults never leak in); ``timeout`` bounds each
    HTTP call.  The connection is persistent and reconnects transparently if
    the server recycled it.

    Transport failures — connection refused/reset, a socket that died
    mid-handshake — are retried up to ``retries`` times: the first retry is
    immediate (the common recycled-keep-alive case costs nothing), later
    ones sleep a jittered exponential backoff starting at ``backoff``
    seconds, so a briefly restarting server is ridden out instead of
    surfacing as a hard error.  HTTP *status* errors (4xx/5xx) are never
    retried — the server answered; retrying would just repeat the answer.
    Evaluation requests are idempotent (re-evaluating returns the same
    memoized answer), which is what makes retrying those POSTs safe; job
    submission is the exception, and :meth:`submit_job` takes a
    ``submit_key`` so a retried submit cannot enqueue a duplicate sweep.
    """

    #: Transport-level failures worth a reconnect + retry.  HTTPException
    #: covers a keep-alive socket the server closed mid-response
    #: (BadStatusLine & friends); OSError covers refused/reset/timeout.
    _RETRYABLE = (ConnectionError, http.client.HTTPException, OSError)

    def __init__(
        self,
        url: str,
        *,
        array: ArrayConfig | None = None,
        width: int = 16,
        cost_params: CostParams | None = None,
        sram_words: int = 32768,
        timeout: float = 300.0,
        retries: int = 2,
        backoff: float = 0.1,
    ):
        super().__init__(
            array, width=width, cost_params=cost_params, sram_words=sram_words
        )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
        if parts.scheme != "http":
            raise ValueError(f"RemoteSession speaks plain http, got {url!r}")
        if not parts.hostname:
            raise ValueError(f"no host in service url {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.url = f"http://{self.host}:{self.port}"
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._conn: http.client.HTTPConnection | None = None
        self._negotiated = False

    # -- transport -------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _reset_connection(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _roundtrip(
        self, method: str, path: str, payload: Any | None
    ) -> http.client.HTTPResponse:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {
            "Content-Type": "application/json",
            wire.SCHEMA_HEADER: str(SCHEMA_VERSION),
        }
        for attempt in range(self.retries + 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                return conn.getresponse()
            except self._RETRYABLE:
                self._reset_connection()
                if attempt >= self.retries:
                    raise
                if attempt > 0:
                    # attempt 0 was probably a recycled keep-alive socket:
                    # rebuild and go again immediately.  From attempt 1 on,
                    # the server is genuinely struggling — back off
                    # exponentially with jitter so a fleet of clients does
                    # not hammer a restarting server in lockstep.
                    delay = self.backoff * (2 ** (attempt - 1))
                    time.sleep(delay * random.uniform(0.5, 1.5))
        raise AssertionError("unreachable")  # pragma: no cover

    def _call(self, method: str, path: str, payload: Any | None = None) -> Any:
        """One JSON round-trip; server errors re-raise as local exceptions."""
        self._handshake()
        response = self._roundtrip(method, path, payload)
        data = response.read()
        parsed = json.loads(data) if data else {}
        if response.status >= 400:
            wire.raise_remote_error(parsed, response.status)
        return parsed

    def _stream(
        self, path: str, payload: Any, method: str = "POST"
    ) -> http.client.HTTPResponse:
        """Open an NDJSON stream; the caller must read it to the end."""
        self._handshake()
        response = self._roundtrip(method, path, payload)
        if response.status >= 400:
            parsed = json.loads(response.read() or b"{}")
            wire.raise_remote_error(parsed, response.status)
        return response

    def _handshake(self) -> None:
        """Negotiate the wire format once (GET /v1/healthz)."""
        if self._negotiated:
            return
        self._negotiated = True  # even a failed handshake should not loop
        try:
            response = self._roundtrip("GET", "/v1/healthz", None)
            info = json.loads(response.read() or b"{}")
        except (ConnectionError, OSError) as exc:
            self._negotiated = False
            raise ConnectionError(
                f"no evaluation service reachable at {self.url}: {exc}"
            ) from exc
        server_version = info.get("schema_version")
        if server_version != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"server at {self.url} speaks schema_version {server_version!r}, "
                f"this client speaks {SCHEMA_VERSION}"
            )

    def close(self) -> None:
        self._reset_connection()

    def __exit__(self, *exc_info) -> None:
        try:
            self.flush()
        except (ConnectionError, OSError):  # the server may already be gone
            pass
        self.close()

    # -- SessionProtocol -------------------------------------------------
    def evaluate(
        self,
        request: DesignRequest | str,
        dataflow: str | None = None,
        **request_kwargs,
    ) -> EvalResult:
        """Evaluate one design on the server (its memo cache included)."""
        request = self._coerce_request(request, dataflow, request_kwargs)
        payload = self._call("POST", "/v1/evaluate", request.to_dict())
        return EvalResult.from_dict(payload)

    def evaluate_many(
        self, requests: Sequence[DesignRequest | Mapping[str, Any]]
    ) -> list[EvalResult]:
        """Batch-evaluate on the server; one round-trip for the whole batch."""
        reqs = self._coerce_requests(requests)
        payload = self._call(
            "POST", "/v1/evaluate_many", {"requests": [r.to_dict() for r in reqs]}
        )
        return [EvalResult.from_dict(item) for item in payload["results"]]

    def explore(
        self,
        workload: Statement | str,
        *,
        array: ArrayConfig | None = None,
        extents: Mapping[str, int] | None = None,
        **engine_options,
    ) -> EvaluationResult:
        """Run the design-space pipeline remotely, streamed as NDJSON.

        Points arrive (and are reconstructed into real
        :class:`~repro.explore.engine.DesignPoint` objects) as the server
        produces them; the returned :class:`EvaluationResult` is
        behaviorally identical to the local one — ``best()``, ``pareto()``,
        ``failure_report()`` and the stats all work.
        """
        payload = wire.statement_payload(workload, extents)
        statement = (
            workload if isinstance(workload, Statement)
            else wire.instantiate_statement(payload)
        )
        if engine_options:
            payload["options"] = dict(engine_options)
        # always ship the platform: like a LocalSession, *this* session's
        # array governs when the call carries none — never the server's
        payload["array"] = wire.array_to_dict(array or self.array)
        response = self._stream("/v1/explore", payload)
        points: list[DesignPoint] = []
        failures: list[DesignPoint] = []
        stats = EvaluationStats()
        result_array = array or self.array
        while True:
            line = response.readline()
            if not line:
                break
            row = json.loads(line)
            kind = row.get("row")
            if kind == "start":
                if row.get("schema_version") != SCHEMA_VERSION:
                    raise SchemaVersionError(
                        f"stream schema_version {row.get('schema_version')!r} "
                        f"!= {SCHEMA_VERSION}"
                    )
                result_array = wire.array_from_dict(row["array"])
            elif kind in ("point", "failure"):
                point = wire.row_to_point(row, statement)
                (points if point.ok else failures).append(point)
            elif kind == "stats":
                stats = wire.row_to_stats(row)
            elif kind == "error":
                raise RuntimeError(
                    f"remote explore of {statement.name!r} failed: {row['reason']}"
                )
        return EvaluationResult(
            workload=statement.name,
            array=result_array,
            points=points,
            failures=failures,
            stats=stats,
        )

    def sweep(
        self,
        workloads: Sequence[Statement | str],
        configs: Sequence[ArrayConfig] | None = None,
        **engine_options,
    ) -> list[EvaluationResult]:
        """Pipeline over ``workloads`` x ``configs``, configs-major (like local)."""
        config_list: Sequence[ArrayConfig | None] = (
            list(configs) if configs is not None else [None]
        )
        results = []
        for config in config_list:
            for workload in workloads:
                results.append(self.explore(workload, array=config, **engine_options))
        return results

    def evaluate_names(
        self,
        statement: Statement | str,
        names: Sequence[str],
        *,
        bound: int = 1,
        limit: int = 24,
    ) -> list[tuple[str, PerfResult]]:
        """Paper dataflow names, best STT per name, scored server-side."""
        payload = wire.statement_payload(statement)
        payload.update(
            names=list(names),
            bound=bound,
            limit=limit,
            # this session's platform, like the local engine would use
            array=wire.array_to_dict(self.array),
        )
        response = self._call("POST", "/v1/evaluate_names", payload)
        return [
            (name, PerfResult(**fields)) for name, fields in response["results"]
        ]

    def cache_stats(self) -> dict[str, int]:
        """The *server's* memo-cache counters."""
        return self._call("GET", "/v1/cache/stats")

    def cache_pull(self) -> dict[str, dict]:
        """Download the server's full memo-cache contents (``GET /v1/cache``).

        The payload round-trips through
        :meth:`repro.explore.engine.MemoCache.from_payload` /
        :meth:`~repro.explore.engine.MemoCache.merge_from` — the live
        alternative to shipping cache files for ``repro cache merge``.
        """
        return self._call("GET", "/v1/cache")["sections"]

    def flush(self) -> None:
        """Ask the server to persist its memo cache now."""
        self._call("POST", "/v1/cache/flush")

    # -- the job API ------------------------------------------------------
    def submit_job(
        self,
        workloads: Sequence[str | Mapping[str, Any]],
        *,
        configs: Sequence[ArrayConfig] | None = None,
        extents: Mapping[str, int] | None = None,
        include_rows: bool = False,
        stream_rows: bool = False,
        submit_key: str | None = None,
        **engine_options,
    ) -> dict[str, Any]:
        """Queue a long sweep server-side; returns the job snapshot (id+status).

        ``workloads`` entries are Table II names, or
        ``{"workload": name, "extents": {...}}`` payloads when items need
        per-workload problem sizes (how a coordinator packs several sweep
        items into one job).  ``stream_rows=True`` asks the server to keep
        every evaluated design in the job's incremental row log, served by
        :meth:`poll_job` ``since=`` cursors and :meth:`iter_job_rows` *while
        the job runs*; ``include_rows=True`` additionally embeds the full row
        list in each finished record (one self-contained terminal snapshot,
        at the cost of re-shipping every row).  ``submit_key`` makes the
        submit idempotent: a retry that lost the response (the one POST on
        this surface that is *not* naturally idempotent) gets the original
        job back instead of enqueueing a duplicate.  A full or disabled job
        queue raises :class:`~repro.service.wire.ServiceBusyError` (503).
        """
        payload: dict[str, Any] = {
            "workloads": [
                w if isinstance(w, str) else dict(w) for w in workloads
            ]
        }
        if configs:
            payload["configs"] = [wire.array_to_dict(c) for c in configs]
        if extents:
            payload["extents"] = dict(extents)
        if include_rows:
            payload["include_rows"] = True
        if stream_rows:
            payload["stream_rows"] = True
        if submit_key is not None:
            payload["submit_key"] = submit_key
        if engine_options:
            payload["options"] = dict(engine_options)
        return self._call("POST", "/v1/jobs", payload)["job"]

    def job(self, job_id: str) -> dict[str, Any]:
        """Poll one job (status, and results once done)."""
        return self._call("GET", f"/v1/jobs/{job_id}")["job"]

    def poll_job(self, job_id: str, *, since: int | None = None) -> dict[str, Any]:
        """Poll one job, optionally paging its row log with a ``since`` cursor.

        With ``since=N`` the snapshot carries only the rows produced after
        cursor ``N`` (``rows``), plus ``rows_total`` — the cursor to pass
        next time.  A cursor the server does not recognize as a prefix of the
        job's log (``since`` beyond the end — e.g. after the job was re-run)
        comes back as the **full** row list with ``cursor_reset: true``: drop
        the rows folded so far and rebuild from this snapshot.  Requires the
        job to have been submitted with ``stream_rows`` or ``include_rows``.
        """
        path = f"/v1/jobs/{job_id}"
        if since is not None:
            path += f"?since={int(since)}"
        return self._call("GET", path)["job"]

    def iter_job_rows(self, job_id: str, *, since: int = 0):
        """Stream a job's rows live over ``GET /v1/jobs/<id>/rows`` (NDJSON).

        Yields every framing and data row as a dict, in wire order: one
        ``{"row": "start", ...}`` (with ``cursor_reset`` when the ``since``
        cursor did not survive), then each ``point``/``failure`` row — with
        its job-global ``seq`` and ``item`` index — *as the server produces
        it* (long-poll: the stream stays open while the job runs), then one
        ``{"row": "end", "status": ..., "rows_total": ...}`` when the job
        reaches a terminal state.  A stale cursor detected only once the job
        ends travels as a mid-stream ``{"row": "reset"}`` frame: discard
        rows seen so far, the full log replays after it.  The CLI front door
        is ``repro client tail-job``.
        """
        response = self._stream(
            f"/v1/jobs/{job_id}/rows?since={int(since)}", None, method="GET"
        )
        while True:
            line = response.readline()
            if not line:
                break
            yield json.loads(line)

    def jobs(self) -> list[dict[str, Any]]:
        """All jobs the server still remembers."""
        return self._call("GET", "/v1/jobs")["jobs"]

    def cancel_job(self, job_id: str) -> dict[str, Any]:
        """Cancel a job (queued: immediate; running: between workloads)."""
        return self._call("DELETE", f"/v1/jobs/{job_id}")["job"]

    def __repr__(self) -> str:
        return (
            f"RemoteSession({self.url}, defaults "
            f"{self.array.rows}x{self.array.cols}, width={self.width})"
        )
