"""The HTTP :class:`SessionProtocol` implementation.

:class:`RemoteSession` points the whole session surface at a running
``repro serve`` process: requests are built client-side by the shared
:class:`~repro.api.protocol.SessionBase` machinery (so they are bit-identical
to what a :class:`~repro.api.session.LocalSession` would evaluate), travel as
the versioned ``DesignRequest`` JSON, and come back as ``EvalResult`` —
including memoization metadata (``cached=True`` hits are the *server's* memo
hits; location transparency includes the cache).

Error behavior mirrors the local session: unknown backends raise
``LookupError``, bad arguments ``ValueError``/``TypeError``, and a
wire-format mismatch :class:`~repro.api.types.SchemaVersionError` — the
version is negotiated once against ``GET /v1/healthz`` and asserted on every
request via the ``X-Repro-Schema`` header.

Usage::

    from repro.service import RemoteSession

    with RemoteSession("http://127.0.0.1:8321") as session:
        session.evaluate("gemm", "MNK-SST")           # same calls as local
        session.evaluate_many([...])
        session.explore("gemm").pareto()              # NDJSON-streamed
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import time
from typing import Any, AsyncIterator, Mapping, Sequence
from urllib.parse import urlsplit

from repro.api.protocol import SessionBase
from repro.api.types import SCHEMA_VERSION, DesignRequest, EvalResult, SchemaVersionError
from repro.cost.model import CostParams
from repro.explore.engine import DesignPoint, EvaluationResult, EvaluationStats
from repro.ir.einsum import Statement
from repro.perf.model import ArrayConfig, PerfResult
from repro.service import wire

__all__ = ["AsyncRemoteSession", "RemoteSession"]


def _parse_http_url(url: str) -> tuple[str, int]:
    """``http://host[:port]`` (scheme optional) -> ``(host, port)``."""
    parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
    if parts.scheme != "http":
        raise ValueError(f"RemoteSession speaks plain http, got {url!r}")
    if not parts.hostname:
        raise ValueError(f"no host in service url {url!r}")
    return parts.hostname, parts.port or 80


class RemoteSession(SessionBase):
    """Evaluate against a remote ``repro serve`` — same protocol, other machine.

    ``array``/``width``/``cost_params``/``sram_words`` are the *client-side*
    request-building defaults (every request is self-contained, so the
    server's own platform defaults never leak in); ``timeout`` bounds each
    HTTP call.  The connection is persistent and reconnects transparently if
    the server recycled it.

    Transport failures — connection refused/reset, a socket that died
    mid-handshake — are retried up to ``retries`` times: the first retry is
    immediate (the common recycled-keep-alive case costs nothing), later
    ones sleep a jittered exponential backoff starting at ``backoff``
    seconds, so a briefly restarting server is ridden out instead of
    surfacing as a hard error.  HTTP *status* errors (4xx/5xx) are never
    retried — the server answered; retrying would just repeat the answer.
    Evaluation requests are idempotent (re-evaluating returns the same
    memoized answer), which is what makes retrying those POSTs safe; job
    submission is the exception, and :meth:`submit_job` takes a
    ``submit_key`` so a retried submit cannot enqueue a duplicate sweep.
    """

    #: Transport-level failures worth a reconnect + retry.  HTTPException
    #: covers a keep-alive socket the server closed mid-response
    #: (BadStatusLine & friends); OSError covers refused/reset/timeout.
    _RETRYABLE = (ConnectionError, http.client.HTTPException, OSError)

    def __init__(
        self,
        url: str,
        *,
        array: ArrayConfig | None = None,
        width: int = 16,
        cost_params: CostParams | None = None,
        sram_words: int = 32768,
        timeout: float = 300.0,
        retries: int = 2,
        backoff: float = 0.1,
    ):
        super().__init__(
            array, width=width, cost_params=cost_params, sram_words=sram_words
        )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self.host, self.port = _parse_http_url(url)
        self.url = f"http://{self.host}:{self.port}"
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._conn: http.client.HTTPConnection | None = None
        self._negotiated = False

    # -- transport -------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _reset_connection(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _roundtrip(
        self, method: str, path: str, payload: Any | None
    ) -> http.client.HTTPResponse:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {
            "Content-Type": "application/json",
            wire.SCHEMA_HEADER: str(SCHEMA_VERSION),
        }
        for attempt in range(self.retries + 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                return conn.getresponse()
            except self._RETRYABLE:
                self._reset_connection()
                if attempt >= self.retries:
                    raise
                if attempt > 0:
                    # attempt 0 was probably a recycled keep-alive socket:
                    # rebuild and go again immediately.  From attempt 1 on,
                    # the server is genuinely struggling — back off
                    # exponentially with jitter so a fleet of clients does
                    # not hammer a restarting server in lockstep.
                    delay = self.backoff * (2 ** (attempt - 1))
                    time.sleep(delay * random.uniform(0.5, 1.5))
        raise AssertionError("unreachable")  # pragma: no cover

    def _call(self, method: str, path: str, payload: Any | None = None) -> Any:
        """One JSON round-trip; server errors re-raise as local exceptions."""
        self._handshake()
        response = self._roundtrip(method, path, payload)
        data = response.read()
        parsed = json.loads(data) if data else {}
        if response.status >= 400:
            wire.raise_remote_error(parsed, response.status)
        return parsed

    def _stream(
        self, path: str, payload: Any, method: str = "POST"
    ) -> http.client.HTTPResponse:
        """Open an NDJSON stream; the caller must read it to the end."""
        self._handshake()
        response = self._roundtrip(method, path, payload)
        if response.status >= 400:
            parsed = json.loads(response.read() or b"{}")
            wire.raise_remote_error(parsed, response.status)
        return response

    def _handshake(self) -> None:
        """Negotiate the wire format once (GET /v1/healthz)."""
        if self._negotiated:
            return
        self._negotiated = True  # even a failed handshake should not loop
        try:
            response = self._roundtrip("GET", "/v1/healthz", None)
            info = json.loads(response.read() or b"{}")
        except (ConnectionError, OSError) as exc:
            self._negotiated = False
            raise ConnectionError(
                f"no evaluation service reachable at {self.url}: {exc}"
            ) from exc
        server_version = info.get("schema_version")
        if server_version != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"server at {self.url} speaks schema_version {server_version!r}, "
                f"this client speaks {SCHEMA_VERSION}"
            )

    def close(self) -> None:
        self._reset_connection()

    def __exit__(self, *exc_info) -> None:
        try:
            self.flush()
        except (ConnectionError, OSError):  # the server may already be gone
            pass
        self.close()

    # -- SessionProtocol -------------------------------------------------
    def evaluate(
        self,
        request: DesignRequest | str,
        dataflow: str | None = None,
        **request_kwargs,
    ) -> EvalResult:
        """Evaluate one design on the server (its memo cache included)."""
        request = self._coerce_request(request, dataflow, request_kwargs)
        payload = self._call("POST", "/v1/evaluate", request.to_dict())
        return EvalResult.from_dict(payload)

    def evaluate_many(
        self, requests: Sequence[DesignRequest | Mapping[str, Any]]
    ) -> list[EvalResult]:
        """Batch-evaluate on the server; one round-trip for the whole batch."""
        reqs = self._coerce_requests(requests)
        payload = self._call(
            "POST", "/v1/evaluate_many", {"requests": [r.to_dict() for r in reqs]}
        )
        return [EvalResult.from_dict(item) for item in payload["results"]]

    def explore(
        self,
        workload: Statement | str,
        *,
        array: ArrayConfig | None = None,
        extents: Mapping[str, int] | None = None,
        **engine_options,
    ) -> EvaluationResult:
        """Run the design-space pipeline remotely, streamed as NDJSON.

        Points arrive (and are reconstructed into real
        :class:`~repro.explore.engine.DesignPoint` objects) as the server
        produces them; the returned :class:`EvaluationResult` is
        behaviorally identical to the local one — ``best()``, ``pareto()``,
        ``failure_report()`` and the stats all work.
        """
        payload = wire.statement_payload(workload, extents)
        statement = (
            workload if isinstance(workload, Statement)
            else wire.instantiate_statement(payload)
        )
        if engine_options:
            payload["options"] = dict(engine_options)
        # always ship the platform: like a LocalSession, *this* session's
        # array governs when the call carries none — never the server's
        payload["array"] = wire.array_to_dict(array or self.array)
        response = self._stream("/v1/explore", payload)
        points: list[DesignPoint] = []
        failures: list[DesignPoint] = []
        stats = EvaluationStats()
        result_array = array or self.array
        while True:
            line = response.readline()
            if not line:
                break
            row = json.loads(line)
            kind = row.get("row")
            if kind == "start":
                if row.get("schema_version") != SCHEMA_VERSION:
                    raise SchemaVersionError(
                        f"stream schema_version {row.get('schema_version')!r} "
                        f"!= {SCHEMA_VERSION}"
                    )
                result_array = wire.array_from_dict(row["array"])
            elif kind in ("point", "failure"):
                point = wire.row_to_point(row, statement)
                (points if point.ok else failures).append(point)
            elif kind == "stats":
                stats = wire.row_to_stats(row)
            elif kind == "error":
                raise RuntimeError(
                    f"remote explore of {statement.name!r} failed: {row['reason']}"
                )
        return EvaluationResult(
            workload=statement.name,
            array=result_array,
            points=points,
            failures=failures,
            stats=stats,
        )

    def sweep(
        self,
        workloads: Sequence[Statement | str],
        configs: Sequence[ArrayConfig] | None = None,
        **engine_options,
    ) -> list[EvaluationResult]:
        """Pipeline over ``workloads`` x ``configs``, configs-major (like local)."""
        config_list: Sequence[ArrayConfig | None] = (
            list(configs) if configs is not None else [None]
        )
        results = []
        for config in config_list:
            for workload in workloads:
                results.append(self.explore(workload, array=config, **engine_options))
        return results

    def evaluate_names(
        self,
        statement: Statement | str,
        names: Sequence[str],
        *,
        bound: int = 1,
        limit: int = 24,
    ) -> list[tuple[str, PerfResult]]:
        """Paper dataflow names, best STT per name, scored server-side."""
        payload = wire.statement_payload(statement)
        payload.update(
            names=list(names),
            bound=bound,
            limit=limit,
            # this session's platform, like the local engine would use
            array=wire.array_to_dict(self.array),
        )
        response = self._call("POST", "/v1/evaluate_names", payload)
        return [
            (name, PerfResult(**fields)) for name, fields in response["results"]
        ]

    def cache_stats(self) -> dict[str, int]:
        """The *server's* memo-cache counters."""
        return self._call("GET", "/v1/cache/stats")

    def cache_pull(self) -> dict[str, dict]:
        """Download the server's full memo-cache contents (``GET /v1/cache``).

        The payload round-trips through
        :meth:`repro.explore.engine.MemoCache.from_payload` /
        :meth:`~repro.explore.engine.MemoCache.merge_from` — the live
        alternative to shipping cache files for ``repro cache merge``.
        """
        return self._call("GET", "/v1/cache")["sections"]

    def flush(self) -> None:
        """Ask the server to persist its memo cache now."""
        self._call("POST", "/v1/cache/flush")

    # -- the job API ------------------------------------------------------
    def submit_job(
        self,
        workloads: Sequence[str | Mapping[str, Any]],
        *,
        configs: Sequence[ArrayConfig] | None = None,
        extents: Mapping[str, int] | None = None,
        include_rows: bool = False,
        stream_rows: bool = False,
        submit_key: str | None = None,
        **engine_options,
    ) -> dict[str, Any]:
        """Queue a long sweep server-side; returns the job snapshot (id+status).

        ``workloads`` entries are Table II names, or
        ``{"workload": name, "extents": {...}}`` payloads when items need
        per-workload problem sizes (how a coordinator packs several sweep
        items into one job).  ``stream_rows=True`` asks the server to keep
        every evaluated design in the job's incremental row log, served by
        :meth:`poll_job` ``since=`` cursors and :meth:`iter_job_rows` *while
        the job runs*; ``include_rows=True`` additionally embeds the full row
        list in each finished record (one self-contained terminal snapshot,
        at the cost of re-shipping every row).  ``submit_key`` makes the
        submit idempotent: a retry that lost the response (the one POST on
        this surface that is *not* naturally idempotent) gets the original
        job back instead of enqueueing a duplicate.  A full or disabled job
        queue raises :class:`~repro.service.wire.ServiceBusyError` (503).
        """
        payload: dict[str, Any] = {
            "workloads": [
                w if isinstance(w, str) else dict(w) for w in workloads
            ]
        }
        if configs:
            payload["configs"] = [wire.array_to_dict(c) for c in configs]
        if extents:
            payload["extents"] = dict(extents)
        if include_rows:
            payload["include_rows"] = True
        if stream_rows:
            payload["stream_rows"] = True
        if submit_key is not None:
            payload["submit_key"] = submit_key
        if engine_options:
            payload["options"] = dict(engine_options)
        return self._call("POST", "/v1/jobs", payload)["job"]

    def job(self, job_id: str) -> dict[str, Any]:
        """Poll one job (status, and results once done)."""
        return self._call("GET", f"/v1/jobs/{job_id}")["job"]

    def poll_job(self, job_id: str, *, since: int | None = None) -> dict[str, Any]:
        """Poll one job, optionally paging its row log with a ``since`` cursor.

        With ``since=N`` the snapshot carries only the rows produced after
        cursor ``N`` (``rows``), plus ``rows_total`` — the cursor to pass
        next time.  A cursor the server does not recognize as a prefix of the
        job's log (``since`` beyond the end — e.g. after the job was re-run)
        comes back as the **full** row list with ``cursor_reset: true``: drop
        the rows folded so far and rebuild from this snapshot.  Requires the
        job to have been submitted with ``stream_rows`` or ``include_rows``.
        """
        path = f"/v1/jobs/{job_id}"
        if since is not None:
            path += f"?since={int(since)}"
        return self._call("GET", path)["job"]

    def iter_job_rows(
        self,
        job_id: str,
        *,
        since: int = 0,
        keepalive: float | None = None,
        keepalives: bool = False,
        reconnect: bool = True,
    ):
        """Stream a job's rows live over ``GET /v1/jobs/<id>/rows`` (NDJSON).

        Yields every framing and data row as a dict, in wire order: one
        ``{"row": "start", ...}`` (with ``cursor_reset`` when the ``since``
        cursor did not survive), then each ``point``/``failure`` row — with
        its job-global ``seq`` and ``item`` index — *as the server produces
        it* (long-poll: the stream stays open while the job runs), then one
        ``{"row": "end", "status": ..., "rows_total": ...}`` when the job
        reaches a terminal state.  A stale cursor detected only once the job
        ends travels as a mid-stream ``{"row": "reset"}`` frame: discard
        rows seen so far, the full log replays after it.  The CLI front door
        is ``repro client tail-job``.

        A long-poll that dies mid-stream (EOF before the end frame, reset
        socket, half-written line) is resumed transparently: the client
        reconnects with ``since=<last seen seq>`` so no row is dropped or
        duplicated, up to ``retries`` consecutive drops without progress
        (then :class:`ConnectionError`).  ``reconnect=False`` restores
        fail-fast behavior.  A resumed stream's extra ``start`` frame is
        swallowed — unless it carries ``cursor_reset``, which surfaces as a
        ``{"row": "reset"}`` frame like the mid-stream server-sent one.

        ``keepalive=N`` asks the server to emit ``{"row": "keepalive"}``
        heartbeat frames after ~N idle seconds, so a slow job and a dead
        connection are distinguishable; they are swallowed (but count as
        progress, resetting the drop budget) unless ``keepalives=True``.
        """
        cursor = int(since)
        drops = 0
        started = False
        while True:
            path = f"/v1/jobs/{job_id}/rows?since={cursor}"
            if keepalive is not None:
                path += f"&keepalive={float(keepalive):g}"
            try:
                response = self._stream(path, None, method="GET")
                resumed = started
                while True:
                    line = response.readline()
                    if not line:
                        raise ConnectionError(
                            f"row stream for job {job_id} ended without an end frame"
                        )
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError as exc:
                        # a half-written line is a connection death, not data
                        raise ConnectionError(
                            f"row stream for job {job_id} died mid-line"
                        ) from exc
                    kind = row.get("row")
                    if kind == "start":
                        if not resumed:
                            started = True
                            yield row
                        elif row.get("cursor_reset"):
                            cursor = 0
                            yield {"row": "reset"}
                        continue
                    if kind == "reset":
                        cursor = 0
                        yield row
                        continue
                    if kind == "keepalive":
                        drops = 0
                        if keepalives:
                            yield row
                        continue
                    if kind == "end":
                        # drain the terminating chunk: an un-drained stream
                        # leaves the keep-alive socket dirty, and the *next*
                        # request on it fails mid-response and retries — for
                        # POST /v1/jobs that submits a duplicate job
                        response.read()
                        yield row
                        return
                    if "seq" in row:
                        cursor = int(row["seq"])
                    drops = 0
                    yield row
            except GeneratorExit:
                # consumer abandoned the stream mid-poll: the socket holds
                # an unread tail, reset it rather than recycle it dirty
                self._reset_connection()
                raise
            except self._RETRYABLE as exc:
                self._reset_connection()
                drops += 1
                if not reconnect or drops > self.retries:
                    raise ConnectionError(
                        f"row stream for job {job_id} on {self.url} dropped "
                        f"{drops} time(s) without progress: {exc}"
                    ) from exc
                time.sleep(self.backoff * drops * random.uniform(0.5, 1.5))

    def job_rows_async(
        self,
        job_id: str,
        *,
        since: int = 0,
        keepalive: float | None = None,
        idle_timeout: float | None = None,
        keepalives: bool = False,
    ) -> AsyncIterator[dict[str, Any]]:
        """:meth:`iter_job_rows` as an async iterator on a dedicated connection.

        This is the pipelined coordinator's consumer path: each job's row
        stream gets its own :class:`AsyncRemoteSession` transport (so many
        streams multiplex on one event loop without touching this session's
        persistent sync connection), with the same frame discipline and
        reconnect-with-``since`` resume as the sync iterator, plus an
        ``idle_timeout`` that treats a silent connection as dead — pair it
        with ``keepalive`` so a slow job keeps proving liveness.  Tests
        override this method to inject stream faults.
        """
        return AsyncRemoteSession(
            self.url, timeout=self.timeout, retries=self.retries, backoff=self.backoff
        ).iter_job_rows(
            job_id,
            since=since,
            keepalive=keepalive,
            idle_timeout=idle_timeout,
            keepalives=keepalives,
        )

    def jobs(self) -> list[dict[str, Any]]:
        """All jobs the server still remembers."""
        return self._call("GET", "/v1/jobs")["jobs"]

    def cancel_job(self, job_id: str) -> dict[str, Any]:
        """Cancel a job (queued: immediate; running: between workloads)."""
        return self._call("DELETE", f"/v1/jobs/{job_id}")["job"]

    def __repr__(self) -> str:
        return (
            f"RemoteSession({self.url}, defaults "
            f"{self.array.rows}x{self.array.cols}, width={self.width})"
        )


class AsyncRemoteSession:
    """The asyncio transport for the service wire protocol.

    A deliberately small counterpart to :class:`RemoteSession`: plain
    HTTP/1.1 over :func:`asyncio.open_connection`, one connection per
    request, reusing the same wire codecs (``repro.service.wire``) and error
    mapping.  It exists for consumers that hold *many* long-poll row streams
    open at once — the pipelined :class:`~repro.service.coordinator
    .SweepCoordinator` keeps one per inflight job on a single event loop,
    where `http.client`'s one-socket-per-session blocking model would need a
    thread per stream.

    Only the surfaces the coordinator needs are async today: :meth:`call`
    (JSON round-trip, e.g. ``/v1/healthz``) and :meth:`iter_job_rows`
    (NDJSON long-poll with reconnect-with-``since`` resume, keepalive
    awareness and an idle timeout).  Everything else stays on the sync
    session.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 300.0,
        retries: int = 2,
        backoff: float = 0.1,
    ):
        self.host, self.port = _parse_http_url(url)
        self.url = f"http://{self.host}:{self.port}"
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # -- transport -------------------------------------------------------
    async def _open(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, dict[str, str], asyncio.StreamReader, asyncio.StreamWriter]:
        """Send one request; return (status, headers, reader, writer)."""
        body = json.dumps(payload).encode() if payload is not None else b""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"{wire.SCHEMA_HEADER}: {SCHEMA_VERSION}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + body)
            await writer.drain()
            status, headers = await asyncio.wait_for(
                self._read_head(reader), self.timeout
            )
        except BaseException:
            writer.close()
            raise
        return status, headers, reader, writer

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, str]]:
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError(f"no response from {self.url}")
        try:
            status = int(status_line.split(None, 2)[1])
        except (IndexError, ValueError) as exc:
            raise ConnectionError(
                f"malformed status line from {self.url}: {status_line!r}"
            ) from exc
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError(f"{self.url} closed mid-headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Mapping[str, str]
    ) -> bytes:
        if headers.get("transfer-encoding", "").lower() == "chunked":
            chunks = []
            while True:
                chunk = await self._read_chunk(reader)
                if chunk is None:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
        length = int(headers.get("content-length") or 0)
        return await reader.readexactly(length) if length else b""

    @staticmethod
    async def _read_chunk(reader: asyncio.StreamReader) -> bytes | None:
        """One HTTP chunk; ``None`` on the zero-size terminator."""
        size_line = await reader.readline()
        if not size_line:
            raise ConnectionError("connection closed mid-stream")
        size = int(size_line.strip().split(b";")[0] or b"0", 16)
        if size == 0:
            await reader.readline()  # trailing CRLF
            return None
        data = await reader.readexactly(size)
        await reader.readexactly(2)  # chunk CRLF
        return data

    @classmethod
    async def _bounded_chunk(
        cls, reader: asyncio.StreamReader, idle_timeout: float | None
    ) -> bytes | None:
        """One chunk under the idle deadline.

        ``asyncio.timeout`` instead of ``wait_for``: same semantics (the
        timer spans just this read), but no Task per read — at streaming
        rates the wrapper Task costs more than the row it guards.
        """
        if idle_timeout is None:
            return await cls._read_chunk(reader)
        async with asyncio.timeout(idle_timeout):
            return await cls._read_chunk(reader)

    # -- the async surface ------------------------------------------------
    async def call(self, method: str, path: str, payload: Any | None = None) -> Any:
        """One JSON round-trip; server errors re-raise as local exceptions."""
        status, headers, reader, writer = await self._open(method, path, payload)
        try:
            data = await asyncio.wait_for(
                self._read_body(reader, headers), self.timeout
            )
        finally:
            writer.close()
        parsed = json.loads(data) if data else {}
        if status >= 400:
            wire.raise_remote_error(parsed, status)
        return parsed

    async def healthz(self) -> dict[str, Any]:
        """``GET /v1/healthz`` — capacity and schema advertisement."""
        return await self.call("GET", "/v1/healthz")

    async def iter_job_rows(
        self,
        job_id: str,
        *,
        since: int = 0,
        keepalive: float | None = None,
        idle_timeout: float | None = None,
        keepalives: bool = False,
        reconnect: bool = True,
    ) -> AsyncIterator[dict[str, Any]]:
        """Async :meth:`RemoteSession.iter_job_rows`: same frames, same resume.

        ``idle_timeout`` bounds the silence between frames; a stream that is
        silent longer counts as a drop (reconnect with the last seen
        ``seq``), so with server ``keepalive`` heartbeats below the timeout,
        a slow job stays connected while a dead server is detected in one
        timeout instead of hanging the consumer.
        """
        cursor = int(since)
        drops = 0
        started = False
        while True:
            writer = None
            try:
                path = f"/v1/jobs/{job_id}/rows?since={cursor}"
                if keepalive is not None:
                    path += f"&keepalive={float(keepalive):g}"
                status, headers, reader, writer = await self._open("GET", path)
                if status >= 400:
                    data = await self._read_body(reader, headers)
                    wire.raise_remote_error(json.loads(data or b"{}"), status)
                resumed = started
                buf = b""
                while True:
                    chunk = await self._bounded_chunk(reader, idle_timeout)
                    if chunk is None:
                        raise ConnectionError(
                            f"row stream for job {job_id} ended "
                            "without an end frame"
                        )
                    buf += chunk
                    while b"\n" in buf:
                        line, buf = buf.split(b"\n", 1)
                        if not line.strip():
                            continue
                        row = json.loads(line)
                        kind = row.get("row")
                        if kind == "start":
                            if not resumed:
                                started = True
                                yield row
                            elif row.get("cursor_reset"):
                                cursor = 0
                                yield {"row": "reset"}
                            continue
                        if kind == "reset":
                            cursor = 0
                            yield row
                            continue
                        if kind == "keepalive":
                            drops = 0
                            if keepalives:
                                yield row
                            continue
                        if kind == "end":
                            yield row
                            return
                        if "seq" in row:
                            cursor = int(row["seq"])
                        drops = 0
                        yield row
            except (ConnectionError, EOFError, OSError, asyncio.TimeoutError) as exc:
                drops += 1
                if not reconnect or drops > self.retries:
                    raise ConnectionError(
                        f"row stream for job {job_id} on {self.url} dropped "
                        f"{drops} time(s) without progress: {exc}"
                    ) from exc
                await asyncio.sleep(self.backoff * drops)
            finally:
                if writer is not None:
                    writer.close()

    def __repr__(self) -> str:
        return f"AsyncRemoteSession({self.url})"
