"""The async evaluation service: a stdlib-only HTTP/JSON front-end.

:class:`EvaluationService` wraps any in-process
:class:`~repro.api.session.LocalSession` in a small asyncio HTTP/1.1 server
(hand-rolled on ``asyncio.start_server`` — no third-party web framework, per
the repo's no-new-deps rule).  The wire format is exactly the versioned
:class:`~repro.api.types.DesignRequest` / :class:`~repro.api.types.EvalResult`
JSON the API layer already speaks, so a request built anywhere evaluates to
the same memo-cache key everywhere.

Endpoints (all under ``/v1``):

========================  =====================================================
``GET  /v1/healthz``      liveness + ``schema_version`` negotiation + backends
``POST /v1/evaluate``     one ``DesignRequest`` -> one ``EvalResult``
``POST /v1/evaluate_many``  ``{"requests": [...]}`` -> ``{"results": [...]}``
``POST /v1/explore``      NDJSON stream: ``start``, then one ``point`` /
                          ``failure`` row per design *as it is produced*,
                          then ``stats``
``POST /v1/evaluate_names``  paper dataflow names -> per-name perf results
``POST /v1/jobs``         submit a sweep job to the bounded queue (503 full)
``GET  /v1/jobs[/<id>]``  list / poll jobs
``DELETE /v1/jobs/<id>``  cancel (queued jobs immediately; running jobs
                          cooperatively between workloads); the snapshot
                          reports ``cancelled_while`` queued vs running
``GET  /v1/cache/stats``  the session's memo-cache counters
``GET  /v1/cache``        pull the full memo-cache contents (coordinator
                          fold-in; see ``MemoCache.dump``)
``POST /v1/cache/flush``  persist the memo cache now
========================  =====================================================

Evaluations run on a thread executor so the event loop stays responsive;
the session's :class:`~repro.explore.engine.MemoCache` is lock-guarded, so
concurrent handlers share it safely.  Model evaluation itself may still fan
out over the session's *process* pool — the service adds location
transparency, not a second parallelism scheme.

:class:`ServiceThread` runs the whole thing on a background thread with its
own event loop — the embedding used by the tests, the benchmarks and the
``examples/remote_evaluation.py`` walkthrough.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.session import LocalSession
from repro.api.types import SCHEMA_VERSION, DesignRequest, SchemaVersionError
from repro.explore.engine import EvaluationStats
from repro.service import wire

__all__ = ["EvaluationService", "ServiceThread"]

#: Client errors that become 400s; anything else is a 500.
_CLIENT_ERRORS = (LookupError, KeyError, ValueError, TypeError)

#: Shared with the sweep coordinator via :mod:`repro.service.wire`.
_engine_options = wire.engine_options


@dataclass
class Job:
    """One queued/running sweep; JSON-safe snapshots via :meth:`snapshot`."""

    id: str
    payload: dict[str, Any]
    status: str = "queued"  # queued|running|done|failed|cancelled
    error: str | None = None
    results: list[dict[str, Any]] = field(default_factory=list)
    cancel_requested: bool = False
    #: "queued" or "running": where the job was when DELETE reached it.
    cancelled_while: str | None = None
    #: Total (config, workload) items this job will run; progress denominator.
    total_items: int = 0

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "workloads": list(self.payload.get("workloads", ())),
            "progress": {"completed": len(self.results), "total": self.total_items},
        }
        if self.error is not None:
            out["error"] = self.error
        if self.cancel_requested:
            out["cancel_requested"] = True
        if self.cancelled_while is not None:
            out["cancelled_while"] = self.cancelled_while
        if self.status in ("done", "cancelled") and self.results:
            out["results"] = self.results
        return out


class EvaluationService:
    """Serve a :class:`LocalSession` over HTTP/JSON (see module docstring)."""

    def __init__(
        self,
        session: LocalSession,
        *,
        max_queued_jobs: int = 16,
        max_kept_jobs: int = 256,
    ):
        self.session = session
        self.max_queued_jobs = max_queued_jobs
        self.max_kept_jobs = max_kept_jobs
        self.jobs: dict[str, Job] = {}
        self._job_ids = itertools.count(1)
        self._job_queue: asyncio.Queue[Job] | None = None
        self._runner: asyncio.Task | None = None
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and start serving; returns the ``asyncio.Server`` (port 0 = ephemeral)."""
        self._job_queue = asyncio.Queue(maxsize=self.max_queued_jobs)
        self._runner = asyncio.create_task(self._run_jobs())
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        return self._server

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, cancel the job runner, and flush the session cache."""
        if self._runner is not None:
            self._runner.cancel()
            try:
                await self._runner
            except asyncio.CancelledError:
                pass
            self._runner = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.session.flush()

    # -- HTTP plumbing --------------------------------------------------
    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        try:
            method, path, _version = request_line.decode("latin-1").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            body = await reader.readexactly(length)
        return method, path, headers, body

    @staticmethod
    def _json_response(
        writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = json.dumps(payload).encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
                  409: "Conflict", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        writer.write(head.encode() + body)

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                await self._dispatch(method, path, headers, body, writer)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        except asyncio.CancelledError:
            # the loop is shutting down with this keep-alive connection
            # parked on readline(); closing quietly is the clean exit
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # -- routing ---------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        path: str,
        headers: Mapping[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        advertised = headers.get(wire.SCHEMA_HEADER.lower())
        if advertised is not None and advertised != str(SCHEMA_VERSION):
            exc = SchemaVersionError(
                f"client schema_version {advertised!r} is not supported "
                f"(this server speaks version {SCHEMA_VERSION})"
            )
            payload = wire.error_payload(exc)
            payload["schema_version"] = SCHEMA_VERSION
            self._json_response(writer, 409, payload)
            return
        try:
            payload = json.loads(body) if body else {}
        except json.JSONDecodeError as exc:
            self._json_response(
                writer, 400, wire.error_payload(ValueError(f"invalid JSON body: {exc}"))
            )
            return
        try:
            await self._route(method, path, payload, writer)
        except SchemaVersionError as exc:
            self._json_response(writer, 409, wire.error_payload(exc))
        except _CLIENT_ERRORS as exc:
            self._json_response(writer, 400, wire.error_payload(exc))
        except Exception as exc:  # noqa: BLE001 - crash becomes a visible 500
            self._json_response(writer, 500, wire.error_payload(exc))

    async def _route(
        self, method: str, path: str, payload: Any, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        route = (method, path)
        if route == ("GET", "/v1/healthz"):
            from repro.api.registry import available_backends
            from repro.ir.workloads import TABLE_II

            self._json_response(
                writer,
                200,
                {
                    "status": "ok",
                    "schema_version": SCHEMA_VERSION,
                    "backends": list(available_backends()),
                    "workloads": sorted(TABLE_II),
                    "array": wire.array_to_dict(self.session.array),
                    # 0 = the job queue is disabled; coordinators use this to
                    # pick the evaluate_many fallback without a probe 503
                    "max_jobs": max(0, self.max_queued_jobs),
                },
            )
        elif route == ("GET", "/v1/cache/stats"):
            self._json_response(writer, 200, self.session.cache_stats())
        elif route == ("GET", "/v1/cache"):
            cache = self.session.cache
            # dump + serialize on the executor: a big memo cache must not
            # stall the event loop (and every other in-flight request)
            body = await loop.run_in_executor(
                None,
                lambda: json.dumps(
                    {"sections": cache.dump() if cache is not None else {}}
                ).encode(),
            )
            writer.write(
                (
                    "HTTP/1.1 200 OK\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "\r\n"
                ).encode()
                + body
            )
        elif route == ("POST", "/v1/cache/flush"):
            await loop.run_in_executor(None, self.session.flush)
            self._json_response(writer, 200, {"flushed": True})
        elif route == ("POST", "/v1/evaluate"):
            request = DesignRequest.from_dict(payload)
            result = await loop.run_in_executor(None, self.session.evaluate, request)
            self._json_response(writer, 200, result.to_dict())
        elif route == ("POST", "/v1/evaluate_many"):
            requests = payload.get("requests")
            if not isinstance(requests, list):
                raise ValueError('evaluate_many body needs a "requests" list')
            results = await loop.run_in_executor(
                None, self.session.evaluate_many, requests
            )
            self._json_response(
                writer, 200, {"results": [r.to_dict() for r in results]}
            )
        elif route == ("POST", "/v1/evaluate_names"):
            statement = wire.instantiate_statement(payload)
            names = payload.get("names") or []
            bound = int(payload.get("bound", 1))
            limit = int(payload.get("limit", 24))
            array = (
                wire.array_from_dict(payload["array"]) if payload.get("array") else None
            )
            engine = self.session.engine_for(array)
            rows = await loop.run_in_executor(
                None,
                lambda: engine.evaluate_names(
                    statement, names, bound=bound, limit=limit
                ),
            )
            import dataclasses

            self._json_response(
                writer,
                200,
                {"results": [[name, dataclasses.asdict(r)] for name, r in rows]},
            )
        elif route == ("POST", "/v1/explore"):
            await self._explore_stream(payload, writer)
        elif route == ("POST", "/v1/jobs"):
            self._submit_job(payload, writer)
        elif route == ("GET", "/v1/jobs"):
            self._json_response(
                writer, 200, {"jobs": [job.snapshot() for job in self.jobs.values()]}
            )
        elif method in ("GET", "DELETE") and path.startswith("/v1/jobs/"):
            self._job_detail(method, path.rsplit("/", 1)[1], writer)
        else:
            self._json_response(
                writer,
                404,
                {"error": f"no route {method} {path}", "error_type": "LookupError"},
            )

    # -- streaming explore ----------------------------------------------
    async def _explore_stream(
        self, payload: Mapping[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        # validate everything *before* the headers go out: errors here are
        # clean JSON responses, errors mid-stream become an "error" row
        statement = wire.instantiate_statement(payload)
        array = (
            wire.array_from_dict(payload["array"]) if payload.get("array") else None
        )
        options = _engine_options(payload)
        engine = self.session.engine_for(array)

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=256)
        stats = EvaluationStats()

        def produce() -> None:
            """Runs on an executor thread; backpressured by the queue."""
            try:
                for point in engine.stream(statement, stats=stats, **options):
                    asyncio.run_coroutine_threadsafe(
                        queue.put(("row", wire.point_to_row(point))), loop
                    ).result()
                asyncio.run_coroutine_threadsafe(queue.put(("end", None)), loop).result()
            except BaseException as exc:  # noqa: BLE001 - travels as an error row
                asyncio.run_coroutine_threadsafe(
                    queue.put(("error", f"{type(exc).__name__}: {exc}")), loop
                ).result()

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
        )
        start_row = {
            "row": "start",
            "schema_version": SCHEMA_VERSION,
            "workload": statement.name,
            "array": wire.array_to_dict(array or self.session.array),
        }
        self._write_chunk(writer, json.dumps(start_row).encode() + b"\n")
        producer = loop.run_in_executor(None, produce)
        try:
            while True:
                kind, value = await queue.get()
                if kind == "row":
                    self._write_chunk(writer, json.dumps(value).encode() + b"\n")
                    await writer.drain()
                elif kind == "error":
                    error_row = {"row": "error", "reason": value}
                    self._write_chunk(writer, json.dumps(error_row).encode() + b"\n")
                    break
                else:
                    break
        finally:
            # keep draining while the producer finishes: if this handler is
            # bailing early (client hung up), a backpressured producer would
            # otherwise block on a full queue forever
            while not producer.done():
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:
                    await asyncio.sleep(0.005)
            await producer
        self._write_chunk(writer, json.dumps(wire.stats_to_row(stats)).encode() + b"\n")
        writer.write(b"0\r\n\r\n")

    # -- jobs -------------------------------------------------------------
    def _submit_job(self, payload: Mapping[str, Any], writer) -> None:
        workloads = payload.get("workloads")
        if not isinstance(workloads, list) or not workloads:
            raise ValueError('job body needs a non-empty "workloads" list')
        _engine_options(payload)  # validate option names up front
        if not isinstance(payload.get("include_rows", False), bool):
            raise ValueError('"include_rows" must be a boolean')
        submit_key = payload.get("submit_key")
        if submit_key is not None and not isinstance(submit_key, str):
            raise ValueError('"submit_key" must be a string')
        if submit_key is not None:
            # idempotent resubmission: a client that lost the response to a
            # submit retries with the same key and gets the original job
            # back instead of enqueueing a duplicate sweep
            for existing in self.jobs.values():
                if existing.payload.get("submit_key") == submit_key:
                    self._json_response(writer, 202, {"job": existing.snapshot()})
                    return
        for name in workloads:
            wire.instantiate_statement(
                {"workload": name, "extents": payload.get("extents") or {}}
            )
        configs = payload.get("configs") or []
        for config in configs:
            wire.array_from_dict(config)
        if self.max_queued_jobs <= 0:
            # a server run with --max-jobs 0 has no job capacity at all;
            # the same 503 contract as a full queue, reported up front
            self._json_response(
                writer,
                503,
                {
                    "error": "job queue disabled on this server (--max-jobs 0)",
                    "error_type": "RuntimeError",
                },
            )
            return
        assert self._job_queue is not None, "service not started"
        job = Job(
            id=f"job-{next(self._job_ids)}",
            payload=dict(payload),
            total_items=len(workloads) * max(1, len(configs)),
        )
        try:
            self._job_queue.put_nowait(job)
        except asyncio.QueueFull:
            self._json_response(
                writer,
                503,
                {
                    "error": (
                        f"job queue full ({self.max_queued_jobs} queued); "
                        "retry after a poll shows capacity"
                    ),
                    "error_type": "RuntimeError",
                },
            )
            return
        self.jobs[job.id] = job
        self._prune_jobs()
        self._json_response(writer, 202, {"job": job.snapshot()})

    def _job_detail(self, method: str, job_id: str, writer) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            self._json_response(
                writer,
                404,
                {"error": f"no such job {job_id!r}", "error_type": "LookupError"},
            )
            return
        if method == "DELETE":
            # report *where* the cancel landed: a queued job dies immediately,
            # a running one stops cooperatively after its current workload
            if job.status == "queued":
                job.cancel_requested = True
                job.cancelled_while = "queued"
                job.status = "cancelled"
            elif job.status == "running":
                job.cancel_requested = True
                job.cancelled_while = "running"
        self._json_response(writer, 200, {"job": job.snapshot()})

    def _prune_jobs(self) -> None:
        """Drop the oldest finished jobs beyond ``max_kept_jobs``."""
        finished = [
            job_id
            for job_id, job in self.jobs.items()
            if job.status in ("done", "failed", "cancelled")
        ]
        for job_id in finished[: max(0, len(self.jobs) - self.max_kept_jobs)]:
            del self.jobs[job_id]

    async def _run_jobs(self) -> None:
        assert self._job_queue is not None
        loop = asyncio.get_running_loop()
        while True:
            job = await self._job_queue.get()
            if job.status == "cancelled" or job.cancel_requested:
                job.status = "cancelled"
                continue
            job.status = "running"
            try:
                completed = await loop.run_in_executor(None, self._run_sweep_job, job)
            except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            else:
                if completed:
                    job.status = "done"
                else:
                    job.status = "cancelled"
                    if job.cancelled_while is None:
                        job.cancelled_while = "running"

    def _run_sweep_job(self, job: Job) -> bool:
        """Execute one sweep job; returns False when cancelled mid-run.

        Cancellation is cooperative at workload granularity: the flag is
        checked between (config, workload) evaluations — including once more
        after the last item, so a DELETE that lands during the final workload
        still reports ``cancelled`` — and a cancelled job keeps the partial
        results it finished.  With ``include_rows`` the per-item record also
        carries every evaluated design as a ``/v1/explore``-format row
        (points first, then failures, both in enumeration order), which is
        what lets a sweep coordinator rebuild the exact
        :class:`~repro.explore.engine.EvaluationResult` client-side.
        """
        payload = job.payload
        configs = [wire.array_from_dict(c) for c in payload.get("configs") or []] or [
            None
        ]
        options = _engine_options(payload)
        extents = payload.get("extents") or {}
        include_rows = bool(payload.get("include_rows", False))
        for config in configs:
            for name in payload["workloads"]:
                if job.cancel_requested:
                    return False
                statement = wire.instantiate_statement(
                    {"workload": name, "extents": extents}
                )
                result = self.session.explore(statement, array=config, **options)
                record = {
                    "workload": result.workload,
                    "array": wire.array_to_dict(result.array),
                    "points": len(result.points),
                    "failures": len(result.failures),
                    "stats": {
                        k: v
                        for k, v in wire.stats_to_row(result.stats).items()
                        if k != "row"
                    },
                    "best": [wire.point_to_row(p) for p in result.best(5)],
                    "pareto": [p.name for p in result.pareto()],
                }
                if include_rows:
                    record["rows"] = [
                        wire.point_to_row(p) for p in result.points
                    ] + [wire.point_to_row(p) for p in result.failures]
                job.results.append(record)
        return not job.cancel_requested


class ServiceThread:
    """Run an :class:`EvaluationService` on a daemon thread (tests/benchmarks).

    Usage::

        with ServiceThread(LocalSession(ArrayConfig(rows=8, cols=8))) as srv:
            remote = RemoteSession(srv.url)
            ...

    ``url`` carries the actual bound port (``port=0`` picks an ephemeral one).
    """

    def __init__(
        self,
        session: LocalSession | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_kwargs,
    ):
        self.session = session if session is not None else LocalSession()
        self.host = host
        self.port = port
        self.url: str | None = None
        self.service: EvaluationService | None = None
        self._service_kwargs = service_kwargs
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("service thread did not start within 60s")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures only
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.service = EvaluationService(self.session, **self._service_kwargs)
        server = await self.service.start(self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self.url = f"http://{self.host}:{self.port}"
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.service.close()

    def stop(self) -> None:
        """Shut the service down; idempotent (tests kill servers mid-sweep
        and the context manager stops them again on exit)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # the loop already exited
                pass
        if self._thread is not None:
            self._thread.join(timeout=60)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
