"""The async evaluation service: a stdlib-only HTTP/JSON front-end.

:class:`EvaluationService` wraps any in-process
:class:`~repro.api.session.LocalSession` in a small asyncio HTTP/1.1 server
(hand-rolled on ``asyncio.start_server`` — no third-party web framework, per
the repo's no-new-deps rule).  The wire format is exactly the versioned
:class:`~repro.api.types.DesignRequest` / :class:`~repro.api.types.EvalResult`
JSON the API layer already speaks, so a request built anywhere evaluates to
the same memo-cache key everywhere.

Endpoints (all under ``/v1``; the full request/response reference lives in
``docs/service-api.md``):

=============================  ================================================
``GET  /v1/healthz``           liveness + ``schema_version`` negotiation +
                               backends + capacity (``workers``/``max_jobs``)
``POST /v1/evaluate``          one ``DesignRequest`` -> one ``EvalResult``
``POST /v1/evaluate_many``     ``{"requests": [...]}`` -> ``{"results": [...]}``
``POST /v1/explore``           NDJSON stream: ``start``, then one ``point`` /
                               ``failure`` row per design *as it is produced*,
                               then ``stats``
``POST /v1/evaluate_names``    paper dataflow names -> per-name perf results
``POST /v1/jobs``              submit a sweep job to the bounded queue
                               (503 full); ``stream_rows``/``include_rows``
                               opt into the per-design row log
``GET  /v1/jobs``              list jobs
``GET  /v1/jobs/<id>``         poll one job; ``?since=<seq>`` additionally
                               returns only the rows produced after that
                               cursor (incremental row streaming)
``GET  /v1/jobs/<id>/rows``    NDJSON long-poll: every row from ``?since=``
                               on, *as the job produces them*, until the job
                               reaches a terminal state
``DELETE /v1/jobs/<id>``       cancel (queued jobs immediately; running jobs
                               cooperatively between designs); the snapshot
                               reports ``cancelled_while`` queued vs running
``GET  /v1/cache/stats``       the session's memo-cache counters
``GET  /v1/cache``             pull the full memo-cache contents (coordinator
                               fold-in; see ``MemoCache.dump``)
``POST /v1/cache/flush``       persist the memo cache now
=============================  ================================================

Evaluations run on a thread executor so the event loop stays responsive;
the session's :class:`~repro.explore.engine.MemoCache` is lock-guarded, so
concurrent handlers share it safely.  Model evaluation itself may still fan
out over the session's *process* pool — the service adds location
transparency, not a second parallelism scheme.

:class:`ServiceThread` runs the whole thing on a background thread with its
own event loop — the embedding used by the tests, the benchmarks and the
``examples/remote_evaluation.py`` walkthrough.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qs

from repro.api.session import LocalSession
from repro.api.types import SCHEMA_VERSION, DesignRequest, SchemaVersionError
from repro.explore.engine import EvaluationResult, EvaluationStats
from repro.service import wire

__all__ = ["EvaluationService", "ServiceThread"]

#: Client errors that become 400s; anything else is a 500.
_CLIENT_ERRORS = (LookupError, KeyError, ValueError, TypeError)

#: Shared with the sweep coordinator via :mod:`repro.service.wire`.
_engine_options = wire.engine_options

_JOB_ID_RE = re.compile(r"^job-(\d+)$")


def _job_number(job_id: str) -> int:
    """Numeric part of a ``job-<n>`` id; 0 for foreign ids (sorts first)."""
    match = _JOB_ID_RE.match(job_id)
    return int(match.group(1)) if match else 0


@dataclass
class Job:
    """One queued/running sweep; JSON-safe snapshots via :meth:`snapshot`.

    A job is the unit of work behind ``POST /v1/jobs``: one
    workloads x configs sweep executed by the service's job runner, observable
    through :meth:`snapshot` at every point of its life cycle
    (``queued -> running -> done | failed | cancelled``).

    When the submit payload asked for rows (``stream_rows`` or
    ``include_rows``), every evaluated design is appended to :attr:`rows` as a
    ``/v1/explore``-format wire row *while the job runs*, extended with two
    keys: ``seq`` — the 1-based, job-global, strictly increasing row cursor —
    and ``item`` — the 0-based index of the (config, workload) item (in
    configs-major job order) the design belongs to.  ``rows`` only ever
    grows, which is what makes ``snapshot(since=N)`` (only rows after cursor
    ``N``) and the ``GET /v1/jobs/<id>/rows`` long-poll safe to serve from
    another thread without locking.
    """

    id: str
    payload: dict[str, Any]
    status: str = "queued"  # queued|running|done|failed|cancelled
    error: str | None = None
    results: list[dict[str, Any]] = field(default_factory=list)
    cancel_requested: bool = False
    #: "queued" or "running": where the job was when DELETE reached it.
    cancelled_while: str | None = None
    #: Total (config, workload) items this job will run; progress denominator.
    total_items: int = 0
    #: The incremental per-design row log (see class docstring); populated
    #: only when :attr:`keep_rows` is set at submit time.
    rows: list[dict[str, Any]] = field(default_factory=list)
    #: Whether this job records :attr:`rows` (``stream_rows``/``include_rows``).
    keep_rows: bool = False
    #: True for a job rebuilt from a journal that had no terminal entry: it
    #: was queued or running when the server died and re-enters the queue.
    resumed: bool = False
    #: Rows a resumed run adopted from the journal *instead of re-evaluating*
    #: their designs — the observable "zero repeated evaluations" meter.
    replayed_rows: int = 0
    #: Set (on the loop thread) the moment :attr:`status` turns terminal —
    #: lets a ``/rows`` stream cut its micro-batch pause short the instant
    #: the job ends instead of sleeping the pause out.
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def snapshot(self, since: int | None = None) -> dict[str, Any]:
        """The job's JSON wire shape; ``since`` adds the incremental row page.

        With ``since=N`` the snapshot additionally carries ``rows`` (every
        row with ``seq > N``), ``rows_total`` (the caller's next cursor) and —
        when ``N`` lies beyond the end of the log, i.e. the cursor came from
        a different run of this job id — ``cursor_reset: true`` with the
        *full* row list, so a client can drop its stale fold and resync from
        the snapshot instead of silently missing rows.
        """
        out: dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            # entries were validated at submit time: plain extraction here,
            # not a re-run of wire.job_items on every poll
            "workloads": [
                entry if isinstance(entry, str) else entry.get("workload")
                for entry in self.payload.get("workloads", ())
            ],
            "progress": {"completed": len(self.results), "total": self.total_items},
        }
        if self.error is not None:
            out["error"] = self.error
        if self.cancel_requested:
            out["cancel_requested"] = True
        if self.cancelled_while is not None:
            out["cancelled_while"] = self.cancelled_while
        if self.resumed:
            # rebuilt from a journal after a restart: replayed_rows counts
            # the journaled designs adopted without re-evaluation
            out["resumed"] = True
            out["replayed_rows"] = self.replayed_rows
        if self.status in ("done", "cancelled") and self.results:
            out["results"] = self.results
        if since is not None:
            if not self.keep_rows:
                raise ValueError(
                    f"job {self.id!r} was not submitted with stream_rows/"
                    "include_rows; it keeps no row log to page with ?since="
                )
            total = len(self.rows)  # snapshot the length: rows only grows
            cursor = max(0, since)
            if cursor > total:
                out["cursor_reset"] = True
                cursor = 0
            out["rows"] = self.rows[cursor:total]
            out["rows_total"] = total
        return out


class _JobJournal:
    """Append-only NDJSON durability log: one file per job, fsync-batched.

    Producers — the submit handler on the event loop, the job runner on its
    executor thread — never touch the filesystem: :meth:`append` only queues
    the encoded line under a lock.  All the blocking I/O (open, write,
    fsync, unlink) happens in :meth:`flush`, which the service drives from
    an executor thread on the ``rows_drain_pace`` tick — so journaling adds
    one batched fsync per tick, not one per row, and the event loop never
    blocks on the disk.  A crash between ticks can only lose the queued
    (unsynced) tail; replay after restart then re-evaluates exactly those
    designs — deterministic enumeration regenerates identical rows, so the
    row log and its ``seq`` cursor stay bit-identical either way.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self._lock = threading.Lock()  # guards _pending/_discard queues
        self._io_lock = threading.Lock()  # serializes flush/close/discard I/O
        self._pending: list[tuple[str, bytes]] = []
        self._discard: set[str] = set()
        self._files: dict[str, Any] = {}  # job id -> open append handle

    # -- producer side (any thread, no I/O) -----------------------------
    def append(self, job_id: str, kind: str, fields: Mapping[str, Any]) -> None:
        line = wire.encode_journal_entry(wire.journal_entry(kind, fields))
        with self._lock:
            self._pending.append((job_id, line))

    def discard(self, job_id: str) -> None:
        """Queue a pruned job's journal for deletion (next flush unlinks it)."""
        with self._lock:
            self._discard.add(job_id)

    @property
    def dirty(self) -> bool:
        with self._lock:
            return bool(self._pending or self._discard)

    # -- consumer side (executor threads only: blocking file I/O) --------
    def prepare(self) -> list[dict[str, Any]]:
        """Create the directory and replay every surviving job journal."""
        os.makedirs(self.directory, exist_ok=True)
        replayed: list[dict[str, Any]] = []
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(wire.JOURNAL_SUFFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                continue
            fields = wire.replay_journal(wire.decode_journal(data))
            # the file stem is the id the *server* wrote; a renamed or foreign
            # file whose header disagrees is not a journal this server owns
            if fields is not None and name == fields["id"] + wire.JOURNAL_SUFFIX:
                replayed.append(fields)
        return replayed

    def _handle(self, job_id: str):
        """The job's open append handle, opened and adopted on first use
        (:meth:`flush` closes it on discard, :meth:`close` closes the rest).
        Called only from :meth:`flush`'s ``_io_lock`` region; the plain (not
        reentrant) lock cannot be re-taken here."""
        # repro-lint: waive[RA003] every call site already holds _io_lock (flush's I/O region); a plain Lock is not reentrant, so taking it here would deadlock
        handle = self._files.get(job_id)
        if handle is None:
            path = os.path.join(self.directory, job_id + wire.JOURNAL_SUFFIX)
            handle = open(path, "ab")
            # repro-lint: waive[RA003] same _io_lock-held call-site invariant as the read above
            self._files[job_id] = handle
        return handle

    def flush(self) -> None:
        """Write queued lines, one batched fsync per touched job file."""
        with self._lock:
            batch, self._pending = self._pending, []
            drop, self._discard = self._discard, set()
        with self._io_lock:
            touched: dict[str, Any] = {}
            for job_id, line in batch:
                if job_id in drop:
                    continue
                handle = self._handle(job_id)
                handle.write(line)
                touched[job_id] = handle
            for handle in touched.values():
                handle.flush()
                os.fsync(handle.fileno())
            for job_id in drop:
                handle = self._files.pop(job_id, None)
                if handle is not None:
                    handle.close()
                try:
                    os.unlink(
                        os.path.join(self.directory, job_id + wire.JOURNAL_SUFFIX)
                    )
                except OSError:
                    pass  # never journaled, or already gone

    def close(self) -> None:
        self.flush()
        with self._io_lock:
            for handle in self._files.values():
                handle.close()
            self._files.clear()


class EvaluationService:
    """Serve a :class:`LocalSession` over HTTP/JSON (see module docstring)."""

    def __init__(
        self,
        session: LocalSession,
        *,
        max_queued_jobs: int = 16,
        max_kept_jobs: int = 256,
        rows_keepalive: float = 15.0,
        rows_drain_pace: float = 0.05,
        max_body_bytes: int | None = None,
        journal_dir: str | os.PathLike | None = None,
    ):
        self.session = session
        self.max_queued_jobs = max_queued_jobs
        self.max_kept_jobs = max_kept_jobs
        #: request-body buffering ceiling: ``Content-Length`` past this is
        #: refused with 413 before a single body byte is read
        self.max_body_bytes = (
            wire.MAX_BODY_BYTES if max_body_bytes is None else max_body_bytes
        )
        #: default idle interval between ``{"row": "keepalive"}`` heartbeat
        #: frames on ``/rows`` long-polls; per-request ``?keepalive=`` wins
        self.rows_keepalive = rows_keepalive
        #: minimum quiet time between productive ``/rows`` drains.  A job
        #: evaluating from a warm memo cache appends rows far faster than a
        #: wakeup-per-row stream can ship them — without this floor the
        #: stream task trades the GIL with the evaluator thread on every
        #: design and was measured doubling job runtime.  The first row of
        #: an idle stream still pushes immediately, and the job's terminal
        #: event preempts the pace, so only mid-burst batching coarsens.
        self.rows_drain_pace = rows_drain_pace
        #: Durability log (``--journal-dir``): every job's header, rows,
        #: records and terminal status are appended to one NDJSON file per
        #: job, and :meth:`start` rebuilds ``self.jobs`` from the directory —
        #: making ``GET /v1/jobs/<id>``, ``/rows`` cursors and ``submit_key``
        #: dedup survive a hard crash + restart.  ``None`` keeps jobs
        #: memory-only (the pre-journal behavior).  Construction does no
        #: I/O; the directory is created on :meth:`start`, off-loop.
        self._journal = None if journal_dir is None else _JobJournal(str(journal_dir))
        self._journal_pacer: asyncio.Task | None = None
        self.jobs: dict[str, Job] = {}
        self._job_ids = itertools.count(1)
        self._job_queue: asyncio.Queue[Job] | None = None
        self._runner: asyncio.Task | None = None
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Doorbell for every ``/rows`` long-poll: rung (thread-safely) on
        #: each appended row and each job status flip, so streams push rows
        #: the moment they exist instead of on a fixed drain cadence.
        self._rows_wake: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and start serving; returns the ``asyncio.Server`` (port 0 = ephemeral)."""
        self._loop = asyncio.get_running_loop()
        self._rows_wake = asyncio.Event()
        self._job_queue = asyncio.Queue(maxsize=self.max_queued_jobs)
        if self._journal is not None:
            # blocking directory scan + file reads: on the executor, then
            # rebuild jobs on the loop thread before any request can race it
            replayed = await self._loop.run_in_executor(None, self._journal.prepare)
            self._restore_jobs(replayed)
            self._journal_pacer = asyncio.create_task(self._pace_journal())
        self._runner = asyncio.create_task(self._run_jobs())
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        return self._server

    def _restore_jobs(self, replayed: list[dict[str, Any]]) -> None:
        """Rebuild :attr:`jobs` from journal replays (loop thread, pre-serve).

        Terminal jobs come back exactly as their last snapshot; a job with no
        terminal entry was queued or running at the crash — it re-enters the
        queue flagged ``resumed``, and the runner adopts its journaled rows
        instead of re-evaluating them (see :meth:`_run_sweep_job`).
        """
        highest = 0
        for fields in sorted(replayed, key=lambda f: _job_number(f["id"])):
            highest = max(highest, _job_number(fields["id"]))
            job = Job(
                id=fields["id"],
                payload=fields["payload"],
                total_items=fields["total_items"],
                keep_rows=fields["keep_rows"],
            )
            job.rows = fields["rows"]
            job.results = fields["results"]
            job.error = fields["error"]
            job.cancelled_while = fields["cancelled_while"]
            if fields["status"] is None:
                job.resumed = True
                try:
                    self._job_queue.put_nowait(job)  # type: ignore[union-attr]
                except asyncio.QueueFull:
                    job.status = "failed"
                    job.error = "job queue full during journal recovery"
                    job.done.set()
            else:
                job.status = fields["status"]
                job.done.set()
            self.jobs[job.id] = job
        if highest:
            # new ids continue after every journaled one: a transport-retried
            # POST dedups against the rebuilt job instead of colliding ids
            self._job_ids = itertools.count(highest + 1)

    async def _pace_journal(self) -> None:
        """Flush+fsync the journal's queued lines on the drain-pace tick."""
        assert self._journal is not None and self._loop is not None
        pace = max(self.rows_drain_pace, 0.005)
        while True:
            await asyncio.sleep(pace)
            if self._journal.dirty:
                await self._loop.run_in_executor(None, self._journal.flush)

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, cancel the job runner, and flush the session cache."""
        if self._runner is not None:
            self._runner.cancel()
            try:
                await self._runner
            except asyncio.CancelledError:
                pass
            self._runner = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._journal_pacer is not None:
            self._journal_pacer.cancel()
            try:
                await self._journal_pacer
            except asyncio.CancelledError:
                pass
            self._journal_pacer = None
        if self._journal is not None:
            # final flush + handle close, off-loop like every journal write
            await asyncio.get_running_loop().run_in_executor(
                None, self._journal.close
            )
        # flush() is file I/O under the memo-cache lock: on the executor, so
        # a big cache never stalls the loop's own shutdown sequence
        await asyncio.get_running_loop().run_in_executor(None, self.session.flush)

    # -- HTTP plumbing --------------------------------------------------
    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        try:
            method, path, _version = request_line.decode("latin-1").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        # the declared length is attacker-chosen: bound it *before* it sizes
        # the readexactly buffer (413 past the ceiling, 400 on garbage)
        length = wire.bounded_body(
            headers.get("content-length"), self.max_body_bytes
        )
        if length:
            body = await reader.readexactly(length)
        return method, path, headers, body

    @staticmethod
    def _json_response(
        writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = json.dumps(payload).encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
                  409: "Conflict", 413: "Payload Too Large",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        writer.write(head.encode() + body)

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except wire.PayloadTooLargeError as exc:
                    # the body was never read, so the stream is desynced:
                    # answer 413 and drop the connection
                    self._json_response(writer, 413, wire.error_payload(exc))
                    await writer.drain()
                    break
                except ValueError as exc:
                    self._json_response(writer, 400, wire.error_payload(exc))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                await self._dispatch(method, path, headers, body, writer)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        except asyncio.CancelledError:
            # the loop is shutting down with this keep-alive connection
            # parked on readline(); closing quietly is the clean exit
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # -- routing ---------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        path: str,
        headers: Mapping[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        advertised = headers.get(wire.SCHEMA_HEADER.lower())
        if advertised is not None and advertised != str(SCHEMA_VERSION):
            exc = SchemaVersionError(
                f"client schema_version {advertised!r} is not supported "
                f"(this server speaks version {SCHEMA_VERSION})"
            )
            payload = wire.error_payload(exc)
            payload["schema_version"] = SCHEMA_VERSION
            self._json_response(writer, 409, payload)
            return
        try:
            payload = json.loads(body) if body else {}
            # every /v1 body is an object; a bare scalar/array would turn
            # each ``payload.get`` downstream into a 500
            if not isinstance(payload, dict):
                raise ValueError(
                    f"request body must be a JSON object, got {type(payload).__name__}"
                )
        except (ValueError, RecursionError) as exc:
            # ValueError covers JSONDecodeError and the UnicodeDecodeError a
            # non-UTF-8 body raises; RecursionError is a deeply-nested body
            # blowing the parser's stack — all hostile requests, all 400
            self._json_response(
                writer, 400, wire.error_payload(ValueError(f"invalid JSON body: {exc}"))
            )
            return
        path, _, query = path.partition("?")
        params = {k: v[-1] for k, v in parse_qs(query).items()}
        try:
            await self._route(method, path, params, payload, writer)
        except SchemaVersionError as exc:
            self._json_response(writer, 409, wire.error_payload(exc))
        except _CLIENT_ERRORS as exc:
            self._json_response(writer, 400, wire.error_payload(exc))
        except Exception as exc:  # noqa: BLE001 - crash becomes a visible 500
            self._json_response(writer, 500, wire.error_payload(exc))

    async def _route(
        self,
        method: str,
        path: str,
        params: Mapping[str, str],
        payload: Any,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        route = (method, path)
        if route == ("GET", "/v1/healthz"):
            from repro.api.registry import available_backends
            from repro.ir.workloads import TABLE_II

            self._json_response(
                writer,
                200,
                {
                    "status": "ok",
                    "schema_version": SCHEMA_VERSION,
                    "backends": list(available_backends()),
                    "workloads": sorted(TABLE_II),
                    "array": wire.array_to_dict(self.session.array),
                    # 0 = the job queue is disabled; coordinators use this to
                    # pick the evaluate_many fallback without a probe 503
                    "max_jobs": max(0, self.max_queued_jobs),
                    # the session's process-pool size: capacity-aware sweep
                    # coordinators weight per-server inflight by this
                    "workers": max(0, getattr(self.session, "workers", 0)),
                },
            )
        elif route == ("GET", "/v1/cache/stats"):
            # counters only, but stats() takes the memo-cache lock — which a
            # flushing executor thread can hold for seconds on a big cache
            stats = await loop.run_in_executor(None, self.session.cache_stats)
            self._json_response(writer, 200, stats)
        elif route == ("GET", "/v1/cache"):
            cache = self.session.cache
            # dump + serialize on the executor: a big memo cache must not
            # stall the event loop (and every other in-flight request)
            body = await loop.run_in_executor(
                None,
                lambda: json.dumps(
                    {"sections": cache.dump() if cache is not None else {}}
                ).encode(),
            )
            writer.write(
                (
                    "HTTP/1.1 200 OK\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "\r\n"
                ).encode()
                + body
            )
        elif route == ("POST", "/v1/cache/flush"):
            await loop.run_in_executor(None, self.session.flush)
            self._json_response(writer, 200, {"flushed": True})
        elif route == ("POST", "/v1/evaluate"):
            request = DesignRequest.from_dict(payload)
            result = await loop.run_in_executor(None, self.session.evaluate, request)
            self._json_response(writer, 200, result.to_dict())
        elif route == ("POST", "/v1/evaluate_many"):
            requests = payload.get("requests")
            if not isinstance(requests, list):
                raise ValueError('evaluate_many body needs a "requests" list')
            results = await loop.run_in_executor(
                None, self.session.evaluate_many, requests
            )
            self._json_response(
                writer, 200, {"results": [r.to_dict() for r in results]}
            )
        elif route == ("POST", "/v1/evaluate_names"):
            statement = wire.instantiate_statement(payload)
            names = payload.get("names") or []
            bound = int(payload.get("bound", 1))
            limit = int(payload.get("limit", 24))
            array = (
                wire.array_from_dict(payload["array"]) if payload.get("array") else None
            )
            engine = self.session.engine_for(array)
            rows = await loop.run_in_executor(
                None,
                lambda: engine.evaluate_names(
                    statement, names, bound=bound, limit=limit
                ),
            )
            import dataclasses

            self._json_response(
                writer,
                200,
                {"results": [[name, dataclasses.asdict(r)] for name, r in rows]},
            )
        elif route == ("POST", "/v1/explore"):
            await self._explore_stream(payload, writer)
        elif route == ("POST", "/v1/jobs"):
            self._submit_job(payload, writer)
        elif route == ("GET", "/v1/jobs"):
            self._json_response(
                writer, 200, {"jobs": [job.snapshot() for job in self.jobs.values()]}
            )
        elif method == "GET" and path.startswith("/v1/jobs/") and path.endswith("/rows"):
            job_id = path[len("/v1/jobs/") : -len("/rows")]
            await self._job_rows_stream(job_id, params, writer)
        elif method in ("GET", "DELETE") and path.startswith("/v1/jobs/"):
            self._job_detail(method, path.rsplit("/", 1)[1], params, writer)
        else:
            self._json_response(
                writer,
                404,
                {"error": f"no route {method} {path}", "error_type": "LookupError"},
            )

    # -- streaming explore ----------------------------------------------
    async def _explore_stream(
        self, payload: Mapping[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        # validate everything *before* the headers go out: errors here are
        # clean JSON responses, errors mid-stream become an "error" row
        statement = wire.instantiate_statement(payload)
        array = (
            wire.array_from_dict(payload["array"]) if payload.get("array") else None
        )
        options = _engine_options(payload)
        engine = self.session.engine_for(array)

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=256)
        stats = EvaluationStats()

        def produce() -> None:
            """Runs on an executor thread; backpressured by the queue."""
            try:
                # workers=0: explore streams point-by-point for lowest
                # first-row latency; pooled chunk streaming is the *job*
                # path, where throughput matters more than latency
                for point in engine.stream(statement, stats=stats, workers=0, **options):
                    asyncio.run_coroutine_threadsafe(
                        queue.put(("row", wire.point_to_row(point))), loop
                    ).result()
                asyncio.run_coroutine_threadsafe(queue.put(("end", None)), loop).result()
            except BaseException as exc:  # noqa: BLE001 - travels as an error row
                asyncio.run_coroutine_threadsafe(
                    queue.put(("error", f"{type(exc).__name__}: {exc}")), loop
                ).result()

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
        )
        start_row = {
            "row": "start",
            "schema_version": SCHEMA_VERSION,
            "workload": statement.name,
            "array": wire.array_to_dict(array or self.session.array),
        }
        self._write_chunk(writer, json.dumps(start_row).encode() + b"\n")
        producer = loop.run_in_executor(None, produce)
        try:
            while True:
                kind, value = await queue.get()
                if kind == "row":
                    self._write_chunk(writer, json.dumps(value).encode() + b"\n")
                    await writer.drain()
                elif kind == "error":
                    error_row = {"row": "error", "reason": value}
                    self._write_chunk(writer, json.dumps(error_row).encode() + b"\n")
                    break
                else:
                    break
        finally:
            # keep draining while the producer finishes: if this handler is
            # bailing early (client hung up), a backpressured producer would
            # otherwise block on a full queue forever
            while not producer.done():
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:
                    await asyncio.sleep(0.005)
            await producer
        self._write_chunk(writer, json.dumps(wire.stats_to_row(stats)).encode() + b"\n")
        writer.write(b"0\r\n\r\n")

    # -- jobs -------------------------------------------------------------
    def _submit_job(self, payload: Mapping[str, Any], writer) -> None:
        items = wire.job_items(payload)  # validates the workloads list shape
        _engine_options(payload)  # validate option names up front
        for flag in ("include_rows", "stream_rows"):
            if not isinstance(payload.get(flag, False), bool):
                raise ValueError(f'"{flag}" must be a boolean')
        submit_key = payload.get("submit_key")
        if submit_key is not None and not isinstance(submit_key, str):
            raise ValueError('"submit_key" must be a string')
        if submit_key is not None:
            # idempotent resubmission: a client that lost the response to a
            # submit retries with the same key and gets the original job
            # back instead of enqueueing a duplicate sweep
            for existing in self.jobs.values():
                if existing.payload.get("submit_key") == submit_key:
                    self._json_response(writer, 202, {"job": existing.snapshot()})
                    return
        for item in items:
            wire.instantiate_statement(item)
        configs = payload.get("configs") or []
        for config in configs:
            wire.array_from_dict(config)
        if len(items) * max(1, len(configs)) > wire.MAX_JOB_ITEMS:
            # job_items caps the list; the workload x config product can
            # still smuggle an unbounded sweep past the queue bound
            raise ValueError(
                f"job expands to {len(items) * max(1, len(configs))} "
                f"(workload x config) items; jobs are capped at "
                f"{wire.MAX_JOB_ITEMS}"
            )
        if self.max_queued_jobs <= 0:
            # a server run with --max-jobs 0 has no job capacity at all;
            # the same 503 contract as a full queue, reported up front
            self._json_response(
                writer,
                503,
                {
                    "error": "job queue disabled on this server (--max-jobs 0)",
                    "error_type": "RuntimeError",
                },
            )
            return
        assert self._job_queue is not None, "service not started"
        job = Job(
            id=f"job-{next(self._job_ids)}",
            payload=dict(payload),
            total_items=len(items) * max(1, len(configs)),
            keep_rows=bool(
                payload.get("include_rows") or payload.get("stream_rows")
            ),
        )
        try:
            self._job_queue.put_nowait(job)
        except asyncio.QueueFull:
            self._json_response(
                writer,
                503,
                {
                    "error": (
                        f"job queue full ({self.max_queued_jobs} queued); "
                        "retry after a poll shows capacity"
                    ),
                    "error_type": "RuntimeError",
                },
            )
            return
        self.jobs[job.id] = job
        # the header entry is what makes submit_key dedup survive a restart:
        # replay rebuilds the job (payload included) before any retried POST
        # can reach the dedup scan above
        self._journal_append(
            job,
            "job",
            {
                "schema_version": SCHEMA_VERSION,
                "id": job.id,
                "payload": job.payload,
                "total_items": job.total_items,
                "keep_rows": job.keep_rows,
            },
        )
        self._prune_jobs()
        self._json_response(writer, 202, {"job": job.snapshot()})

    @staticmethod
    def _since_param(params: Mapping[str, str]) -> int | None:
        raw = params.get("since")
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            raise ValueError(
                f'"since" must be an integer row cursor, got {raw!r}'
            ) from None

    def _job_detail(
        self, method: str, job_id: str, params: Mapping[str, str], writer
    ) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            self._json_response(
                writer,
                404,
                {"error": f"no such job {job_id!r}", "error_type": "LookupError"},
            )
            return
        if method == "DELETE":
            # report *where* the cancel landed: a queued job dies immediately,
            # a running one stops cooperatively after its current design
            if job.status == "queued":
                job.cancel_requested = True
                job.cancelled_while = "queued"
                job.status = "cancelled"
                job.done.set()
                self._journal_end(job)
                self._poke_rows_streams()
            elif job.status == "running":
                job.cancel_requested = True
                job.cancelled_while = "running"
        self._json_response(
            writer, 200, {"job": job.snapshot(since=self._since_param(params))}
        )

    async def _job_rows_stream(
        self, job_id: str, params: Mapping[str, str], writer: asyncio.StreamWriter
    ) -> None:
        """``GET /v1/jobs/<id>/rows``: long-poll the row log as chunked NDJSON.

        Mirrors ``/v1/explore`` framing — a ``start`` row, then every job row
        from the ``since`` cursor on *as the job produces them*, then an
        ``end`` row carrying the job's terminal status and the final cursor.
        A ``since`` beyond the log (a cursor from a previous life of this job
        id) restarts from row 0: flagged as ``cursor_reset`` on the ``start``
        row when the job is already terminal, or — when a *running* job later
        ends short of the cursor — as a mid-stream ``{"row": "reset"}`` frame
        before the rows replay.

        While the job is live but producing nothing (queued behind other
        jobs, or mid-evaluation on a slow design), the stream heartbeats a
        ``{"row": "keepalive", "status": ..., "rows_total": ...}`` frame
        every ``?keepalive=<seconds>`` of silence (default
        :attr:`rows_keepalive`), so consumers can run an idle timeout that
        distinguishes a slow job from a dead connection.  ``keepalive=0``
        disables the heartbeat.
        """
        job = self.jobs.get(job_id)
        if job is None:
            self._json_response(
                writer,
                404,
                {"error": f"no such job {job_id!r}", "error_type": "LookupError"},
            )
            return
        if not job.keep_rows:
            raise ValueError(
                f"job {job_id!r} was not submitted with stream_rows/include_rows; "
                "there is no row log to stream"
            )
        cursor = max(0, self._since_param(params) or 0)
        raw_keepalive = params.get("keepalive")
        try:
            keepalive = (
                self.rows_keepalive if raw_keepalive is None else float(raw_keepalive)
            )
        except ValueError:
            raise ValueError(
                f'"keepalive" must be a number of seconds, got {raw_keepalive!r}'
            ) from None
        # never heartbeat faster than the drain tick; <= 0 disables entirely
        keepalive = max(keepalive, 0.02) if keepalive > 0 else 0.0
        start_row = {
            "row": "start",
            "schema_version": SCHEMA_VERSION,
            "id": job.id,
            "status": job.status,
        }
        if cursor > len(job.rows) and job.status not in ("running", "queued"):
            # a terminal job can never grow past the stale cursor; a live one
            # may still reach it, so only terminal states reset eagerly
            start_row["cursor_reset"] = True
            cursor = 0
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
        )
        self._write_chunk(writer, json.dumps(start_row).encode() + b"\n")
        last_sent = time.monotonic()
        assert self._rows_wake is not None
        while True:
            # the doorbell is cleared BEFORE the state checks: a poke that
            # lands between check and wait leaves the event set, so the wait
            # below returns immediately instead of missing the wakeup
            self._rows_wake.clear()
            # capture terminal-ness BEFORE draining: the runner thread only
            # flips status after its last row is appended, so a drain that
            # follows a terminal observation is guaranteed complete (checking
            # after the drain could break with final rows still unshipped)
            terminal = job.status in ("done", "failed", "cancelled")
            if terminal and cursor > len(job.rows):
                # the job ended short of a stale cursor (a previous life of
                # this id): a live stream cannot amend its start row, so the
                # reset travels as its own frame, then the full log replays
                self._write_chunk(writer, json.dumps({"row": "reset"}).encode() + b"\n")
                cursor = 0
            total = len(job.rows)  # snapshot: rows only grows
            progressed = cursor < total
            if progressed:
                # one chunk per drain, not per row: the NDJSON framing is
                # line-based, so clients split lines wherever chunks land
                self._write_chunk(
                    writer,
                    b"".join(
                        json.dumps(job.rows[i]).encode() + b"\n"
                        for i in range(cursor, total)
                    ),
                )
                cursor = total
            now = time.monotonic()
            if progressed:
                last_sent = now
            elif not terminal and keepalive and now - last_sent >= keepalive:
                heartbeat = {
                    "row": "keepalive",
                    "status": job.status,
                    "rows_total": len(job.rows),
                }
                self._write_chunk(writer, json.dumps(heartbeat).encode() + b"\n")
                last_sent = now
            await writer.drain()
            if terminal:
                break
            if progressed:
                # micro-batch: after a productive drain, let the burst
                # accumulate for one pace interval instead of waking per
                # appended row — the evaluator keeps the GIL and the rows
                # ship as a few fat chunks.  The job's terminal event cuts
                # the pause short, so the end frame never waits out a pace.
                try:
                    await asyncio.wait_for(job.done.wait(), self.rows_drain_pace)
                except asyncio.TimeoutError:
                    pass
                continue
            # event-driven: the runner rings _rows_wake on every appended row
            # and status flip, so rows push the moment they exist; the timeout
            # only paces keepalive heartbeats (and is a safety net against a
            # poke lost to a torn-down loop)
            wait = 0.25 if not keepalive else max(0.01, keepalive - (now - last_sent))
            try:
                await asyncio.wait_for(self._rows_wake.wait(), min(wait, 0.25))
            except asyncio.TimeoutError:
                pass
        end_row = {"row": "end", "status": job.status, "rows_total": len(job.rows)}
        if job.error is not None:
            end_row["error"] = job.error
        # the terminal snapshot (per-item records, stats) rides the end frame:
        # a streaming consumer closes its books without a follow-up poll
        end_row["job"] = job.snapshot()
        self._write_chunk(writer, json.dumps(end_row).encode() + b"\n")
        writer.write(b"0\r\n\r\n")

    def _journal_append(self, job: Job, kind: str, fields: Mapping[str, Any]) -> None:
        """Queue one journal entry for ``job`` (no-op without ``journal_dir``).

        Memory-only and thread-safe: callable from the loop thread (submit,
        cancel, terminal flips) and from the job runner's executor thread
        (rows, records) alike; the pacer task does the actual file I/O.
        """
        if self._journal is not None:
            self._journal.append(job.id, kind, fields)

    def _journal_end(self, job: Job) -> None:
        """Queue a job's terminal journal entry."""
        self._journal_append(
            job,
            "end",
            {
                "status": job.status,
                "error": job.error,
                "cancelled_while": job.cancelled_while,
            },
        )

    def _prune_jobs(self) -> None:
        """Drop the oldest finished jobs beyond ``max_kept_jobs``."""
        finished = [
            job_id
            for job_id, job in self.jobs.items()
            if job.status in ("done", "failed", "cancelled")
        ]
        for job_id in finished[: max(0, len(self.jobs) - self.max_kept_jobs)]:
            del self.jobs[job_id]
            if self._journal is not None:
                # compaction: a pruned terminal job's journal is deleted on
                # the next flush tick, bounding --journal-dir to the same
                # max_kept_jobs window as the in-memory job table
                self._journal.discard(job_id)

    def _poke_rows_streams(self) -> None:
        """Ring the ``/rows`` doorbell, from any thread (no-op before start)."""
        loop, event = self._loop, self._rows_wake
        if loop is None or event is None:
            return
        if event.is_set():
            # already rung and not yet drained — the drain clears the bell
            # *before* reading the row log, so it will see this append too;
            # skipping the re-ring keeps a row burst at one wakeup syscall
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # loop already closed mid-shutdown; nothing left to wake

    async def _run_jobs(self) -> None:
        assert self._job_queue is not None
        loop = asyncio.get_running_loop()
        while True:
            job = await self._job_queue.get()
            if job.status == "cancelled" or job.cancel_requested:
                job.status = "cancelled"
                job.done.set()
                self._poke_rows_streams()
                continue
            job.status = "running"
            try:
                completed = await loop.run_in_executor(None, self._run_sweep_job, job)
            except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            else:
                if completed:
                    job.status = "done"
                else:
                    job.status = "cancelled"
                    if job.cancelled_while is None:
                        job.cancelled_while = "running"
            self._journal_end(job)
            if self._journal is not None:
                # make the terminal state durable before /rows end frames can
                # report it: a crash after the flip then replays as terminal,
                # never as a silently re-runnable job
                await loop.run_in_executor(None, self._journal.flush)
            job.done.set()
            self._poke_rows_streams()

    def _run_sweep_job(self, job: Job) -> bool:
        """Execute one sweep job; returns False when cancelled mid-run.

        Each (config, workload) item streams through the session's engine —
        the same :meth:`~repro.explore.engine.EvaluationEngine.stream` path
        as ``/v1/explore``, pooled when the session has ``workers`` — and,
        when the job keeps rows, every design lands in :attr:`Job.rows` *as
        it is evaluated*, tagged with its job-global ``seq`` cursor and its
        ``item`` index.  That row log is what ``GET /v1/jobs/<id>?since=``
        and the ``/rows`` long-poll serve incrementally while the job runs.

        Cancellation is cooperative at *design* granularity: the flag is
        checked between evaluations — including once more after the last
        design, so a DELETE that lands during the final item still reports
        ``cancelled`` — and a cancelled job keeps the per-item records it
        finished (an aborted item's partial rows stay in the log; its record
        is never appended).  With ``include_rows`` each finished record also
        embeds its rows (points first, then failures, both in enumeration
        order) — the pre-cursor fold-in contract, kept for clients that want
        one self-contained terminal snapshot.
        """
        payload = job.payload
        configs = [wire.array_from_dict(c) for c in payload.get("configs") or []] or [
            None
        ]
        options = _engine_options(payload)
        include_rows = bool(payload.get("include_rows", False))
        items = wire.job_items(payload)
        # journal resume state: a job rebuilt from a crashed run skips every
        # item whose record survived, and adopts the in-flight item's
        # journaled rows instead of re-evaluating their designs
        completed_items: set[int] = set()
        replay_by_item: dict[int, list[dict[str, Any]]] = {}
        if job.resumed:
            completed_items = {int(rec.get("item", -1)) for rec in job.results}
            for row in job.rows:
                replay_by_item.setdefault(int(row.get("item", -1)), []).append(row)
        item_index = -1
        for config in configs:
            engine = self.session.engine_for(config)
            for item in items:
                item_index += 1
                if item_index in completed_items:
                    continue  # record (and rows) already adopted from journal
                if job.cancel_requested:
                    return False
                statement = wire.instantiate_statement(item)
                stats = EvaluationStats()
                points: list = []
                failures: list = []
                replay = replay_by_item.get(item_index, ())
                for row in replay:
                    # adopt the journaled design verbatim — deterministic
                    # enumeration means re-running it would produce this exact
                    # row, so decoding it back to a point IS the evaluation
                    point = wire.row_to_point(row, statement)
                    (points if point.ok else failures).append(point)
                job.replayed_rows += len(replay)
                if replay:
                    # resume mid-item: skip the already-journaled prefix of
                    # the design space (enumeration is cheap; evaluation is
                    # what the journal saves) and stream only the remainder
                    remainder = itertools.islice(
                        engine.iter_space(statement, stats=stats, **options),
                        len(replay),
                        None,
                    )
                    stream = engine.stream(
                        statement,
                        specs=remainder,
                        stats=stats,
                        seq_start=len(job.rows),
                    )
                else:
                    # seq_start aligns every point's engine seq with its
                    # position in the job-global row log, so row["seq"] IS
                    # the cursor
                    stream = engine.stream(
                        statement, stats=stats, seq_start=len(job.rows), **options
                    )
                for point in stream:
                    (points if point.ok else failures).append(point)
                    if job.keep_rows:
                        row = wire.point_to_row(point)
                        row["item"] = item_index
                        job.rows.append(row)
                        self._journal_append(job, "row", row)
                        self._poke_rows_streams()
                    if job.cancel_requested:
                        return False
                stats.skipped = len(failures)
                result = EvaluationResult(
                    workload=statement.name,
                    array=engine.array,
                    points=points,
                    failures=failures,
                    stats=stats,
                )
                record = {
                    "workload": result.workload,
                    "array": wire.array_to_dict(result.array),
                    "item": item_index,
                    "points": len(result.points),
                    "failures": len(result.failures),
                    "stats": {
                        k: v
                        for k, v in wire.stats_to_row(result.stats).items()
                        if k != "row"
                    },
                    "best": [wire.point_to_row(p) for p in result.best(5)],
                    "pareto": [p.name for p in result.pareto()],
                }
                if include_rows:
                    record["rows"] = [
                        wire.point_to_row(p) for p in result.points
                    ] + [wire.point_to_row(p) for p in result.failures]
                job.results.append(record)
                self._journal_append(job, "record", record)
        return not job.cancel_requested


class ServiceThread:
    """Run an :class:`EvaluationService` on a daemon thread (tests/benchmarks).

    Usage::

        with ServiceThread(LocalSession(ArrayConfig(rows=8, cols=8))) as srv:
            remote = RemoteSession(srv.url)
            ...

    ``url`` carries the actual bound port (``port=0`` picks an ephemeral one).
    """

    def __init__(
        self,
        session: LocalSession | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_kwargs,
    ):
        self.session = session if session is not None else LocalSession()
        self.host = host
        self.port = port
        self.url: str | None = None
        self.service: EvaluationService | None = None
        self._service_kwargs = service_kwargs
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("service thread did not start within 60s")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures only
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.service = EvaluationService(self.session, **self._service_kwargs)
        server = await self.service.start(self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self.url = f"http://{self.host}:{self.port}"
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.service.close()

    def stop(self) -> None:
        """Shut the service down; idempotent (tests kill servers mid-sweep
        and the context manager stops them again on exit)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # the loop already exited
                pass
        if self._thread is not None:
            self._thread.join(timeout=60)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
