"""Distributed sweep coordination over the evaluation-service job API.

One ``repro serve`` gives location transparency; this module gives *scale*:
:class:`SweepCoordinator` partitions a workload x array-config sweep across
any number of live servers and folds the answers back into the exact
``list[EvaluationResult]`` a single :meth:`LocalSession.sweep
<repro.api.session.LocalSession.sweep>` would return — same order, same
metrics, same failure rows — so benchmarks and examples run unmodified
against one machine or five.

How a sweep runs
----------------

1. **Partition** — the (config, workload) grid is enumerated configs-major
   (the local result order) and grouped into *shards* of up to
   ``shard_size`` items sharing one config.  Shards are the unit of
   dispatch, retry and reassignment; ``shard_size > 1`` amortizes job-queue
   overhead on fleets with many small workloads.
2. **Dispatch** — the whole fleet is ``/v1/healthz``-probed *concurrently*
   (a hung server delays startup by one timeout, not N), then the sweep
   runs event-driven on one asyncio loop: each server gets one worker lane
   per unit of advertised capacity (healthz ``workers``, bounded by its
   ``max_jobs`` queue; ``max_inflight`` otherwise), and each lane pulls the
   next assignable shard and submits it as one ``POST /v1/jobs`` job with
   ``stream_rows=True`` — so a big machine's queue stays fed while a
   laptop is never swamped, and no lane ever waits on another server.
3. **Stream + fold** — each inflight job's row log is *pushed* over its own
   ``GET /v1/jobs/<id>/rows`` long-poll (an :class:`~repro.service.client
   .AsyncRemoteSession` stream that auto-resumes with the last folded
   ``seq`` and heartbeats ``keepalive`` frames through idle stretches).
   Every row crosses a bounded :class:`asyncio.Queue` into the *single*
   folder lane, which rebuilds real :class:`DesignPoint` objects in wire
   order — fold work overlaps evaluation across the whole fleet, yet stays
   single-threaded and bit-identical to a local sweep.  The terminal poll
   just closes the books (per-item stats) instead of re-shipping the
   design list; a ``cursor_reset`` (the server no longer recognizes the
   cursor) drops the shard's partial fold and rebuilds from the replay.
4. **Fallback** — a server that answers 503 (job queue full, or started
   with ``--max-jobs 0``) is not dead, it just has no job capacity: the
   shard's design space is enumerated coordinator-side and shipped as
   chunked ``evaluate_many`` batches of explicit ``selection``+``stt``
   perf/cost request pairs instead.
5. **Reassign** — a server that stops answering (killed mid-sweep,
   connection refused/reset, a row stream that dies and cannot resume) —
   or that *restarted* and forgot the job — forfeits the shard *the moment
   its consumer fails*, not at the next poll round: the partial fold is
   discarded (stale queued rows are dropped by an attempt-epoch tag) and
   the shard goes back in the queue, excluded from the dead server, to run
   elsewhere.  A shard that keeps failing raises after ``max_retries``
   reassignments — work is never silently dropped.  Every
   retry/reassignment is surfaced through the ``on_event`` hook
   (``repro sweep --verbose``).  With ``restart_grace > 0`` reassignment
   becomes the *last* resort: a crashed server is first probed until the
   grace deadline, and when it comes back with its jobs rebuilt from
   ``--journal-dir``, the row stream resumes from the last consumed ``seq``
   (``job_resumed`` event) — the partial fold and every already-evaluated
   design survive the crash with zero repeated evaluations.
6. **Cache fold** — when the coordinator owns a :class:`MemoCache`, each
   surviving server's memo cache is pulled over ``GET /v1/cache`` and merged
   in, so the *next* sweep starts warm without shipping cache files around.

:class:`CoordinatedSession` wraps the coordinator in the full
:class:`~repro.api.protocol.SessionProtocol` surface: ``sweep()`` fans out,
everything else (``evaluate``, ``evaluate_many``, ``explore``,
``evaluate_names``) rides a healthy server with automatic failover.  The CLI
front door is ``repro sweep --url A --url B ...``.

Usage::

    from repro.service import CoordinatedSession

    with CoordinatedSession(
        ["http://node-a:8321", "http://node-b:8321"], cache="warm.json"
    ) as session:
        results = session.sweep(["gemm", "depthwise_conv"])   # sharded
        print(session.coordinator.last_report)
"""

from __future__ import annotations

import asyncio
import functools
import http.client
import inspect
import os
import uuid
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.api.protocol import SessionBase
from repro.api.types import DesignRequest, EvalResult
from repro.cost.model import CostParams
from repro.explore.engine import (
    DesignPoint,
    EvaluationEngine,
    EvaluationResult,
    EvaluationStats,
    MemoCache,
)
from repro.ir.einsum import Statement
from repro.perf.model import ArrayConfig
from repro.service import wire
from repro.service.client import RemoteSession
from repro.service.wire import ServiceBusyError

__all__ = ["SweepCoordinator", "CoordinatedSession"]

#: Transport failures that mean "this server is gone", triggering shard
#: reassignment.  HTTPException covers a server dying *mid-response*
#: (IncompleteRead/BadStatusLine escape the client's retry loop once its
#: budget is spent).  ServiceBusyError is deliberately *not* here — a 503
#: server answered, it just has no job capacity.
_SERVER_LOST = (ConnectionError, OSError, http.client.HTTPException)

#: What kills a row-stream consumer: everything in ``_SERVER_LOST`` plus the
#: stream-specific deaths — EOF mid-chunk (``IncompleteReadError``) and an
#: idle timeout that outlived the keepalive heartbeat.  (``TimeoutError`` is
#: an ``OSError`` subclass on modern Pythons; listed for clarity.)
_STREAM_LOST = (
    ConnectionError,
    OSError,
    EOFError,
    asyncio.TimeoutError,
    http.client.HTTPException,
)


@dataclass
class _ShardItem:
    """One (config, workload) sweep item and its incrementally folded rows."""

    index: int  # position in the folded result list (configs-major)
    statement: Statement
    payload: dict[str, Any]  # wire statement payload: workload name + extents
    points: list[DesignPoint] = field(default_factory=list)
    failures: list[DesignPoint] = field(default_factory=list)

    def fold(self, point: DesignPoint) -> None:
        # renumber to per-item emission order: job rows carry the job-global
        # cursor seq, local results number each run from 1
        point.seq = len(self.points) + len(self.failures) + 1
        (self.points if point.ok else self.failures).append(point)

    def reset(self) -> None:
        self.points.clear()
        self.failures.clear()


@dataclass
class _Shard:
    """A group of same-config sweep items dispatched as one job."""

    config: ArrayConfig  # always explicit: server defaults never leak in
    items: list[_ShardItem]
    attempts: int = 0
    excluded: set[int] = field(default_factory=set)  # server indices
    cursor: int = 0  # job-row seq already folded (the ?since= value)
    #: set by the folder once the shard's results are closed; queued events
    #: arriving after (or from a forfeited attempt — see the epoch tag each
    #: event carries) are dropped instead of folded
    done: bool = False

    def describe(self) -> str:
        return "+".join(item.payload["workload"] for item in self.items)

    def reset_fold(self) -> None:
        """Drop partially folded rows (reassignment / cursor reset)."""
        self.cursor = 0
        for item in self.items:
            item.reset()


@dataclass
class _Server:
    """A coordinator's view of one ``repro serve`` instance."""

    index: int
    url: str
    session: RemoteSession
    healthy: bool = True
    jobs_ok: bool = True  # False after a 503 (or a healthz max_jobs == 0)
    probed: bool = False
    #: Weighted inflight bound from the healthz probe (``None`` until probed:
    #: fall back to the coordinator's ``max_inflight``).
    capacity: int | None = None
    inflight: dict[str, _Shard] = field(default_factory=dict)  # job id -> shard
    completed: int = 0
    #: serializes this server's *sync* session calls (submit / terminal poll /
    #: fallback): ``http.client`` holds one socket per session.  Rebound to a
    #: fresh :class:`asyncio.Lock` by every sweep (locks are loop-bound).
    lock: asyncio.Lock | None = field(default=None, repr=False)


class _SweepState:
    """The mutable hub one sweep's worker/folder tasks share.

    Everything here lives on the sweep's event loop: ``pending`` is the
    shard work queue, ``queue`` the bounded fold funnel (every row crosses
    it, so folding stays single-lane), ``wake`` the "new work may be
    assignable" doorbell, ``done`` the sweep-over latch, and ``fatal`` the
    first error that should surface to the caller.
    """

    def __init__(
        self,
        shards: Sequence[_Shard],
        results: list,
        options: Mapping[str, Any],
        fold_queue: int,
    ):
        self.pending: deque[_Shard] = deque(shards)
        self.results = results
        self.options = options
        self.remaining = len(shards)
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=fold_queue)
        self.wake = asyncio.Event()
        self.done = asyncio.Event()
        self.fatal: BaseException | None = None
        self.active = 0  # shards a worker lane is on *right now*
        self.live_workers = 0
        self.queue_peak = 0

    def fail(self, exc: BaseException) -> None:
        if self.fatal is None:
            self.fatal = exc
        self.finish()

    def finish(self) -> None:
        self.done.set()
        self.wake.set()

    def complete_shard(self) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            self.finish()
        else:
            self.wake.set()


class SweepCoordinator:
    """Partition ``sweep()`` across several evaluation servers (see module docs).

    Parameters
    ----------
    urls:
        Base URLs of live ``repro serve`` instances (at least one).
    array / width / cost_params / sram_words:
        The platform every shard is evaluated on — shipped explicitly with
        each job, so the servers' own defaults never leak into results.
    cache:
        A :class:`MemoCache` (or JSON path) that remote caches fold into
        after each sweep; ``None`` skips cache pulling.
    shard_size:
        Sweep items per job (default 1).  Items grouped into one shard share
        a config and ride one ``/v1/jobs`` submission, amortizing queue and
        poll overhead on fleets with many small workloads; folded results
        are bit-identical whatever the grouping.
    max_inflight:
        Baseline jobs in flight per server (the rest queue
        coordinator-side).  A server whose ``/v1/healthz`` advertises a
        process pool (``workers > 1``) is weighted up to ``workers`` inflight
        jobs instead, bounded by its ``max_jobs`` queue depth — capacity-aware
        sharding: beefy servers stay fed, small ones are never swamped.
        Each inflight unit is one concurrent worker lane on the sweep's
        event loop, holding one job's row stream open end to end.
    max_retries:
        Reassignments per shard before the sweep raises.
    poll_interval:
        Seconds an idle worker lane sleeps before re-checking for
        assignable work (a safety-net cadence; the normal path is
        event-driven via the wake doorbell).
    fallback_chunk:
        Requests per ``evaluate_many`` call on the 503 fallback path.
    fold_queue:
        Bound of the row queue between the per-job stream consumers and the
        single folder lane (default 256 events).  Under backpressure — a
        slow ``on_row`` hook, or a fold briefly behind a fast fleet —
        consumers block on the queue instead of buffering unboundedly;
        ``last_report["fold_queue_peak"]`` records the high-water mark.
    stream_keepalive:
        Idle seconds between server keepalive heartbeats on each row
        stream (the ``?keepalive=`` parameter).  Consumers allow five
        missed heartbeats (``5 * stream_keepalive``) of total silence
        before declaring the connection dead and resuming/reassigning;
        ``0`` disables both the heartbeat and the idle timeout.
    restart_grace:
        Seconds to wait for a crashed server to come back before forfeiting
        its shards (default ``0``: forfeit immediately — the pre-journal
        behavior).  With a grace, a dead row stream probes the server until
        the deadline; if the job answers again (rebuilt from ``--journal-dir``
        across a restart), the long-poll resumes from the last *consumed*
        ``seq`` with a ``job_resumed`` event and **zero repeated
        evaluations** — the partial fold survives.  A server that answers
        but no longer knows the job gets the shard resubmitted under the
        *same* ``submit_key`` (same attempt), so the replacement job's
        deterministic rows realign with the live cursor instead of resetting
        the fold.  Only past the deadline does the legacy
        reassign-and-re-run path take over.
    on_row:
        Optional per-row hook, called by the folder lane with each folded
        :class:`DesignPoint` (coroutine functions are awaited — they apply
        backpressure through the bounded queue).  Benchmarks use it to
        timestamp time-to-first-row.
    on_event:
        Optional observer for dispatch-loop events; called with one dict per
        event (``{"event": "reassigned" | "server_lost" | "fallback" |
        "cursor_reset" | "job_vanished" | "job_resumed", ...}``).
        ``repro sweep --verbose`` prints these; exceptions from the hook
        are the caller's problem.
    session_factory:
        ``url -> RemoteSession``-like, for tests that inject failures;
        defaults to building :class:`RemoteSession` with this coordinator's
        platform and ``timeout``/``retries``/``backoff``.
    """

    def __init__(
        self,
        urls: Sequence[str],
        *,
        array: ArrayConfig | None = None,
        width: int = 16,
        cost_params: CostParams | None = None,
        sram_words: int = 32768,
        cache: MemoCache | str | os.PathLike | None = None,
        shard_size: int = 1,
        max_inflight: int = 2,
        max_retries: int = 2,
        poll_interval: float = 0.05,
        fallback_chunk: int = 64,
        fold_queue: int = 256,
        stream_keepalive: float = 2.0,
        restart_grace: float = 0.0,
        timeout: float = 300.0,
        retries: int = 2,
        backoff: float = 0.1,
        on_event: Callable[[dict[str, Any]], None] | None = None,
        on_row: Callable[[DesignPoint], Any] | None = None,
        session_factory: Callable[[str], RemoteSession] | None = None,
    ):
        urls = list(urls)
        if not urls:
            raise ValueError("SweepCoordinator needs at least one server URL")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if fold_queue < 1:
            raise ValueError(f"fold_queue must be >= 1, got {fold_queue}")
        if restart_grace < 0:
            raise ValueError(f"restart_grace must be >= 0, got {restart_grace}")
        self.array = array or ArrayConfig()
        self.width = width
        self.cost_params = cost_params
        self.sram_words = sram_words
        if isinstance(cache, (str, os.PathLike)):
            cache = MemoCache(cache)
        self.cache = cache
        self.shard_size = shard_size
        self.max_inflight = max_inflight
        self.max_retries = max_retries
        self.poll_interval = poll_interval
        self.fallback_chunk = fallback_chunk
        self.fold_queue = fold_queue
        self.stream_keepalive = stream_keepalive
        self.restart_grace = restart_grace
        self.on_event = on_event
        self.on_row = on_row
        self._executor: ThreadPoolExecutor | None = None
        if session_factory is None:

            def session_factory(url: str) -> RemoteSession:
                return RemoteSession(
                    url,
                    array=self.array,
                    width=width,
                    cost_params=cost_params,
                    sram_words=sram_words,
                    timeout=timeout,
                    retries=retries,
                    backoff=backoff,
                )

        self.servers = [
            _Server(index=i, url=url, session=session_factory(url))
            for i, url in enumerate(urls)
        ]
        #: Counters from the most recent :meth:`sweep` call.
        self.last_report: dict[str, int] = {}

    # -- the public entry point -----------------------------------------
    def sweep(
        self,
        workloads: Sequence[Statement | str],
        configs: Sequence[ArrayConfig] | None = None,
        **engine_options,
    ) -> list[EvaluationResult]:
        """Run ``workloads`` x ``configs`` across the servers, configs-major.

        The returned list is deterministic and identical to
        ``LocalSession(array, ...).sweep(workloads, configs, ...)`` on one
        machine — regardless of how shards landed on servers, which servers
        died, or which shards rode the 503 fallback.

        The signature is synchronous; the dispatch/stream/fold machinery
        runs on a private event loop under :func:`asyncio.run` (so this must
        not be called from inside a running loop — use a thread for that).
        """
        options = wire.engine_options({"options": engine_options})
        config_list: list[ArrayConfig] = (
            list(configs) if configs is not None else [self.array]
        )
        shards = self._partition(workloads, config_list)
        total_items = sum(len(shard.items) for shard in shards)
        self.last_report = {
            "shards": len(shards),
            "items": total_items,
            "servers": len(self.servers),
            "jobs": 0,
            "fallbacks": 0,
            "reassigned": 0,
            "servers_lost": 0,
            "rows_streamed": 0,
            "fold_queue_peak": 0,
            "resumed": 0,
            "rows_replayed": 0,
        }
        if not shards:
            return []
        # repro-lint: waive[RA007] the token only namespaces job submit_keys for retry dedup; it never reaches a folded row, so folds stay bit-identical regardless of its value
        self._sweep_token = uuid.uuid4().hex  # scopes job submit_keys
        for server in self.servers:
            # a sweep starts with a clean slate: a server that was full
            # (503) or unreachable during the *last* sweep may have
            # recovered — the probe re-checks cheaply, and real deaths are
            # re-discovered in one connect attempt
            server.inflight.clear()
            server.healthy = True
            server.jobs_ok = True
            server.probed = False
            server.capacity = None
        for shard in shards:
            shard.done = False
        results: list[EvaluationResult | None] = [None] * total_items
        asyncio.run(self._sweep_async(shards, results, options))
        self._fold_caches()
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # -- the event loop ---------------------------------------------------
    async def _sweep_async(
        self,
        shards: Sequence[_Shard],
        results: list[EvaluationResult | None],
        options: Mapping[str, Any],
    ) -> None:
        """One sweep's pipelined run: probe, spawn lanes, fold, settle.

        Structure: ``capacity`` worker-lane tasks per job-capable server
        (one lane per 503/fallback server) each submit a shard, consume its
        row stream end to end and repeat; every consumed row is funneled —
        tagged with its shard's attempt epoch — through the bounded fold
        queue into the single folder task.  Sync client calls (submit,
        terminal poll, fallback batches) run on a thread-pool executor,
        serialized per server by its lock; the streams themselves are
        native-async and cost no threads.
        """
        state = _SweepState(shards, results, options, self.fold_queue)
        loop = asyncio.get_running_loop()
        # own executor (not the loop default): sweep teardown must not block
        # on a thread stuck in a slow connect to a hung server
        self._executor = ThreadPoolExecutor(
            max_workers=len(self.servers) + 4,
            thread_name_prefix="repro-sweep",
        )
        try:
            # satellite of the pipelined design: probe the whole fleet at
            # once — a hung server costs one timeout, not one per server
            await asyncio.gather(
                *(
                    loop.run_in_executor(self._executor, self._probe, server)
                    for server in self.servers
                )
            )
            if not self._healthy_servers():
                raise RuntimeError(
                    f"sweep failed: all {len(self.servers)} servers are gone "
                    f"with {len(state.pending)} shard(s) unfinished"
                )
            folder = asyncio.create_task(self._folder(state))
            workers: list[asyncio.Task] = []
            for server in self._healthy_servers():
                server.lock = asyncio.Lock()
                lanes = self._inflight_limit(server) if server.jobs_ok else 1
                for lane in range(lanes):
                    workers.append(
                        asyncio.create_task(self._worker(server, lane, state))
                    )
            state.live_workers = len(workers)
            await state.done.wait()
            for task in workers:
                task.cancel()
            folder.cancel()
            await asyncio.gather(*workers, folder, return_exceptions=True)
            if state.fatal is not None:
                raise state.fatal
            self.last_report["fold_queue_peak"] = state.queue_peak
        finally:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    async def _blocking(self, fn: Callable[[], Any]) -> Any:
        """Run one sync client call on the sweep's executor."""
        assert self._executor is not None
        return await asyncio.get_running_loop().run_in_executor(self._executor, fn)

    async def _worker(self, server: _Server, lane: int, state: _SweepState) -> None:
        """One dispatch lane: pull an assignable shard, run it, repeat.

        Lanes exit when the sweep settles, their server dies, or — for all
        but lane 0 — when the server turns out to have no job capacity (the
        sync ``evaluate_many`` fallback runs one shard at a time per server,
        so spare lanes returning keeps those shards available to the rest of
        the fleet).  The last lane out with work remaining declares the
        fleet dead.
        """
        try:
            while not state.done.is_set():
                if not server.healthy:
                    return
                if not server.jobs_ok and lane > 0:
                    return
                shard = self._take_assignable(state.pending, server)
                if shard is None:
                    if state.active == 0 and state.pending:
                        # nothing running anywhere and nothing assignable:
                        # every survivor is on some shard's exclusion list.
                        # Relax the exclusions (the attempts budget still
                        # bounds retries) rather than idling forever.
                        if self._relax_exclusions(state):
                            continue
                    state.wake.clear()
                    if state.done.is_set():
                        return
                    try:
                        await asyncio.wait_for(state.wake.wait(), self.poll_interval)
                    except asyncio.TimeoutError:
                        pass
                    continue
                state.active += 1
                try:
                    await self._run_shard(server, shard, state)
                finally:
                    state.active -= 1
                    state.wake.set()
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — surfaces as the sweep error
            state.fail(exc)
        finally:
            state.live_workers -= 1
            if state.live_workers <= 0 and not state.done.is_set():
                state.fail(
                    RuntimeError(
                        f"sweep failed: all {len(self.servers)} servers are "
                        f"gone with {state.remaining} shard(s) unfinished"
                    )
                )

    def _relax_exclusions(self, state: _SweepState) -> bool:
        healthy = {s.index for s in self._healthy_servers()}
        relaxed = False
        for shard in state.pending:
            if not (healthy - shard.excluded):
                shard.excluded -= healthy
                relaxed = True
        return relaxed

    async def _run_shard(
        self, server: _Server, shard: _Shard, state: _SweepState
    ) -> None:
        """Submit one shard as a job and consume it, or ride the fallback."""
        epoch = shard.attempts
        if server.jobs_ok:
            submit = functools.partial(
                server.session.submit_job,
                # one {"workload", "extents"} payload per item: items keep
                # their own problem sizes inside a grouped shard
                [dict(item.payload) for item in shard.items],
                configs=[shard.config],
                stream_rows=True,
                # unique per (sweep, shard, attempt): a transport retry of
                # this submit can never double-enqueue, while a real
                # reassignment gets a fresh job
                submit_key=(
                    f"{self._sweep_token}:{shard.items[0].index}:{shard.attempts}"
                ),
                **state.options,
            )
            try:
                assert server.lock is not None
                async with server.lock:
                    job = await self._blocking(submit)
            except ServiceBusyError:
                # alive but out of job capacity: remember, fall through
                # (_fallback emits the observer event)
                server.jobs_ok = False
            except _SERVER_LOST:
                self._lose_server(server, shard, state)
                return
            else:
                server.inflight[job["id"]] = shard
                self.last_report["jobs"] += 1
                await self._consume_job(server, shard, job["id"], epoch, state)
                return
        try:
            assert server.lock is not None
            async with server.lock:
                await self._blocking(
                    functools.partial(
                        self._fallback, server, shard, state.results, state.options
                    )
                )
        except _SERVER_LOST:
            self._lose_server(server, shard, state)
            return
        server.completed += 1
        self.last_report["fallbacks"] += 1
        shard.done = True
        state.complete_shard()

    async def _consume_job(
        self,
        server: _Server,
        shard: _Shard,
        job_id: str,
        epoch: int,
        state: _SweepState,
    ) -> None:
        """Drive one job's row stream into the fold queue, end to end.

        The stream (``RemoteSession.job_rows_async`` — the test injection
        point) already resumes dropped connections with the last seen
        ``seq``; what reaches here unrecoverable means the server is gone.
        Rows are queued under this attempt's epoch so a forfeited attempt's
        leftovers can never fold; the ``end`` frame carries the terminal
        snapshot (per-item stats), which rides the queue behind every row
        it must follow — a poll round-trip happens only as the fallback
        for streams that end without one.

        With ``restart_grace`` set, a dead stream is not an immediate
        forfeit: the server is probed until the grace deadline, and a job
        that answers again — rebuilt from its ``--journal-dir`` across a
        restart — resumes the long-poll from the last seq *this consumer*
        enqueued (not ``shard.cursor``: rows still crossing the fold queue
        must not be fetched twice), keeping the partial fold and every
        journaled evaluation.  A live server that forgot the job gets it
        resubmitted under the original ``submit_key`` (same attempt): dedup
        returns the rebuilt job when the journal survived, and otherwise the
        replacement job's deterministic rows realign with the held cursor —
        the long-poll simply waits for the re-run to catch up.
        """
        idle_timeout = (
            5 * self.stream_keepalive if self.stream_keepalive > 0 else None
        )
        cursor = shard.cursor
        status: str | None = None
        error: str | None = None
        snapshot: Mapping[str, Any] | None = None
        resumes = 0
        while True:
            stream = server.session.job_rows_async(
                job_id,
                since=cursor,
                keepalive=self.stream_keepalive,
                idle_timeout=idle_timeout,
            )
            try:
                async for frame in stream:
                    kind = frame.get("row")
                    if kind == "start":
                        if frame.get("cursor_reset"):
                            cursor = 0
                            await self._enqueue(
                                state, ("reset", shard, epoch, server.url)
                            )
                        continue
                    if kind == "reset":
                        cursor = 0
                        await self._enqueue(state, ("reset", shard, epoch, server.url))
                        continue
                    if kind == "keepalive":
                        continue
                    if kind == "end":
                        status = frame.get("status")
                        error = frame.get("error")
                        # the server sends the terminal snapshot on the end
                        # frame (records + stats, no rows) — stream consumers
                        # close the shard without a follow-up poll round-trip
                        snapshot = frame.get("job")
                        break
                    if "seq" in frame:
                        cursor = int(frame["seq"])
                    await self._enqueue(state, ("row", shard, epoch, frame))
            except _STREAM_LOST:
                server.inflight.pop(job_id, None)
                if self._may_resume(resumes):
                    verdict = await self._await_restart(server, job_id)
                    if verdict == "resume":
                        resumes += 1
                        server.inflight[job_id] = shard
                        self._note_resume(server, shard, job_id, cursor)
                        continue
                    if verdict == "resubmit":
                        new_id = await self._resubmit_job(server, shard, state)
                        if new_id is not None:
                            resumes += 1
                            self._emit(
                                "job_vanished",
                                server=server.url,
                                job=job_id,
                                shard=shard.describe(),
                            )
                            job_id = new_id
                            server.inflight[job_id] = shard
                            self._note_resume(server, shard, job_id, cursor)
                            continue
                self._lose_server(server, shard, state)
                return
            except LookupError:
                # the server answered but no longer knows the job — it
                # restarted (or pruned it)
                server.inflight.pop(job_id, None)
                if self._may_resume(resumes):
                    new_id = await self._resubmit_job(server, shard, state)
                    if new_id is not None:
                        resumes += 1
                        self._emit(
                            "job_vanished",
                            server=server.url,
                            job=job_id,
                            shard=shard.describe(),
                        )
                        job_id = new_id
                        server.inflight[job_id] = shard
                        self._note_resume(server, shard, job_id, cursor)
                        continue
                # without a grace (or past the resume budget) the row cursor
                # is void too: re-run from scratch
                self._vanish(server, shard, job_id, state)
                return
            break  # the stream finished (end frame, or ran dry)
        server.inflight.pop(job_id, None)
        if status == "done":
            if snapshot is None or "results" not in snapshot:
                # end frame without the embedded snapshot (an injected test
                # stream, or an older server): fall back to a terminal poll
                poll = functools.partial(server.session.poll_job, job_id, since=cursor)
                try:
                    assert server.lock is not None
                    async with server.lock:
                        snapshot = await self._blocking(poll)
                except _SERVER_LOST:
                    self._lose_server(server, shard, state)
                    return
                except LookupError:
                    self._vanish(server, shard, job_id, state)
                    return
            server.completed += 1
            # the zero-repeats meter: journaled rows the server adopted
            # instead of re-evaluating (snapshot["replayed_rows"] is only
            # present on a journal-resumed job)
            self.last_report["rows_replayed"] += int(
                (snapshot or {}).get("replayed_rows") or 0
            )
            await self._enqueue(state, ("finish", shard, epoch, (server.url, snapshot)))
        elif status in ("failed", "cancelled"):
            shard.reset_fold()
            # prefer a different server for the retry (the failure may be
            # server-local: OOM, bad env) — but only when an eligible one
            # exists, else the retry budget would be spent with the shard
            # stuck unassignable
            if any(
                s.index != server.index and s.index not in shard.excluded
                for s in self._healthy_servers()
            ):
                shard.excluded.add(server.index)
            self._requeue(
                shard, state, reason=error or f"job {status} on {server.url}"
            )
        else:
            # the stream ended without a terminal frame (an injected test
            # stream ran dry, or the client spent its resume budget)
            self._lose_server(server, shard, state)

    async def _enqueue(self, state: _SweepState, event: tuple) -> None:
        """Queue one fold event; blocks when the folder is ``fold_queue`` behind."""
        await state.queue.put(event)
        depth = state.queue.qsize()
        if depth > state.queue_peak:
            state.queue_peak = depth

    # -- crash/restart resume (restart_grace > 0) -------------------------
    def _may_resume(self, resumes: int) -> bool:
        """Whether this consumer may try another in-place resume."""
        return self.restart_grace > 0 and resumes < max(1, self.max_retries)

    def _note_resume(
        self, server: _Server, shard: _Shard, job_id: str, cursor: int
    ) -> None:
        self.last_report["resumed"] += 1
        self._emit(
            "job_resumed",
            server=server.url,
            job=job_id,
            shard=shard.describe(),
            since=cursor,
        )

    async def _await_restart(self, server: _Server, job_id: str) -> str:
        """Probe a dead server until ``restart_grace`` runs out.

        Returns ``"resume"`` when the job answers again (the journal rebuilt
        it across the restart), ``"resubmit"`` when the server is back but
        the job is gone, ``"dead"`` once the grace deadline passes with the
        server still unreachable.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.restart_grace
        pause = min(0.25, max(self.restart_grace / 10, 0.02))
        while True:
            probe = functools.partial(server.session.job, job_id)
            try:
                assert server.lock is not None
                async with server.lock:
                    await self._blocking(probe)
            except LookupError:
                return "resubmit"
            except _SERVER_LOST:
                if loop.time() >= deadline:
                    return "dead"
                await asyncio.sleep(pause)
                continue
            return "resume"

    async def _resubmit_job(
        self, server: _Server, shard: _Shard, state: _SweepState
    ) -> str | None:
        """Resubmit a vanished job under its *original* submit key.

        Same sweep token, same shard, same attempt: a journal-rebuilt job
        dedups straight back to its old id, and a genuinely lost one is
        re-enqueued as a fresh job whose deterministic rows carry the same
        seqs — either way the caller keeps its fold and cursor.  Returns the
        job id, or ``None`` when the server cannot take the job (busy or
        gone again), letting the caller fall back to the legacy forfeit.
        """
        submit = functools.partial(
            server.session.submit_job,
            [dict(item.payload) for item in shard.items],
            configs=[shard.config],
            stream_rows=True,
            submit_key=(
                f"{self._sweep_token}:{shard.items[0].index}:{shard.attempts}"
            ),
            **state.options,
        )
        try:
            assert server.lock is not None
            async with server.lock:
                job = await self._blocking(submit)
        except ServiceBusyError:
            return None
        except _SERVER_LOST:
            return None
        self.last_report["jobs"] += 1
        return job["id"]

    async def _folder(self, state: _SweepState) -> None:
        """The single fold lane.

        Every row, cursor reset and shard completion crosses the bounded
        queue into this one task, in wire order per shard — that is the
        whole bit-identity argument: however many streams feed the queue
        concurrently, folds happen exactly as a local sweep would make
        them, and an event tagged with a stale attempt epoch (its shard was
        reassigned after the event was queued) is dropped, never folded.
        """
        try:
            while True:
                kind, shard, epoch, payload = await state.queue.get()
                if shard.done or shard.attempts != epoch:
                    continue
                if kind == "row":
                    item = shard.items[int(payload["item"])]
                    point = wire.row_to_point(payload, item.statement)
                    item.fold(point)
                    shard.cursor = int(payload.get("seq", shard.cursor + 1))
                    self.last_report["rows_streamed"] += 1
                    if self.on_row is not None:
                        outcome = self.on_row(point)
                        if inspect.isawaitable(outcome):
                            await outcome
                elif kind == "reset":
                    shard.reset_fold()
                    self._emit("cursor_reset", server=payload, shard=shard.describe())
                else:  # "finish": the terminal snapshot closes the books
                    server_url, snapshot = payload
                    self._fold_rows(server_url, shard, snapshot)
                    self._finish_shard(shard, snapshot, state.results)
                    shard.done = True
                    state.complete_shard()
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — surfaces as the sweep error
            state.fail(exc)

    # -- partitioning ----------------------------------------------------
    def _partition(
        self, workloads: Sequence[Statement | str], configs: Sequence[ArrayConfig]
    ) -> list[_Shard]:
        """Group the configs-major item grid into shards of ``shard_size``.

        Items in one shard always share a config (a job ships exactly one
        array config), so grouping never crosses a config boundary; result
        indices are assigned before grouping, which is what keeps the folded
        list order independent of ``shard_size``.
        """
        prepared: list[tuple[Statement, dict[str, Any]]] = []
        for workload in workloads:
            payload = wire.statement_payload(workload)
            statement = (
                workload
                if isinstance(workload, Statement)
                else wire.instantiate_statement(payload)
            )
            prepared.append((statement, payload))
        shards: list[_Shard] = []
        index = 0
        for config in configs:
            items: list[_ShardItem] = []
            for statement, payload in prepared:
                items.append(
                    _ShardItem(index=index, statement=statement, payload=payload)
                )
                index += 1
            for start in range(0, len(items), self.shard_size):
                shards.append(
                    _Shard(config=config, items=items[start : start + self.shard_size])
                )
        return shards

    # -- dispatch ---------------------------------------------------------
    def _healthy_servers(self) -> list[_Server]:
        return [s for s in self.servers if s.healthy]

    def _emit(self, event: str, **fields: Any) -> None:
        """Feed the ``on_event`` observer (``repro sweep --verbose``)."""
        if self.on_event is not None:
            self.on_event({"event": event, **fields})

    def _probe(self, server: _Server) -> None:
        """One-time capability check per sweep.

        A ``--max-jobs 0`` server skips the job path up front instead of
        eating a probe 503 per shard; a server advertising a process pool
        (healthz ``workers``) gets a *weighted* inflight bound — up to
        ``workers`` jobs in flight, clamped by its ``max_jobs`` queue depth —
        so per-server load follows advertised capacity instead of blind
        round-robin."""
        if server.probed:
            return
        server.probed = True
        try:
            info = server.session._call("GET", "/v1/healthz")
        except _SERVER_LOST:
            self._lose_server(server)
            return
        max_jobs = info.get("max_jobs")
        if max_jobs == 0:
            server.jobs_ok = False
        capacity = self.max_inflight
        workers = info.get("workers")
        if isinstance(workers, int) and workers > capacity:
            capacity = workers
        if isinstance(max_jobs, int) and 0 < max_jobs < capacity:
            capacity = max_jobs
        server.capacity = max(1, capacity)

    def _inflight_limit(self, server: _Server) -> int:
        return server.capacity if server.capacity is not None else self.max_inflight

    def _take_assignable(
        self, pending: deque[_Shard], server: _Server
    ) -> _Shard | None:
        """Pop the first pending shard this server may run (FIFO otherwise)."""
        for _ in range(len(pending)):
            shard = pending.popleft()
            if server.index not in shard.excluded:
                return shard
            pending.append(shard)
        return None

    def _fold_rows(
        self, server_url: str, shard: _Shard, snapshot: Mapping[str, Any]
    ) -> bool:
        """Fold a snapshot's row page into the shard's items (folder lane).

        On the pipelined path, rows travel the stream and the terminal
        snapshot rides the end frame with no row page at all — so this
        normally folds nothing.  It exists for the fallback terminal poll
        (``since=<last folded seq>``): a job re-run between the stream's
        end and that poll answers ``cursor_reset`` with the full row list,
        and this rebuild keeps the fold exact.
        """
        if snapshot.get("cursor_reset"):
            # the job behind this id was re-run (or the log restarted):
            # whatever was folded so far may not prefix the new log — drop
            # it and rebuild from the full row list this snapshot carries
            shard.reset_fold()
            self._emit("cursor_reset", server=server_url, shard=shard.describe())
        rows = snapshot.get("rows") or ()
        for row in rows:
            item = shard.items[int(row["item"])]
            item.fold(wire.row_to_point(row, item.statement))
        shard.cursor = int(snapshot.get("rows_total", shard.cursor + len(rows)))
        self.last_report["rows_streamed"] += len(rows)
        return bool(rows)

    def _finish_shard(
        self,
        shard: _Shard,
        snapshot: Mapping[str, Any],
        results: list[EvaluationResult | None],
    ) -> None:
        """Close the books on a done job: per-item stats + folded rows."""
        records = snapshot["results"]
        if len(records) != len(shard.items):
            raise RuntimeError(
                f"job for shard {shard.describe()!r} returned {len(records)} "
                f"record(s) for {len(shard.items)} item(s)"
            )
        for item, record in zip(shard.items, records):
            results[item.index] = EvaluationResult(
                workload=record["workload"],
                array=wire.array_from_dict(record["array"]),
                points=item.points,
                failures=item.failures,
                stats=wire.row_to_stats(record["stats"]),
            )

    # -- failure handling -------------------------------------------------
    def _lose_server(
        self,
        server: _Server,
        shard: _Shard | None = None,
        state: _SweepState | None = None,
    ) -> None:
        """Mark a server dead and requeue the caller's shard.

        Only the *caller's* shard is requeued: every other shard inflight on
        the dead server has its own consumer task, which observes the death
        itself (stream reset, failed terminal poll, or the idle timeout) —
        per-consumer requeue is what makes a shard impossible to requeue
        twice.  The fold/attempt bookkeeping here runs without an await
        point, so the folder can never interleave with a half-forfeited
        shard.
        """
        if server.healthy:
            server.healthy = False
            self.last_report["servers_lost"] += 1
            self._emit("server_lost", server=server.url)
        if shard is not None and not shard.done:
            shard.excluded.add(server.index)
            shard.reset_fold()  # partial rows from the dead server are void
            if state is not None:
                self._requeue(shard, state, reason=f"server {server.url} unreachable")
        if (
            state is not None
            and not state.done.is_set()
            and state.remaining > 0
            and not self._healthy_servers()
        ):
            state.fail(
                RuntimeError(
                    f"sweep failed: all {len(self.servers)} servers are gone "
                    f"with {state.remaining} shard(s) unfinished"
                )
            )

    def _vanish(
        self, server: _Server, shard: _Shard, job_id: str, state: _SweepState
    ) -> None:
        """A live server forgot the job: void the cursor, re-run from scratch."""
        shard.reset_fold()
        self._emit(
            "job_vanished", server=server.url, job=job_id, shard=shard.describe()
        )
        self._requeue(
            shard,
            state,
            reason=f"job {job_id} vanished on {server.url} (server restarted?)",
        )

    def _requeue(self, shard: _Shard, state: _SweepState, *, reason: str) -> None:
        shard.attempts += 1
        if shard.attempts > self.max_retries:
            raise RuntimeError(
                f"shard {shard.describe()!r} failed after "
                f"{shard.attempts} attempt(s): {reason}"
            )
        self.last_report["reassigned"] += 1
        self._emit(
            "reassigned",
            shard=shard.describe(),
            attempt=shard.attempts,
            reason=reason,
        )
        state.pending.append(shard)
        # repro-lint: waive[RA004] every caller that passes a state runs on the loop; the probe thread reaches _lose_server with state=None only, so this set() never executes off-loop
        state.wake.set()

    # -- the 503 fallback -------------------------------------------------
    def _fallback(
        self,
        server: _Server,
        shard: _Shard,
        results: list[EvaluationResult | None],
        options: Mapping[str, Any],
    ) -> None:
        """Run one shard through chunked ``evaluate_many`` instead of a job."""
        self._emit("fallback", server=server.url, shard=shard.describe())
        for item in shard.items:
            results[item.index] = self._fallback_item(
                server, shard.config, item, options
            )

    def _fallback_item(
        self,
        server: _Server,
        config: ArrayConfig,
        item: _ShardItem,
        options: Mapping[str, Any],
    ) -> EvaluationResult:
        """Run one sweep item through chunked ``evaluate_many``.

        The design space is enumerated coordinator-side (models never run
        here), memo-probed against the coordinator's own fold cache, and the
        misses ship as explicit ``selection``+``stt`` perf/cost request
        pairs.  Pairing reproduces the engine's short-circuit semantics — a
        perf rejection is a ``"perf"``-stage failure whatever the cost model
        said — so the folded result is point-for-point identical to the job
        path and to a local ``sweep()``.  Outcomes land in the fold cache's
        engine sections (``spaces``/``points``), exactly like a local run's
        would, so fallback shards warm future sweeps too.
        """
        engine = EvaluationEngine(
            config,
            width=self.width,
            cost_params=self.cost_params,
            sram_words=self.sram_words,
            cache=self.cache,
            autoflush=False,  # _fold_caches flushes once at the end
        )
        stats = EvaluationStats()
        statement = item.statement
        # (spec, memo-hit outcome or None, cache put-key or None), in order
        probed: list[tuple] = []
        for spec in engine.iter_space(statement, stats=stats, **options):
            outcome, key = engine._lookup(statement, spec, stats)
            probed.append((spec, outcome, key))

        requests: list[DesignRequest] = []
        for spec, outcome, _key in probed:
            if outcome is not None:
                continue
            base = dict(
                workload=item.payload["workload"],
                extents=item.payload["extents"],
                selection=list(spec.selected),
                stt=[list(row) for row in spec.stt.matrix],
                array=config,
                width=self.width,
                cost=self.cost_params,
                sram_words=self.sram_words,
            )
            requests.append(DesignRequest(backend="perf", **base))
            requests.append(DesignRequest(backend="cost", **base))

        answers: list[EvalResult] = []
        for start in range(0, len(requests), self.fallback_chunk):
            answers.extend(
                server.session.evaluate_many(
                    requests[start : start + self.fallback_chunk]
                )
            )

        points: list[DesignPoint] = []
        failures: list[DesignPoint] = []
        pairs = zip(answers[0::2], answers[1::2])
        for spec, outcome, key in probed:
            if outcome is None:
                perf, cost = next(pairs)
                rejected = perf if not perf.ok else (cost if not cost.ok else None)
                if rejected is not None:
                    outcome = (
                        "fail",
                        rejected.failure_stage or "perf",
                        rejected.failure_reason or "rejected",
                    )
                else:
                    outcome = (
                        "ok",
                        perf["normalized_perf"],
                        perf["cycles"],
                        cost["area_mm2"],
                        cost["power_mw"],
                    )
                stats.evaluated += 1
                if key is not None:
                    engine.cache.put("points", key, list(outcome))
            point = engine._point_from_outcome(spec, outcome)
            point.seq = len(points) + len(failures) + 1  # emission order
            (points if point.ok else failures).append(point)
        stats.skipped = len(failures)
        return EvaluationResult(
            workload=statement.name,
            array=config,
            points=points,
            failures=failures,
            stats=stats,
        )

    # -- cache folding ----------------------------------------------------
    def _fold_caches(self) -> None:
        """Pull each surviving server's memo cache into the local one."""
        if self.cache is None:
            return
        folded = 0
        for server in self._healthy_servers():
            try:
                payload = server.session.cache_pull()
            except _SERVER_LOST:
                continue  # a server may die between its last shard and here
            added = self.cache.merge_from(MemoCache.from_payload(payload))
            folded += sum(added.values())
        self.last_report["cache_entries_folded"] = folded
        # force=True: even a fold with nothing new (cache-less servers)
        # leaves a valid cache file where the caller asked for one
        self.cache.flush(force=True)

    def close(self) -> None:
        for server in self.servers:
            server.session.close()

    def __repr__(self) -> str:
        urls = ", ".join(s.url for s in self.servers)
        return f"SweepCoordinator([{urls}], {self.array.rows}x{self.array.cols})"


class CoordinatedSession(SessionBase):
    """A fleet of evaluation servers behind the one-session surface.

    Conforms to :class:`~repro.api.protocol.SessionProtocol`, so every
    consumer written against the protocol — the CLI, the benchmarks, the
    examples — runs unmodified against one machine or five:

    - :meth:`sweep` fans out through the :class:`SweepCoordinator`
      (capacity-weighted job sharding with ``shard_size`` item grouping,
      incremental row streaming, reassignment, 503 fallback, cache
      fold-in — see the coordinator's docs and ``docs/deployment.md``);
    - :meth:`evaluate` / :meth:`evaluate_names` / :meth:`explore` ride one
      healthy server, failing over to the next when it dies;
    - :meth:`evaluate_many` round-robins request chunks across the healthy
      servers (with per-chunk failover) and reassembles in request order.

    ``cache`` is the *local fold target*: after each ``sweep()`` the
    surviving servers' memo caches are pulled and merged into it, so it
    warms up exactly like a LocalSession cache would.  Keyword arguments
    beyond the platform ones (``shard_size``, ``max_inflight``,
    ``on_event`` ...) pass through to :class:`SweepCoordinator`.
    """

    def __init__(
        self,
        urls: Sequence[str],
        *,
        array: ArrayConfig | None = None,
        width: int = 16,
        cost_params: CostParams | None = None,
        sram_words: int = 32768,
        cache: MemoCache | str | os.PathLike | None = None,
        **coordinator_kwargs,
    ):
        super().__init__(
            array, width=width, cost_params=cost_params, sram_words=sram_words
        )
        self.coordinator = SweepCoordinator(
            urls,
            array=self.array,
            width=width,
            cost_params=cost_params,
            sram_words=sram_words,
            cache=cache,
            **coordinator_kwargs,
        )
        self.cache = self.coordinator.cache

    # -- failover plumbing ------------------------------------------------
    def _failover(self, fn: Callable[[RemoteSession], Any]) -> Any:
        """Run ``fn`` against the first healthy server, failing over in order."""
        return self._failover_over(self.coordinator.servers, fn)

    # -- SessionProtocol --------------------------------------------------
    def evaluate(
        self,
        request: DesignRequest | str,
        dataflow: str | None = None,
        **request_kwargs,
    ) -> EvalResult:
        """One design on any healthy server (requests are self-contained)."""
        request = self._coerce_request(request, dataflow, request_kwargs)
        return self._failover(lambda session: session.evaluate(request))

    def evaluate_many(
        self, requests: Sequence[DesignRequest | Mapping[str, Any]]
    ) -> list[EvalResult]:
        """Batch evaluation, chunks round-robined across healthy servers."""
        reqs = self._coerce_requests(requests)
        if not reqs:
            return []
        chunk = max(1, self.coordinator.fallback_chunk)
        results: list[EvalResult | None] = [None] * len(reqs)
        for i, start in enumerate(range(0, len(reqs), chunk)):
            batch = reqs[start : start + chunk]
            # rotate the preferred server per chunk so a big batch spreads
            # across the fleet; _failover still covers the death of any one
            servers = self.coordinator.servers
            rotation = servers[i % len(servers) :] + servers[: i % len(servers)]
            outcome = self._failover_over(
                # bind batch now: the lambda may be retried on another server
                # after this loop variable has moved on (flake8-bugbear B023)
                rotation, lambda session, batch=batch: session.evaluate_many(batch)
            )
            results[start : start + len(batch)] = outcome
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _failover_over(
        self, servers: Sequence[_Server], fn: Callable[[RemoteSession], Any]
    ) -> Any:
        """Run ``fn`` against the first healthy server of ``servers``, in order."""
        errors: list[str] = []
        for server in servers:
            if not server.healthy:
                continue
            try:
                return fn(server.session)
            except _SERVER_LOST as exc:
                server.healthy = False
                errors.append(f"{server.url}: {exc}")
        raise ConnectionError(
            "no coordinated evaluation server reachable"
            + (f" ({'; '.join(errors)})" if errors else "")
        )

    def explore(self, workload, **evaluate_kwargs) -> EvaluationResult:
        """One workload's design space, on any healthy server (streamed)."""
        return self._failover(
            lambda session: session.explore(workload, **evaluate_kwargs)
        )

    def sweep(
        self,
        workloads: Sequence[Statement | str],
        configs: Sequence[ArrayConfig] | None = None,
        **evaluate_kwargs,
    ) -> list[EvaluationResult]:
        """The coordinated path: shard across the fleet, fold deterministically."""
        return self.coordinator.sweep(workloads, configs=configs, **evaluate_kwargs)

    def evaluate_names(
        self,
        statement: Statement | str,
        names: Sequence[str],
        *,
        bound: int = 1,
        limit: int = 24,
    ) -> list:
        """Paper dataflow names, scored on any healthy server."""
        return self._failover(
            lambda session: session.evaluate_names(
                statement, names, bound=bound, limit=limit
            )
        )

    def cache_stats(self) -> dict[str, int]:
        """Summed memo-cache counters across the healthy servers."""
        totals: dict[str, int] = {}
        for server in self.coordinator._healthy_servers():
            try:
                stats = server.session.cache_stats()
            except _SERVER_LOST:
                server.healthy = False
                continue
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def flush(self) -> None:
        """Flush the local fold cache and ask every healthy server to persist."""
        if self.cache is not None:
            self.cache.flush()
        for server in self.coordinator._healthy_servers():
            try:
                server.session.flush()
            except _SERVER_LOST:
                server.healthy = False

    def close(self) -> None:
        self.coordinator.close()

    def __exit__(self, *exc_info) -> None:
        try:
            self.flush()
        except (ConnectionError, OSError):  # the fleet may already be gone
            pass
        self.close()

    def __repr__(self) -> str:
        n = len(self.coordinator.servers)
        return (
            f"CoordinatedSession({n} server(s), "
            f"{self.array.rows}x{self.array.cols}, width={self.width})"
        )
