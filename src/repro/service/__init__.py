"""The async evaluation service: location-transparent sessions over HTTP/JSON.

PR 2 made every evaluation a versioned, JSON-round-trippable
``DesignRequest``/``EvalResult`` pair; this package is the payoff — the same
:class:`~repro.api.protocol.SessionProtocol` surface served over the wire:

- :class:`~repro.service.server.EvaluationService` — a stdlib-asyncio
  HTTP/1.1 server exposing ``/v1/evaluate``, ``/v1/evaluate_many``,
  ``/v1/explore`` (NDJSON streaming), ``/v1/jobs`` (bounded sweep queue
  with an incremental per-design row log: ``?since=`` cursor polls and a
  ``/rows`` NDJSON long-poll) and ``/v1/cache/stats``, run via
  ``repro serve`` — the full wire reference is ``docs/service-api.md``;
- :class:`~repro.service.client.RemoteSession` — the drop-in client: every
  consumer written against :class:`SessionProtocol` runs unmodified against
  a local or a remote session (plus the job helpers ``submit_job`` /
  ``poll_job`` / ``iter_job_rows`` / ``cancel_job``);
- :class:`~repro.service.server.ServiceThread` — in-process embedding for
  tests, benchmarks and examples;
- :class:`~repro.service.coordinator.SweepCoordinator` /
  :class:`~repro.service.coordinator.CoordinatedSession` — shard a
  ``sweep()`` across several servers via the job API (capacity-weighted
  inflight, ``shard_size`` item grouping, incremental row-cursor folding,
  failure reassignment and an ``evaluate_many`` fallback) and fold the
  results and memo caches back together, via ``repro sweep --url A --url B``
  — the fleet runbook is ``docs/deployment.md``.

Quickstart::

    # machine A
    $ python -m repro.cli serve --host 0.0.0.0 --port 8321 --cache memo.json

    # machine B (or the same one)
    from repro.service import RemoteSession
    with RemoteSession("http://machine-a:8321") as session:
        print(session.evaluate("gemm", "MNK-SST"))
        print(session.explore("gemm").pareto())
"""

from repro.service.client import AsyncRemoteSession, RemoteSession
from repro.service.coordinator import CoordinatedSession, SweepCoordinator
from repro.service.server import EvaluationService, ServiceThread
from repro.service.wire import ServiceBusyError

__all__ = [
    "AsyncRemoteSession",
    "CoordinatedSession",
    "EvaluationService",
    "RemoteSession",
    "ServiceBusyError",
    "ServiceThread",
    "SweepCoordinator",
]
