"""Wire-format helpers shared by the service server and the remote client.

The service speaks exactly the versioned JSON the API layer already defines
(:class:`~repro.api.types.DesignRequest` / :class:`~repro.api.types.EvalResult`
with ``schema_version``); this module adds the few shapes that are service
specific and must be identical on both ends:

- **statement payloads** — a Table II workload name plus its loop extents, the
  serializable identity of a :class:`~repro.ir.einsum.Statement` (arbitrary
  statements cannot travel; the design-space endpoints accept exactly what
  the CLI accepts);
- **NDJSON rows** — the streamed ``/v1/explore`` records: one ``start`` row,
  then a ``point``/``failure`` row per design *as it is produced*, then one
  ``stats`` row.  Points round-trip losslessly: the ``(selection, STT)`` pair
  reconstructs the exact :class:`DataflowSpec` client-side;
- **error payloads** — exceptions cross the wire as
  ``{"error", "error_type"}`` and are re-raised client-side as the matching
  built-in type, so ``RemoteSession`` surfaces the same ``LookupError`` /
  ``ValueError`` / :class:`SchemaVersionError` a ``LocalSession`` would;
- **job journal entries** — the durable-job NDJSON log (``repro serve
  --journal-dir``): one ``job`` header entry per submission, then every wire
  row and per-item record *as produced*, then one terminal ``end`` entry.
  :func:`decode_journal` tolerates a torn final line (the crash-consistency
  contract of an append-only log) and :func:`replay_journal` folds the
  entries back into the exact field set a server needs to rebuild the
  ``Job`` after a hard restart.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping, NoReturn

from repro.api.types import SchemaVersionError
from repro.core.dataflow import DataflowSpec
from repro.core.enumerate import EnumerationStats
from repro.core.stt import STT
from repro.explore.engine import (
    DesignFailure,
    DesignPoint,
    EvaluationStats,
)
from repro.ir import workloads as workload_lib
from repro.ir.einsum import Statement
from repro.perf.model import ArrayConfig

__all__ = [
    "SCHEMA_HEADER",
    "ENGINE_OPTIONS",
    "MAX_BODY_BYTES",
    "MAX_JOB_ITEMS",
    "PayloadTooLargeError",
    "ServiceBusyError",
    "bounded_body",
    "engine_options",
    "statement_payload",
    "instantiate_statement",
    "job_items",
    "array_to_dict",
    "array_from_dict",
    "point_to_row",
    "row_to_point",
    "stats_to_row",
    "row_to_stats",
    "error_payload",
    "raise_remote_error",
    "JOURNAL_SUFFIX",
    "JOURNAL_KINDS",
    "journal_entry",
    "encode_journal_entry",
    "decode_journal",
    "replay_journal",
]

#: Request header carrying the client's wire-format version; the server
#: refuses mismatches up front (409) instead of failing mid-payload.
SCHEMA_HEADER = "X-Repro-Schema"


class ServiceBusyError(RuntimeError):
    """HTTP 503 from the service: a full (or disabled) job queue.

    Distinct from a transport failure — the server is alive and answered —
    so callers (the sweep coordinator in particular) can react by falling
    back to ``evaluate_many`` instead of writing the server off as dead.
    """


class PayloadTooLargeError(ValueError):
    """HTTP 413: a request body larger than the server's buffering ceiling.

    A subclass of :class:`ValueError` so generic client-error handling still
    treats it as a malformed request, while the server can answer with the
    specific status before reading a single body byte.
    """


#: Hard ceiling on the bytes of request body the server will buffer.  The
#: ``/v1`` payloads are workload references and option blocks, not bulk
#: data; anything near this size is a mistake or an attack, and without a
#: ceiling a single ``Content-Length: 1e12`` request makes ``readexactly``
#: buffer attacker-chosen amounts of memory.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Cap on the (workload × config) items one job submission may expand to —
#: the queue holds whole jobs, so an unbounded item list smuggles an
#: unbounded sweep past ``max_queued_jobs``.
MAX_JOB_ITEMS = 1024


def bounded_body(raw: Any, limit: int = MAX_BODY_BYTES) -> int:
    """Validate a ``Content-Length`` value against the body-size ceiling.

    The server's single sanitizer for request-sized allocations: returns the
    length as a bounded ``int``, raising ``ValueError`` on garbage and
    :class:`PayloadTooLargeError` (→ HTTP 413) past ``limit`` — *before* the
    body is read, so an oversized request costs the server nothing.
    """
    try:
        length = int(raw or 0)
    except (TypeError, ValueError):
        raise ValueError(f"invalid Content-Length {raw!r}") from None
    if length < 0:
        raise ValueError(f"negative Content-Length {length}")
    if length > limit:
        raise PayloadTooLargeError(
            f"request body of {length} bytes exceeds this server's "
            f"{limit}-byte limit"
        )
    return length


#: ``options`` keys the design-space endpoints (``/v1/explore``, job
#: payloads) may pass through to the engine.  Everything here is
#: JSON-serializable; ``predicates`` (arbitrary callables) deliberately has
#: no wire identity.
ENGINE_OPTIONS = (
    "one_d_only",
    "selections",
    "bound",
    "per_selection_limit",
    "realizable_only",
    "canonical",
)


def engine_options(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Validate and normalize a payload's engine ``options`` block.

    Shared by the server (validating incoming payloads) and the sweep
    coordinator (validating before anything is submitted), so both ends
    reject the same unknown names with the same message.
    """
    options = payload.get("options") or {}
    unknown = sorted(set(options) - set(ENGINE_OPTIONS))
    if unknown:
        raise ValueError(
            f"unknown explore option(s) {unknown}; known: {sorted(ENGINE_OPTIONS)}"
        )
    out = dict(options)
    if out.get("selections") is not None:
        out["selections"] = [tuple(sel) for sel in out["selections"]]
    return out


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
def statement_payload(
    workload: Statement | str, extents: Mapping[str, int] | None = None
) -> dict[str, Any]:
    """Serialize a workload reference for the design-space endpoints.

    Accepts a Table II name (with optional ``extents`` overrides) or a ready
    :class:`Statement` instantiated from a Table II factory — the same two
    forms ``LocalSession.explore`` takes.  A statement whose name is not a
    Table II entry has no wire identity and is rejected loudly.
    """
    if isinstance(workload, str):
        if workload not in workload_lib.TABLE_II:
            raise KeyError(
                f"unknown workload {workload!r}; known: {sorted(workload_lib.TABLE_II)}"
            )
        return {"workload": workload, "extents": dict(extents or {})}
    statement = workload
    if statement.name not in workload_lib.TABLE_II:
        raise ValueError(
            f"statement {statement.name!r} is not a Table II workload; remote "
            "design-space calls can only ship workloads both ends can "
            f"instantiate by name (known: {sorted(workload_lib.TABLE_II)})"
        )
    if extents:
        raise TypeError("pass extents only with a workload name, not a Statement")
    # a statement's iteration space may name derived loops the factory does
    # not parameterize; only factory-accepted extents are its wire identity
    accepted = workload_lib.accepted_extents(statement.name)
    extent_map = dict(zip(statement.space.names, statement.space.extents))
    return {
        "workload": statement.name,
        "extents": {k: int(v) for k, v in extent_map.items() if k in accepted},
    }


def instantiate_statement(payload: Mapping[str, Any]) -> Statement:
    """Rebuild the :class:`Statement` a :func:`statement_payload` describes.

    Unknown extent keys are rejected (``TypeError``) exactly like
    ``LocalSession.explore`` rejects them — a remote caller must never get
    silently served a different problem size than the one they asked for.
    """
    name = payload["workload"]
    extents = payload.get("extents") or {}
    accepted = workload_lib.accepted_extents(name)  # KeyError names the workload
    unknown = sorted(set(extents) - accepted)
    if unknown:
        raise TypeError(
            f"workload {name!r} does not accept extent(s) {unknown}; "
            f"accepted: {sorted(accepted)}"
        )
    return workload_lib.by_name(name, **{k: int(v) for k, v in extents.items()})


def job_items(payload: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Normalize a job payload's ``workloads`` list into statement payloads.

    Each entry may be a bare Table II name (inheriting the job's top-level
    ``extents``) or a ``{"workload": name, "extents": {...}}`` object carrying
    its own — which is what lets a sweep coordinator group several
    (config, workload) items with *different* problem sizes into one job
    (``shard_size > 1``).  Returns one ``{"workload", "extents"}`` payload per
    item, in job order; the shapes are validated here, the names/extents by
    :func:`instantiate_statement`.
    """
    workloads = payload.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ValueError('job body needs a non-empty "workloads" list')
    if len(workloads) > MAX_JOB_ITEMS:
        raise ValueError(
            f'job "workloads" lists {len(workloads)} items; '
            f"jobs are capped at {MAX_JOB_ITEMS}"
        )
    base_extents = payload.get("extents") or {}
    if not isinstance(base_extents, Mapping):
        raise ValueError('job "extents" must be an object')
    items: list[dict[str, Any]] = []
    for entry in workloads:
        if isinstance(entry, str):
            items.append({"workload": entry, "extents": dict(base_extents)})
            continue
        if not isinstance(entry, Mapping) or not isinstance(
            entry.get("workload"), str
        ):
            raise ValueError(
                '"workloads" entries must be workload names or '
                '{"workload": name, "extents": {...}} objects'
            )
        extents = entry.get("extents")
        if extents is not None and not isinstance(extents, Mapping):
            raise ValueError('a workloads entry "extents" must be an object')
        items.append(
            {
                "workload": entry["workload"],
                "extents": dict(base_extents if extents is None else extents),
            }
        )
    return items


# ----------------------------------------------------------------------
# Array configs
# ----------------------------------------------------------------------
def array_to_dict(array: ArrayConfig) -> dict[str, Any]:
    return dataclasses.asdict(array)


def array_from_dict(payload: Mapping[str, Any]) -> ArrayConfig:
    return ArrayConfig(**payload)


# ----------------------------------------------------------------------
# NDJSON rows (the /v1/explore stream)
# ----------------------------------------------------------------------
def point_to_row(point: DesignPoint) -> dict[str, Any]:
    """One streamed design: metrics for successes, stage+reason for failures.

    ``seq`` (the point's 1-based emission index, when the engine assigned
    one) travels with the row — it is the cursor the incremental job-row
    endpoints (``GET /v1/jobs/<id>?since=`` and ``/v1/jobs/<id>/rows``) page
    on, and lets any stream consumer detect dropped rows.
    """
    row: dict[str, Any] = {
        "row": "point" if point.ok else "failure",
        "selection": list(point.spec.selected),
        "stt": [list(r) for r in point.spec.stt.matrix],
    }
    if point.seq is not None:
        row["seq"] = point.seq
    if point.ok:
        row.update(
            normalized_perf=point.normalized_perf,
            cycles=point.cycles,
            area_mm2=point.area_mm2,
            power_mw=point.power_mw,
        )
    else:
        assert point.failure is not None
        row.update(stage=point.failure.stage, reason=point.failure.reason)
    return row


def row_to_point(row: Mapping[str, Any], statement: Statement) -> DesignPoint:
    """Reconstruct the exact :class:`DesignPoint` a ``point``/``failure`` row encodes."""
    # trusted adoption: the emitting server validated the STT when the
    # design was enumerated, and folding reads only the scalar metrics —
    # this keeps the per-row decode O(parse) on the streaming hot path
    spec = DataflowSpec(statement, tuple(row["selection"]), STT.trusted(row["stt"]))
    seq = row.get("seq")
    if row["row"] == "point":
        return DesignPoint(
            spec=spec,
            normalized_perf=row["normalized_perf"],
            cycles=row["cycles"],
            area_mm2=row["area_mm2"],
            power_mw=row["power_mw"],
            seq=seq,
        )
    return DesignPoint(
        spec=spec,
        failure=DesignFailure(
            spec_name=spec.name,
            letters=spec.letters,
            stage=row["stage"],
            reason=row["reason"],
        ),
        seq=seq,
    )


def stats_to_row(stats: EvaluationStats) -> dict[str, Any]:
    row = dataclasses.asdict(stats)
    row["row"] = "stats"
    return row


def row_to_stats(row: Mapping[str, Any]) -> EvaluationStats:
    data = {k: v for k, v in row.items() if k != "row"}
    data["enum"] = EnumerationStats(**data.get("enum", {}))
    return EvaluationStats(**data)


# ----------------------------------------------------------------------
# Job journals (repro serve --journal-dir)
# ----------------------------------------------------------------------
#: File suffix of one job's append-only journal inside ``--journal-dir``.
#: The name stem is the server-generated job id (``job-<n>``) — never a
#: request-derived value, so journal paths need no sanitizing.
JOURNAL_SUFFIX = ".ndjson"

#: Entry kinds a job journal may contain, in the order a job's life writes
#: them: one ``job`` header, interleaved ``row``/``record`` entries as the
#: runner produces them, then one terminal ``end`` entry.
JOURNAL_KINDS = ("job", "row", "record", "end")


def journal_entry(kind: str, fields: Mapping[str, Any]) -> dict[str, Any]:
    """One journal entry: the payload dict tagged with its ``journal`` kind.

    ``row`` entries embed the exact ``/v1/explore``-format wire row (with its
    ``seq`` and ``item`` keys), ``record`` entries the exact per-item result
    record — both are flat merges, which is what lets :func:`replay_journal`
    hand them straight back to a rebuilt ``Job`` without a second codec.
    """
    if kind not in JOURNAL_KINDS:
        raise ValueError(f"unknown journal entry kind {kind!r}; known: {JOURNAL_KINDS}")
    return {"journal": kind, **fields}


def encode_journal_entry(entry: Mapping[str, Any]) -> bytes:
    """One NDJSON journal line, newline-terminated (the torn-line sentinel)."""
    return json.dumps(entry).encode() + b"\n"


def decode_journal(data: bytes) -> list[dict[str, Any]]:
    """Decode a journal file's bytes, tolerating a torn tail.

    A crash can leave the final line half-written (no trailing newline, or
    bytes that no longer parse); anything from the first damaged line on is
    dropped — every line *before* it was written and fsynced whole, so the
    decoded prefix is exactly the durable history.  An empty (or fully torn)
    file decodes to ``[]``.
    """
    entries: list[dict[str, Any]] = []
    complete, _, _tail = data.rpartition(b"\n")
    for line in complete.split(b"\n"):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            break  # a damaged line voids everything after it
        if not isinstance(entry, dict) or entry.get("journal") not in JOURNAL_KINDS:
            break
        entries.append(entry)
    return entries


def replay_journal(entries: list[dict[str, Any]]) -> dict[str, Any] | None:
    """Fold decoded journal entries back into a job's rebuildable field set.

    Returns ``None`` when the journal never got a ``job`` header (an empty or
    fully torn file — the job id was never durably created).  Otherwise the
    returned dict carries ``id``/``payload``/``total_items``/``keep_rows``
    from the header, the replayed ``rows`` and per-item ``results``, and the
    terminal ``status``/``error``/``cancelled_while`` — with ``status=None``
    when no ``end`` entry survived, i.e. the job was still queued or running
    when the server died and must be resumed.
    """
    fields: dict[str, Any] | None = None
    for entry in entries:
        kind = entry["journal"]
        if kind == "job":
            fields = {
                "id": str(entry.get("id", "")),
                "payload": dict(entry.get("payload") or {}),
                "total_items": int(entry.get("total_items", 0)),
                "keep_rows": bool(entry.get("keep_rows", False)),
                "rows": [],
                "results": [],
                "status": None,
                "error": None,
                "cancelled_while": None,
            }
            continue
        if fields is None:
            return None  # entries before a header: not a journal we wrote
        body = {k: v for k, v in entry.items() if k != "journal"}
        if kind == "row":
            fields["rows"].append(body)
        elif kind == "record":
            fields["results"].append(body)
        else:  # "end"
            fields["status"] = body.get("status")
            fields["error"] = body.get("error")
            fields["cancelled_while"] = body.get("cancelled_while")
    if fields is None or not fields["id"]:
        return None
    return fields


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
#: Exception types a server error payload may name; anything else re-raises
#: as RuntimeError so an unexpected server-side crash is visibly remote.
_ERROR_TYPES: dict[str, type[BaseException]] = {
    "SchemaVersionError": SchemaVersionError,
    "LookupError": LookupError,
    "KeyError": KeyError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "NotImplementedError": NotImplementedError,
    "PayloadTooLargeError": PayloadTooLargeError,
}


def error_payload(exc: BaseException) -> dict[str, Any]:
    message = str(exc)
    if isinstance(exc, KeyError) and exc.args:
        # KeyError stringifies as the repr of its key; keep the message
        message = str(exc.args[0])
    return {"error": message, "error_type": type(exc).__name__}


def raise_remote_error(payload: Mapping[str, Any], status: int) -> NoReturn:
    """Re-raise a server error payload as the matching local exception."""
    message = payload.get("error", f"HTTP {status}")
    if status == 503:
        raise ServiceBusyError(message)
    exc_type = _ERROR_TYPES.get(payload.get("error_type", ""), RuntimeError)
    raise exc_type(message)
