"""Orchestration for ``repro lint``: collect, check, suppress, report.

The runner glues the pieces together: it loads the sources
(:mod:`repro.analysis.source`), runs every registered checker
(:mod:`repro.analysis.checkers`), then applies the two suppression layers
(:func:`repro.analysis.findings.apply_suppressions`) — inline waivers first,
the committed baseline second.  Only what survives both fails the run.

Defaults are discovery-based so ``repro lint`` works from a checkout *and*
against an installed package: the source root falls back to the ``repro``
package directory, the docs/baseline to the enclosing repo root (the first
ancestor holding ``pyproject.toml``) when one exists.

Because the interesting checkers are *cross-module* (the project-wide call
graph couples every file to every other), per-file incremental re-analysis
would be unsound — editing ``wire.py`` can change a finding in
``coordinator.py``.  The result cache is therefore whole-run: one entry
per *scope* (file set + checker selection), keyed by the content hash of
every input (file texts, docs, baseline, checker selection, and each
checker's ``version``).  A warm run on an unchanged tree skips parsing and
checking entirely — the hot path hashes file bytes and deserializes the
previous result — and any edit anywhere invalidates that scope's entry.
Writes prune stale entries (older checker versions, superseded scopes) so
the file never accretes dead results.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.checkers import ALL_CHECKERS, LintContext
from repro.analysis.findings import (
    Finding,
    Waiver,
    apply_suppressions,
    load_baseline,
    save_baseline,
    scan_waivers,
)
from repro.analysis.source import SourceFile, collect_source_texts

__all__ = [
    "CACHE_FILENAME",
    "LintOptions",
    "LintResult",
    "default_src_root",
    "discover_repo_root",
    "format_text",
    "result_to_json",
    "run_lint",
]

#: Whole-run result cache, written at the repo root by default; the
#: ``REPRO_LINT_CACHE`` environment variable (or ``--cache-path``) relocates
#: it, so CI and local checkouts stop clobbering each other's entries.
CACHE_FILENAME = ".repro-lint-cache.json"

#: Bump to invalidate every cache entry (serialization format changes).
#: v2: multi-entry file ({"version", "entries": [...]}) with stale-key
#: pruning on write.
_CACHE_VERSION = 2

#: One entry per (file set, checker selection) scope — full tree, a
#: ``--select`` run, a subset — pruned oldest-first past this bound.
_MAX_CACHE_ENTRIES = 8


def default_src_root() -> Path:
    """The installed ``repro`` package directory — lint ourselves by default."""
    import repro

    return Path(repro.__file__).resolve().parent


def discover_repo_root(start: Path | None = None) -> Path | None:
    """First ancestor with a ``pyproject.toml`` (the checkout root), if any."""
    probe = (start or default_src_root()).resolve()
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return None


@dataclass
class LintOptions:
    paths: list[Path] = field(default_factory=list)
    docs_path: Path | None = None
    baseline_path: Path | None = None
    select: set[str] | None = None  #: checker ids to run (None = all)
    cache_path: Path | None = None  #: whole-run result cache location
    use_cache: bool = True

    def resolve(self) -> "LintOptions":
        """Fill unset fields via discovery; explicit values always win."""
        paths = list(self.paths) or [default_src_root()]
        root = discover_repo_root(paths[0])
        docs = self.docs_path
        if docs is None and root is not None:
            candidate = root / "docs" / "service-api.md"
            docs = candidate if candidate.exists() else None
        baseline = self.baseline_path
        if baseline is None and root is not None:
            candidate = root / "lint-baseline.json"
            baseline = candidate if candidate.exists() else None
        cache = self.cache_path
        if cache is None and self.use_cache:
            env_path = os.environ.get("REPRO_LINT_CACHE")
            if env_path:
                cache = Path(env_path)
            elif root is not None:
                cache = root / CACHE_FILENAME
        return LintOptions(
            paths=paths,
            docs_path=docs,
            baseline_path=baseline,
            select=self.select,
            cache_path=cache,
            use_cache=self.use_cache,
        )


@dataclass
class LintResult:
    findings: list[Finding]  #: active (unwaived, unbaselined) — these fail
    waived: list[tuple[Finding, Waiver]]
    baselined: list[Finding]
    files: list[str]
    checkers: list[str]
    summary: dict

    @property
    def ok(self) -> bool:
        return not self.findings

    def all_findings(self) -> list[Finding]:
        """Everything the checkers reported, suppression ignored — the set a
        ``--write-baseline`` pins."""
        return sorted(
            set(self.findings)
            | {f for f, _ in self.waived}
            | set(self.baselined)
        )


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", "surrogateescape")).hexdigest()


def _cache_key(
    options: LintOptions, texts: list[tuple[str, str]], docs_text: str | None
) -> dict:
    """Everything that can change the result, content-addressed."""
    return {
        "version": _CACHE_VERSION,
        "files": {rel: _sha256(text) for rel, text in texts},
        "docs": _sha256(docs_text) if docs_text is not None else None,
        "baseline": (
            _sha256(options.baseline_path.read_text())
            if options.baseline_path is not None and options.baseline_path.exists()
            else None
        ),
        "select": sorted(options.select) if options.select else None,
        "checkers": {c.id: c.version for c in ALL_CHECKERS},
    }


def _finding_to_cache(finding: Finding) -> dict:
    return finding.to_dict()


def _finding_from_cache(entry: dict) -> Finding:
    return Finding(
        path=entry["path"],
        line=entry["line"],
        checker=entry["checker"],
        message=entry["message"],
        symbol=entry.get("symbol", ""),
    )


def _result_to_cache(result: LintResult) -> dict:
    return {
        "findings": [_finding_to_cache(f) for f in result.findings],
        "waived": [
            {
                "finding": _finding_to_cache(f),
                "waiver": {**w.to_dict(), "applies_to": list(w.applies_to)},
            }
            for f, w in result.waived
        ],
        "baselined": [_finding_to_cache(f) for f in result.baselined],
        "files": result.files,
        "checkers": result.checkers,
        "summary": result.summary,
    }


def _result_from_cache(payload: dict) -> LintResult:
    waived = [
        (
            _finding_from_cache(entry["finding"]),
            Waiver(
                path=entry["waiver"]["path"],
                line=entry["waiver"]["line"],
                checkers=tuple(entry["waiver"]["checkers"]),
                reason=entry["waiver"]["reason"],
                applies_to=tuple(entry["waiver"].get("applies_to", ())),
            ),
        )
        for entry in payload["waived"]
    ]
    return LintResult(
        findings=[_finding_from_cache(e) for e in payload["findings"]],
        waived=waived,
        baselined=[_finding_from_cache(e) for e in payload["baselined"]],
        files=list(payload["files"]),
        checkers=list(payload["checkers"]),
        summary=dict(payload["summary"]),
    )


def _cache_scope(key: dict) -> tuple:
    """The identity of a cache entry *slot*: which files, which checkers.

    Two runs over the same scope replace each other (only the newest result
    per scope is worth keeping); runs over different scopes — the full tree
    vs a ``--changed`` subset vs a ``--select`` pass — coexist.
    """
    return (tuple(sorted(key.get("files", {}))), tuple(key.get("select") or ()))


def _load_cache_entries(path: Path) -> list[dict]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(payload, dict) or payload.get("version") != _CACHE_VERSION:
        return []  # v1 single-entry files (or foreign junk): start cold
    entries = payload.get("entries")
    return entries if isinstance(entries, list) else []


def _cache_lookup(path: Path, key: dict) -> LintResult | None:
    for entry in _load_cache_entries(path):
        if entry.get("key") != key:
            continue
        try:
            return _result_from_cache(entry["result"])
        except (KeyError, TypeError):  # truncated entry: treat as cold
            return None
    return None


def _cache_store(path: Path, key: dict, result: LintResult) -> None:
    """Append the result, pruning as we go: entries written by an older
    checker set (any id/version drift) or covering this run's scope are
    stale — keeping them would only serve wrong answers or dead weight."""
    current_checkers = {c.id: c.version for c in ALL_CHECKERS}
    scope = _cache_scope(key)
    entries = [
        entry
        for entry in _load_cache_entries(path)
        if isinstance(entry.get("key"), dict)
        and entry["key"].get("checkers") == current_checkers
        and _cache_scope(entry["key"]) != scope
    ]
    entries.append({"key": key, "result": _result_to_cache(result)})
    entries = entries[-_MAX_CACHE_ENTRIES:]
    try:
        path.write_text(
            json.dumps({"version": _CACHE_VERSION, "entries": entries}) + "\n"
        )
    except OSError:  # read-only checkout: caching is best-effort
        pass


def run_lint(
    options: LintOptions | None = None, *, sources: list[SourceFile] | None = None
) -> LintResult:
    """Run the analysis pass; ``sources`` overrides file collection (tests)."""
    options = (options or LintOptions()).resolve()
    docs_text: str | None = None
    if options.docs_path is not None and options.docs_path.exists():
        docs_text = options.docs_path.read_text()

    cache_key: dict | None = None
    if sources is None:
        # read texts first: on a warm cache the run ends here, without a
        # single ast.parse — that is the entire speedup
        texts: list[tuple[str, str]] = []
        for path in options.paths:
            texts.extend(collect_source_texts(path))
        if options.use_cache and options.cache_path is not None:
            cache_key = _cache_key(options, texts, docs_text)
            cached = _cache_lookup(options.cache_path, cache_key)
            if cached is not None:
                cached.summary["cache"] = "hit"
                return cached
        sources = [SourceFile.from_text(text, rel) for rel, text in texts]

    context = LintContext(summary={})
    if docs_text is not None:
        context.docs_path = options.docs_path
        context.docs_text = docs_text
    findings: list[Finding] = []
    waivers: list[Waiver] = []
    checker_ids: list[str] = []
    for checker_cls in ALL_CHECKERS:
        if options.select and checker_cls.id not in options.select:
            continue
        checker_ids.append(checker_cls.id)
        findings.extend(checker_cls().check(sources, context))
    if context.graph is not None:
        context.summary["cross_module_edges"] = len(
            context.graph.cross_module_edges()
        )
    for source in sources:
        file_waivers, malformed = scan_waivers(source.rel, source.text)
        waivers.extend(file_waivers)
        findings.extend(malformed)  # RA000: malformed waivers always surface
    baseline = (
        load_baseline(options.baseline_path)
        if options.baseline_path is not None
        else set()
    )
    active, waived, baselined = apply_suppressions(
        sorted(set(findings)), waivers, baseline
    )
    context.summary["waivers"] = len(waivers)
    result = LintResult(
        findings=active,
        waived=waived,
        baselined=baselined,
        files=[s.rel for s in sources],
        checkers=checker_ids,
        summary=context.summary,
    )
    if cache_key is not None and options.cache_path is not None:
        result.summary["cache"] = "miss"
        _cache_store(options.cache_path, cache_key, result)
    return result


def write_baseline(result: LintResult, path: Path) -> None:
    """Pin every finding not already waived inline — the adoption workflow:
    run once, commit the baseline, and ratchet it down over time."""
    save_baseline(path, result.findings + result.baselined)


def format_text(result: LintResult, *, verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    if verbose:
        for finding, waiver in result.waived:
            lines.append(f"{finding.render()}  [waived: {waiver.reason}]")
        for finding in result.baselined:
            lines.append(f"{finding.render()}  [baselined]")
    suppressed = ""
    if result.waived or result.baselined:
        suppressed = f" ({len(result.waived)} waived, {len(result.baselined)} baselined)"
    verdict = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    lines.append(
        f"repro lint: {verdict} across {len(result.files)} file(s), "
        f"checkers {', '.join(result.checkers)}{suppressed}"
    )
    return "\n".join(lines)


def result_to_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "ok": result.ok,
        "files": len(result.files),
        "checkers": result.checkers,
        "findings": [f.to_dict() for f in result.findings],
        "waived": [
            {"finding": f.to_dict(), "waiver": w.to_dict()} for f, w in result.waived
        ],
        "baselined": [f.to_dict() for f in result.baselined],
        "summary": result.summary,
    }
    return json.dumps(payload, indent=2)
