"""Orchestration for ``repro lint``: collect, check, suppress, report.

The runner glues the pieces together: it loads the sources
(:mod:`repro.analysis.source`), runs every registered checker
(:mod:`repro.analysis.checkers`), then applies the two suppression layers
(:func:`repro.analysis.findings.apply_suppressions`) — inline waivers first,
the committed baseline second.  Only what survives both fails the run.

Defaults are discovery-based so ``repro lint`` works from a checkout *and*
against an installed package: the source root falls back to the ``repro``
package directory, the docs/baseline to the enclosing repo root (the first
ancestor holding ``pyproject.toml``) when one exists.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.checkers import ALL_CHECKERS, LintContext
from repro.analysis.findings import (
    Finding,
    Waiver,
    apply_suppressions,
    load_baseline,
    save_baseline,
    scan_waivers,
)
from repro.analysis.source import SourceFile, collect_sources

__all__ = [
    "LintOptions",
    "LintResult",
    "default_src_root",
    "discover_repo_root",
    "format_text",
    "result_to_json",
    "run_lint",
]


def default_src_root() -> Path:
    """The installed ``repro`` package directory — lint ourselves by default."""
    import repro

    return Path(repro.__file__).resolve().parent


def discover_repo_root(start: Path | None = None) -> Path | None:
    """First ancestor with a ``pyproject.toml`` (the checkout root), if any."""
    probe = (start or default_src_root()).resolve()
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return None


@dataclass
class LintOptions:
    paths: list[Path] = field(default_factory=list)
    docs_path: Path | None = None
    baseline_path: Path | None = None
    select: set[str] | None = None  #: checker ids to run (None = all)

    def resolve(self) -> "LintOptions":
        """Fill unset fields via discovery; explicit values always win."""
        paths = list(self.paths) or [default_src_root()]
        root = discover_repo_root(paths[0])
        docs = self.docs_path
        if docs is None and root is not None:
            candidate = root / "docs" / "service-api.md"
            docs = candidate if candidate.exists() else None
        baseline = self.baseline_path
        if baseline is None and root is not None:
            candidate = root / "lint-baseline.json"
            baseline = candidate if candidate.exists() else None
        return LintOptions(
            paths=paths, docs_path=docs, baseline_path=baseline, select=self.select
        )


@dataclass
class LintResult:
    findings: list[Finding]  #: active (unwaived, unbaselined) — these fail
    waived: list[tuple[Finding, Waiver]]
    baselined: list[Finding]
    files: list[str]
    checkers: list[str]
    summary: dict

    @property
    def ok(self) -> bool:
        return not self.findings

    def all_findings(self) -> list[Finding]:
        """Everything the checkers reported, suppression ignored — the set a
        ``--write-baseline`` pins."""
        return sorted(
            set(self.findings)
            | {f for f, _ in self.waived}
            | set(self.baselined)
        )


def run_lint(
    options: LintOptions | None = None, *, sources: list[SourceFile] | None = None
) -> LintResult:
    """Run the analysis pass; ``sources`` overrides file collection (tests)."""
    options = (options or LintOptions()).resolve()
    if sources is None:
        sources = []
        for path in options.paths:
            sources.extend(collect_sources(path))
    context = LintContext(summary={})
    if options.docs_path is not None and options.docs_path.exists():
        context.docs_path = options.docs_path
        context.docs_text = options.docs_path.read_text()
    findings: list[Finding] = []
    waivers: list[Waiver] = []
    checker_ids: list[str] = []
    for checker_cls in ALL_CHECKERS:
        if options.select and checker_cls.id not in options.select:
            continue
        checker_ids.append(checker_cls.id)
        findings.extend(checker_cls().check(sources, context))
    for source in sources:
        file_waivers, malformed = scan_waivers(source.rel, source.text)
        waivers.extend(file_waivers)
        findings.extend(malformed)  # RA000: malformed waivers always surface
    baseline = (
        load_baseline(options.baseline_path)
        if options.baseline_path is not None
        else set()
    )
    active, waived, baselined = apply_suppressions(
        sorted(set(findings)), waivers, baseline
    )
    context.summary["waivers"] = len(waivers)
    return LintResult(
        findings=active,
        waived=waived,
        baselined=baselined,
        files=[s.rel for s in sources],
        checkers=checker_ids,
        summary=context.summary,
    )


def write_baseline(result: LintResult, path: Path) -> None:
    """Pin every finding not already waived inline — the adoption workflow:
    run once, commit the baseline, and ratchet it down over time."""
    save_baseline(path, result.findings + result.baselined)


def format_text(result: LintResult, *, verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    if verbose:
        for finding, waiver in result.waived:
            lines.append(f"{finding.render()}  [waived: {waiver.reason}]")
        for finding in result.baselined:
            lines.append(f"{finding.render()}  [baselined]")
    suppressed = ""
    if result.waived or result.baselined:
        suppressed = f" ({len(result.waived)} waived, {len(result.baselined)} baselined)"
    verdict = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    lines.append(
        f"repro lint: {verdict} across {len(result.files)} file(s), "
        f"checkers {', '.join(result.checkers)}{suppressed}"
    )
    return "\n".join(lines)


def result_to_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "ok": result.ok,
        "files": len(result.files),
        "checkers": result.checkers,
        "findings": [f.to_dict() for f in result.findings],
        "waived": [
            {"finding": f.to_dict(), "waiver": w.to_dict()} for f, w in result.waived
        ],
        "baselined": [f.to_dict() for f in result.baselined],
        "summary": result.summary,
    }
    return json.dumps(payload, indent=2)
