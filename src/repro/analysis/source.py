"""Source loading for the analysis pass: parsed files, never imported ones.

The checkers work on :class:`ast` trees only — the target code is *parsed*,
not executed, so ``repro lint`` can analyze the service layer without
starting servers, opening sockets, or importing optional backends.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

__all__ = ["SourceFile", "collect_source_texts", "collect_sources", "load_source"]


@dataclass
class SourceFile:
    """One parsed Python source: text + AST + the display path findings use."""

    rel: str
    text: str
    tree: ast.Module

    @classmethod
    def from_text(cls, text: str, rel: str = "<string>") -> "SourceFile":
        """Parse in-memory source — the hook the checker tests feed fixtures
        (and deliberately corrupted copies of real modules) through."""
        return cls(rel=rel, text=text, tree=ast.parse(text, filename=rel))


def _display_path(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def load_source(path: Path, root: Path | None = None) -> SourceFile:
    text = path.read_text()
    rel = _display_path(path, root)
    return SourceFile(rel=rel, text=text, tree=ast.parse(text, filename=rel))


def collect_source_texts(root: Path) -> list[tuple[str, str]]:
    """``(display_rel, text)`` for every ``*.py`` under ``root`` — the
    *unparsed* half of :func:`collect_sources`, split out so the result
    cache can hash file contents without paying for ``ast.parse``."""
    if root.is_file():
        return [(_display_path(root, root.parent), root.read_text())]
    base = root.parent
    return [
        (_display_path(path, base), path.read_text())
        for path in sorted(root.rglob("*.py"))
        if "__pycache__" not in path.parts
    ]


def collect_sources(root: Path) -> list[SourceFile]:
    """Every ``*.py`` under ``root`` (or just ``root`` if it is a file).

    Display paths are kept relative to ``root``'s parent so findings read
    ``repro/service/server.py:...`` wherever the pass is invoked from.
    """
    return [
        SourceFile.from_text(text, rel) for rel, text in collect_source_texts(root)
    ]
