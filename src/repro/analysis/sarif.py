"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: upload the log from CI with ``codeql-action/upload-sarif``
and findings annotate the offending lines right in the PR diff.  The
mapping is intentionally small:

* each checker in ``ALL_CHECKERS`` becomes a rule (``RA001``…);
* active findings become ``level: error`` results — they are exactly the
  set that fails the build;
* waived and baselined findings are emitted too, carrying a
  ``suppressions`` entry (``inSource`` for inline waivers, ``external``
  for the committed baseline), so code scanning shows them as dismissed
  rather than silently dropping them.
"""

from __future__ import annotations

import json

from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.findings import Finding, Waiver
from repro.analysis.runner import LintResult

__all__ = ["result_to_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rules() -> list[dict]:
    rules = [
        {
            "id": checker.id,
            "name": checker.id,
            "shortDescription": {"text": checker.title},
            "defaultConfiguration": {"level": "error"},
        }
        for checker in ALL_CHECKERS
    ]
    # RA000 has no checker class (waiver scanning lives in the runner) but
    # its findings carry ruleId RA000 — declare it or code scanning points
    # every malformed-waiver alert at a ghost rule
    rules.append(
        {
            "id": "RA000",
            "name": "RA000",
            "shortDescription": {"text": "malformed waiver pragma"},
            "defaultConfiguration": {"level": "error"},
        }
    )
    return rules


def _result(
    finding: Finding, *, suppression: dict | None = None
) -> dict:
    out = {
        "ruleId": finding.checker,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(1, finding.line)},
                }
            }
        ],
    }
    if finding.symbol:
        out["partialFingerprints"] = {
            "reproLintKey/v1": "|".join(finding.key)
        }
    if suppression is not None:
        out["suppressions"] = [suppression]
    return out


def _waiver_suppression(waiver: Waiver) -> dict:
    return {
        "kind": "inSource",
        "justification": waiver.reason,
        "location": {
            "physicalLocation": {
                "artifactLocation": {"uri": waiver.path},
                "region": {"startLine": waiver.line},
            }
        },
    }


def result_to_sarif(result: LintResult) -> str:
    results = [_result(f) for f in result.findings]
    results.extend(
        _result(f, suppression=_waiver_suppression(w)) for f, w in result.waived
    )
    results.extend(
        _result(f, suppression={"kind": "external", "justification": "lint-baseline.json"})
        for f in result.baselined
    )
    log = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _rules(),
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(log, indent=2)
